#!/usr/bin/env python3
"""Perf-ratchet gate: compare fresh bench JSONs against the committed ones.

Two baselines live at the repo root and are regenerated deliberately, never
by CI:

  BENCH_kernels.json  -- bench/bench_kernels: per (kernel, cores) the scalar
                         baseline and SIMD per-call times plus their ratio
                         (`speedup`). The speedup is a within-machine ratio,
                         so it transfers across machines; the raw ns do not.
  BENCH_e5.json       -- bench/bench_e5_scalability: per (controller, cores)
                         closed-loop throughput (epochs/s) and decide()
                         latency. Absolute numbers are machine-dependent, so
                         the check normalizes by the median fresh/committed
                         ratio before applying the per-row tolerance: a
                         uniformly slower runner passes, a single controller
                         regressing relative to the rest fails.
  BENCH_multichip.json -- bench/bench_multichip: per (chips, cores, workers)
                         fleet throughput (chip-epochs/s) on the shared
                         work-stealing runtime, median-normalized like e5.
                         The JSON records the machine's `cpus`; the worker
                         scaling floor (>= 3x from 1 to 8 workers at 8
                         chips) is enforced only when both the committed
                         and the fresh runs had >= 8 CPUs -- a 1-CPU
                         container cannot measure scaling, and pretending
                         otherwise would ratchet noise.
  BENCH_service.json   -- bench/bench_service: per (sessions, workers) the
                         control-plane service's session-epochs/s through
                         the full loopback stack (sim step, wire encode/
                         decode, server decide), median-normalized like e5.
                         No scaling floor: the cells exist to catch a
                         single configuration regressing relative to the
                         suite, not to assert parallel speedup on an
                         unknown runner.

Fresh flags are repeatable; multiple fresh files are merged best-of-N per
row (max speedup / max epochs_per_s / min mean_decide_us) to shave timing
noise off the downside. Rules enforced:

  kernels  per-row: best-of-N speedup >= committed speedup * (1 - tol)
           floor:   >= 2 distinct kernels reach speedup >= 1.5 at >= 64
                    cores (both in the committed file and in the fresh
                    merge), and the fresh binary was compiled with SIMD on
  e5       per-row: throughput ratio >= median ratio * (1 - tol), and
                    decide-latency ratio <= median ratio * (1 + tol)

Exit status 0 when every rule holds, 1 with a per-row report otherwise.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

ACCEPT_MIN_SPEEDUP = 1.5
ACCEPT_MIN_CORES = 64
ACCEPT_MIN_KERNELS = 2

MC_SCALING_FLOOR = 3.0   # epochs/s ratio, workers 8 vs 1, at 8 chips
MC_SCALING_CHIPS = 8
MC_SCALING_WORKERS = 8
MC_MIN_CPUS = 8          # scaling is only measurable with enough CPUs


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def kernel_rows(doc):
    """{(kernel, cores): row} for a BENCH_kernels.json document."""
    return {(r["kernel"], int(r["cores"])): r for r in doc["results"]}


def e5_rows(doc):
    """{(controller, cores): row} for a BENCH_e5.json document."""
    return {(r["controller"], int(r["cores"])): r for r in doc["results"]}


def mc_rows(doc):
    """{(chips, cores, workers): row} for a BENCH_multichip.json document."""
    return {(int(r["chips"]), int(r["cores"]), int(r["workers"])): r
            for r in doc["results"]}


def service_rows(doc):
    """{(sessions, cores, workers): row} for a BENCH_service.json document."""
    return {(int(r["sessions"]), int(r["cores"]), int(r["workers"])): r
            for r in doc["results"]}


def merge_best(per_file_rows, better):
    """Best-of-N merge: keep, per key, the row `better` prefers."""
    merged = {}
    for rows in per_file_rows:
        for key, row in rows.items():
            if key not in merged or better(row, merged[key]):
                merged[key] = row
    return merged


def floor_failures(rows, label):
    """Acceptance floor on one kernels table; returns failure strings."""
    winners = {
        k
        for (k, cores), r in rows.items()
        if cores >= ACCEPT_MIN_CORES and r["speedup"] >= ACCEPT_MIN_SPEEDUP
    }
    if len(winners) >= ACCEPT_MIN_KERNELS:
        return []
    return [
        f"{label}: acceptance floor missed -- only {sorted(winners)} reach "
        f"{ACCEPT_MIN_SPEEDUP}x at >= {ACCEPT_MIN_CORES} cores "
        f"(need {ACCEPT_MIN_KERNELS} kernels)"
    ]


def check_kernels(baseline_path, fresh_paths, tol):
    failures = []
    base_doc = load(baseline_path)
    fresh_docs = [load(p) for p in fresh_paths]
    for path, doc in zip(fresh_paths, fresh_docs):
        if not doc.get("simd_compiled", False):
            failures.append(
                f"kernels: {path} was produced by a scalar-only build "
                "(simd_compiled false) -- speedups are meaningless"
            )
    base = kernel_rows(base_doc)
    fresh = merge_best(
        [kernel_rows(d) for d in fresh_docs],
        lambda a, b: a["speedup"] > b["speedup"],
    )

    for key in sorted(base):
        kernel, cores = key
        if key not in fresh:
            failures.append(f"kernels: row ({kernel}, {cores}) missing "
                            "from fresh results")
            continue
        need = base[key]["speedup"] * (1.0 - tol)
        got = fresh[key]["speedup"]
        if got < need:
            failures.append(
                f"kernels: {kernel} @ {cores} cores regressed -- speedup "
                f"{got:.3f} < {need:.3f} "
                f"(committed {base[key]['speedup']:.3f} - {tol:.0%})"
            )

    failures += floor_failures(base, "kernels: committed baseline")
    failures += floor_failures(fresh, "kernels: fresh best-of-N")
    return failures


def check_e5(baseline_path, fresh_paths, tol):
    failures = []
    base = e5_rows(load(baseline_path))
    fresh = merge_best(
        [e5_rows(load(p)) for p in fresh_paths],
        lambda a, b: a["epochs_per_s"] > b["epochs_per_s"]
        or (
            a["epochs_per_s"] == b["epochs_per_s"]
            and a["mean_decide_us"] < b["mean_decide_us"]
        ),
    )
    # Latency best-of-N is independent of the throughput winner.
    lat_best = merge_best(
        [e5_rows(load(p)) for p in fresh_paths],
        lambda a, b: a["mean_decide_us"] < b["mean_decide_us"],
    )

    missing = [k for k in base if k not in fresh]
    for controller, cores in missing:
        failures.append(f"e5: row ({controller}, {cores}) missing from "
                        "fresh results")
    keys = [k for k in sorted(base) if k not in missing]
    if not keys:
        return failures

    tp_ratio = {k: fresh[k]["epochs_per_s"] / base[k]["epochs_per_s"]
                for k in keys}
    lat_ratio = {
        k: lat_best[k]["mean_decide_us"] / base[k]["mean_decide_us"]
        for k in keys
    }
    tp_med = statistics.median(tp_ratio.values())
    lat_med = statistics.median(lat_ratio.values())

    for key in keys:
        controller, cores = key
        if tp_ratio[key] < tp_med * (1.0 - tol):
            failures.append(
                f"e5: {controller} @ {cores} cores throughput regressed "
                f"relative to the suite -- ratio {tp_ratio[key]:.3f} vs "
                f"median {tp_med:.3f} (tolerance {tol:.0%})"
            )
        if lat_ratio[key] > lat_med * (1.0 + tol):
            failures.append(
                f"e5: {controller} @ {cores} cores decide latency regressed "
                f"relative to the suite -- ratio {lat_ratio[key]:.3f} vs "
                f"median {lat_med:.3f} (tolerance {tol:.0%})"
            )
    return failures


def mc_scaling_failures(rows, cpus, label):
    """Worker-scaling floor on one multichip table (cpus-gated)."""
    if cpus < MC_MIN_CPUS:
        print(f"multichip: {label} ran on {cpus} CPU(s) -- worker-scaling "
              f"floor skipped (needs >= {MC_MIN_CPUS})")
        return []
    ratios = []
    for (chips, cores, workers), row in rows.items():
        if chips != MC_SCALING_CHIPS or workers != MC_SCALING_WORKERS:
            continue
        base = rows.get((chips, cores, 1))
        if base is None:
            continue
        ratios.append(row["chip_epochs_per_s"] / base["chip_epochs_per_s"])
    if not ratios:
        return [f"multichip: {label} has no (chips={MC_SCALING_CHIPS}, "
                f"workers={MC_SCALING_WORKERS}) vs workers=1 pair"]
    if max(ratios) >= MC_SCALING_FLOOR:
        return []
    return [
        f"multichip: {label} scaling floor missed -- best workers-"
        f"{MC_SCALING_WORKERS}/workers-1 ratio at {MC_SCALING_CHIPS} chips "
        f"is {max(ratios):.2f}x (need >= {MC_SCALING_FLOOR}x)"
    ]


def check_multichip(baseline_path, fresh_paths, tol):
    failures = []
    base_doc = load(baseline_path)
    fresh_docs = [load(p) for p in fresh_paths]
    base = mc_rows(base_doc)
    fresh = merge_best(
        [mc_rows(d) for d in fresh_docs],
        lambda a, b: a["chip_epochs_per_s"] > b["chip_epochs_per_s"],
    )

    missing = [k for k in base if k not in fresh]
    for chips, cores, workers in missing:
        failures.append(f"multichip: row ({chips} chips, {cores} cores, "
                        f"{workers} workers) missing from fresh results")
    keys = [k for k in sorted(base) if k not in missing]
    if keys:
        ratio = {k: fresh[k]["chip_epochs_per_s"] /
                 base[k]["chip_epochs_per_s"] for k in keys}
        med = statistics.median(ratio.values())
        for key in keys:
            chips, cores, workers = key
            if ratio[key] < med * (1.0 - tol):
                failures.append(
                    f"multichip: {chips} chips @ {cores} cores, {workers} "
                    f"workers throughput regressed relative to the suite -- "
                    f"ratio {ratio[key]:.3f} vs median {med:.3f} "
                    f"(tolerance {tol:.0%})"
                )

    failures += mc_scaling_failures(base, int(base_doc.get("cpus", 0)),
                                    "committed baseline")
    fresh_cpus = min(int(d.get("cpus", 0)) for d in fresh_docs)
    failures += mc_scaling_failures(fresh, fresh_cpus, "fresh best-of-N")
    return failures


def check_service(baseline_path, fresh_paths, tol):
    failures = []
    base = service_rows(load(baseline_path))
    fresh = merge_best(
        [service_rows(load(p)) for p in fresh_paths],
        lambda a, b: a["epochs_per_s"] > b["epochs_per_s"],
    )

    missing = [k for k in base if k not in fresh]
    for sessions, cores, workers in missing:
        failures.append(f"service: row ({sessions} sessions, {cores} cores, "
                        f"{workers} workers) missing from fresh results")
    keys = [k for k in sorted(base) if k not in missing]
    if not keys:
        return failures

    ratio = {k: fresh[k]["epochs_per_s"] / base[k]["epochs_per_s"]
             for k in keys}
    med = statistics.median(ratio.values())
    for key in keys:
        sessions, cores, workers = key
        if ratio[key] < med * (1.0 - tol):
            failures.append(
                f"service: {sessions} sessions @ {cores} cores, {workers} "
                f"workers throughput regressed relative to the suite -- "
                f"ratio {ratio[key]:.3f} vs median {med:.3f} "
                f"(tolerance {tol:.0%})"
            )
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels-baseline",
                        help="committed BENCH_kernels.json")
    parser.add_argument("--kernels-fresh", action="append", default=[],
                        help="fresh kernels JSON (repeatable, best-of-N)")
    parser.add_argument("--e5-baseline", help="committed BENCH_e5.json")
    parser.add_argument("--e5-fresh", action="append", default=[],
                        help="fresh e5 JSON (repeatable, best-of-N)")
    parser.add_argument("--multichip-baseline",
                        help="committed BENCH_multichip.json")
    parser.add_argument("--multichip-fresh", action="append", default=[],
                        help="fresh multichip JSON (repeatable, best-of-N)")
    parser.add_argument("--service-baseline",
                        help="committed BENCH_service.json")
    parser.add_argument("--service-fresh", action="append", default=[],
                        help="fresh service JSON (repeatable, best-of-N)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed per-row regression (default 0.10)")
    args = parser.parse_args(argv)

    do_kernels = args.kernels_baseline or args.kernels_fresh
    do_e5 = args.e5_baseline or args.e5_fresh
    do_mc = args.multichip_baseline or args.multichip_fresh
    do_service = args.service_baseline or args.service_fresh
    if not do_kernels and not do_e5 and not do_mc and not do_service:
        parser.error("nothing to check: pass --kernels-*, --e5-*, "
                     "--multichip-* and/or --service-*")
    if do_kernels and not (args.kernels_baseline and args.kernels_fresh):
        parser.error("kernels check needs --kernels-baseline and at least "
                     "one --kernels-fresh")
    if do_e5 and not (args.e5_baseline and args.e5_fresh):
        parser.error("e5 check needs --e5-baseline and at least one "
                     "--e5-fresh")
    if do_mc and not (args.multichip_baseline and args.multichip_fresh):
        parser.error("multichip check needs --multichip-baseline and at "
                     "least one --multichip-fresh")
    if do_service and not (args.service_baseline and args.service_fresh):
        parser.error("service check needs --service-baseline and at least "
                     "one --service-fresh")

    failures = []
    if do_kernels:
        failures += check_kernels(args.kernels_baseline, args.kernels_fresh,
                                  args.tolerance)
    if do_e5:
        failures += check_e5(args.e5_baseline, args.e5_fresh, args.tolerance)
    if do_mc:
        failures += check_multichip(args.multichip_baseline,
                                    args.multichip_fresh, args.tolerance)
    if do_service:
        failures += check_service(args.service_baseline, args.service_fresh,
                                  args.tolerance)

    if failures:
        print("perf ratchet FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    checked = []
    if do_kernels:
        checked.append(f"kernels ({len(args.kernels_fresh)} fresh run(s))")
    if do_e5:
        checked.append(f"e5 ({len(args.e5_fresh)} fresh run(s))")
    if do_mc:
        checked.append(
            f"multichip ({len(args.multichip_fresh)} fresh run(s))")
    if do_service:
        checked.append(f"service ({len(args.service_fresh)} fresh run(s))")
    print(f"perf ratchet OK: {', '.join(checked)}, "
          f"tolerance {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
