#!/usr/bin/env python3
"""Perf-ratchet gate: compare fresh bench JSONs against the committed ones.

Two baselines live at the repo root and are regenerated deliberately, never
by CI:

  BENCH_kernels.json  -- bench/bench_kernels: per (kernel, cores) the scalar
                         baseline and SIMD per-call times plus their ratio
                         (`speedup`). The speedup is a within-machine ratio,
                         so it transfers across machines; the raw ns do not.
  BENCH_e5.json       -- bench/bench_e5_scalability: per (controller, cores)
                         closed-loop throughput (epochs/s) and decide()
                         latency. Absolute numbers are machine-dependent, so
                         the check normalizes by the median fresh/committed
                         ratio before applying the per-row tolerance: a
                         uniformly slower runner passes, a single controller
                         regressing relative to the rest fails.

Fresh flags are repeatable; multiple fresh files are merged best-of-N per
row (max speedup / max epochs_per_s / min mean_decide_us) to shave timing
noise off the downside. Rules enforced:

  kernels  per-row: best-of-N speedup >= committed speedup * (1 - tol)
           floor:   >= 2 distinct kernels reach speedup >= 1.5 at >= 64
                    cores (both in the committed file and in the fresh
                    merge), and the fresh binary was compiled with SIMD on
  e5       per-row: throughput ratio >= median ratio * (1 - tol), and
                    decide-latency ratio <= median ratio * (1 + tol)

Exit status 0 when every rule holds, 1 with a per-row report otherwise.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

ACCEPT_MIN_SPEEDUP = 1.5
ACCEPT_MIN_CORES = 64
ACCEPT_MIN_KERNELS = 2


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def kernel_rows(doc):
    """{(kernel, cores): row} for a BENCH_kernels.json document."""
    return {(r["kernel"], int(r["cores"])): r for r in doc["results"]}


def e5_rows(doc):
    """{(controller, cores): row} for a BENCH_e5.json document."""
    return {(r["controller"], int(r["cores"])): r for r in doc["results"]}


def merge_best(per_file_rows, better):
    """Best-of-N merge: keep, per key, the row `better` prefers."""
    merged = {}
    for rows in per_file_rows:
        for key, row in rows.items():
            if key not in merged or better(row, merged[key]):
                merged[key] = row
    return merged


def floor_failures(rows, label):
    """Acceptance floor on one kernels table; returns failure strings."""
    winners = {
        k
        for (k, cores), r in rows.items()
        if cores >= ACCEPT_MIN_CORES and r["speedup"] >= ACCEPT_MIN_SPEEDUP
    }
    if len(winners) >= ACCEPT_MIN_KERNELS:
        return []
    return [
        f"{label}: acceptance floor missed -- only {sorted(winners)} reach "
        f"{ACCEPT_MIN_SPEEDUP}x at >= {ACCEPT_MIN_CORES} cores "
        f"(need {ACCEPT_MIN_KERNELS} kernels)"
    ]


def check_kernels(baseline_path, fresh_paths, tol):
    failures = []
    base_doc = load(baseline_path)
    fresh_docs = [load(p) for p in fresh_paths]
    for path, doc in zip(fresh_paths, fresh_docs):
        if not doc.get("simd_compiled", False):
            failures.append(
                f"kernels: {path} was produced by a scalar-only build "
                "(simd_compiled false) -- speedups are meaningless"
            )
    base = kernel_rows(base_doc)
    fresh = merge_best(
        [kernel_rows(d) for d in fresh_docs],
        lambda a, b: a["speedup"] > b["speedup"],
    )

    for key in sorted(base):
        kernel, cores = key
        if key not in fresh:
            failures.append(f"kernels: row ({kernel}, {cores}) missing "
                            "from fresh results")
            continue
        need = base[key]["speedup"] * (1.0 - tol)
        got = fresh[key]["speedup"]
        if got < need:
            failures.append(
                f"kernels: {kernel} @ {cores} cores regressed -- speedup "
                f"{got:.3f} < {need:.3f} "
                f"(committed {base[key]['speedup']:.3f} - {tol:.0%})"
            )

    failures += floor_failures(base, "kernels: committed baseline")
    failures += floor_failures(fresh, "kernels: fresh best-of-N")
    return failures


def check_e5(baseline_path, fresh_paths, tol):
    failures = []
    base = e5_rows(load(baseline_path))
    fresh = merge_best(
        [e5_rows(load(p)) for p in fresh_paths],
        lambda a, b: a["epochs_per_s"] > b["epochs_per_s"]
        or (
            a["epochs_per_s"] == b["epochs_per_s"]
            and a["mean_decide_us"] < b["mean_decide_us"]
        ),
    )
    # Latency best-of-N is independent of the throughput winner.
    lat_best = merge_best(
        [e5_rows(load(p)) for p in fresh_paths],
        lambda a, b: a["mean_decide_us"] < b["mean_decide_us"],
    )

    missing = [k for k in base if k not in fresh]
    for controller, cores in missing:
        failures.append(f"e5: row ({controller}, {cores}) missing from "
                        "fresh results")
    keys = [k for k in sorted(base) if k not in missing]
    if not keys:
        return failures

    tp_ratio = {k: fresh[k]["epochs_per_s"] / base[k]["epochs_per_s"]
                for k in keys}
    lat_ratio = {
        k: lat_best[k]["mean_decide_us"] / base[k]["mean_decide_us"]
        for k in keys
    }
    tp_med = statistics.median(tp_ratio.values())
    lat_med = statistics.median(lat_ratio.values())

    for key in keys:
        controller, cores = key
        if tp_ratio[key] < tp_med * (1.0 - tol):
            failures.append(
                f"e5: {controller} @ {cores} cores throughput regressed "
                f"relative to the suite -- ratio {tp_ratio[key]:.3f} vs "
                f"median {tp_med:.3f} (tolerance {tol:.0%})"
            )
        if lat_ratio[key] > lat_med * (1.0 + tol):
            failures.append(
                f"e5: {controller} @ {cores} cores decide latency regressed "
                f"relative to the suite -- ratio {lat_ratio[key]:.3f} vs "
                f"median {lat_med:.3f} (tolerance {tol:.0%})"
            )
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernels-baseline",
                        help="committed BENCH_kernels.json")
    parser.add_argument("--kernels-fresh", action="append", default=[],
                        help="fresh kernels JSON (repeatable, best-of-N)")
    parser.add_argument("--e5-baseline", help="committed BENCH_e5.json")
    parser.add_argument("--e5-fresh", action="append", default=[],
                        help="fresh e5 JSON (repeatable, best-of-N)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed per-row regression (default 0.10)")
    args = parser.parse_args(argv)

    do_kernels = args.kernels_baseline or args.kernels_fresh
    do_e5 = args.e5_baseline or args.e5_fresh
    if not do_kernels and not do_e5:
        parser.error("nothing to check: pass --kernels-* and/or --e5-*")
    if do_kernels and not (args.kernels_baseline and args.kernels_fresh):
        parser.error("kernels check needs --kernels-baseline and at least "
                     "one --kernels-fresh")
    if do_e5 and not (args.e5_baseline and args.e5_fresh):
        parser.error("e5 check needs --e5-baseline and at least one "
                     "--e5-fresh")

    failures = []
    if do_kernels:
        failures += check_kernels(args.kernels_baseline, args.kernels_fresh,
                                  args.tolerance)
    if do_e5:
        failures += check_e5(args.e5_baseline, args.e5_fresh, args.tolerance)

    if failures:
        print("perf ratchet FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    checked = []
    if do_kernels:
        checked.append(f"kernels ({len(args.kernels_fresh)} fresh run(s))")
    if do_e5:
        checked.append(f"e5 ({len(args.e5_fresh)} fresh run(s))")
    print(f"perf ratchet OK: {', '.join(checked)}, "
          f"tolerance {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
