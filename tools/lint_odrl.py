#!/usr/bin/env python3
"""Project-specific lint rules for the ODRL hot path.

Nine rules -- six aimed at the zero-allocation span/SoA epoch data path
(DESIGN.md "Epoch data path" / "Correctness tooling"), three at the
concurrency/determinism contracts (DESIGN.md "Thread-safety model &
static analysis"); generic static analysis is clang-tidy's job
(.clang-tidy), this script enforces what no off-the-shelf check can
express:

  std-function-hot-path
      `std::function` type-erases through a heap allocation and an
      indirect call; it must not appear in src/ or bench/ outside the
      explicit allowlist of cold-path registration sites.

  controller-must-decide-into
      Every sim::Controller subclass must implement decide_into() (the
      in-place hot path). Overriding only the legacy vector-returning
      decide() reintroduces a per-epoch allocation -- exactly the
      regression the SoA refactor removed.

  heap-in-hot-path
      Function definitions named *_into (step_into, decide_into,
      reallocate_budget_into, ...) and the runner's run_epoch lambda are
      the per-epoch hot path: no `new`, make_unique/make_shared, or local
      std::vector/std::string declarations inside them. Reused-capacity
      calls (resize/assign on members) are fine and not flagged.

  legacy-decide
      The vector-returning Controller::decide() and ManyCoreSystem::step()
      bridges are retired; exactly one [[deprecated]] shim of each remains
      for out-of-tree callers mid-migration. New in-tree calls must use
      decide_into()/step_into() -- the shims allocate every epoch and the
      compiler only warns, so this rule makes the warning a failure.

  raw-loop-reduction
      A scalar accumulator (`double x = 0;` ... `x += ...`) inside a
      *_into body folds in whatever order the surrounding loop takes.
      Hot-path reductions must fold a materialized column in canonical
      index order (util::ordered_sum) so the summation tree stays
      independent of lane width and thread count (DESIGN.md "Vectorized
      kernels") -- or carry a reasoned allow marker pinning why the fold
      order is already fixed.

  raw-thread
      All worker threads belong to the work-stealing runtime
      (src/task/runtime.hpp): it owns parking, pinning, stealing and the
      deterministic-reduction contract. New code spawning `std::thread`,
      launching through `std::async` or `pthread_create`, or resurrecting
      the retired util::ThreadPool (now a deprecated shim over the
      runtime) forks that ownership and escapes the runtime's counters
      and shutdown drain -- the service layer (src/service/) in
      particular must post sessions onto the runtime, never side-spawn.
      Allowlist: the runtime's own implementation and the shim.
      `std::thread::hardware_concurrency()` and other static member
      accesses never trip this.

  raw-mutex
      All locking goes through the annotated util::Mutex / MutexLock /
      CondVar (src/util/mutex.hpp): they carry the Clang Thread Safety
      Analysis capability the -Wthread-safety CI build checks, and the
      ODRL_CHECKED lock-rank checker that catches lock-order inversions
      at runtime. A raw std::mutex / lock_guard / condition_variable is
      invisible to both. Allowlist: the wrapper's own implementation.

  nondeterminism
      std::random_device, the std::chrono clocks, time()/rand()/srand()
      inject run-to-run variation; every simulated quantity must come
      from the seeded util RNG streams or the golden digests (and the
      bit-identical resume/threads contracts) die. bench/ is allowlisted
      (timing harnesses measure wall time by definition); observational
      timing elsewhere (telemetry decide_s, fleet wall_s) carries a
      reasoned allow marker at the use site.

  unguarded-capability
      In a file that uses the thread-annotation vocabulary (includes
      thread_annotations.hpp or util/mutex.hpp), a `mutable` member is a
      cross-thread mutation point: it must either be a synchronization
      primitive itself (util::Mutex/CondVar, std::atomic), carry an
      ODRL_GUARDED_BY/ODRL_PT_GUARDED_BY annotation, or carry a reasoned
      allow marker saying why it needs no guard. `mutable` without one of
      those is exactly the implicit single-writer convention this layer
      exists to retire.

Suppression: append `// lint: allow(<rule>): <reason>` to the offending
line, or place it on its own line directly above (for statements the
column limit would otherwise wrap). Naked suppressions (no reason) are
themselves findings.

Usage:  python3 tools/lint_odrl.py [--root DIR]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Cold-path sites where std::function is the right tool: factory
# registration (startup-only) and benchmark harness wiring.
STD_FUNCTION_ALLOWLIST = {
    "src/sim/controller_registry.hpp",
    "bench/bench_common.hpp",
}

# The one place allowed to own threads, plus the deprecated compatibility
# shim that forwards onto it.
RAW_THREAD_ALLOWLIST = {
    "src/task/runtime.hpp",
    "src/task/runtime.cpp",
    "src/util/thread_pool.hpp",
}

# The annotated wrapper's own implementation: the only files allowed to
# touch the raw std primitives it wraps.
RAW_MUTEX_ALLOWLIST = {
    "src/util/mutex.hpp",
    "src/util/mutex.cpp",
}

# Wall-clock timing is the product in benchmark harnesses; everywhere
# else a clock/RNG-device use needs a reasoned allow marker.
NONDET_ALLOW_PREFIXES = ("bench/",)

SCAN_DIRS = ("src", "bench", "examples")
HOT_SUFFIX = "_into"

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\((?P<rule>[\w-]+)\)(?P<reason>.*)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets
    and newlines so byte positions still map to line numbers."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j = j + 2 if text[j] == "\\" else j + 1
            j = min(j + 1, n)
            for k in range(i + 1, j - 1):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def suppressed(raw_lines: list[str], line: int, rule: str,
               findings: list[Finding], path: Path) -> bool:
    """True if `line` (or the line directly above it) carries a reasoned
    allow marker for `rule`."""
    for cand in (line, line - 1):
        if cand < 1 or cand > len(raw_lines):
            continue
        m = ALLOW_RE.search(raw_lines[cand - 1])
        if not m or m.group("rule") != rule:
            continue
        if not m.group("reason").strip(" :"):
            findings.append(Finding(path, cand, rule,
                                    "suppression without a reason"))
        return True
    return False


def match_brace_block(text: str, open_brace: int) -> int:
    """Returns the offset just past the brace block opened at open_brace
    (text must already be comment/string-stripped)."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def check_std_function(path: Path, rel: str, text: str,
                       raw_lines: list[str], findings: list[Finding]):
    if rel in STD_FUNCTION_ALLOWLIST:
        return
    for m in re.finditer(r"\bstd::function\b", text):
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "std-function-hot-path", findings,
                      path):
            continue
        findings.append(Finding(
            path, line, "std-function-hot-path",
            "std::function heap-allocates and indirect-calls; use "
            "util::FunctionRef or a template parameter (allowlist: "
            + ", ".join(sorted(STD_FUNCTION_ALLOWLIST)) + ")"))


CONTROLLER_BASE_RE = re.compile(
    r"\bclass\s+(?P<name>\w+)[^;{]*?:\s*(?:public\s+)?"
    r"(?:odrl::)?(?:sim|os)?(?:::)?\s*(?:sim::)?Controller\b[^;{]*\{")


def check_decide_into(path: Path, text: str, raw_lines: list[str],
                      findings: list[Finding]):
    for m in CONTROLLER_BASE_RE.finditer(text):
        name = m.group("name")
        if name == "Controller":
            continue
        body_start = m.end() - 1
        body = text[body_start:match_brace_block(text, body_start)]
        if re.search(r"\bdecide_into\s*\(", body):
            continue
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "controller-must-decide-into",
                      findings, path):
            continue
        findings.append(Finding(
            path, line, "controller-must-decide-into",
            f"{name} derives from sim::Controller but does not implement "
            "decide_into(); the legacy decide() bridge allocates a vector "
            "every epoch"))


HOT_DEF_RE = re.compile(
    r"\b[\w:~]*" + HOT_SUFFIX + r"\s*\([^;{)]*(?:\([^)]*\)[^;{)]*)*\)"
    r"[^;{]*\{")
RUN_EPOCH_RE = re.compile(r"\brun_epoch\s*=\s*\[")

HEAP_PATTERNS = (
    (re.compile(r"(?<!:)\bnew\b(?!\w)"), "raw new"),
    (re.compile(r"\bstd::make_unique\b"), "std::make_unique"),
    (re.compile(r"\bstd::make_shared\b"), "std::make_shared"),
    (re.compile(r"\bstd::vector<[^;]*>\s+\w+\s*[({;=]"),
     "local std::vector"),
    (re.compile(r"\bstd::string\s+\w+\s*[({;=]"), "local std::string"),
)


def hot_regions(text: str):
    """Yields (label, start, end) offsets of hot-path function bodies."""
    for m in HOT_DEF_RE.finditer(text):
        open_brace = text.index("{", m.end() - 1)
        label = m.group(0).split("(")[0].strip().split()[-1]
        yield label, open_brace, match_brace_block(text, open_brace)
    for m in RUN_EPOCH_RE.finditer(text):
        open_brace = text.index("{", m.end())
        yield "run_epoch lambda", open_brace, match_brace_block(
            text, open_brace)


def check_heap_in_hot_path(path: Path, text: str, raw_lines: list[str],
                           findings: list[Finding]):
    for label, start, end in hot_regions(text):
        body = text[start:end]
        for pattern, what in HEAP_PATTERNS:
            for hit in pattern.finditer(body):
                line = line_of(text, start + hit.start())
                if suppressed(raw_lines, line, "heap-in-hot-path",
                              findings, path):
                    continue
                findings.append(Finding(
                    path, line, "heap-in-hot-path",
                    f"{what} inside {label}: the per-epoch hot path must "
                    "not allocate; keep scratch in members and reuse "
                    "capacity"))


# Member calls only: declarations and qualified definitions
# (Controller::decide(...)) carry no `.`/`->` receiver, so the one
# [[deprecated]] shim each in src/sim/controller.hpp / src/sim/system.hpp
# never trips this. decide() is unique to Controller; step() also exists
# on workloads and thermal models, so it is only flagged on system-shaped
# receivers.
LEGACY_DECIDE_RE = re.compile(r"(?:\.|->)\s*decide\s*\(")
LEGACY_STEP_RE = re.compile(r"\b\w*[Ss]ystem\w*\s*(?:\.|->)\s*step\s*\(")


def check_legacy_decide(path: Path, text: str, raw_lines: list[str],
                        findings: list[Finding]):
    hits = [(m, "Controller::decide()") for m in LEGACY_DECIDE_RE.finditer(text)]
    hits += [(m, "ManyCoreSystem::step()")
             for m in LEGACY_STEP_RE.finditer(text)]
    for m, what in hits:
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "legacy-decide", findings, path):
            continue
        findings.append(Finding(
            path, line, "legacy-decide",
            f"call to the retired {what} bridge: it allocates a fresh "
            "vector every epoch; use the *_into() in-place API "
            "(snapshot-capable callers get it for free via "
            "run_closed_loop)"))


# Flags std::thread/std::jthread uses that are not static member accesses
# (hardware_concurrency() is fine everywhere), any ThreadPool mention, and
# the side-door spawners: std::async launches an unmanaged thread per call
# and pthread_create bypasses C++ entirely -- both escape the runtime's
# counters and shutdown drain just as thoroughly as a raw std::thread.
RAW_THREAD_RE = re.compile(r"\bstd::j?thread\b(?!\s*::)")
THREAD_POOL_RE = re.compile(r"\bThreadPool\b")
ASYNC_RE = re.compile(r"\bstd::async\s*[(<]")
PTHREAD_CREATE_RE = re.compile(r"\bpthread_create\s*\(")


def check_raw_thread(path: Path, rel: str, text: str,
                     raw_lines: list[str], findings: list[Finding]):
    if rel in RAW_THREAD_ALLOWLIST:
        return
    hits = [(m, "raw std::thread") for m in RAW_THREAD_RE.finditer(text)]
    hits += [(m, "util::ThreadPool (retired)")
             for m in THREAD_POOL_RE.finditer(text)]
    hits += [(m, "std::async") for m in ASYNC_RE.finditer(text)]
    hits += [(m, "pthread_create") for m in PTHREAD_CREATE_RE.finditer(text)]
    for m, what in sorted(hits, key=lambda h: h[0].start()):
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "raw-thread", findings, path):
            continue
        findings.append(Finding(
            path, line, "raw-thread",
            f"{what}: worker threads belong to the task runtime "
            "(task/runtime.hpp) -- submit work through Runtime or "
            "parallel_for/parallel_reduce instead of spawning threads "
            "(allowlist: " + ", ".join(sorted(RAW_THREAD_ALLOWLIST)) + ")"))


# Raw locking primitives the annotated wrapper supersedes. Catching the
# types (not just the lock sites) also flags member declarations.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")


def check_raw_mutex(path: Path, rel: str, text: str,
                    raw_lines: list[str], findings: list[Finding]):
    if rel in RAW_MUTEX_ALLOWLIST:
        return
    for m in RAW_MUTEX_RE.finditer(text):
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "raw-mutex", findings, path):
            continue
        findings.append(Finding(
            path, line, "raw-mutex",
            f"{m.group(0)}: locking goes through the annotated util::Mutex"
            " / util::MutexLock / util::CondVar (util/mutex.hpp) so the"
            " -Wthread-safety build and the lock-rank checker can see it"
            " (allowlist: " + ", ".join(sorted(RAW_MUTEX_ALLOWLIST)) + ")"))


# Sources of run-to-run variation. The clock *types* are matched (not just
# ::now()) so `using Clock = std::chrono::steady_clock;` is flagged at the
# alias, where the marker documents why the timing is determinism-safe.
# The lookbehind on time( / rand( skips member calls and qualified names
# (sim.time(...), util::rand(...)).
NONDET_PATTERNS = (
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|"
                r"high_resolution_clock)\b"), "a std::chrono clock"),
    (re.compile(r"(?<![\w.:>])time\s*\("), "time()"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\("), "rand()/srand()"),
)


def check_nondeterminism(path: Path, rel: str, text: str,
                         raw_lines: list[str], findings: list[Finding]):
    if rel.startswith(NONDET_ALLOW_PREFIXES):
        return
    for pattern, what in NONDET_PATTERNS:
        for m in pattern.finditer(text):
            line = line_of(text, m.start())
            if suppressed(raw_lines, line, "nondeterminism", findings, path):
                continue
            findings.append(Finding(
                path, line, "nondeterminism",
                f"{what} injects run-to-run variation: simulated behavior "
                "must come from the seeded util RNG streams (golden digests"
                " and resume bit-identity depend on it); observational "
                "timing needs a reasoned allow marker"))


# A mutable member that is itself a synchronization primitive never needs
# a guard annotation; everything else in an annotation-aware file does.
MUTABLE_MEMBER_RE = re.compile(r"^\s*(?:mutable)\s+(?P<decl>[^;{]*);",
                               re.MULTILINE)
SYNC_PRIMITIVE_RE = re.compile(
    r"\b(?:util::)?(?:Mutex|CondVar)\b|\bstd::atomic\b")
GUARD_ANNOTATION_RE = re.compile(r"\bODRL_(?:PT_)?GUARDED_BY\s*\(")
ANNOTATION_AWARE_RE = re.compile(
    r'#\s*include\s+"util/(?:thread_annotations|mutex)\.hpp"')


def check_unguarded_capability(path: Path, raw: str, text: str,
                               raw_lines: list[str],
                               findings: list[Finding]):
    if not ANNOTATION_AWARE_RE.search(raw):
        return
    for m in MUTABLE_MEMBER_RE.finditer(text):
        decl = m.group("decl")
        if SYNC_PRIMITIVE_RE.search(decl):
            continue
        if GUARD_ANNOTATION_RE.search(decl):
            continue
        line = line_of(text, m.start("decl"))
        if suppressed(raw_lines, line, "unguarded-capability", findings,
                      path):
            continue
        findings.append(Finding(
            path, line, "unguarded-capability",
            "mutable member without ODRL_GUARDED_BY in an annotation-aware"
            " file: mutable means cross-thread mutation from const paths;"
            " guard it, or add a reasoned allow marker explaining why it"
            " is confined to one thread"))


REDUCTION_DECL_RE = re.compile(r"\bdouble\s+(?P<name>\w+)\s*=\s*0(?:\.0*)?\s*;")


def check_raw_loop_reduction(path: Path, text: str, raw_lines: list[str],
                             findings: list[Finding]):
    for label, start, end in hot_regions(text):
        body = text[start:end]
        for decl in REDUCTION_DECL_RE.finditer(body):
            name = decl.group("name")
            acc_re = re.compile(r"\b" + re.escape(name) + r"\s*\+=")
            for hit in acc_re.finditer(body):
                line = line_of(text, start + hit.start())
                if suppressed(raw_lines, line, "raw-loop-reduction",
                              findings, path):
                    continue
                findings.append(Finding(
                    path, line, "raw-loop-reduction",
                    f"raw '+=' reduction onto {name} inside {label}: fold "
                    "a materialized column with util::ordered_sum, or add "
                    "a reasoned allow marker pinning the fold order"))


def lint_file(path: Path, root: Path, findings: list[Finding]):
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    text = strip_comments_and_strings(raw)
    rel = path.relative_to(root).as_posix()
    check_std_function(path.relative_to(root), rel, text, raw_lines,
                       findings)
    check_decide_into(path.relative_to(root), text, raw_lines, findings)
    check_legacy_decide(path.relative_to(root), text, raw_lines, findings)
    check_raw_thread(path.relative_to(root), rel, text, raw_lines, findings)
    check_raw_mutex(path.relative_to(root), rel, text, raw_lines, findings)
    check_nondeterminism(path.relative_to(root), rel, text, raw_lines,
                         findings)
    check_unguarded_capability(path.relative_to(root), raw, text, raw_lines,
                               findings)
    if path.suffix == ".cpp" or rel.endswith(".hpp"):
        check_heap_in_hot_path(path.relative_to(root), text, raw_lines,
                               findings)
        check_raw_loop_reduction(path.relative_to(root), text, raw_lines,
                                 findings)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"lint_odrl: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    n_files = 0
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
                n_files += 1
                lint_file(path, root, findings)

    for f in findings:
        print(f)
    print(f"lint_odrl: {n_files} files scanned, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
