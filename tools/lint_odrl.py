#!/usr/bin/env python3
"""Project-specific lint rules for the ODRL hot path.

Six rules, all aimed at the zero-allocation span/SoA epoch data path
(DESIGN.md "Epoch data path" / "Correctness tooling"); generic static
analysis is clang-tidy's job (.clang-tidy), this script enforces what no
off-the-shelf check can express:

  std-function-hot-path
      `std::function` type-erases through a heap allocation and an
      indirect call; it must not appear in src/ or bench/ outside the
      explicit allowlist of cold-path registration sites.

  controller-must-decide-into
      Every sim::Controller subclass must implement decide_into() (the
      in-place hot path). Overriding only the legacy vector-returning
      decide() reintroduces a per-epoch allocation -- exactly the
      regression the SoA refactor removed.

  heap-in-hot-path
      Function definitions named *_into (step_into, decide_into,
      reallocate_budget_into, ...) and the runner's run_epoch lambda are
      the per-epoch hot path: no `new`, make_unique/make_shared, or local
      std::vector/std::string declarations inside them. Reused-capacity
      calls (resize/assign on members) are fine and not flagged.

  legacy-decide
      The vector-returning Controller::decide() and ManyCoreSystem::step()
      bridges are retired; exactly one [[deprecated]] shim of each remains
      for out-of-tree callers mid-migration. New in-tree calls must use
      decide_into()/step_into() -- the shims allocate every epoch and the
      compiler only warns, so this rule makes the warning a failure.

  raw-loop-reduction
      A scalar accumulator (`double x = 0;` ... `x += ...`) inside a
      *_into body folds in whatever order the surrounding loop takes.
      Hot-path reductions must fold a materialized column in canonical
      index order (util::ordered_sum) so the summation tree stays
      independent of lane width and thread count (DESIGN.md "Vectorized
      kernels") -- or carry a reasoned allow marker pinning why the fold
      order is already fixed.

  raw-thread
      All worker threads belong to the work-stealing runtime
      (src/task/runtime.hpp): it owns parking, pinning, stealing and the
      deterministic-reduction contract. New code spawning `std::thread`
      (or resurrecting the retired util::ThreadPool, now a deprecated
      shim over the runtime) forks that ownership and escapes the
      runtime's counters and shutdown drain. Allowlist: the runtime's own
      implementation and the shim. `std::thread::hardware_concurrency()`
      and other static member accesses never trip this.

Suppression: append `// lint: allow(<rule>): <reason>` to the offending
line, or place it on its own line directly above (for statements the
column limit would otherwise wrap). Naked suppressions (no reason) are
themselves findings.

Usage:  python3 tools/lint_odrl.py [--root DIR]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Cold-path sites where std::function is the right tool: factory
# registration (startup-only) and benchmark harness wiring.
STD_FUNCTION_ALLOWLIST = {
    "src/sim/controller_registry.hpp",
    "bench/bench_common.hpp",
}

# The one place allowed to own threads, plus the deprecated compatibility
# shim that forwards onto it.
RAW_THREAD_ALLOWLIST = {
    "src/task/runtime.hpp",
    "src/task/runtime.cpp",
    "src/util/thread_pool.hpp",
}

SCAN_DIRS = ("src", "bench", "examples")
HOT_SUFFIX = "_into"

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\((?P<rule>[\w-]+)\)(?P<reason>.*)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving offsets
    and newlines so byte positions still map to line numbers."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j = j + 2 if text[j] == "\\" else j + 1
            j = min(j + 1, n)
            for k in range(i + 1, j - 1):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        else:
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def suppressed(raw_lines: list[str], line: int, rule: str,
               findings: list[Finding], path: Path) -> bool:
    """True if `line` (or the line directly above it) carries a reasoned
    allow marker for `rule`."""
    for cand in (line, line - 1):
        if cand < 1 or cand > len(raw_lines):
            continue
        m = ALLOW_RE.search(raw_lines[cand - 1])
        if not m or m.group("rule") != rule:
            continue
        if not m.group("reason").strip(" :"):
            findings.append(Finding(path, cand, rule,
                                    "suppression without a reason"))
        return True
    return False


def match_brace_block(text: str, open_brace: int) -> int:
    """Returns the offset just past the brace block opened at open_brace
    (text must already be comment/string-stripped)."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def check_std_function(path: Path, rel: str, text: str,
                       raw_lines: list[str], findings: list[Finding]):
    if rel in STD_FUNCTION_ALLOWLIST:
        return
    for m in re.finditer(r"\bstd::function\b", text):
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "std-function-hot-path", findings,
                      path):
            continue
        findings.append(Finding(
            path, line, "std-function-hot-path",
            "std::function heap-allocates and indirect-calls; use "
            "util::FunctionRef or a template parameter (allowlist: "
            + ", ".join(sorted(STD_FUNCTION_ALLOWLIST)) + ")"))


CONTROLLER_BASE_RE = re.compile(
    r"\bclass\s+(?P<name>\w+)[^;{]*?:\s*(?:public\s+)?"
    r"(?:odrl::)?(?:sim|os)?(?:::)?\s*(?:sim::)?Controller\b[^;{]*\{")


def check_decide_into(path: Path, text: str, raw_lines: list[str],
                      findings: list[Finding]):
    for m in CONTROLLER_BASE_RE.finditer(text):
        name = m.group("name")
        if name == "Controller":
            continue
        body_start = m.end() - 1
        body = text[body_start:match_brace_block(text, body_start)]
        if re.search(r"\bdecide_into\s*\(", body):
            continue
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "controller-must-decide-into",
                      findings, path):
            continue
        findings.append(Finding(
            path, line, "controller-must-decide-into",
            f"{name} derives from sim::Controller but does not implement "
            "decide_into(); the legacy decide() bridge allocates a vector "
            "every epoch"))


HOT_DEF_RE = re.compile(
    r"\b[\w:~]*" + HOT_SUFFIX + r"\s*\([^;{)]*(?:\([^)]*\)[^;{)]*)*\)"
    r"[^;{]*\{")
RUN_EPOCH_RE = re.compile(r"\brun_epoch\s*=\s*\[")

HEAP_PATTERNS = (
    (re.compile(r"(?<!:)\bnew\b(?!\w)"), "raw new"),
    (re.compile(r"\bstd::make_unique\b"), "std::make_unique"),
    (re.compile(r"\bstd::make_shared\b"), "std::make_shared"),
    (re.compile(r"\bstd::vector<[^;]*>\s+\w+\s*[({;=]"),
     "local std::vector"),
    (re.compile(r"\bstd::string\s+\w+\s*[({;=]"), "local std::string"),
)


def hot_regions(text: str):
    """Yields (label, start, end) offsets of hot-path function bodies."""
    for m in HOT_DEF_RE.finditer(text):
        open_brace = text.index("{", m.end() - 1)
        label = m.group(0).split("(")[0].strip().split()[-1]
        yield label, open_brace, match_brace_block(text, open_brace)
    for m in RUN_EPOCH_RE.finditer(text):
        open_brace = text.index("{", m.end())
        yield "run_epoch lambda", open_brace, match_brace_block(
            text, open_brace)


def check_heap_in_hot_path(path: Path, text: str, raw_lines: list[str],
                           findings: list[Finding]):
    for label, start, end in hot_regions(text):
        body = text[start:end]
        for pattern, what in HEAP_PATTERNS:
            for hit in pattern.finditer(body):
                line = line_of(text, start + hit.start())
                if suppressed(raw_lines, line, "heap-in-hot-path",
                              findings, path):
                    continue
                findings.append(Finding(
                    path, line, "heap-in-hot-path",
                    f"{what} inside {label}: the per-epoch hot path must "
                    "not allocate; keep scratch in members and reuse "
                    "capacity"))


# Member calls only: declarations and qualified definitions
# (Controller::decide(...)) carry no `.`/`->` receiver, so the one
# [[deprecated]] shim each in src/sim/controller.hpp / src/sim/system.hpp
# never trips this. decide() is unique to Controller; step() also exists
# on workloads and thermal models, so it is only flagged on system-shaped
# receivers.
LEGACY_DECIDE_RE = re.compile(r"(?:\.|->)\s*decide\s*\(")
LEGACY_STEP_RE = re.compile(r"\b\w*[Ss]ystem\w*\s*(?:\.|->)\s*step\s*\(")


def check_legacy_decide(path: Path, text: str, raw_lines: list[str],
                        findings: list[Finding]):
    hits = [(m, "Controller::decide()") for m in LEGACY_DECIDE_RE.finditer(text)]
    hits += [(m, "ManyCoreSystem::step()")
             for m in LEGACY_STEP_RE.finditer(text)]
    for m, what in hits:
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "legacy-decide", findings, path):
            continue
        findings.append(Finding(
            path, line, "legacy-decide",
            f"call to the retired {what} bridge: it allocates a fresh "
            "vector every epoch; use the *_into() in-place API "
            "(snapshot-capable callers get it for free via "
            "run_closed_loop)"))


# Flags std::thread/std::jthread uses that are not static member accesses
# (hardware_concurrency() is fine everywhere), and any ThreadPool mention.
RAW_THREAD_RE = re.compile(r"\bstd::j?thread\b(?!\s*::)")
THREAD_POOL_RE = re.compile(r"\bThreadPool\b")


def check_raw_thread(path: Path, rel: str, text: str,
                     raw_lines: list[str], findings: list[Finding]):
    if rel in RAW_THREAD_ALLOWLIST:
        return
    hits = [(m, "raw std::thread") for m in RAW_THREAD_RE.finditer(text)]
    hits += [(m, "util::ThreadPool (retired)")
             for m in THREAD_POOL_RE.finditer(text)]
    for m, what in sorted(hits, key=lambda h: h[0].start()):
        line = line_of(text, m.start())
        if suppressed(raw_lines, line, "raw-thread", findings, path):
            continue
        findings.append(Finding(
            path, line, "raw-thread",
            f"{what}: worker threads belong to the task runtime "
            "(task/runtime.hpp) -- submit work through Runtime or "
            "parallel_for/parallel_reduce instead of spawning threads "
            "(allowlist: " + ", ".join(sorted(RAW_THREAD_ALLOWLIST)) + ")"))


REDUCTION_DECL_RE = re.compile(r"\bdouble\s+(?P<name>\w+)\s*=\s*0(?:\.0*)?\s*;")


def check_raw_loop_reduction(path: Path, text: str, raw_lines: list[str],
                             findings: list[Finding]):
    for label, start, end in hot_regions(text):
        body = text[start:end]
        for decl in REDUCTION_DECL_RE.finditer(body):
            name = decl.group("name")
            acc_re = re.compile(r"\b" + re.escape(name) + r"\s*\+=")
            for hit in acc_re.finditer(body):
                line = line_of(text, start + hit.start())
                if suppressed(raw_lines, line, "raw-loop-reduction",
                              findings, path):
                    continue
                findings.append(Finding(
                    path, line, "raw-loop-reduction",
                    f"raw '+=' reduction onto {name} inside {label}: fold "
                    "a materialized column with util::ordered_sum, or add "
                    "a reasoned allow marker pinning the fold order"))


def lint_file(path: Path, root: Path, findings: list[Finding]):
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    text = strip_comments_and_strings(raw)
    rel = path.relative_to(root).as_posix()
    check_std_function(path.relative_to(root), rel, text, raw_lines,
                       findings)
    check_decide_into(path.relative_to(root), text, raw_lines, findings)
    check_legacy_decide(path.relative_to(root), text, raw_lines, findings)
    check_raw_thread(path.relative_to(root), rel, text, raw_lines, findings)
    if path.suffix == ".cpp" or rel.endswith(".hpp"):
        check_heap_in_hot_path(path.relative_to(root), text, raw_lines,
                               findings)
        check_raw_loop_reduction(path.relative_to(root), text, raw_lines,
                                 findings)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"lint_odrl: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    n_files = 0
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
                n_files += 1
                lint_file(path, root, findings)

    for f in findings:
        print(f)
    print(f"lint_odrl: {n_files} files scanned, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
