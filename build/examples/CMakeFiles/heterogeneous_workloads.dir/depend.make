# Empty dependencies file for heterogeneous_workloads.
# This may be replaced when dependencies are built.
