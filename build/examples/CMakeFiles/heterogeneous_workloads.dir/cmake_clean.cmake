file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_workloads.dir/heterogeneous_workloads.cpp.o"
  "CMakeFiles/heterogeneous_workloads.dir/heterogeneous_workloads.cpp.o.d"
  "heterogeneous_workloads"
  "heterogeneous_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
