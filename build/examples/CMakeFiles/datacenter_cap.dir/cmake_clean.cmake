file(REMOVE_RECURSE
  "CMakeFiles/datacenter_cap.dir/datacenter_cap.cpp.o"
  "CMakeFiles/datacenter_cap.dir/datacenter_cap.cpp.o.d"
  "datacenter_cap"
  "datacenter_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
