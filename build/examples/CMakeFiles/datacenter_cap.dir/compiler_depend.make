# Empty compiler generated dependencies file for datacenter_cap.
# This may be replaced when dependencies are built.
