file(REMOVE_RECURSE
  "CMakeFiles/policy_inspection.dir/policy_inspection.cpp.o"
  "CMakeFiles/policy_inspection.dir/policy_inspection.cpp.o.d"
  "policy_inspection"
  "policy_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
