# Empty dependencies file for policy_inspection.
# This may be replaced when dependencies are built.
