# Empty dependencies file for odrl_thermal.
# This may be replaced when dependencies are built.
