file(REMOVE_RECURSE
  "CMakeFiles/odrl_thermal.dir/thermal_model.cpp.o"
  "CMakeFiles/odrl_thermal.dir/thermal_model.cpp.o.d"
  "libodrl_thermal.a"
  "libodrl_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
