file(REMOVE_RECURSE
  "libodrl_thermal.a"
)
