# Empty dependencies file for odrl_sim.
# This may be replaced when dependencies are built.
