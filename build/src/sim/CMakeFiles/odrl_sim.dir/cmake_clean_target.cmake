file(REMOVE_RECURSE
  "libodrl_sim.a"
)
