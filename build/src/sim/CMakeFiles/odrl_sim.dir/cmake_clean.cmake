file(REMOVE_RECURSE
  "CMakeFiles/odrl_sim.dir/runner.cpp.o"
  "CMakeFiles/odrl_sim.dir/runner.cpp.o.d"
  "CMakeFiles/odrl_sim.dir/system.cpp.o"
  "CMakeFiles/odrl_sim.dir/system.cpp.o.d"
  "libodrl_sim.a"
  "libodrl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
