file(REMOVE_RECURSE
  "libodrl_mem.a"
)
