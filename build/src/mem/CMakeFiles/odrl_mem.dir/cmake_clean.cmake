file(REMOVE_RECURSE
  "CMakeFiles/odrl_mem.dir/dram_model.cpp.o"
  "CMakeFiles/odrl_mem.dir/dram_model.cpp.o.d"
  "libodrl_mem.a"
  "libodrl_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
