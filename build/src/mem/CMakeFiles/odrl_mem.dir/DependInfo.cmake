
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram_model.cpp" "src/mem/CMakeFiles/odrl_mem.dir/dram_model.cpp.o" "gcc" "src/mem/CMakeFiles/odrl_mem.dir/dram_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/odrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/odrl_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/odrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/odrl_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
