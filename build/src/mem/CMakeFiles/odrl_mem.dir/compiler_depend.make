# Empty compiler generated dependencies file for odrl_mem.
# This may be replaced when dependencies are built.
