file(REMOVE_RECURSE
  "CMakeFiles/odrl_power.dir/energy.cpp.o"
  "CMakeFiles/odrl_power.dir/energy.cpp.o.d"
  "CMakeFiles/odrl_power.dir/power_model.cpp.o"
  "CMakeFiles/odrl_power.dir/power_model.cpp.o.d"
  "libodrl_power.a"
  "libodrl_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
