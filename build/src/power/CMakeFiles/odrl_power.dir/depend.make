# Empty dependencies file for odrl_power.
# This may be replaced when dependencies are built.
