file(REMOVE_RECURSE
  "libodrl_power.a"
)
