# Empty dependencies file for odrl_core.
# This may be replaced when dependencies are built.
