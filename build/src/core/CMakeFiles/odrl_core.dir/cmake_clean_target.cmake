file(REMOVE_RECURSE
  "libodrl_core.a"
)
