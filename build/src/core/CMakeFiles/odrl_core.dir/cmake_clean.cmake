file(REMOVE_RECURSE
  "CMakeFiles/odrl_core.dir/budget_realloc.cpp.o"
  "CMakeFiles/odrl_core.dir/budget_realloc.cpp.o.d"
  "CMakeFiles/odrl_core.dir/odrl_controller.cpp.o"
  "CMakeFiles/odrl_core.dir/odrl_controller.cpp.o.d"
  "CMakeFiles/odrl_core.dir/vfi_adapter.cpp.o"
  "CMakeFiles/odrl_core.dir/vfi_adapter.cpp.o.d"
  "libodrl_core.a"
  "libodrl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
