file(REMOVE_RECURSE
  "CMakeFiles/odrl_util.dir/cli.cpp.o"
  "CMakeFiles/odrl_util.dir/cli.cpp.o.d"
  "CMakeFiles/odrl_util.dir/csv.cpp.o"
  "CMakeFiles/odrl_util.dir/csv.cpp.o.d"
  "CMakeFiles/odrl_util.dir/log.cpp.o"
  "CMakeFiles/odrl_util.dir/log.cpp.o.d"
  "CMakeFiles/odrl_util.dir/rng.cpp.o"
  "CMakeFiles/odrl_util.dir/rng.cpp.o.d"
  "CMakeFiles/odrl_util.dir/stats.cpp.o"
  "CMakeFiles/odrl_util.dir/stats.cpp.o.d"
  "CMakeFiles/odrl_util.dir/table.cpp.o"
  "CMakeFiles/odrl_util.dir/table.cpp.o.d"
  "CMakeFiles/odrl_util.dir/thread_pool.cpp.o"
  "CMakeFiles/odrl_util.dir/thread_pool.cpp.o.d"
  "libodrl_util.a"
  "libodrl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
