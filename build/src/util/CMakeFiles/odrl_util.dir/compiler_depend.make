# Empty compiler generated dependencies file for odrl_util.
# This may be replaced when dependencies are built.
