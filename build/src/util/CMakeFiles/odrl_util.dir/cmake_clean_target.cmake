file(REMOVE_RECURSE
  "libodrl_util.a"
)
