file(REMOVE_RECURSE
  "CMakeFiles/odrl_baselines.dir/greedy_controller.cpp.o"
  "CMakeFiles/odrl_baselines.dir/greedy_controller.cpp.o.d"
  "CMakeFiles/odrl_baselines.dir/maxbips_controller.cpp.o"
  "CMakeFiles/odrl_baselines.dir/maxbips_controller.cpp.o.d"
  "CMakeFiles/odrl_baselines.dir/pid_controller.cpp.o"
  "CMakeFiles/odrl_baselines.dir/pid_controller.cpp.o.d"
  "CMakeFiles/odrl_baselines.dir/predictor.cpp.o"
  "CMakeFiles/odrl_baselines.dir/predictor.cpp.o.d"
  "CMakeFiles/odrl_baselines.dir/static_uniform.cpp.o"
  "CMakeFiles/odrl_baselines.dir/static_uniform.cpp.o.d"
  "libodrl_baselines.a"
  "libodrl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
