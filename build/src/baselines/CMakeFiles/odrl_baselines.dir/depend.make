# Empty dependencies file for odrl_baselines.
# This may be replaced when dependencies are built.
