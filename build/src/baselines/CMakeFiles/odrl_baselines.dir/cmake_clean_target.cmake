file(REMOVE_RECURSE
  "libodrl_baselines.a"
)
