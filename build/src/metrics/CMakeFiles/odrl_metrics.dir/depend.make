# Empty dependencies file for odrl_metrics.
# This may be replaced when dependencies are built.
