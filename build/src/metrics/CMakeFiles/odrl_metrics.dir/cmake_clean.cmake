file(REMOVE_RECURSE
  "CMakeFiles/odrl_metrics.dir/metrics.cpp.o"
  "CMakeFiles/odrl_metrics.dir/metrics.cpp.o.d"
  "libodrl_metrics.a"
  "libodrl_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
