file(REMOVE_RECURSE
  "libodrl_metrics.a"
)
