# Empty dependencies file for odrl_arch.
# This may be replaced when dependencies are built.
