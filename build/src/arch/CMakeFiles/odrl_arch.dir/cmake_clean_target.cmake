file(REMOVE_RECURSE
  "libodrl_arch.a"
)
