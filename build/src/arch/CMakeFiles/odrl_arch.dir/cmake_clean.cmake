file(REMOVE_RECURSE
  "CMakeFiles/odrl_arch.dir/chip_config.cpp.o"
  "CMakeFiles/odrl_arch.dir/chip_config.cpp.o.d"
  "CMakeFiles/odrl_arch.dir/hetero.cpp.o"
  "CMakeFiles/odrl_arch.dir/hetero.cpp.o.d"
  "CMakeFiles/odrl_arch.dir/mesh.cpp.o"
  "CMakeFiles/odrl_arch.dir/mesh.cpp.o.d"
  "CMakeFiles/odrl_arch.dir/variation.cpp.o"
  "CMakeFiles/odrl_arch.dir/variation.cpp.o.d"
  "CMakeFiles/odrl_arch.dir/vf_table.cpp.o"
  "CMakeFiles/odrl_arch.dir/vf_table.cpp.o.d"
  "CMakeFiles/odrl_arch.dir/vfi.cpp.o"
  "CMakeFiles/odrl_arch.dir/vfi.cpp.o.d"
  "libodrl_arch.a"
  "libodrl_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
