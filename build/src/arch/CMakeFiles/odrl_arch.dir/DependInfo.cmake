
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/chip_config.cpp" "src/arch/CMakeFiles/odrl_arch.dir/chip_config.cpp.o" "gcc" "src/arch/CMakeFiles/odrl_arch.dir/chip_config.cpp.o.d"
  "/root/repo/src/arch/hetero.cpp" "src/arch/CMakeFiles/odrl_arch.dir/hetero.cpp.o" "gcc" "src/arch/CMakeFiles/odrl_arch.dir/hetero.cpp.o.d"
  "/root/repo/src/arch/mesh.cpp" "src/arch/CMakeFiles/odrl_arch.dir/mesh.cpp.o" "gcc" "src/arch/CMakeFiles/odrl_arch.dir/mesh.cpp.o.d"
  "/root/repo/src/arch/variation.cpp" "src/arch/CMakeFiles/odrl_arch.dir/variation.cpp.o" "gcc" "src/arch/CMakeFiles/odrl_arch.dir/variation.cpp.o.d"
  "/root/repo/src/arch/vf_table.cpp" "src/arch/CMakeFiles/odrl_arch.dir/vf_table.cpp.o" "gcc" "src/arch/CMakeFiles/odrl_arch.dir/vf_table.cpp.o.d"
  "/root/repo/src/arch/vfi.cpp" "src/arch/CMakeFiles/odrl_arch.dir/vfi.cpp.o" "gcc" "src/arch/CMakeFiles/odrl_arch.dir/vfi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/odrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
