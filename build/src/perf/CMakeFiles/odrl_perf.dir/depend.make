# Empty dependencies file for odrl_perf.
# This may be replaced when dependencies are built.
