file(REMOVE_RECURSE
  "CMakeFiles/odrl_perf.dir/perf_model.cpp.o"
  "CMakeFiles/odrl_perf.dir/perf_model.cpp.o.d"
  "libodrl_perf.a"
  "libodrl_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
