file(REMOVE_RECURSE
  "libodrl_perf.a"
)
