file(REMOVE_RECURSE
  "CMakeFiles/odrl_workload.dir/benchmarks.cpp.o"
  "CMakeFiles/odrl_workload.dir/benchmarks.cpp.o.d"
  "CMakeFiles/odrl_workload.dir/phase.cpp.o"
  "CMakeFiles/odrl_workload.dir/phase.cpp.o.d"
  "CMakeFiles/odrl_workload.dir/phase_machine.cpp.o"
  "CMakeFiles/odrl_workload.dir/phase_machine.cpp.o.d"
  "CMakeFiles/odrl_workload.dir/trace_io.cpp.o"
  "CMakeFiles/odrl_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/odrl_workload.dir/workload.cpp.o"
  "CMakeFiles/odrl_workload.dir/workload.cpp.o.d"
  "libodrl_workload.a"
  "libodrl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
