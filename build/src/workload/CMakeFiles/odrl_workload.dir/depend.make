# Empty dependencies file for odrl_workload.
# This may be replaced when dependencies are built.
