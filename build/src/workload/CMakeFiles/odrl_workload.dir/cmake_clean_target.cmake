file(REMOVE_RECURSE
  "libodrl_workload.a"
)
