
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmarks.cpp" "src/workload/CMakeFiles/odrl_workload.dir/benchmarks.cpp.o" "gcc" "src/workload/CMakeFiles/odrl_workload.dir/benchmarks.cpp.o.d"
  "/root/repo/src/workload/phase.cpp" "src/workload/CMakeFiles/odrl_workload.dir/phase.cpp.o" "gcc" "src/workload/CMakeFiles/odrl_workload.dir/phase.cpp.o.d"
  "/root/repo/src/workload/phase_machine.cpp" "src/workload/CMakeFiles/odrl_workload.dir/phase_machine.cpp.o" "gcc" "src/workload/CMakeFiles/odrl_workload.dir/phase_machine.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/odrl_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/odrl_workload.dir/trace_io.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/odrl_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/odrl_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/odrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/odrl_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
