# Empty compiler generated dependencies file for odrl_rl.
# This may be replaced when dependencies are built.
