file(REMOVE_RECURSE
  "CMakeFiles/odrl_rl.dir/agent.cpp.o"
  "CMakeFiles/odrl_rl.dir/agent.cpp.o.d"
  "CMakeFiles/odrl_rl.dir/discretizer.cpp.o"
  "CMakeFiles/odrl_rl.dir/discretizer.cpp.o.d"
  "CMakeFiles/odrl_rl.dir/qtable.cpp.o"
  "CMakeFiles/odrl_rl.dir/qtable.cpp.o.d"
  "CMakeFiles/odrl_rl.dir/qtable_io.cpp.o"
  "CMakeFiles/odrl_rl.dir/qtable_io.cpp.o.d"
  "CMakeFiles/odrl_rl.dir/schedule.cpp.o"
  "CMakeFiles/odrl_rl.dir/schedule.cpp.o.d"
  "libodrl_rl.a"
  "libodrl_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
