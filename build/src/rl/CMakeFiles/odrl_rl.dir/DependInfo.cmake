
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/agent.cpp" "src/rl/CMakeFiles/odrl_rl.dir/agent.cpp.o" "gcc" "src/rl/CMakeFiles/odrl_rl.dir/agent.cpp.o.d"
  "/root/repo/src/rl/discretizer.cpp" "src/rl/CMakeFiles/odrl_rl.dir/discretizer.cpp.o" "gcc" "src/rl/CMakeFiles/odrl_rl.dir/discretizer.cpp.o.d"
  "/root/repo/src/rl/qtable.cpp" "src/rl/CMakeFiles/odrl_rl.dir/qtable.cpp.o" "gcc" "src/rl/CMakeFiles/odrl_rl.dir/qtable.cpp.o.d"
  "/root/repo/src/rl/qtable_io.cpp" "src/rl/CMakeFiles/odrl_rl.dir/qtable_io.cpp.o" "gcc" "src/rl/CMakeFiles/odrl_rl.dir/qtable_io.cpp.o.d"
  "/root/repo/src/rl/schedule.cpp" "src/rl/CMakeFiles/odrl_rl.dir/schedule.cpp.o" "gcc" "src/rl/CMakeFiles/odrl_rl.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/odrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
