file(REMOVE_RECURSE
  "libodrl_rl.a"
)
