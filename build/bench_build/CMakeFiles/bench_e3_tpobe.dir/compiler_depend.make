# Empty compiler generated dependencies file for bench_e3_tpobe.
# This may be replaced when dependencies are built.
