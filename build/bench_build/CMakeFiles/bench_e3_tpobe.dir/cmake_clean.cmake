file(REMOVE_RECURSE
  "../bench/bench_e3_tpobe"
  "../bench/bench_e3_tpobe.pdb"
  "CMakeFiles/bench_e3_tpobe.dir/bench_e3_tpobe.cpp.o"
  "CMakeFiles/bench_e3_tpobe.dir/bench_e3_tpobe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_tpobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
