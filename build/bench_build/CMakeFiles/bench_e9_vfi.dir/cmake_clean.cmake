file(REMOVE_RECURSE
  "../bench/bench_e9_vfi"
  "../bench/bench_e9_vfi.pdb"
  "CMakeFiles/bench_e9_vfi.dir/bench_e9_vfi.cpp.o"
  "CMakeFiles/bench_e9_vfi.dir/bench_e9_vfi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_vfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
