# Empty compiler generated dependencies file for bench_e9_vfi.
# This may be replaced when dependencies are built.
