file(REMOVE_RECURSE
  "../bench/bench_e11_bandwidth"
  "../bench/bench_e11_bandwidth.pdb"
  "CMakeFiles/bench_e11_bandwidth.dir/bench_e11_bandwidth.cpp.o"
  "CMakeFiles/bench_e11_bandwidth.dir/bench_e11_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
