file(REMOVE_RECURSE
  "../bench/bench_e6_convergence"
  "../bench/bench_e6_convergence.pdb"
  "CMakeFiles/bench_e6_convergence.dir/bench_e6_convergence.cpp.o"
  "CMakeFiles/bench_e6_convergence.dir/bench_e6_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
