# Empty dependencies file for bench_e6_convergence.
# This may be replaced when dependencies are built.
