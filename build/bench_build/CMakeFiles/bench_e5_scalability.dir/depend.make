# Empty dependencies file for bench_e5_scalability.
# This may be replaced when dependencies are built.
