# Empty compiler generated dependencies file for bench_e1_power_trace.
# This may be replaced when dependencies are built.
