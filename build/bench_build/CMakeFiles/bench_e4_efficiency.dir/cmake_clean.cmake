file(REMOVE_RECURSE
  "../bench/bench_e4_efficiency"
  "../bench/bench_e4_efficiency.pdb"
  "CMakeFiles/bench_e4_efficiency.dir/bench_e4_efficiency.cpp.o"
  "CMakeFiles/bench_e4_efficiency.dir/bench_e4_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
