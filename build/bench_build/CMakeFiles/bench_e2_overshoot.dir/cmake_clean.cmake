file(REMOVE_RECURSE
  "../bench/bench_e2_overshoot"
  "../bench/bench_e2_overshoot.pdb"
  "CMakeFiles/bench_e2_overshoot.dir/bench_e2_overshoot.cpp.o"
  "CMakeFiles/bench_e2_overshoot.dir/bench_e2_overshoot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_overshoot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
