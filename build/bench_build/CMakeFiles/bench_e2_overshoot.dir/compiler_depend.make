# Empty compiler generated dependencies file for bench_e2_overshoot.
# This may be replaced when dependencies are built.
