file(REMOVE_RECURSE
  "../bench/bench_e8_variation"
  "../bench/bench_e8_variation.pdb"
  "CMakeFiles/bench_e8_variation.dir/bench_e8_variation.cpp.o"
  "CMakeFiles/bench_e8_variation.dir/bench_e8_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
