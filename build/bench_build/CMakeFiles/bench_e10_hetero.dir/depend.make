# Empty dependencies file for bench_e10_hetero.
# This may be replaced when dependencies are built.
