file(REMOVE_RECURSE
  "../bench/bench_e10_hetero"
  "../bench/bench_e10_hetero.pdb"
  "CMakeFiles/bench_e10_hetero.dir/bench_e10_hetero.cpp.o"
  "CMakeFiles/bench_e10_hetero.dir/bench_e10_hetero.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
