# Empty dependencies file for odrl_test.
# This may be replaced when dependencies are built.
