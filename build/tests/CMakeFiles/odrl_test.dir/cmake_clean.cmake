file(REMOVE_RECURSE
  "CMakeFiles/odrl_test.dir/odrl_test.cpp.o"
  "CMakeFiles/odrl_test.dir/odrl_test.cpp.o.d"
  "odrl_test"
  "odrl_test.pdb"
  "odrl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
