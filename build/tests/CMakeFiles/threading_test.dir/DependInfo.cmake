
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/threading_test.cpp" "tests/CMakeFiles/threading_test.dir/threading_test.cpp.o" "gcc" "tests/CMakeFiles/threading_test.dir/threading_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/odrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/odrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/odrl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/odrl_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/odrl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odrl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/odrl_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/odrl_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/odrl_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/odrl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/odrl_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
