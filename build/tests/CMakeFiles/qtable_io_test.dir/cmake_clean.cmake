file(REMOVE_RECURSE
  "CMakeFiles/qtable_io_test.dir/qtable_io_test.cpp.o"
  "CMakeFiles/qtable_io_test.dir/qtable_io_test.cpp.o.d"
  "qtable_io_test"
  "qtable_io_test.pdb"
  "qtable_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtable_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
