# Empty dependencies file for qtable_io_test.
# This may be replaced when dependencies are built.
