# Empty dependencies file for realloc_test.
# This may be replaced when dependencies are built.
