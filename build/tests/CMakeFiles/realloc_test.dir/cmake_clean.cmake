file(REMOVE_RECURSE
  "CMakeFiles/realloc_test.dir/realloc_test.cpp.o"
  "CMakeFiles/realloc_test.dir/realloc_test.cpp.o.d"
  "realloc_test"
  "realloc_test.pdb"
  "realloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
