file(REMOVE_RECURSE
  "CMakeFiles/vfi_test.dir/vfi_test.cpp.o"
  "CMakeFiles/vfi_test.dir/vfi_test.cpp.o.d"
  "vfi_test"
  "vfi_test.pdb"
  "vfi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
