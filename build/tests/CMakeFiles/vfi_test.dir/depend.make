# Empty dependencies file for vfi_test.
# This may be replaced when dependencies are built.
