# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/realloc_test[1]_include.cmake")
include("/root/repo/build/tests/odrl_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/variation_test[1]_include.cmake")
include("/root/repo/build/tests/vfi_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/hetero_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/qtable_io_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/threading_test[1]_include.cmake")
