// Non-owning, non-allocating callable reference (a trimmed-down
// std::function_ref from C++26). Two words: an opaque object pointer and a
// trampoline. Unlike std::function it never heap-allocates, which keeps
// per-epoch hot paths (task::Runtime jobs, the DRAM fixed-point closure)
// allocation-free regardless of capture size.
//
// Lifetime rule: FunctionRef does not extend the referenced callable's
// lifetime. It is safe to bind a temporary lambda at a call site that
// invokes it synchronously (the temporary lives until the end of the full
// expression), but never store a FunctionRef beyond the callable's scope.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace odrl::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& callable)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace odrl::util
