// Fixed-width SIMD abstraction for the epoch hot-path kernels.
//
// The four vectorized kernels (batch power, thermal Euler substep, the
// OD-RL TD/reward pass, budget reallocation) are written against `vdouble`,
// a fixed-lane pack of doubles. With ODRL_SIMD=ON (the default) and a GCC
// toolchain, vdouble is std::experimental::native_simd<double>; everywhere
// else (ODRL_SIMD=OFF, or a compiler without a working <experimental/simd>)
// it degrades to a one-lane struct with identical semantics, so the kernel
// code compiles -- and produces bit-identical results -- in every
// configuration.
//
// Determinism contract (DESIGN.md "Vectorized kernels"): kernels may only
// vectorize *elementwise* IEEE-754 arithmetic (+, -, *, /, min, max,
// select), which is bit-identical per lane to the scalar operation
// sequence. Transcendentals (std::exp) stay scalar per element, and every
// reduction is a vectorized map into a column followed by a scalar fold in
// canonical index order (ordered_sum) -- never a lane-order or thread-order
// dependent tree. That is what keeps the golden digests and the
// threading/SIMD bit-identity tests byte-stable across lane widths, thread
// counts and ODRL_SIMD ON/OFF.
//
// Alignment: all loads/stores are element_aligned (valid at any address),
// so kernels read the SoA columns in place with no overalignment demands;
// kernel-owned scratch may additionally use kSimdAlign for cache-line
// friendliness, but correctness never depends on it.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>

#if defined(ODRL_SIMD_ENABLED) && defined(__GNUC__) && !defined(__clang__) && \
    __has_include(<experimental/simd>)
#define ODRL_SIMD_NATIVE 1
#include <experimental/simd>
#endif

namespace odrl::util {

/// Preferred alignment for kernel-owned scratch columns (a cache line;
/// generous for any vector ISA in play). Purely a performance hint.
inline constexpr std::size_t kSimdAlign = 64;

/// Test hook: force every dual-variant kernel down its scalar path at
/// runtime, so one binary can compare the scalar and vectorized kernels
/// bit for bit (tests/simd_kernel_test.cpp). Not thread-safe against
/// concurrent kernel launches -- flip it only between epochs/tests.
void set_simd_force_scalar(bool force) noexcept;
bool simd_force_scalar() noexcept;

/// True when the library was compiled with the native SIMD path.
bool simd_compiled() noexcept;

/// Dispatch predicate used by every dual-variant kernel: take the
/// vectorized path only when it was compiled in and tests have not forced
/// the scalar one.
bool simd_active() noexcept;

/// Canonical deterministic reduction: a sequential fold in index order,
/// starting from 0.0. Every vectorized kernel that needs a sum materializes
/// its terms into a column and folds with this -- the summation tree is a
/// pure function of the element count, independent of lanes and threads.
inline double ordered_sum(std::span<const double> values) noexcept {
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum;
}

#ifdef ODRL_SIMD_NATIVE

namespace stdx = std::experimental;

using vdouble = stdx::native_simd<double>;
using vmask = vdouble::mask_type;
inline constexpr std::size_t kSimdLanes = vdouble::size();

inline vdouble vload(const double* p) {
  return vdouble(p, stdx::element_aligned);
}
inline void vstore(double* p, const vdouble& v) {
  v.copy_to(p, stdx::element_aligned);
}
inline vdouble vmin(const vdouble& a, const vdouble& b) {
  return stdx::min(a, b);
}
inline vdouble vmax(const vdouble& a, const vdouble& b) {
  return stdx::max(a, b);
}
/// Elementwise `mask ? a : b`.
inline vdouble vselect(const vmask& mask, const vdouble& a, const vdouble& b) {
  vdouble r = b;
  stdx::where(mask, r) = a;
  return r;
}
/// Horizontal min/max -- order-independent, used only for range *checks*
/// (never for results the determinism contract covers).
inline double vreduce_min(const vdouble& v) { return stdx::hmin(v); }
inline double vreduce_max(const vdouble& v) { return stdx::hmax(v); }

/// Elementwise std::clamp(v, 0.0, 1.0), bitwise identical to the scalar
/// call for every input -- including NaN (which propagates, where hardware
/// min/max would swallow it) and signed zero.
inline vdouble vclamp01(const vdouble& v) {
  const vdouble zero(0.0);
  const vdouble one(1.0);
  return vselect(zero > v, zero, vselect(v > one, one, v));
}

#else  // scalar fallback: one lane, same interface

/// One-lane stand-in for native_simd<double>: the kernels compile (and run
/// the exact scalar operation sequence) when the native path is absent.
struct vdouble {
  double lane = 0.0;

  vdouble() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  explicit(false) vdouble(double x) : lane(x) {}
  /// Generator constructor, mirroring std::experimental::simd: g is called
  /// with integral_constant<size_t, k> for each lane.
  template <typename G,
            typename = std::enable_if_t<std::is_invocable_v<
                G&, std::integral_constant<std::size_t, 0>>>>
  explicit vdouble(G&& g)
      : lane(std::forward<G>(g)(std::integral_constant<std::size_t, 0>{})) {}

  static constexpr std::size_t size() { return 1; }
  double operator[](std::size_t) const { return lane; }

  friend vdouble operator+(vdouble a, vdouble b) { return {a.lane + b.lane}; }
  friend vdouble operator-(vdouble a, vdouble b) { return {a.lane - b.lane}; }
  friend vdouble operator*(vdouble a, vdouble b) { return {a.lane * b.lane}; }
  friend vdouble operator/(vdouble a, vdouble b) { return {a.lane / b.lane}; }
};

struct vmask {
  bool lane = false;
  friend vmask operator&&(vmask a, vmask b) {
    return {a.lane && b.lane};
  }
};

inline vmask operator>(vdouble a, vdouble b) { return {a.lane > b.lane}; }

inline constexpr std::size_t kSimdLanes = 1;

inline vdouble vload(const double* p) { return vdouble{*p}; }
inline void vstore(double* p, const vdouble& v) { *p = v.lane; }
inline vdouble vmin(vdouble a, vdouble b) {
  return {b.lane < a.lane ? b.lane : a.lane};
}
inline vdouble vmax(vdouble a, vdouble b) {
  return {a.lane < b.lane ? b.lane : a.lane};
}
inline vdouble vselect(vmask mask, vdouble a, vdouble b) {
  return {mask.lane ? a.lane : b.lane};
}
inline double vreduce_min(vdouble v) { return v.lane; }
inline double vreduce_max(vdouble v) { return v.lane; }

inline vdouble vclamp01(vdouble v) {
  const vdouble zero(0.0);
  const vdouble one(1.0);
  return vselect(zero > v, zero, vselect(v > one, one, v));
}

#endif  // ODRL_SIMD_NATIVE

}  // namespace odrl::util
