// Minimal CSV emission: experiments dump per-epoch traces for offline
// plotting. Handles quoting of separators/quotes/newlines per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace odrl::util {

/// Escapes a single CSV field (quotes it if it contains , " or newline).
std::string csv_escape(std::string_view field);

/// Streams rows of already-stringified cells.
class CsvWriter {
 public:
  /// The writer borrows the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: label + doubles, formatted with max precision round-trip.
  void write_row(std::string_view label, const std::vector<double>& values);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace odrl::util
