#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace odrl::util {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header)), aligns_(header_.size(), Align::kRight) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
  aligns_[0] = Align::kLeft;  // first column is conventionally a label
}

std::string Table::fmt(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string Table::sci(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(digits);
  os << value;
  return os.str();
}

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw std::out_of_range("Table::set_align: column out of range");
  }
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than columns");
  }
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const auto pad = widths[c] - row[c].size();
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (aligns_[c] == Align::kLeft && c + 1 != row.size()) {
        os << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  emit_row(os, header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace odrl::util
