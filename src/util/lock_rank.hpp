// Debug lock-rank checker: runtime deadlock detection the static analysis
// and TSan cannot provide.
//
// Clang Thread Safety Analysis proves that guarded data is touched under
// its lock, and TSan observes the lock orders a particular run *happened*
// to take -- neither rejects a lock-order inversion that did not deadlock
// this time. The rank checker does: every util::Mutex carries a LockRank,
// each thread keeps a fixed-size stack of the locks it holds, and any
// acquisition whose rank is not strictly greater than the deepest held
// rank aborts immediately with both acquisition sites -- the inversion is
// caught on its first occurrence, on any interleaving, in any test.
//
// The checker is compiled into util::Mutex's out-of-line lock()/unlock()
// under ODRL_CHECKED (the contract-layer switch; ON in Debug and in the
// sanitizer CI jobs), so its cost -- two thread-local array operations per
// acquisition -- is paid only where the contracts already are. Release
// builds pay nothing and lock_rank_enabled() reports which world the
// *library* was built in (the caller's own ODRL_CHECKED state may
// differ, exactly like util::checks_enabled()).
//
// Rank table (acquire strictly upward; see DESIGN.md "Thread-safety model
// & static analysis" for the capability map):
//
//   kRegistry       10  ControllerRegistry::mutex_ (factory map)
//   kRecorder       20  telemetry::Recorder::mutex_ (sink list, instruments)
//   kSink           30  telemetry sink internals (Memory/Csv/Jsonl)
//   kServiceTable   32  service::Server session table (id -> session)
//   kServiceSession 34  one service session's state (controller, watchdog)
//   kServiceQueue   36  service transport queues (inbox / reply FIFOs;
//                       a thread holds at most one queue lock at a time)
//   kRing           40  task::Runtime::TaskRing::mutex_ (deques + channels;
//                       a thread holds at most one ring lock at a time)
//   kGroup          50  task::Runtime::Group::mutex_ (first-exception slot)
//   kScheduler      60  task::Runtime::sched_mutex_ (park/wake epoch barrier)
//   kLeaf          100  standalone flags (SIMD force-scalar hook, default)
//
// The three service ranks sit below kRing because request handlers and
// transport pumps submit tasks to the runtime (ring + scheduler locks)
// while a service lock is held; they sit above kRecorder/kRegistry so
// holding one across a recorder export or a registry make() would abort
// -- the server builds controllers and exports counters with no service
// lock held, by construction (see src/service/server.cpp).
//
// Two locks of the SAME rank never nest either (the relation is strict):
// per-ring mutexes share kRing precisely because the runtime's discipline
// is "release the current ring before touching another".
#pragma once

#include <cstdint>

namespace odrl::util {

/// Acquisition order: a thread may only lock a mutex whose rank is
/// STRICTLY greater than the highest rank it currently holds.
enum class LockRank : std::uint32_t {
  kRegistry = 10,
  kRecorder = 20,
  kSink = 30,
  kServiceTable = 32,
  kServiceSession = 34,
  kServiceQueue = 36,
  kRing = 40,
  kGroup = 50,
  kScheduler = 60,
  kLeaf = 100,
};

/// True when the library was built with ODRL_CHECKED, i.e. the rank
/// checker is live inside util::Mutex. Tests branch on this the same way
/// they branch on util::checks_enabled().
bool lock_rank_enabled() noexcept;

namespace lock_rank {

/// Deepest nesting the fixed-size per-thread stack supports. The runtime
/// never exceeds depth 2; blowing this bound aborts with a message (it
/// means a locking architecture change, not a bigger buffer).
inline constexpr std::uint32_t kMaxHeldLocks = 16;

/// Registers an acquisition by the calling thread; aborts with both lock
/// sites on a rank inversion. `site` is the caller's "file:line".
void note_acquire(const void* mutex, LockRank rank, const char* name,
                  const char* file, int line);

/// Unregisters a release (locks release in any order; the stack entry is
/// removed wherever it sits).
void note_release(const void* mutex) noexcept;

}  // namespace lock_rank
}  // namespace odrl::util
