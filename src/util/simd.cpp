#include "util/simd.hpp"

#include <atomic>

namespace odrl::util {

namespace {
/// Relaxed is enough: the flag is a test hook flipped between (not during)
/// kernel launches; kernels read it once at dispatch.
std::atomic<bool>& force_scalar_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace

void set_simd_force_scalar(bool force) noexcept {
  force_scalar_flag().store(force, std::memory_order_relaxed);
}

bool simd_force_scalar() noexcept {
  return force_scalar_flag().load(std::memory_order_relaxed);
}

bool simd_compiled() noexcept {
#ifdef ODRL_SIMD_NATIVE
  return true;
#else
  return false;
#endif
}

bool simd_active() noexcept { return simd_compiled() && !simd_force_scalar(); }

}  // namespace odrl::util
