#include "util/simd.hpp"

#include <atomic>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::util {

namespace {
/// The canonical flag is Mutex-guarded (machine-checked under
/// -Wthread-safety; the lock serializes concurrent setters), with a
/// release/acquire atomic mirror so the kernel-dispatch read stays a
/// single lock-free load -- the hot paths consult it once per kernel
/// launch and must not pay a lock there. Both are constant-initialized
/// (constexpr Mutex ctor), so the hook is safe before main.
constinit Mutex g_force_scalar_mutex{LockRank::kLeaf, "simd-force-scalar"};
constinit bool g_force_scalar ODRL_GUARDED_BY(g_force_scalar_mutex) = false;
constinit std::atomic<bool> g_force_scalar_mirror{false};
}  // namespace

void set_simd_force_scalar(bool force) noexcept {
  MutexLock lock(g_force_scalar_mutex);
  g_force_scalar = force;
  g_force_scalar_mirror.store(force, std::memory_order_release);
}

bool simd_force_scalar() noexcept {
  return g_force_scalar_mirror.load(std::memory_order_acquire);
}

bool simd_compiled() noexcept {
#ifdef ODRL_SIMD_NATIVE
  return true;
#else
  return false;
#endif
}

bool simd_active() noexcept { return simd_compiled() && !simd_force_scalar(); }

}  // namespace odrl::util
