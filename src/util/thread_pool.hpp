// Deterministic fork-join thread pool for the per-core hot loops.
//
// The design constraint is *bit-identical results regardless of thread
// count*: every parallel_for/parallel_reduce partitions [0, n) into chunks
// whose boundaries depend only on (n, grain) -- never on how many workers
// exist or which worker claims which chunk. Reductions store one partial
// per chunk and fold the partials serially in chunk order, so the
// floating-point summation tree is fixed. An 8-thread run therefore
// reproduces a 1-thread run to the last bit (see tests/threading_test.cpp
// and DESIGN.md "Threading model").
//
// A pool of size 1 spawns no workers and executes inline through the same
// chunked code path, so enabling threading never changes results -- only
// wall time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.hpp"

namespace odrl::util {

class ThreadPool {
 public:
  /// `threads` = total execution width including the calling thread;
  /// the pool spawns threads-1 workers. 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width (workers + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// 0 -> hardware_concurrency (>= 1), anything else unchanged. Throws
  /// std::invalid_argument on absurd counts (> 4096), which in practice
  /// means a negative value was cast to size_t on the way in.
  static std::size_t resolve_threads(std::size_t requested);

  /// Invokes body(begin, end) once per chunk of at most `grain` indices,
  /// covering [0, n) exactly. Chunks run concurrently; the caller
  /// participates and returns only when every chunk finished. The first
  /// exception thrown by a chunk is rethrown here (remaining chunks still
  /// run). `body` must not submit work to this same pool (no nesting).
  /// The FunctionRef parameter keeps submission allocation-free: the
  /// callable is borrowed for the duration of the (synchronous) call, never
  /// copied into a std::function.
  void parallel_for(std::size_t n, std::size_t grain,
                    FunctionRef<void(std::size_t, std::size_t)> body);

  /// Chunked map/reduce: acc = combine(acc, map(chunk)) folded serially in
  /// chunk order, starting from `identity`. Because the fold order is a
  /// pure function of (n, grain), the result is bit-identical for any
  /// thread count. This overload allocates a partials vector per call; hot
  /// loops should pass a reusable scratch buffer to the overload below.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                    Combine&& combine) {
    std::vector<T> partials;
    return parallel_reduce(n, grain, std::move(identity),
                           std::forward<Map>(map),
                           std::forward<Combine>(combine), partials);
  }

  /// Scratch-buffer variant: `partials` is resized (capacity reused) to one
  /// slot per chunk, so a warmed-up caller performs zero heap allocations.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                    Combine&& combine, std::vector<T>& partials) {
    if (n == 0) return identity;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t n_chunks = (n + g - 1) / g;
    partials.assign(n_chunks, identity);
    auto body = [&](std::size_t begin, std::size_t end) {
      partials[begin / g] = map(begin, end);
    };
    parallel_for(n, g, body);
    T acc = identity;
    for (const T& partial : partials) acc = combine(acc, partial);
    return acc;
  }

 private:
  void worker_loop();
  /// Claims and executes chunks of the current job until none remain.
  void claim_chunks();

  std::vector<std::thread> workers_;

  /// Serializes run_chunks callers so only one job is in flight.
  std::mutex submit_mutex_;

  // Job slot. Written by the submitting thread under mutex_ while no worker
  // is active; read by workers after a mutex-synchronized wakeup.
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers on a new job / stop
  std::condition_variable done_cv_;  ///< wakes the submitter on completion
  std::condition_variable idle_cv_;  ///< signals all workers left a job
  FunctionRef<void(std::size_t, std::size_t)> job_body_;
  std::size_t job_n_ = 0;
  std::size_t job_grain_ = 1;
  std::size_t job_chunks_ = 0;
  std::atomic<std::size_t> next_chunk_{0};  ///< next unclaimed chunk index
  std::atomic<std::size_t> pending_{0};     ///< chunks not yet finished
  std::size_t active_workers_ = 0;          ///< workers inside claim_chunks
  std::uint64_t generation_ = 0;            ///< bumped per job
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace odrl::util
