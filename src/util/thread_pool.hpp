// DEPRECATED fork-join façade over task::Runtime, kept so out-of-tree
// callers (and the historical threading tests) keep compiling. The
// fork-join pool this header used to implement was retired when the
// epoch pipeline moved to the work-stealing task runtime (see DESIGN.md
// "Task runtime & multi-chip sharding"); every method forwards to an
// owned width-`threads` Runtime and preserves the original contracts
// bit-for-bit -- chunk boundaries a pure function of (n, grain), one
// partial per chunk, serial chunk-order fold. tools/lint_odrl.py rejects
// new in-tree uses (`raw-thread` rule); new code takes a task::Runtime
// (usually shared, see ManyCoreSystem::set_runtime).
//
// Concurrency coverage: the shim holds no locks of its own -- all of its
// synchronization lives in the owned Runtime, whose util::Mutex-based
// internals are checked by -Wthread-safety and the ODRL_CHECKED
// lock-rank verifier, so this façade is covered end to end by both.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "task/runtime.hpp"
#include "util/function_ref.hpp"

namespace odrl::util {

class ThreadPool {
 public:
  /// `threads` = total execution width including the calling thread.
  /// 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 1) : runtime_(threads) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width (workers + the calling thread).
  std::size_t size() const { return runtime_.size(); }

  /// 0 -> hardware_concurrency (>= 1), anything else unchanged. Throws
  /// std::invalid_argument on absurd counts (> 4096).
  static std::size_t resolve_threads(std::size_t requested) {
    return task::Runtime::resolve_workers(requested);
  }

  /// Invokes body(begin, end) once per chunk of at most `grain` indices,
  /// covering [0, n) exactly; returns when every chunk finished.
  void parallel_for(std::size_t n, std::size_t grain,
                    FunctionRef<void(std::size_t, std::size_t)> body) {
    runtime_.parallel_for(n, grain, body);
  }

  /// Chunked map/reduce folded serially in chunk order from `identity`;
  /// bit-identical for any thread count.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                    Combine&& combine) {
    return runtime_.parallel_reduce(n, grain, std::move(identity),
                                    std::forward<Map>(map),
                                    std::forward<Combine>(combine));
  }

  /// Scratch-buffer variant: zero heap allocations once warmed up.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                    Combine&& combine, std::vector<T>& partials) {
    return runtime_.parallel_reduce(n, grain, std::move(identity),
                                    std::forward<Map>(map),
                                    std::forward<Combine>(combine), partials);
  }

 private:
  task::Runtime runtime_;
};

}  // namespace odrl::util
