// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component in the library (workload phase transitions,
// sensor noise, RL exploration) takes an explicit Rng so that a single seed
// fully determines a simulation run. No global RNG state exists anywhere.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace odrl::util {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used directly; here it is the seeding stage.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can also be
/// plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as recommended by the authors.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1). Uses the top 53 bits for full mantissa quality.
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Lemire-style rejection-free
  /// multiply-shift with bias correction.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double gaussian();

  /// Normal with given mean and standard deviation (stddev >= 0).
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given rate (> 0).
  double exponential(double rate);

  /// Forks an independent stream: child sequence is decorrelated from the
  /// parent's future output. Used to give each core its own stream.
  Rng fork();

  /// The full generator state, exposed for snapshot/restore: the four
  /// xoshiro words plus the Box-Muller pair cache (without it, a restored
  /// stream would replay gaussian draws one call out of phase).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };

  State state() const {
    return State{s_, cached_gaussian_, has_cached_gaussian_};
  }
  void set_state(const State& state) {
    s_ = state.s;
    cached_gaussian_ = state.cached_gaussian;
    has_cached_gaussian_ = state.has_cached_gaussian;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace odrl::util
