#include "util/check.hpp"

namespace odrl::util {

void check_fail(const char* expr, const char* file, int line,
                const std::string& msg) {
  throw ContractViolation(std::string("contract violation: ") + msg +
                          " [" + expr + "] at " + file + ":" +
                          std::to_string(line));
}

bool checks_enabled() noexcept {
#ifdef ODRL_CHECKED
  return true;
#else
  return false;
#endif
}

}  // namespace odrl::util
