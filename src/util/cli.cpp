#include "util/cli.hpp"

#include <stdexcept>

namespace odrl::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare boolean flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stol(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

}  // namespace odrl::util
