#include "util/log.hpp"

namespace odrl::util {

LogLevel Logger::level_ = LogLevel::kWarn;
std::ostream* Logger::out_ = &std::clog;

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

LogLevel Logger::level() { return level_; }

void Logger::set_level(LogLevel level) { level_ = level; }

void Logger::set_stream(std::ostream& out) { out_ = &out; }

void Logger::write(LogLevel level, std::string_view module,
                   std::string_view message) {
  *out_ << '[' << to_string(level) << "] [" << module << "] " << message
        << '\n';
}

}  // namespace odrl::util
