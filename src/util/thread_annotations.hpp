// Clang Thread Safety Analysis attribute macros: the vocabulary the
// annotated concurrency layer (util/mutex.hpp, task/runtime.hpp, the
// telemetry sinks and the controller registry) is written in.
//
// Under clang, a build with -Wthread-safety turns the locking discipline
// into compiler-verified facts: every ODRL_GUARDED_BY member access is
// checked against the locks actually held on that path, ODRL_REQUIRES /
// ODRL_ACQUIRE / ODRL_RELEASE contracts are enforced at every call site,
// and ODRL_EXCLUDES catches self-deadlock (re-entering a non-recursive
// lock). CI's static-analysis job builds all of src/ with
// -Wthread-safety promoted to an error (-DODRL_THREAD_SAFETY_WERROR=ON),
// so an unguarded field or a lock taken on the wrong path fails the
// build, not a soak test. On GCC (and any compiler without the
// attribute) every macro expands to nothing -- the annotations are
// zero-cost documentation.
//
// The macro set mirrors the standard capability vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the
// spellings the codebase actually uses are defined, all prefixed to keep
// the global namespace clean.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ODRL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ODRL_THREAD_ANNOTATION
#define ODRL_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define ODRL_CAPABILITY(x) ODRL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define ODRL_SCOPED_CAPABILITY ODRL_THREAD_ANNOTATION(scoped_lockable)

/// The member may only be read/written while holding `x`.
#define ODRL_GUARDED_BY(x) ODRL_THREAD_ANNOTATION(guarded_by(x))

/// The *pointed-to* data may only be touched while holding `x` (the
/// pointer itself is unguarded).
#define ODRL_PT_GUARDED_BY(x) ODRL_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define ODRL_REQUIRES(...) \
  ODRL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (its own *this when
/// called with no arguments) and holds them on return.
#define ODRL_ACQUIRE(...) \
  ODRL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define ODRL_RELEASE(...) \
  ODRL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (catches self-deadlock on non-recursive locks).
#define ODRL_EXCLUDES(...) ODRL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns the capability guarding the returned reference.
#define ODRL_RETURN_CAPABILITY(x) ODRL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code whose locking the analysis cannot follow (e.g.
/// lock hand-offs through std::condition_variable_any). Use sparingly and
/// leave a comment saying why the analysis is wrong.
#define ODRL_NO_THREAD_SAFETY_ANALYSIS \
  ODRL_THREAD_ANNOTATION(no_thread_safety_analysis)
