#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace odrl::util {

namespace {
// A request beyond this is always a bug (e.g. a negative CLI value cast to
// size_t), never a real machine; fail with a readable message instead of
// letting vector::reserve throw length_error deep inside the constructor.
constexpr std::size_t kMaxThreads = 4096;
}  // namespace

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested > kMaxThreads) {
    throw std::invalid_argument("ThreadPool: thread count " +
                                std::to_string(requested) +
                                " exceeds the supported maximum (" +
                                std::to_string(kMaxThreads) + ")");
  }
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    FunctionRef<void(std::size_t, std::size_t)> body) {
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t n_chunks = (n + g - 1) / g;
  if (workers_.empty() || n_chunks == 1) {
    // Inline path: same chunk layout, zero synchronization. Keeps a
    // threads=1 pool free and guarantees identical chunk boundaries.
    for (std::size_t c = 0; c < n_chunks; ++c) {
      body(c * g, std::min(n, (c + 1) * g));
    }
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Stragglers from the previous job may still hold the job slot; wait
    // until every worker has left claim_chunks before rewriting it.
    idle_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_body_ = body;
    job_n_ = n;
    job_grain_ = g;
    job_chunks_ = n_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_.store(n_chunks, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  claim_chunks();  // the submitting thread participates

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock,
                [&] { return pending_.load(std::memory_order_acquire) == 0; });
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++active_workers_;
    }
    claim_chunks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::claim_chunks() {
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= job_chunks_) return;
    try {
      job_body_(c * job_grain_, std::min(job_n_, (c + 1) * job_grain_));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk done: take the mutex so the submitter is either already
      // waiting (gets the notify) or has not yet checked the predicate.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

}  // namespace odrl::util
