// Annotated locking primitives: the only mutexes the codebase is allowed
// to use (lint rule `raw-mutex` blocks `std::mutex` outside src/util/).
//
// util::Mutex layers three guarantees over std::mutex:
//   1. Clang Thread Safety Analysis capability (ODRL_CAPABILITY): guarded
//      members declared ODRL_GUARDED_BY(mu) are compile-time checked under
//      -Wthread-safety (promoted to an error in CI's static-analysis job).
//   2. A LockRank checked at runtime under ODRL_CHECKED: out-of-order
//      acquisition aborts with both lock sites (util/lock_rank.hpp).
//   3. A name, so rank-violation diagnostics read "sched" vs "ring", not
//      two hex pointers.
//
// lock()/unlock() are out of line in mutex.cpp so the rank bookkeeping
// follows the *library's* ODRL_CHECKED state, exactly like
// util::checks_enabled(): a Release caller linking a Debug library still
// gets checked locks, and vice versa. The call-site file:line is captured
// via __builtin_FILE()/__builtin_LINE() default arguments, keeping the
// header free of <source_location>.
//
// CondVar wraps std::condition_variable_any waiting on Mutex directly
// (BasicLockable), so the unlock/relock inside wait() flows through the
// same rank bookkeeping. Prefer the manual `while (!pred) cv.wait(mu);`
// shape over predicate-lambda overloads: the analysis cannot see locks
// held across a lambda boundary, and the explicit loop keeps wait-park
// accounting (RuntimeStats) honest.
#pragma once

#include <condition_variable>  // lint: allow(raw-mutex): the one annotated wrapper
#include <mutex>               // lint: allow(raw-mutex): the one annotated wrapper

#include "util/lock_rank.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::util {

/// A std::mutex with a TSA capability, a deadlock-detection rank, and a
/// diagnostic name. Constant-initializable (file-scope instances are safe
/// before main).
class ODRL_CAPABILITY("mutex") Mutex {
 public:
  constexpr explicit Mutex(LockRank rank = LockRank::kLeaf,
                           const char* name = "mutex") noexcept
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Callable with no arguments (BasicLockable, as CondVar::wait needs);
  /// the defaults record the caller's site for rank diagnostics.
  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) ODRL_ACQUIRE();
  void unlock() ODRL_RELEASE();

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;

  std::mutex raw_;  // lint: allow(raw-mutex): the wrapped primitive itself
  LockRank rank_;
  const char* name_;
};

/// RAII scope lock over util::Mutex (the project's std::lock_guard).
class ODRL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) ODRL_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(file, line);
  }

  ~MutexLock() ODRL_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on util::Mutex, so blocked-wakeup paths keep
/// their rank bookkeeping. The wait contract (caller holds `mu`) is
/// machine-checked via ODRL_REQUIRES.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Spurious wakeups happen; always call inside a predicate loop.
  void wait(Mutex& mu) ODRL_REQUIRES(mu) {
    cv_.wait(mu);  // lint: allow(raw-mutex): Mutex models BasicLockable
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any accepts any BasicLockable, routing the
  // unlock/relock through Mutex::lock()/unlock() (rank bookkeeping
  // included). Its internal allocation happens at construction, not in
  // wait(), so the zero-steady-state-allocation contract holds.
  std::condition_variable_any cv_;  // lint: allow(raw-mutex): wrapped here
};

}  // namespace odrl::util
