#include "util/lock_rank.hpp"

#include <cstdio>
#include <cstdlib>

namespace odrl::util {

bool lock_rank_enabled() noexcept {
#ifdef ODRL_CHECKED
  return true;
#else
  return false;
#endif
}

namespace lock_rank {

namespace {

// Per-thread stack of held locks. Fixed-size POD array: note_acquire /
// note_release must never allocate, or the zero-steady-state-allocation
// contract (tests/alloc_test.cpp) would break under ODRL_CHECKED.
struct HeldLock {
  const void* mutex;
  LockRank rank;
  const char* name;
  const char* file;
  int line;
};

struct HeldStack {
  HeldLock locks[kMaxHeldLocks];
  std::uint32_t depth = 0;
};

thread_local HeldStack tls_held;

[[noreturn]] void die_inversion(const HeldLock& held, const void* mutex,
                                LockRank rank, const char* name,
                                const char* file, int line) {
  std::fprintf(
      stderr,
      "odrl lock-rank violation: acquiring \"%s\" (rank %u) at %s:%d while "
      "holding \"%s\" (rank %u) acquired at %s:%d; locks must be taken in "
      "strictly increasing rank order (see util/lock_rank.hpp)\n",
      name, static_cast<unsigned>(rank), file, line, held.name,
      static_cast<unsigned>(held.rank), held.file, held.line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void note_acquire(const void* mutex, LockRank rank, const char* name,
                  const char* file, int line) {
  HeldStack& held = tls_held;
  if (held.depth >= kMaxHeldLocks) {
    std::fprintf(stderr,
                 "odrl lock-rank violation: more than %u locks held at once "
                 "(acquiring \"%s\" at %s:%d)\n",
                 kMaxHeldLocks, name, file, line);
    std::fflush(stderr);
    std::abort();
  }
  for (std::uint32_t i = 0; i < held.depth; ++i) {
    const HeldLock& h = held.locks[i];
    if (h.mutex == mutex) {
      std::fprintf(stderr,
                   "odrl lock-rank violation: recursive acquisition of \"%s\" "
                   "at %s:%d (first acquired at %s:%d)\n",
                   name, file, line, h.file, h.line);
      std::fflush(stderr);
      std::abort();
    }
    if (h.rank >= rank) die_inversion(h, mutex, rank, name, file, line);
  }
  held.locks[held.depth++] = HeldLock{mutex, rank, name, file, line};
}

void note_release(const void* mutex) noexcept {
  HeldStack& held = tls_held;
  for (std::uint32_t i = held.depth; i-- > 0;) {
    if (held.locks[i].mutex != mutex) continue;
    // Remove wherever it sits: releases need not mirror acquisition order.
    for (std::uint32_t j = i + 1; j < held.depth; ++j) {
      held.locks[j - 1] = held.locks[j];
    }
    --held.depth;
    return;
  }
  // Releasing a lock we never saw acquired: only possible if the library
  // and caller disagree on ODRL_CHECKED mid-stream; ignore rather than
  // abort so mixed builds stay usable.
}

}  // namespace lock_rank
}  // namespace odrl::util
