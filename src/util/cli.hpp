// Minimal command-line flag parsing for the example programs and benches.
// Supports --name=value and --name value forms plus boolean --flag.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace odrl::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace odrl::util
