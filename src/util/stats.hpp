// Streaming statistics helpers used throughout the simulator and the
// benchmark harness (per-epoch sensor aggregation, experiment summaries).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace odrl::util {

/// Welford-style single-pass accumulator: numerically stable mean/variance,
/// plus min/max and sum. O(1) memory; safe to keep one per core per signal.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator (parallel-combine identity of Welford).
  void merge(const RunningStats& other);

  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double sum() const { return sum_; }
  /// Mean of observed samples. Returns 0 when empty.
  double mean() const;
  /// Unbiased sample variance (n-1 denominator). Returns 0 when n < 2.
  double variance() const;
  double stddev() const;
  /// Min/max of observed samples. Returns 0 when empty.
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially-weighted moving average: the smoothing used by controllers
/// to de-noise per-epoch sensor readings. alpha in (0, 1]; alpha = 1 means
/// no smoothing. The first sample initializes the average directly.
class Ema {
 public:
  explicit Ema(double alpha);

  double update(double x);
  double value() const { return value_; }
  bool primed() const { return primed_; }
  void reset();
  double alpha() const { return alpha_; }
  /// Bulk restore for snapshot/resume (alpha stays as constructed).
  void restore(double value, bool primed) {
    value_ = value;
    primed_ = primed;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Fixed-bin histogram over [lo, hi). Out-of-range samples are clamped into
/// the edge bins so mass is never lost (controllers use this to inspect
/// state-visit distributions).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  /// Index of the bin x falls into (after clamping).
  std::size_t bin_of(double x) const;
  /// Center value of a bin.
  double bin_center(std::size_t bin) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile of a sample set (linear interpolation between order statistics,
/// the "exclusive" convention used by numpy's default). p in [0, 100].
/// Copies + sorts; intended for end-of-run summaries, not hot paths.
double percentile(std::span<const double> samples, double p);

/// Arithmetic mean of a span; 0 for an empty span.
double mean_of(std::span<const double> samples);

/// Geometric mean; requires all samples > 0. Used for cross-benchmark
/// speedup aggregation (the standard in architecture evaluation).
double geomean_of(std::span<const double> samples);

}  // namespace odrl::util
