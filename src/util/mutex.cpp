#include "util/mutex.hpp"

namespace odrl::util {

// Out of line so the rank checker's presence is decided by the library's
// own ODRL_CHECKED flag (see util/check.hpp's checks_enabled() for the
// same pattern). The bodies acquire no capability the analysis can see --
// they ARE the primitive -- which is the standard trusted-wrapper shape.

void Mutex::lock(const char* file, int line) {
#ifdef ODRL_CHECKED
  lock_rank::note_acquire(this, rank_, name_, file, line);
#else
  (void)file;
  (void)line;
#endif
  raw_.lock();
}

void Mutex::unlock() {
  raw_.unlock();
#ifdef ODRL_CHECKED
  lock_rank::note_release(this);
#endif
}

}  // namespace odrl::util
