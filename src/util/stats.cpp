#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odrl::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  mean_ = (na * mean_ + nb * other.mean_) / nab;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

Ema::Ema(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("Ema: alpha must be in (0, 1]");
  }
}

double Ema::update(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
  return value_;
}

void Ema::reset() {
  value_ = 0.0;
  primed_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: need lo < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need bins > 0");
}

std::size_t Histogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double x) {
  ++counts_[bin_of(x)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::count: bin out of range");
  }
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::bin_center: bin out of range");
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(rank);
  const std::size_t hi_idx = std::min(lo_idx + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo_idx);
  return sorted[lo_idx] + frac * (sorted[hi_idx] - sorted[lo_idx]);
}

double mean_of(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double geomean_of(std::span<const double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("geomean_of: empty sample set");
  }
  double log_sum = 0.0;
  for (double x : samples) {
    if (x <= 0.0) {
      throw std::invalid_argument("geomean_of: samples must be positive");
    }
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace odrl::util
