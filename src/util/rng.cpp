#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace odrl::util {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::below: n must be > 0");
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  if (stddev < 0.0) throw std::invalid_argument("Rng::gaussian: stddev < 0");
  return mean + stddev * gaussian();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork() {
  // Seed a child from two successive outputs mixed through SplitMix64 so the
  // child stream does not overlap the parent's near-term outputs.
  SplitMix64 sm(next() ^ 0x9e3779b97f4a7c15ULL);
  Rng child(sm.next() ^ next());
  return child;
}

}  // namespace odrl::util
