// ODRL_CHECK: compiled-in contracts for the span/SoA hot path.
//
// The zero-allocation epoch data path (DESIGN.md "Epoch data path") trades
// a whole class of silent lifetime/aliasing/shape bugs for speed: borrowed
// column spans, out-spans written in place, workload-owned storage. The
// paper's own claims are invariant-shaped -- power non-negative, budgets
// summing to the TDP, Q-values finite, levels inside the V/F table -- so
// this header gives every boundary on that path a cheap, compiled-in
// assertion language:
//
//   ODRL_CHECK(cond, msg)   -- assert a scalar contract; throws
//                              util::ContractViolation on failure.
//   ODRL_VALIDATE(expr)     -- evaluate a validator call (sim/validate.hpp)
//                              for its contract side effects.
//
// Both expand to nothing unless the translation unit is compiled with
// ODRL_CHECKED (CMake: -DODRL_CHECKED=ON; the default in Debug and in the
// sanitizer CI jobs). A Release binary therefore pays zero overhead and
// produces bit-identical RunResults -- contracts only observe, they never
// compute anything the surrounding code reads. Validators themselves must
// not allocate on the success path: the checked sanitizer builds still run
// tests/alloc_test.cpp's zero-steady-state-allocation contract.
#pragma once

#include <stdexcept>
#include <string>

namespace odrl::util {

/// Thrown when a compiled-in contract (ODRL_CHECK / a validator invoked
/// via ODRL_VALIDATE) fails. Derives from std::logic_error: a contract
/// violation is a programming error in a controller/model, not bad input.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Builds the diagnostic and throws ContractViolation. Out-of-line so the
/// failure path (which allocates the message) stays off the hot path and
/// the macro expansion stays small.
[[noreturn]] void check_fail(const char* expr, const char* file, int line,
                             const std::string& msg);

/// Whether the *library* was compiled with contracts on. Tests use this to
/// decide between "the seeded violation must throw" and "the run must sail
/// through bit-identically" -- the test binary's own ODRL_CHECKED state
/// may differ from the library's, so this must be an exported function,
/// not a header constexpr.
bool checks_enabled() noexcept;

}  // namespace odrl::util

#ifdef ODRL_CHECKED
// NOLINTBEGIN(cppcoreguidelines-macro-usage) -- a contract macro must
// capture #cond/__FILE__/__LINE__ and vanish per-TU; no function can.
#define ODRL_CHECK(cond, msg)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::odrl::util::check_fail(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                 \
  } while (false)
#define ODRL_VALIDATE(expr) \
  do {                      \
    expr;                   \
  } while (false)
// NOLINTEND(cppcoreguidelines-macro-usage)
#else
#define ODRL_CHECK(cond, msg) ((void)0)
#define ODRL_VALIDATE(expr) ((void)0)
#endif
