#include "util/csv.hpp"

#include <charconv>

namespace odrl::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(cells[i]);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(std::string_view label,
                          const std::vector<double>& values) {
  *out_ << csv_escape(label);
  char buf[64];
  for (double v : values) {
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    *out_ << ',' << std::string_view(buf, static_cast<std::size_t>(ptr - buf));
    (void)ec;
  }
  *out_ << '\n';
  ++rows_;
}

}  // namespace odrl::util
