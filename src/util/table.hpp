// Console table rendering for the benchmark harness: every experiment prints
// its paper-style table/figure series through this writer so output stays
// uniform across E1..E7.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace odrl::util {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table: add a header then rows; render() pads columns
/// to the widest cell. Rows shorter than the header are padded with empty
/// cells; longer rows are rejected.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Number formatting convenience: fixed with `digits` decimals.
  static std::string fmt(double value, int digits = 2);
  /// Scientific notation with `digits` significant decimals.
  static std::string sci(double value, int digits = 2);

  void set_align(std::size_t column, Align align);
  void add_row(std::vector<std::string> cells);
  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }

  /// Renders with a title line, a header, a separator and all rows.
  std::string render(const std::string& title = {}) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

}  // namespace odrl::util
