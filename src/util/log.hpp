// Tiny leveled logger. The simulator and controllers are silent by default;
// examples raise the level to narrate what the system is doing.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace odrl::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Process-wide log configuration. Intentionally the only global in the
/// library (logging verbosity is cross-cutting and never affects results).
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  /// Destination stream; defaults to std::clog.
  static void set_stream(std::ostream& out);
  static void write(LogLevel level, std::string_view module,
                    std::string_view message);

 private:
  static LogLevel level_;
  static std::ostream* out_;
};

/// One log statement: LogLine(LogLevel::kInfo, "sim") << "epoch " << n;
/// Emits on destruction if the level passes the filter.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view module)
      : level_(level), module_(module), enabled_(level >= Logger::level()) {}
  ~LogLine() {
    if (enabled_) Logger::write(level_, module_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string module_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace odrl::util
