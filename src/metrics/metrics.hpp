// The paper's evaluation metrics, computed from RunResults.
//
// Headline quantities (abstract):
//  * budget overshoot       -- OTB energy, i.e. the integral of chip power
//                              above the TDP budget (E2: "98% less");
//  * throughput per OTB energy (TPOBE) -- instructions earned per joule
//                              spent over the budget (E3: "44.3x better");
//  * energy efficiency      -- BIPS/W and the voltage-scaling-fair BIPS^3/W
//                              (E4: "23% higher");
//  * decision latency       -- controller runtime per epoch (E5: "two orders
//                              of magnitude speedup").
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "util/table.hpp"

namespace odrl::metrics {

/// Throughput per over-the-budget energy, instructions per joule. When a
/// run never overshoots, OTB energy is 0 and the metric diverges; the
/// `floor_j` guard (default 1 mJ) keeps ratios finite and *understates* the
/// advantage of clean runs, which is the conservative direction.
double tpobe(const sim::RunResult& run, double floor_j = 1e-3);

/// Percentage reduction of OTB energy vs. a baseline: 100 * (1 - ours/base).
/// Positive = we overshoot less. Baseline with zero OTB yields 0 when we are
/// also clean, -infinity-free large negative otherwise (guarded by floor).
double overshoot_reduction_pct(const sim::RunResult& ours,
                               const sim::RunResult& baseline,
                               double floor_j = 1e-3);

/// Ratio of TPOBE (ours / baseline), both floored.
double tpobe_ratio(const sim::RunResult& ours, const sim::RunResult& baseline,
                   double floor_j = 1e-3);

/// Percentage gain in BIPS/W vs. a baseline.
double efficiency_gain_pct(const sim::RunResult& ours,
                           const sim::RunResult& baseline);

/// Ratio of mean decision latency (baseline / ours): the speedup factor.
double decision_speedup(const sim::RunResult& ours,
                        const sim::RunResult& baseline);

/// One-line digest of a run, for experiment tables.
struct RunSummary {
  std::string controller;
  double bips = 0.0;
  double mean_power_w = 0.0;
  double otb_energy_j = 0.0;
  double overshoot_time_pct = 0.0;
  double peak_overshoot_w = 0.0;
  double tpobe_giga = 0.0;  ///< giga-instructions per OTB joule (floored)
  double bips_per_watt = 0.0;
  double decision_us = 0.0;
};

RunSummary summarize(const sim::RunResult& run);

/// Renders the standard comparison table for a set of runs (rows in input
/// order; first run is conventionally OD-RL).
util::Table comparison_table(std::span<const sim::RunResult> runs);

}  // namespace odrl::metrics
