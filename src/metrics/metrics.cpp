#include "metrics/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::metrics {

double tpobe(const sim::RunResult& run, double floor_j) {
  if (floor_j <= 0.0) throw std::invalid_argument("tpobe: floor_j <= 0");
  return run.total_instructions / std::max(run.otb_energy_j, floor_j);
}

double overshoot_reduction_pct(const sim::RunResult& ours,
                               const sim::RunResult& baseline,
                               double floor_j) {
  const double base = std::max(baseline.otb_energy_j, floor_j);
  const double us = std::max(ours.otb_energy_j, floor_j);
  return 100.0 * (1.0 - us / base);
}

double tpobe_ratio(const sim::RunResult& ours, const sim::RunResult& baseline,
                   double floor_j) {
  const double base = tpobe(baseline, floor_j);
  if (base <= 0.0) throw std::invalid_argument("tpobe_ratio: zero baseline");
  return tpobe(ours, floor_j) / base;
}

double efficiency_gain_pct(const sim::RunResult& ours,
                           const sim::RunResult& baseline) {
  const double base = baseline.bips_per_watt();
  if (base <= 0.0) {
    throw std::invalid_argument("efficiency_gain_pct: zero baseline");
  }
  return 100.0 * (ours.bips_per_watt() / base - 1.0);
}

double decision_speedup(const sim::RunResult& ours,
                        const sim::RunResult& baseline) {
  const double us = ours.mean_decision_us();
  if (us <= 0.0) throw std::invalid_argument("decision_speedup: zero ours");
  return baseline.mean_decision_us() / us;
}

RunSummary summarize(const sim::RunResult& run) {
  RunSummary s;
  s.controller = run.controller_name;
  s.bips = run.bips();
  s.mean_power_w = run.mean_power_w;
  s.otb_energy_j = run.otb_energy_j;
  s.overshoot_time_pct = 100.0 * run.overshoot_time_fraction();
  s.peak_overshoot_w = run.peak_overshoot_w;
  s.tpobe_giga = tpobe(run) / 1e9;
  s.bips_per_watt = run.bips_per_watt();
  s.decision_us = run.mean_decision_us();
  return s;
}

util::Table comparison_table(std::span<const sim::RunResult> runs) {
  util::Table table({"controller", "BIPS", "power[W]", "OTB[J]", "over[%t]",
                     "peak_over[W]", "TPOBE[GI/J]", "BIPS/W", "decide[us]"});
  for (const auto& run : runs) {
    const RunSummary s = summarize(run);
    table.add_row({s.controller, util::Table::fmt(s.bips, 2),
                   util::Table::fmt(s.mean_power_w, 1),
                   util::Table::fmt(s.otb_energy_j, 3),
                   util::Table::fmt(s.overshoot_time_pct, 1),
                   util::Table::fmt(s.peak_overshoot_w, 2),
                   util::Table::fmt(s.tpobe_giga, 2),
                   util::Table::fmt(s.bips_per_watt, 3),
                   util::Table::fmt(s.decision_us, 2)});
  }
  return table;
}

}  // namespace odrl::metrics
