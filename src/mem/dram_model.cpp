#include "mem/dram_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odrl::mem {

void DramConfig::validate() const {
  if (peak_gbps < 0.0) throw std::invalid_argument("DramConfig: peak < 0");
  if (line_bytes <= 0.0) {
    throw std::invalid_argument("DramConfig: line_bytes <= 0");
  }
  if (max_utilization <= 0.0 || max_utilization >= 1.0) {
    throw std::invalid_argument("DramConfig: max_utilization in (0, 1)");
  }
}

DramModel::DramModel(DramConfig config) : config_(config) {
  config_.validate();
}

double DramModel::utilization(double traffic_bytes_per_s) const {
  if (!enabled()) return 0.0;
  if (traffic_bytes_per_s < 0.0) {
    throw std::invalid_argument("DramModel::utilization: negative traffic");
  }
  const double u = traffic_bytes_per_s / (config_.peak_gbps * 1e9);
  return std::min(u, config_.max_utilization);
}

double DramModel::queue_multiplier(double utilization) const {
  if (utilization < 0.0) {
    throw std::invalid_argument("DramModel::queue_multiplier: u < 0");
  }
  const double u = std::min(utilization, config_.max_utilization);
  return 1.0 + u * u / (2.0 * (1.0 - u));
}

double DramModel::solve_multiplier(
    util::FunctionRef<double(double)> traffic_at) const {
  if (!enabled()) return 1.0;
  double m = 1.0;
  for (int iter = 0; iter < 64; ++iter) {
    const double target = queue_multiplier(utilization(traffic_at(m)));
    const double next = 0.5 * (m + target);  // damped: guards oscillation
    if (std::abs(next - m) < 1e-7) return next;
    m = next;
  }
  return m;
}

}  // namespace odrl::mem
