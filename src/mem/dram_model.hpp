// Shared-DRAM bandwidth contention.
//
// On a real many-core part the memory controller is shared: when many
// cores miss at once, queueing delay inflates every miss's latency. This
// couples the cores' DVFS decisions -- raising one core's frequency raises
// its miss *rate per second*, which steals bandwidth from everyone -- and
// is a first-order effect a Sniper-class simulator models. We model it as
// an M/D/1-style queue on aggregate miss traffic:
//
//   U = total_traffic / peak_bandwidth          (clamped below 1)
//   latency_multiplier(U) = 1 + U^2 / (2 (1 - U))
//
// applied uniformly to every core's exposed memory latency. Because IPS
// falls as the multiplier rises (which lowers traffic), the per-epoch
// operating point is the fixed point of multiplier -> traffic ->
// multiplier; solve_multiplier() finds it by damped iteration (the map is
// monotone decreasing, so this converges fast).
//
// Disabled by default (peak_gbps = 0 -> multiplier 1): the paper's
// evaluation regime is power-limited rather than bandwidth-limited, but
// the substrate is available for bandwidth-wall studies.
#pragma once

#include "util/function_ref.hpp"

namespace odrl::mem {

struct DramConfig {
  /// Peak sustained DRAM bandwidth in GB/s. 0 disables the model.
  double peak_gbps = 0.0;
  /// Bytes moved per long-latency miss (one cache line).
  double line_bytes = 64.0;
  /// Queueing clamp: utilization is capped here so the multiplier stays
  /// finite when demand exceeds the roofline.
  double max_utilization = 0.95;

  void validate() const;
};

class DramModel {
 public:
  explicit DramModel(DramConfig config);

  bool enabled() const { return config_.peak_gbps > 0.0; }
  const DramConfig& config() const { return config_; }

  /// Queue latency multiplier (>= 1) at a given utilization.
  double queue_multiplier(double utilization) const;

  /// Utilization in [0, max] for aggregate traffic in bytes/second.
  double utilization(double traffic_bytes_per_s) const;

  /// Solves the fixed point m = queue_multiplier(U(traffic_at(m))).
  /// `traffic_at(m)` must return the chip's aggregate miss traffic in
  /// bytes/second when every core's exposed memory latency is scaled by m;
  /// it must be non-increasing in m (true for the CPI-stack model).
  /// Returns the converged multiplier; with the model disabled, returns 1.
  /// Takes a FunctionRef (borrowed, non-allocating) because this runs once
  /// per epoch inside the zero-allocation hot path.
  double solve_multiplier(
      util::FunctionRef<double(double)> traffic_at) const;

 private:
  DramConfig config_;
};

}  // namespace odrl::mem
