// Coarse-grain global power-budget reallocation (the paper's second level).
//
// Every reallocation period the chip budget B is re-divided among cores from
// *observed* signals only (model-free, like the rest of OD-RL). The scheme
// is demand-driven:
//
//   1. each core's demand is its smoothed power consumption times a growth
//      headroom factor -- large for frequency-sensitive cores (so a core
//      that can convert watts into IPS can afford its next V/F level by the
//      next period), small for memory-bound cores (their allocation tracks
//      consumption tightly and the freed watts migrate away);
//   2. if total demand fits in B, every core gets its demand and the
//      surplus is spread in proportion to marginal utility (sensitivity);
//   3. if demand exceeds B, allocations are scaled down proportionally,
//      subject to a per-core floor so no core is starved.
//
// Because demands compound across periods, budgets migrate geometrically
// toward the cores that use them until either the levels saturate or the
// chip budget is fully subscribed. Complexity O(n); this is what makes
// OD-RL two orders of magnitude cheaper per decision than global
// optimization baselines at hundreds of cores.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace odrl::core {

/// Per-core inputs to reallocation, all EMA-smoothed observations.
struct CoreDemand {
  double power_w = 0.0;      ///< smoothed measured power
  double sensitivity = 0.5;  ///< smoothed frequency sensitivity in [0, 1]
  double budget_w = 0.0;     ///< current allocation
  /// False when the core already runs at the top V/F level: extra watts
  /// cannot buy it anything, so surplus skips it. (Water-filling by
  /// marginal utility: once the best converters saturate, the remaining
  /// budget belongs to whoever can still climb, even if their marginal
  /// IPS/W is modest -- that is what maximizes total throughput under the
  /// chip constraint.)
  bool can_raise = true;
};

struct ReallocConfig {
  /// Fraction of the chip budget reserved as equal per-core floors (no
  /// core's allocation may fall below its floor share).
  double floor_fraction = 0.15;
  /// Demand headroom for a fully frequency-sensitive core: enough margin
  /// that the next V/F level up (a ~25-35% power step) fits by the next
  /// period.
  double growth_headroom = 1.5;
  /// Demand headroom for a memory-bound (but unsaturated) core: still
  /// enough for one level step -- when the chip has slack, even low-return
  /// watts buy throughput, and a tighter band would pin cores below their
  /// next level forever (the budget<->power squeeze trap). Saturated cores
  /// get `saturated_headroom` (a guard band only).
  double idle_headroom = 1.38;
  double saturated_headroom = 1.08;

  void validate() const;
};

/// Returns the new per-core budgets; sums to chip_budget_w (within 1e-9
/// relative). All returned budgets are strictly positive. Allocates;
/// prefer reallocate_budget_into() in hot loops.
std::vector<double> reallocate_budget(std::span<const CoreDemand> demands,
                                      double chip_budget_w,
                                      const ReallocConfig& config = {});

/// In-place variant: writes the new budgets into `out` (size must equal
/// demands.size()). `scratch` is a caller-owned buffer resized to 2n
/// (capacity reused across calls), so a warmed-up caller performs zero
/// heap allocations. Same results, bit for bit, as reallocate_budget().
void reallocate_budget_into(std::span<const CoreDemand> demands,
                            double chip_budget_w, const ReallocConfig& config,
                            std::span<double> out,
                            std::vector<double>& scratch);

}  // namespace odrl::core
