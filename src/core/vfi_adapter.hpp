// VFI adapter: run any per-"core" controller at island granularity.
//
// The adapter aggregates the chip's per-core sensors into per-island
// observations (sum of watts/IPS, IPS-weighted stall fraction, hottest
// member temperature), feeds them to an inner controller that believes it
// manages an n_islands-core chip, and fans its island-level V/F decisions
// back out to member cores. OD-RL composes transparently -- its agents and
// budget reallocation are model-free, so "a core" may just as well be an
// island drawing k cores' worth of watts.
//
// This is the extension used by E9 (island-granularity study) and mirrors
// the VFI design-space line of work the paper builds on.
#pragma once

#include <memory>

#include "arch/chip_config.hpp"
#include "arch/vfi.hpp"
#include "sim/controller.hpp"

namespace odrl::core {

class VfiAdapter final : public sim::Controller {
 public:
  /// `inner` must have been constructed for a chip with
  /// partition.n_islands() cores (see island_chip_config below).
  VfiAdapter(arch::VfiPartition partition,
             std::unique_ptr<sim::Controller> inner);

  /// The chip configuration the inner controller should be built against:
  /// same V/F table and budget, but n_islands "cores".
  static arch::ChipConfig island_chip_config(const arch::ChipConfig& chip,
                                             const arch::VfiPartition& p);

  std::string name() const override;
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override;
  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override;
  void on_budget_change(double new_budget_w) override;
  void reset() override;

  /// Snapshot hooks: the adapter itself is stateless between epochs (the
  /// island buffers are scratch); both forward to the inner controller.
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  const arch::VfiPartition& partition() const { return partition_; }
  sim::Controller& inner() { return *inner_; }

 private:
  /// Collapses a chip observation into the island-level view (stored in
  /// the reusable island_obs_ buffer).
  void aggregate_into(const sim::EpochResult& obs);
  /// Expands island levels to per-core levels.
  void expand_into(std::span<const std::size_t> island_levels,
                   std::span<std::size_t> out) const;

  arch::VfiPartition partition_;
  std::unique_ptr<sim::Controller> inner_;

  // Reusable buffers (decide_into performs zero steady-state allocations).
  sim::EpochResult island_obs_;             ///< island-level observation
  std::vector<std::size_t> island_levels_;  ///< inner decision
};

}  // namespace odrl::core
