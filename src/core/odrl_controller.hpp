// OD-RL: On-line Distributed Reinforcement Learning DVFS controller.
// The paper's primary contribution (Chen & Marculescu, DATE 2015).
//
// Two timescales:
//
//  * Fine grain -- every control epoch, each core's tabular TD agent observes
//    (budget-headroom bin, memory-intensity bin) -- plus the current V/F
//    level in absolute-action mode -- picks a V/F action, and learns from a
//    reward that pays for normalized throughput and charges for exceeding
//    the core's *local* power budget. Entirely model-free: only sensor
//    readings enter the state and reward.
//
//  * Coarse grain -- every `realloc_period` epochs, the global reallocator
//    (budget_realloc.hpp) re-divides the chip TDP among cores by observed
//    marginal utility, in O(n).
//
// The decide_into() path is O(n) table lookups per epoch with zero heap
// allocations in steady state, which is what the scalability experiment
// (E5) measures against global-optimization baselines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "arch/chip_config.hpp"
#include "core/budget_realloc.hpp"
#include "rl/agent.hpp"
#include "rl/discretizer.hpp"
#include "sim/controller.hpp"
#include "task/runtime.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace odrl::core {

/// How agent actions map to V/F levels.
///
/// In kRelative mode the state deliberately *excludes* the current level:
/// the power-headroom ratio already carries the decision-relevant signal,
/// and a level-free state lets what is learned at one level transfer to all
/// others -- an order-of-magnitude convergence win that on-line control
/// needs. kAbsolute keeps the level in the state (the action "go to level
/// k" is only meaningful relative to where the core is).
enum class ActionMode {
  kRelative,  ///< 3 actions: step down / hold / step up (default; small
              ///< action space converges fast and bounds V/F slew, matching
              ///< inductive-noise constraints on real parts)
  kAbsolute,  ///< one action per table level (bigger space, more agile)
};

struct OdrlConfig {
  rl::TdConfig td;                   ///< TD rule, gamma, schedules
  ActionMode action_mode = ActionMode::kRelative;
  /// Bins for power/cap ratio over [0, 2]. Even counts put a bin edge
  /// exactly at ratio 1.0, so the penalized and unpenalized sides of the
  /// cap never alias into one state.
  std::size_t headroom_bins = 10;
  std::size_t mem_bins = 5;          ///< memory-stall-fraction bins
  double lambda = 5.0;               ///< overshoot penalty weight in reward
  /// Weight of the frequency-shaping reward term kappa * f/f_max. The
  /// attainment term's per-level gradient collapses for memory-bound
  /// phases (IPS barely moves with f), dropping below sensor/workload
  /// noise -- the policy then drifts instead of filling its allocation.
  /// The shaping term restores a uniform "prefer the highest level your
  /// budget affords" gradient; the overshoot penalty still dominates at
  /// the cap (lambda >> kappa).
  double kappa = 0.2;

  /// Optional thermal-aware reward (extension; 0 = off, the paper's
  /// configuration). When the core's junction temperature exceeds
  /// `thermal_safe_c`, the reward is charged thermal_weight per 20C of
  /// excess -- agents then trade frequency for temperature headroom on hot
  /// tiles even when their power budget would allow more.
  double thermal_weight = 0.0;
  double thermal_safe_c = 85.0;
  /// Penalty boundary as a fraction of the core's budget. 1.0: agents are
  /// charged only past their full allocation; the bin-quantized policy
  /// already keeps a natural safety margin below the boundary (it stops
  /// one level early rather than risk the cliff), so a second explicit
  /// margin here just wastes budget.
  double target_utilization = 1.0;
  std::size_t realloc_period = 50;   ///< coarse-grain period (epochs)
  bool global_realloc = true;        ///< ablation switch (E7)
  ReallocConfig realloc;             ///< reallocator tuning
  double ema_alpha = 0.25;           ///< sensor smoothing for reallocation
  /// Blend factor for budget moves: new = (1-b)*old + b*target. Damps the
  /// budget<->power feedback loop so per-core caps are quasi-stationary
  /// between workload phase changes (agents can only learn against a
  /// stable cap).
  double budget_blend = 0.5;

  // --- chip-level overcommit loop ---
  // Bin-quantized agents park a safety margin below their allocation, so a
  // partition summing exactly to the TDP fills the chip to only ~70%. The
  // coarse-grain level therefore distributes a *virtual* budget
  // mu * TDP and adapts mu by slow integral feedback so measured chip power
  // tracks `target_fill` of the TDP. Individual discipline still comes from
  // the per-core caps; mu moves slowly (once per reallocation) and is
  // clamped, so a sudden workload surge can cause at most a brief, small
  // chip-level overshoot -- the residual the paper's "98% less overshoot"
  // is measured over.
  double target_fill = 0.93;      ///< desired chip power / TDP
  double overcommit_gain = 0.8;   ///< mu step per unit of normalized error
  double overcommit_min = 0.90;
  double overcommit_max = 2.00;
  std::uint64_t seed = 7;            ///< exploration stream seed

  /// Execution width of the per-core TD act/learn loop (agents and their
  /// exploration streams are per-core, so the loop is embarrassingly
  /// parallel). 1 = serial (default), 0 = hardware concurrency. Decisions
  /// are bit-identical for every value. The coarse-grain reallocation and
  /// the EMA/reward reductions stay serial (see DESIGN.md).
  std::size_t threads = 1;

  void validate() const;
};

class OdrlController final : public sim::Controller {
 public:
  OdrlController(const arch::ChipConfig& chip, OdrlConfig config = {});

  std::string name() const override;
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override;
  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override;
  void on_budget_change(double new_budget_w) override;
  void reset() override;
  void set_threads(std::size_t threads) override;
  void set_runtime(std::shared_ptr<task::Runtime> runtime) override;

  /// Snapshot hooks (see snapshot/snapshot.hpp): serialize/restore every
  /// field decide_into carries across epochs -- each core's agent (table,
  /// exploration clock, update count), the exploration RNG streams, the
  /// per-core budgets and sensor EMAs, the previous (s, a) bookkeeping,
  /// the offline latches and the overcommit loop. Configuration and table
  /// shape are construction-time inputs: load_state() must be called on a
  /// controller built with the same configuration and rejects shape
  /// mismatches with snapshot::SnapshotError(kDimensionMismatch).
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  // -- Policy persistence (warm start) --
  /// Serializes every core's learned Q-table as a single-section binary
  /// snapshot (one 'POLI' section; see snapshot/snapshot.hpp). A
  /// warm-started controller skips the cold-start ramp E6 measures.
  void save_policy(std::ostream& out) const;
  /// Restores tables saved by save_policy; core count and table shape must
  /// match this controller's configuration. Sniffs the binary snapshot
  /// magic first, then the legacy "# odrl-policy v1" text format.
  void load_policy(std::istream& in);

  // -- Introspection (examples, tests, convergence experiment) --
  const rl::TdAgent& agent(std::size_t core) const;
  std::span<const double> core_budgets() const { return budgets_; }
  /// Mean reward over the last decided epoch.
  double last_mean_reward() const { return last_mean_reward_; }
  std::size_t realloc_count() const { return realloc_count_; }
  /// Current virtual-budget multiplier (overcommit loop state).
  double overcommit_mu() const { return mu_; }
  const OdrlConfig& config() const { return config_; }
  /// The state id core `core` visited in the last epoch.
  std::size_t last_state(std::size_t core) const;

 private:
  std::size_t n_actions() const;
  std::size_t encode_state(double headroom_ratio, double mem_stall,
                           std::size_t level) const;
  std::size_t apply_action(std::size_t level, std::size_t action) const;
  /// Scalar inputs (straight off the SoA columns, no CoreObservation
  /// temporaries on the hot path).
  double reward(double power_w, double mem_stall_frac, std::size_t level,
                double temp_c, double core_budget_w) const;
  /// Fraction of this phase's attainable (f_max) throughput the core
  /// achieved, in (0, 1]: a stationary, counter-derived normalizer.
  double attainment(double mem_stall_frac, std::size_t level) const;

  /// One TD-loop chunk [begin, end): act/learn/bookkeeping for each core,
  /// returning the chunk's reward partial. The scalar variant is the
  /// original fused per-core loop; the vectorized variant computes the
  /// reward/ratio columns with SIMD and batches the TD updates
  /// (rl/td_batch.hpp), bit-identically -- decide_into dispatches on
  /// util::simd_active().
  double td_chunk_scalar(const sim::EpochResult& obs,
                         std::span<std::size_t> out, std::size_t begin,
                         std::size_t end);
  double td_chunk_vec(const sim::EpochResult& obs, std::span<std::size_t> out,
                      std::size_t begin, std::size_t end);

  OdrlConfig config_;
  std::size_t n_cores_;
  std::size_t n_levels_;
  rl::Discretizer headroom_disc_;
  rl::Discretizer mem_disc_;
  rl::StateSpace states_;
  std::vector<rl::TdAgent> agents_;
  std::vector<util::Rng> rngs_;
  /// Shards the TD loop; shared when installed by set_runtime()
  /// (multi-chip), private otherwise.
  std::shared_ptr<task::Runtime> runtime_;

  std::vector<double> budgets_;          ///< current per-core budgets
  std::vector<util::Ema> power_ema_;     ///< smoothed per-core power
  std::vector<util::Ema> sens_ema_;      ///< smoothed frequency sensitivity
  double chip_budget_w_;

  // Reusable scratch (decide_into performs zero steady-state allocations).
  std::vector<CoreDemand> demands_;        ///< reallocation inputs
  std::vector<double> realloc_target_;     ///< reallocation outputs
  std::vector<double> realloc_scratch_;    ///< reallocator internal scratch
  std::vector<double> reward_partials_;    ///< TD-loop reduce partials

  // Vectorized TD-pass scratch, sized to the core count once in the
  // constructor. The per-core columns (ratio/reward) are indexed by core;
  // the compact batch slots live inside the owning chunk's [begin, end)
  // region, so parallel chunks write disjoint ranges.
  std::vector<double> td_ratio_;               ///< power/cap ratio column
  std::vector<double> td_reward_;              ///< reward column
  std::vector<rl::TdAgent*> td_agents_;        ///< compact batch agents
  std::vector<std::size_t> td_prev_state_;     ///< compact batch (s, a)
  std::vector<std::size_t> td_prev_action_;
  std::vector<std::size_t> td_next_state_;     ///< compact batch (s', a')
  std::vector<std::size_t> td_next_action_;
  std::vector<double> td_batch_reward_;        ///< compact batch rewards
  std::vector<double> td_scratch_;             ///< 3n, td_update_batch

  // Previous-epoch transition bookkeeping (s, a) per core.
  std::vector<std::size_t> prev_state_;
  std::vector<std::size_t> prev_action_;
  bool have_prev_ = false;
  /// 1 while a core sat out the previous epoch offline (hotplug fault):
  /// its (s, a) bookkeeping is stale, so the TD update across the gap is
  /// suppressed when the core returns. All-zero in fault-free runs.
  std::vector<std::uint8_t> was_offline_;

  // Frequencies of the V/F table (GHz), used to normalize the reward's
  // throughput term against what the current phase could attain at f_max.
  std::vector<double> level_freq_ghz_;

  double last_mean_reward_ = 0.0;
  std::size_t realloc_count_ = 0;
  std::size_t epochs_seen_ = 0;

  // Overcommit state.
  double mu_ = 1.0;                  ///< virtual-budget multiplier
  util::Ema chip_power_ema_{0.08};   ///< smoothed measured chip power
};

}  // namespace odrl::core
