#include "core/vfi_adapter.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "sim/validate.hpp"
#include "util/check.hpp"

namespace odrl::core {

VfiAdapter::VfiAdapter(arch::VfiPartition partition,
                       std::unique_ptr<sim::Controller> inner)
    : partition_(std::move(partition)), inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("VfiAdapter: null inner");
}

arch::ChipConfig VfiAdapter::island_chip_config(const arch::ChipConfig& chip,
                                                const arch::VfiPartition& p) {
  if (p.n_cores() != chip.n_cores()) {
    throw std::invalid_argument(
        "VfiAdapter: partition does not cover the chip");
  }
  return arch::ChipConfig(p.n_islands(), chip.vf_table(), chip.tdp_w(),
                          chip.core(), chip.thermal());
}

std::string VfiAdapter::name() const {
  return inner_->name() + "-VFI" + std::to_string(partition_.n_islands());
}

std::vector<std::size_t> VfiAdapter::initial_levels(std::size_t n_cores) {
  if (n_cores != partition_.n_cores()) {
    throw std::invalid_argument("VfiAdapter: core count mismatch");
  }
  std::vector<std::size_t> levels(partition_.n_cores(), 0);
  const std::vector<std::size_t> island =
      inner_->initial_levels(partition_.n_islands());
  expand_into(island, levels);
  return levels;
}

void VfiAdapter::aggregate_into(const sim::EpochResult& obs) {
  island_obs_.epoch = obs.epoch;
  island_obs_.epoch_s = obs.epoch_s;
  island_obs_.budget_w = obs.budget_w;
  island_obs_.chip_power_w = obs.chip_power_w;
  island_obs_.true_chip_power_w = obs.true_chip_power_w;
  island_obs_.total_ips = obs.total_ips;
  island_obs_.max_temp_c = obs.max_temp_c;
  island_obs_.thermal_violations = obs.thermal_violations;
  island_obs_.mem_latency_mult = obs.mem_latency_mult;
  island_obs_.dram_utilization = obs.dram_utilization;
  island_obs_.cores.resize(partition_.n_islands());

  // Input SoA columns (per core) and output columns (per island).
  const std::span<const std::size_t> level = obs.cores.level();
  const std::span<const double> ips = obs.cores.ips();
  const std::span<const double> instructions = obs.cores.instructions();
  const std::span<const double> power = obs.cores.power_w();
  const std::span<const double> stall = obs.cores.mem_stall_frac();
  const std::span<const double> temp = obs.cores.temp_c();
  const std::span<const std::uint8_t> online = obs.cores.online();
  const std::span<std::size_t> agg_level = island_obs_.cores.level();
  const std::span<double> agg_ips = island_obs_.cores.ips();
  const std::span<double> agg_instr = island_obs_.cores.instructions();
  const std::span<double> agg_power = island_obs_.cores.power_w();
  const std::span<double> agg_true_power = island_obs_.cores.true_power_w();
  const std::span<double> agg_stall = island_obs_.cores.mem_stall_frac();
  const std::span<double> agg_temp = island_obs_.cores.temp_c();
  const std::span<std::uint8_t> agg_online = island_obs_.cores.online();

  for (std::size_t i = 0; i < partition_.n_islands(); ++i) {
    std::size_t shared_level = 0;
    double sum_ips = 0.0;
    double sum_instr = 0.0;
    double sum_power = 0.0;
    double stall_weighted = 0.0;
    double max_temp = 0.0;
    bool any_online = false;
    for (std::size_t core : partition_.island(i)) {
      shared_level = level[core];  // all members share the island level
      // lint: allow(raw-loop-reduction): serial fold in island-member order
      sum_ips += ips[core];
      // lint: allow(raw-loop-reduction): serial fold in island-member order
      sum_instr += instructions[core];
      // lint: allow(raw-loop-reduction): serial fold in island-member order
      sum_power += power[core];
      // lint: allow(raw-loop-reduction): serial fold in island-member order
      stall_weighted += stall[core] * ips[core];
      max_temp = std::max(max_temp, temp[core]);
      any_online = any_online || online[core] != 0;
    }
    agg_level[i] = shared_level;
    agg_ips[i] = sum_ips;
    agg_instr[i] = sum_instr;
    agg_power[i] = sum_power;
    agg_true_power[i] = 0.0;  // not aggregated (controllers must not read)
    agg_stall[i] = sum_ips > 0.0 ? stall_weighted / sum_ips : 0.0;
    agg_temp[i] = max_temp;
    // An island counts as online while any member still is: offline members
    // contribute zeros to the sums above, so the inner controller sees the
    // island shrink rather than vanish.
    agg_online[i] = any_online ? 1 : 0;
  }
}

void VfiAdapter::expand_into(std::span<const std::size_t> island_levels,
                             std::span<std::size_t> out) const {
  if (island_levels.size() != partition_.n_islands()) {
    throw std::logic_error("VfiAdapter: inner controller size mismatch");
  }
  for (std::size_t i = 0; i < partition_.n_islands(); ++i) {
    for (std::size_t core : partition_.island(i)) {
      out[core] = island_levels[i];
    }
  }
}

void VfiAdapter::decide_into(const sim::EpochResult& obs,
                             std::span<std::size_t> out) {
  if (obs.cores.size() != partition_.n_cores()) {
    throw std::invalid_argument("VfiAdapter::decide: size mismatch");
  }
  // Contract: the per-core out-span must be well-shaped and must not alias
  // the observation block expand_into() still reads from (via island_obs_,
  // which borrows nothing, but the caller's obs columns must stay intact
  // for the runner's post-decide accounting).
  ODRL_VALIDATE(sim::validate_out_span(obs, out));
  aggregate_into(obs);
  island_levels_.resize(partition_.n_islands());
  inner_->decide_into(island_obs_, island_levels_);
  expand_into(island_levels_, out);
}

void VfiAdapter::on_budget_change(double new_budget_w) {
  inner_->on_budget_change(new_budget_w);
}

void VfiAdapter::reset() { inner_->reset(); }

void VfiAdapter::save_state(snapshot::Writer& w) const {
  inner_->save_state(w);
}

void VfiAdapter::load_state(snapshot::Reader& r) { inner_->load_state(r); }

}  // namespace odrl::core
