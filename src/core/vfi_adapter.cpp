#include "core/vfi_adapter.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::core {

VfiAdapter::VfiAdapter(arch::VfiPartition partition,
                       std::unique_ptr<sim::Controller> inner)
    : partition_(std::move(partition)), inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("VfiAdapter: null inner");
}

arch::ChipConfig VfiAdapter::island_chip_config(const arch::ChipConfig& chip,
                                                const arch::VfiPartition& p) {
  if (p.n_cores() != chip.n_cores()) {
    throw std::invalid_argument(
        "VfiAdapter: partition does not cover the chip");
  }
  return arch::ChipConfig(p.n_islands(), chip.vf_table(), chip.tdp_w(),
                          chip.core(), chip.thermal());
}

std::string VfiAdapter::name() const {
  return inner_->name() + "-VFI" + std::to_string(partition_.n_islands());
}

std::vector<std::size_t> VfiAdapter::initial_levels(std::size_t n_cores) {
  if (n_cores != partition_.n_cores()) {
    throw std::invalid_argument("VfiAdapter: core count mismatch");
  }
  return expand(inner_->initial_levels(partition_.n_islands()));
}

sim::EpochResult VfiAdapter::aggregate(const sim::EpochResult& obs) const {
  sim::EpochResult out;
  out.epoch = obs.epoch;
  out.epoch_s = obs.epoch_s;
  out.budget_w = obs.budget_w;
  out.chip_power_w = obs.chip_power_w;
  out.true_chip_power_w = obs.true_chip_power_w;
  out.total_ips = obs.total_ips;
  out.max_temp_c = obs.max_temp_c;
  out.thermal_violations = obs.thermal_violations;
  out.mem_latency_mult = obs.mem_latency_mult;
  out.dram_utilization = obs.dram_utilization;
  out.cores.resize(partition_.n_islands());
  for (std::size_t i = 0; i < partition_.n_islands(); ++i) {
    sim::CoreObservation& agg = out.cores[i];
    double stall_weighted = 0.0;
    for (std::size_t core : partition_.island(i)) {
      const sim::CoreObservation& c = obs.cores[core];
      agg.level = c.level;  // all members share the island level
      agg.ips += c.ips;
      agg.instructions += c.instructions;
      agg.power_w += c.power_w;
      stall_weighted += c.mem_stall_frac * c.ips;
      agg.temp_c = std::max(agg.temp_c, c.temp_c);
    }
    agg.mem_stall_frac = agg.ips > 0.0 ? stall_weighted / agg.ips : 0.0;
  }
  return out;
}

std::vector<std::size_t> VfiAdapter::expand(
    const std::vector<std::size_t>& island_levels) const {
  if (island_levels.size() != partition_.n_islands()) {
    throw std::logic_error("VfiAdapter: inner controller size mismatch");
  }
  std::vector<std::size_t> levels(partition_.n_cores(), 0);
  for (std::size_t i = 0; i < partition_.n_islands(); ++i) {
    for (std::size_t core : partition_.island(i)) {
      levels[core] = island_levels[i];
    }
  }
  return levels;
}

std::vector<std::size_t> VfiAdapter::decide(const sim::EpochResult& obs) {
  if (obs.cores.size() != partition_.n_cores()) {
    throw std::invalid_argument("VfiAdapter::decide: size mismatch");
  }
  return expand(inner_->decide(aggregate(obs)));
}

void VfiAdapter::on_budget_change(double new_budget_w) {
  inner_->on_budget_change(new_budget_w);
}

void VfiAdapter::reset() { inner_->reset(); }

}  // namespace odrl::core
