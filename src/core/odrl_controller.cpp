#include "core/odrl_controller.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "rl/qtable_io.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "rl/td_batch.hpp"
#include "sim/controller_registry.hpp"
#include "sim/validate.hpp"
#include "telemetry/recorder.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace odrl::core {

void OdrlConfig::validate() const {
  td.validate();
  realloc.validate();
  if (headroom_bins < 2) {
    throw std::invalid_argument("OdrlConfig: headroom_bins < 2");
  }
  if (mem_bins < 1) throw std::invalid_argument("OdrlConfig: mem_bins < 1");
  if (lambda < 0.0) throw std::invalid_argument("OdrlConfig: lambda < 0");
  if (kappa < 0.0) throw std::invalid_argument("OdrlConfig: kappa < 0");
  if (thermal_weight < 0.0) {
    throw std::invalid_argument("OdrlConfig: thermal_weight < 0");
  }
  if (target_utilization <= 0.0 || target_utilization > 1.0) {
    throw std::invalid_argument("OdrlConfig: target_utilization in (0, 1]");
  }
  if (realloc_period == 0) {
    throw std::invalid_argument("OdrlConfig: realloc_period == 0");
  }
  if (ema_alpha <= 0.0 || ema_alpha > 1.0) {
    throw std::invalid_argument("OdrlConfig: ema_alpha in (0, 1]");
  }
  if (budget_blend <= 0.0 || budget_blend > 1.0) {
    throw std::invalid_argument("OdrlConfig: budget_blend in (0, 1]");
  }
  if (target_fill <= 0.0 || target_fill > 1.0) {
    throw std::invalid_argument("OdrlConfig: target_fill in (0, 1]");
  }
  if (overcommit_gain < 0.0) {
    throw std::invalid_argument("OdrlConfig: overcommit_gain < 0");
  }
  if (overcommit_min < 0.5 || overcommit_max < overcommit_min) {
    throw std::invalid_argument("OdrlConfig: bad overcommit clamp range");
  }
}

namespace {
std::vector<std::size_t> state_dims(const OdrlConfig& config,
                                    std::size_t n_levels) {
  if (config.action_mode == ActionMode::kAbsolute) {
    return {config.headroom_bins, config.mem_bins, n_levels};
  }
  return {config.headroom_bins, config.mem_bins};
}

/// Chunk size for the sharded TD loop; fixed so the reward-sum reduction
/// tree depends only on the core count, never on the thread count.
constexpr std::size_t kTdGrain = 32;

/// Relative tolerance for detecting a *real* budget move in the observed
/// chip budget. on_budget_change rescales every per-core allocation, so
/// treating sub-ulp rounding differences as a move would re-trigger a
/// (slightly lossy) rescale every epoch.
constexpr double kBudgetRelTol = 1e-9;

bool budget_moved(double observed_w, double current_w) {
  return std::abs(observed_w - current_w) >
         kBudgetRelTol * std::max(std::abs(observed_w), std::abs(current_w));
}
}  // namespace

OdrlController::OdrlController(const arch::ChipConfig& chip, OdrlConfig config)
    : config_(config),
      n_cores_(chip.n_cores()),
      n_levels_(chip.vf_table().size()),
      headroom_disc_(0.0, 2.0, config.headroom_bins),
      mem_disc_(0.0, 1.0, config.mem_bins),
      states_(state_dims(config, chip.vf_table().size())),
      chip_budget_w_(chip.tdp_w()) {
  config_.validate();
  runtime_ = std::make_shared<task::Runtime>(config_.threads);
  util::Rng root(config_.seed);
  agents_.reserve(n_cores_);
  rngs_.reserve(n_cores_);
  for (std::size_t i = 0; i < n_cores_; ++i) {
    agents_.emplace_back(states_.size(), n_actions(), config_.td);
    rngs_.push_back(root.fork());
  }
  budgets_.assign(n_cores_, chip_budget_w_ / static_cast<double>(n_cores_));
  power_ema_.assign(n_cores_, util::Ema(config_.ema_alpha));
  sens_ema_.assign(n_cores_, util::Ema(config_.ema_alpha));
  prev_state_.assign(n_cores_, 0);
  prev_action_.assign(n_cores_, 0);
  was_offline_.assign(n_cores_, 0);
  td_ratio_.assign(n_cores_, 0.0);
  td_reward_.assign(n_cores_, 0.0);
  td_agents_.assign(n_cores_, nullptr);
  td_prev_state_.assign(n_cores_, 0);
  td_prev_action_.assign(n_cores_, 0);
  td_next_state_.assign(n_cores_, 0);
  td_next_action_.assign(n_cores_, 0);
  td_batch_reward_.assign(n_cores_, 0.0);
  td_scratch_.assign(3 * n_cores_, 0.0);
  level_freq_ghz_.reserve(n_levels_);
  for (const auto& point : chip.vf_table().points()) {
    level_freq_ghz_.push_back(point.freq_ghz);
  }
}

std::string OdrlController::name() const { return "OD-RL"; }

std::size_t OdrlController::n_actions() const {
  return config_.action_mode == ActionMode::kRelative ? 3 : n_levels_;
}

std::vector<std::size_t> OdrlController::initial_levels(std::size_t n_cores) {
  if (n_cores != n_cores_) {
    throw std::invalid_argument("OdrlController: core count mismatch");
  }
  // Start mid-table: low enough that a fair budget share is safe, high
  // enough that the climb to the learned operating point is short.
  return std::vector<std::size_t>(n_cores_, n_levels_ / 2);
}

std::size_t OdrlController::encode_state(double headroom_ratio,
                                         double mem_stall,
                                         std::size_t level) const {
  if (config_.action_mode == ActionMode::kAbsolute) {
    const std::size_t coords[3] = {headroom_disc_.bin(headroom_ratio),
                                   mem_disc_.bin(mem_stall), level};
    return states_.encode(coords);
  }
  const std::size_t coords[2] = {headroom_disc_.bin(headroom_ratio),
                                 mem_disc_.bin(mem_stall)};
  return states_.encode(coords);
}

std::size_t OdrlController::apply_action(std::size_t level,
                                         std::size_t action) const {
  if (config_.action_mode == ActionMode::kAbsolute) {
    return std::min(action, n_levels_ - 1);
  }
  // Relative: 0 = down, 1 = hold, 2 = up.
  switch (action) {
    case 0:
      return level == 0 ? 0 : level - 1;
    case 1:
      return level;
    case 2:
      return std::min(level + 1, n_levels_ - 1);
    default:
      throw std::logic_error("OdrlController: bad relative action");
  }
}

double OdrlController::attainment(double mem_stall_frac,
                                  std::size_t level) const {
  // From the observed stall fraction s at frequency f, the linear CPI-stack
  // identity gives IPS(f_max)/IPS(f) = r / ((1-s) + s*r) with r = f_max/f.
  // Both s and f come from counters, so this stays model-free in the
  // paper's sense (no fitted power/perf model).
  const double s = std::clamp(mem_stall_frac, 0.0, 1.0);
  const double r = level_freq_ghz_.back() / level_freq_ghz_[level];
  const double gain_to_max = r / ((1.0 - s) + s * r);
  return 1.0 / gain_to_max;
}

double OdrlController::reward(double power_w, double mem_stall_frac,
                              std::size_t level, double temp_c,
                              double core_budget_w) const {
  // Normalized throughput term in (0, 1]: fraction of the attainable
  // throughput for this phase (stationary across phases and levels), plus
  // the frequency-shaping term (see OdrlConfig::kappa).
  const double perf =
      attainment(mem_stall_frac, level) +
      config_.kappa * level_freq_ghz_[level] / level_freq_ghz_.back();
  // Overshoot term: charged when the core exceeds target_utilization of its
  // allocation -- agents learn to hold a safety margin *below* the line,
  // which is where the near-zero chip-level overshoot comes from.
  const double cap = config_.target_utilization * core_budget_w;
  double penalty = 0.0;
  if (cap > 0.0 && power_w > cap) {
    penalty = (power_w - cap) / cap;
  }
  double thermal = 0.0;
  if (config_.thermal_weight > 0.0 && temp_c > config_.thermal_safe_c) {
    thermal =
        config_.thermal_weight * (temp_c - config_.thermal_safe_c) / 20.0;
  }
  return perf - config_.lambda * penalty - thermal;
}

void OdrlController::decide_into(const sim::EpochResult& obs,
                                 std::span<std::size_t> out) {
  if (obs.cores.size() != n_cores_ || out.size() != n_cores_) {
    throw std::invalid_argument("OdrlController::decide: size mismatch");
  }
  // Contract: the out-span we are about to fill from the sharded TD loop
  // must not alias the observation columns that same loop reads.
  ODRL_VALIDATE(sim::validate_out_span(obs, out));

  // Track budget moved by the runner (power-cap events reach us through
  // on_budget_change, but the observation carries it too; trust the obs).
  // Compared with a relative tolerance: after a rescale, rounding noise in
  // an externally recomputed budget must not re-trigger the rescale.
  if (obs.budget_w > 0.0 && budget_moved(obs.budget_w, chip_budget_w_)) {
    on_budget_change(obs.budget_w);
  }

  // SoA input columns, read directly (no CoreObservation temporaries).
  const std::span<const std::size_t> obs_level = obs.cores.level();
  const std::span<const double> obs_power = obs.cores.power_w();
  const std::span<const double> obs_stall = obs.cores.mem_stall_frac();
  const std::span<const std::uint8_t> obs_online = obs.cores.online();

  // Smooth the reallocation inputs. Offline (power-gated) cores are
  // masked out: their zeroed sensors are gating artifacts, not demand
  // signals, and must not decay the EMAs they resume with.
  for (std::size_t i = 0; i < n_cores_; ++i) {
    if (obs_online[i] == 0) continue;
    power_ema_[i].update(obs_power[i]);
    sens_ema_[i].update(1.0 - obs_stall[i]);
  }

  // Coarse grain: budget reallocation against the virtual (overcommitted)
  // budget, with mu adapted so measured chip power tracks the fill target.
  chip_power_ema_.update(obs.chip_power_w);
  ++epochs_seen_;
  if (config_.global_realloc && epochs_seen_ % config_.realloc_period == 0) {
    const double fill_error =
        (config_.target_fill * chip_budget_w_ - chip_power_ema_.value()) /
        chip_budget_w_;
    mu_ = std::clamp(mu_ + config_.overcommit_gain * fill_error,
                     config_.overcommit_min, config_.overcommit_max);
    demands_.resize(n_cores_);
    for (std::size_t i = 0; i < n_cores_; ++i) {
      // An offline core presents zero demand and can never raise: the
      // reallocator migrates its share to cores that can spend it (it
      // still receives the floor fraction -- watts parked, not minted).
      const bool online = obs_online[i] != 0;
      demands_[i].power_w = online ? power_ema_[i].value() : 0.0;
      demands_[i].sensitivity = online ? sens_ema_[i].value() : 0.0;
      demands_[i].budget_w = budgets_[i];
      demands_[i].can_raise = online && obs_level[i] + 1 < n_levels_;
    }
    realloc_target_.resize(n_cores_);
    reallocate_budget_into(demands_, mu_ * chip_budget_w_, config_.realloc,
                           realloc_target_, realloc_scratch_);
    // Contract: reallocation conserves watts -- the target partition sums
    // to the virtual chip budget and every share is positive.
    ODRL_VALIDATE(
        sim::validate_budget_partition(realloc_target_, mu_ * chip_budget_w_));
    // Damped move toward the target keeps per-core caps quasi-stationary.
    const double beta = config_.budget_blend;
    for (std::size_t i = 0; i < n_cores_; ++i) {
      budgets_[i] = (1.0 - beta) * budgets_[i] + beta * realloc_target_[i];
    }
    ++realloc_count_;

    // Contract: no agent's table has been poisoned by a non-finite TD
    // update since the last coarse-grain move (checked at the realloc
    // cadence -- a full table scan per epoch would dominate checked runs).
#ifdef ODRL_CHECKED
    for (std::size_t i = 0; i < n_cores_; ++i) {
      ODRL_CHECK(agents_[i].table().all_finite(),
                 "non-finite Q-value in core " + std::to_string(i) +
                     "'s table");
    }
#endif

    // Telemetry: one event per coarse-grain move, carrying the
    // controller-internal signals (mu, mean reward, exploration rate, the
    // post-move budget partition). Serial section; pure observation.
    if (recorder_ && recorder_->active()) {
      telemetry::ReallocRecord event;
      event.epoch = obs.epoch;
      event.index = realloc_count_ - 1;
      event.mu = mu_;
      event.mean_reward = last_mean_reward_;
      event.epsilon = agents_.front().epsilon();
      event.chip_budget_w = chip_budget_w_;
      event.core_budgets = budgets_;
      recorder_->record_realloc(event);
      recorder_->counter("odrl.reallocs").add(1);
      recorder_->gauge("odrl.mu").set(mu_);
      recorder_->gauge("odrl.epsilon").set(event.epsilon);
      recorder_->gauge("odrl.mean_reward").set(last_mean_reward_);
    }
  }

  // Fine grain: per-core TD step, sharded across the task runtime. Each
  // core owns
  // its agent, exploration stream and bookkeeping slots, so the loop is
  // embarrassingly parallel; the reward sum is reduced over chunk-ordered
  // partials and stays bit-identical for every thread count. Each chunk
  // dispatches between the original fused loop and the vectorized
  // column/batch restructuring -- same results, bit for bit.
  const bool vec = util::simd_active();
  const double reward_sum = runtime_->parallel_reduce(
      n_cores_, kTdGrain, 0.0,
      [&](std::size_t begin, std::size_t end) {
        return vec ? td_chunk_vec(obs, out, begin, end)
                   : td_chunk_scalar(obs, out, begin, end);
      },
      [](double acc, double partial) { return acc + partial; },
      reward_partials_);
  if (have_prev_) {
    last_mean_reward_ = reward_sum / static_cast<double>(n_cores_);
  }
  have_prev_ = true;
}

double OdrlController::td_chunk_scalar(const sim::EpochResult& obs,
                                       std::span<std::size_t> out,
                                       std::size_t begin, std::size_t end) {
  const std::span<const std::size_t> obs_level = obs.cores.level();
  const std::span<const double> obs_power = obs.cores.power_w();
  const std::span<const double> obs_stall = obs.cores.mem_stall_frac();
  const std::span<const double> obs_temp = obs.cores.temp_c();
  const std::span<const std::uint8_t> obs_online = obs.cores.online();
  double local_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    // A power-gated core sits out the TD loop entirely: no action (its
    // exploration stream draws nothing), no learning from its zeroed
    // sensors, level held for its return. The was_offline_ flag also
    // suppresses the update *across* the gap -- the stored (s, a) predate
    // the outage.
    if (obs_online[i] == 0) {
      was_offline_[i] = 1;
      out[i] = obs_level[i];
      continue;
    }
    // Headroom relative to the *penalized* cap, so ratio 1.0 (a bin edge)
    // is exactly where the reward turns negative.
    const double cap = config_.target_utilization * budgets_[i];
    const double ratio = cap > 0.0 ? obs_power[i] / cap : 2.0;
    const std::size_t state = encode_state(ratio, obs_stall[i], obs_level[i]);

    // Select the next action first so SARSA can learn on-policy from the
    // action actually taken; Q-learning ignores it (max-bootstrap).
    const std::size_t action = agents_[i].act(state, rngs_[i]);
    if (have_prev_ && was_offline_[i] == 0) {
      const double r = reward(obs_power[i], obs_stall[i], obs_level[i],
                              obs_temp[i], budgets_[i]);
      local_sum += r;
      agents_[i].learn(prev_state_[i], prev_action_[i], r, state, action);
    }
    prev_state_[i] = state;
    prev_action_[i] = action;
    was_offline_[i] = 0;
    out[i] = apply_action(obs_level[i], action);
  }
  return local_sum;
}

double OdrlController::td_chunk_vec(const sim::EpochResult& obs,
                                    std::span<std::size_t> out,
                                    std::size_t begin, std::size_t end) {
  const std::span<const std::size_t> obs_level = obs.cores.level();
  const std::span<const double> obs_power = obs.cores.power_w();
  const std::span<const double> obs_stall = obs.cores.mem_stall_frac();
  const std::span<const double> obs_temp = obs.cores.temp_c();
  const std::span<const std::uint8_t> obs_online = obs.cores.online();

  // Pass 1 -- vectorized reward/ratio columns. Pure elementwise IEEE
  // arithmetic in exactly reward()'s association order, so every value is
  // bit-identical to the scalar call; values for offline/ineligible cores
  // are computed and discarded (cheaper than masking the lanes).
  {
    using util::kSimdLanes;
    using util::vdouble;
    const vdouble zero(0.0);
    const vdouble one(1.0);
    const vdouble two(2.0);
    const vdouble fmaxv(level_freq_ghz_.back());
    const vdouble tu(config_.target_utilization);
    const vdouble kap(config_.kappa);
    const vdouble lam(config_.lambda);
    std::size_t i = begin;
    for (; i + kSimdLanes <= end; i += kSimdLanes) {
      const vdouble fl(
          [&](auto k) { return level_freq_ghz_[obs_level[i + k]]; });
      const vdouble stall = util::vload(&obs_stall[i]);
      const vdouble s = util::vclamp01(stall);
      const vdouble r = fmaxv / fl;
      const vdouble gain = r / ((one - s) + s * r);
      const vdouble perf = one / gain + kap * fl / fmaxv;
      const vdouble cap = tu * util::vload(&budgets_[i]);
      const vdouble p = util::vload(&obs_power[i]);
      const auto cap_pos = cap > zero;
      const vdouble penalty =
          util::vselect(cap_pos && (p > cap), (p - cap) / cap, zero);
      vdouble thermal = zero;
      if (config_.thermal_weight > 0.0) {
        const vdouble t = util::vload(&obs_temp[i]);
        const vdouble safe(config_.thermal_safe_c);
        thermal = util::vselect(
            t > safe,
            vdouble(config_.thermal_weight) * (t - safe) / vdouble(20.0),
            zero);
      }
      util::vstore(&td_reward_[i], perf - lam * penalty - thermal);
      util::vstore(&td_ratio_[i], util::vselect(cap_pos, p / cap, two));
    }
    for (; i < end; ++i) {
      const double cap = config_.target_utilization * budgets_[i];
      td_ratio_[i] = cap > 0.0 ? obs_power[i] / cap : 2.0;
      td_reward_[i] = reward(obs_power[i], obs_stall[i], obs_level[i],
                             obs_temp[i], budgets_[i]);
    }
  }

  // Pass 2 -- scalar control flow: state encoding, action selection,
  // bookkeeping, and compaction of the eligible transitions into this
  // chunk's batch slots. Same per-core order as the fused loop; deferring
  // each agent's learn() past its act() is legal because an agent's table
  // is touched at most once per epoch.
  double local_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (obs_online[i] == 0) {
      was_offline_[i] = 1;
      out[i] = obs_level[i];
      continue;
    }
    const std::size_t state =
        encode_state(td_ratio_[i], obs_stall[i], obs_level[i]);
    const std::size_t action = agents_[i].act(state, rngs_[i]);
    if (have_prev_ && was_offline_[i] == 0) {
      local_sum += td_reward_[i];
      const std::size_t slot = begin + count;
      td_agents_[slot] = &agents_[i];
      td_prev_state_[slot] = prev_state_[i];
      td_prev_action_[slot] = prev_action_[i];
      td_next_state_[slot] = state;
      td_next_action_[slot] = action;
      td_batch_reward_[slot] = td_reward_[i];
      ++count;
    }
    prev_state_[i] = state;
    prev_action_[i] = action;
    was_offline_[i] = 0;
    out[i] = apply_action(obs_level[i], action);
  }

  // Pass 3 -- batched TD update over the compacted transitions.
  if (count > 0) {
    rl::TdBatchSpans batch;
    batch.agents = std::span<rl::TdAgent* const>(&td_agents_[begin], count);
    batch.prev_state =
        std::span<const std::size_t>(&td_prev_state_[begin], count);
    batch.prev_action =
        std::span<const std::size_t>(&td_prev_action_[begin], count);
    batch.next_state =
        std::span<const std::size_t>(&td_next_state_[begin], count);
    batch.next_action =
        std::span<const std::size_t>(&td_next_action_[begin], count);
    batch.reward = std::span<const double>(&td_batch_reward_[begin], count);
    rl::td_update_batch(
        batch, std::span<double>(&td_scratch_[3 * begin], 3 * count));
  }
  return local_sum;
}

void OdrlController::on_budget_change(double new_budget_w) {
  if (new_budget_w <= 0.0) {
    throw std::invalid_argument("OdrlController: budget <= 0");
  }
  // Rescale allocations immediately so agents see the new headroom next
  // epoch instead of waiting out the reallocation period.
  const double scale = new_budget_w / chip_budget_w_;
  for (double& b : budgets_) b *= scale;
  chip_budget_w_ = new_budget_w;
}

void OdrlController::set_threads(std::size_t threads) {
  config_.threads = threads;
  runtime_ = std::make_shared<task::Runtime>(threads);
}

void OdrlController::set_runtime(std::shared_ptr<task::Runtime> runtime) {
  if (!runtime) {
    throw std::invalid_argument("OdrlController::set_runtime: null runtime");
  }
  config_.threads = runtime->size();
  runtime_ = std::move(runtime);
}

void OdrlController::reset() {
  for (auto& agent : agents_) agent.reset();
  for (auto& ema : power_ema_) ema.reset();
  for (auto& ema : sens_ema_) ema.reset();
  std::fill(budgets_.begin(), budgets_.end(),
            chip_budget_w_ / static_cast<double>(n_cores_));
  have_prev_ = false;
  std::fill(was_offline_.begin(), was_offline_.end(), 0);
  last_mean_reward_ = 0.0;
  realloc_count_ = 0;
  epochs_seen_ = 0;
  mu_ = 1.0;
  chip_power_ema_.reset();
}

void OdrlController::save_state(snapshot::Writer& w) const {
  w.u64(n_cores_);
  for (std::size_t i = 0; i < n_cores_; ++i) {
    agents_[i].save_state(w);
    snapshot::save_rng(w, rngs_[i]);
    w.f64(budgets_[i]);
    snapshot::save_ema(w, power_ema_[i]);
    snapshot::save_ema(w, sens_ema_[i]);
    w.u64(prev_state_[i]);
    w.u64(prev_action_[i]);
    w.u8(was_offline_[i]);
  }
  w.f64(chip_budget_w_);
  w.u8(have_prev_ ? 1 : 0);
  w.f64(last_mean_reward_);
  w.u64(realloc_count_);
  w.u64(epochs_seen_);
  w.f64(mu_);
  snapshot::save_ema(w, chip_power_ema_);
}

void OdrlController::load_state(snapshot::Reader& r) {
  const std::uint64_t cores = r.u64();
  if (cores != n_cores_) {
    throw snapshot::SnapshotError(
        snapshot::SnapshotStatus::kDimensionMismatch,
        "OD-RL snapshot is for " + std::to_string(cores) +
            " cores, controller has " + std::to_string(n_cores_));
  }
  for (std::size_t i = 0; i < n_cores_; ++i) {
    agents_[i].load_state(r);
    snapshot::load_rng(r, rngs_[i]);
    const double budget = r.f64();
    if (!std::isfinite(budget) || budget <= 0.0) {
      throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                    "per-core budget must be finite > 0");
    }
    budgets_[i] = budget;
    snapshot::load_ema(r, power_ema_[i]);
    snapshot::load_ema(r, sens_ema_[i]);
    const std::uint64_t state = r.u64();
    if (state >= states_.size()) {
      throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                    "previous state id out of range");
    }
    prev_state_[i] = static_cast<std::size_t>(state);
    const std::uint64_t action = r.u64();
    if (action >= n_actions()) {
      throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                    "previous action id out of range");
    }
    prev_action_[i] = static_cast<std::size_t>(action);
    was_offline_[i] = snapshot::load_bool(r, "was_offline") ? 1 : 0;
  }
  const double chip_budget = r.f64();
  if (!std::isfinite(chip_budget) || chip_budget <= 0.0) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                  "chip budget must be finite > 0");
  }
  chip_budget_w_ = chip_budget;
  have_prev_ = snapshot::load_bool(r, "have_prev");
  const double mean_reward = r.f64();
  if (!std::isfinite(mean_reward)) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kNonFinite,
                                  "last mean reward must be finite");
  }
  last_mean_reward_ = mean_reward;
  realloc_count_ = static_cast<std::size_t>(r.u64());
  epochs_seen_ = static_cast<std::size_t>(r.u64());
  const double mu = r.f64();
  if (!std::isfinite(mu) || mu <= 0.0) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                  "overcommit multiplier must be finite > 0");
  }
  mu_ = mu;
  snapshot::load_ema(r, chip_power_ema_);
}

namespace {
/// The 'POLI' section tag of the policy artifact (warm-start tables).
constexpr std::uint32_t kPolicySectionTag = snapshot::section_tag("POLI");
constexpr const char* kLegacyPolicyMagic = "# odrl-policy v1";
}  // namespace

void OdrlController::save_policy(std::ostream& out) const {
  snapshot::Writer w;
  w.begin_section(kPolicySectionTag);
  w.u64(n_cores_);
  for (const auto& agent : agents_) {
    rl::save_qtable_payload(w, agent.table());
  }
  w.end_section();
  const std::string blob = std::move(w).finish();
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kIoError,
                                  "save_policy: stream failure");
  }
}

void OdrlController::load_policy(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kIoError,
                                  "load_policy: stream failure");
  }
  const std::string blob = std::move(buf).str();
  if (blob.size() >= snapshot::kMagic.size() &&
      std::string_view(blob).substr(0, snapshot::kMagic.size()) ==
          snapshot::kMagic) {
    snapshot::Reader r(blob);
    r.open_section(kPolicySectionTag);
    const std::uint64_t cores = r.u64();
    if (cores != n_cores_) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kDimensionMismatch,
          "policy is for " + std::to_string(cores) + " cores, controller has " +
              std::to_string(n_cores_));
    }
    for (auto& agent : agents_) {
      agent.restore_table(rl::load_qtable_payload(r));
    }
    r.expect_section_end();
    return;
  }
  // Legacy text artifact: header line, core count, then one legacy text
  // Q-table block per core.
  std::istringstream text(blob);
  std::string line;
  if (!std::getline(text, line) || line != kLegacyPolicyMagic) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadMagic,
                                  "OdrlController::load_policy: bad header");
  }
  std::size_t cores = 0;
  if (!(text >> cores) || cores != n_cores_) {
    throw snapshot::SnapshotError(
        snapshot::SnapshotStatus::kDimensionMismatch,
        "OdrlController::load_policy: core count mismatch");
  }
  for (auto& agent : agents_) {
    text >> std::ws;  // consume the newline left by formatted reads
    agent.restore_table(rl::load_legacy_qtable_text(text));
  }
}

const rl::TdAgent& OdrlController::agent(std::size_t core) const {
  if (core >= agents_.size()) {
    throw std::out_of_range("OdrlController::agent: core out of range");
  }
  return agents_[core];
}

std::size_t OdrlController::last_state(std::size_t core) const {
  if (core >= prev_state_.size()) {
    throw std::out_of_range("OdrlController::last_state: core out of range");
  }
  return prev_state_[core];
}

// -- Registry wiring ("OD-RL") --
namespace {

std::unique_ptr<sim::Controller> make_odrl(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  OdrlConfig cfg;
  cfg.td.gamma = ov.get_double("gamma", cfg.td.gamma);
  cfg.td.q_init = ov.get_double("q_init", cfg.td.q_init);
  const std::string rule =
      ov.get_string("rule", cfg.td.rule == rl::TdRule::kSarsa ? "sarsa"
                                                              : "q-learning");
  if (rule == "sarsa") {
    cfg.td.rule = rl::TdRule::kSarsa;
  } else if (rule == "q-learning" || rule == "q") {
    cfg.td.rule = rl::TdRule::kQLearning;
  } else {
    throw std::invalid_argument(
        "OD-RL override \"rule\": expected q-learning|sarsa, got \"" + rule +
        "\"");
  }
  if (ov.contains("epsilon0") || ov.contains("epsilon_min") ||
      ov.contains("epsilon_decay")) {
    cfg.td.epsilon = rl::EpsilonSchedule(ov.get_double("epsilon0", 0.4),
                                         ov.get_double("epsilon_min", 0.03),
                                         ov.get_double("epsilon_decay", 0.997));
  } else {
    // Mark consumed so e.g. {"epsilon0": ...} alone works symmetrically.
    ov.get_double("epsilon0", 0.0);
    ov.get_double("epsilon_min", 0.0);
    ov.get_double("epsilon_decay", 0.0);
  }
  if (ov.contains("alpha")) {
    cfg.td.alpha =
        rl::LearningRateSchedule::constant(ov.get_double("alpha", 0.2));
  }
  const std::string mode = ov.get_string(
      "action_mode",
      cfg.action_mode == ActionMode::kAbsolute ? "absolute" : "relative");
  if (mode == "absolute") {
    cfg.action_mode = ActionMode::kAbsolute;
  } else if (mode == "relative") {
    cfg.action_mode = ActionMode::kRelative;
  } else {
    throw std::invalid_argument(
        "OD-RL override \"action_mode\": expected relative|absolute, got \"" +
        mode + "\"");
  }
  cfg.headroom_bins = ov.get_size("headroom_bins", cfg.headroom_bins);
  cfg.mem_bins = ov.get_size("mem_bins", cfg.mem_bins);
  cfg.lambda = ov.get_double("lambda", cfg.lambda);
  cfg.kappa = ov.get_double("kappa", cfg.kappa);
  cfg.thermal_weight = ov.get_double("thermal_weight", cfg.thermal_weight);
  cfg.thermal_safe_c = ov.get_double("thermal_safe_c", cfg.thermal_safe_c);
  cfg.target_utilization =
      ov.get_double("target_utilization", cfg.target_utilization);
  cfg.realloc_period = ov.get_size("realloc_period", cfg.realloc_period);
  cfg.global_realloc = ov.get_bool("global_realloc", cfg.global_realloc);
  cfg.ema_alpha = ov.get_double("ema_alpha", cfg.ema_alpha);
  cfg.budget_blend = ov.get_double("budget_blend", cfg.budget_blend);
  cfg.target_fill = ov.get_double("target_fill", cfg.target_fill);
  cfg.overcommit_gain = ov.get_double("overcommit_gain", cfg.overcommit_gain);
  cfg.overcommit_min = ov.get_double("overcommit_min", cfg.overcommit_min);
  cfg.overcommit_max = ov.get_double("overcommit_max", cfg.overcommit_max);
  cfg.seed = ov.get_u64("seed", cfg.seed);
  cfg.threads = ov.get_size("threads", cfg.threads);
  return std::make_unique<OdrlController>(chip, cfg);
}

const sim::ControllerRegistrar odrl_registrar{"OD-RL", &make_odrl};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void odrl_controller_registered() {}

}  // namespace odrl::core
