#include "core/budget_realloc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/validate.hpp"
#include "util/check.hpp"

namespace odrl::core {

void ReallocConfig::validate() const {
  if (floor_fraction < 0.0 || floor_fraction >= 1.0) {
    throw std::invalid_argument("ReallocConfig: floor_fraction in [0, 1)");
  }
  if (saturated_headroom < 1.0) {
    throw std::invalid_argument("ReallocConfig: saturated_headroom < 1");
  }
  if (idle_headroom < saturated_headroom) {
    throw std::invalid_argument(
        "ReallocConfig: idle_headroom must be >= saturated_headroom");
  }
  if (growth_headroom < idle_headroom) {
    throw std::invalid_argument(
        "ReallocConfig: growth_headroom must be >= idle_headroom");
  }
}

void reallocate_budget_into(std::span<const CoreDemand> demands,
                            double chip_budget_w, const ReallocConfig& config,
                            std::span<double> out,
                            std::vector<double>& scratch) {
  config.validate();
  if (demands.empty()) {
    throw std::invalid_argument("reallocate_budget: no cores");
  }
  if (chip_budget_w <= 0.0) {
    throw std::invalid_argument("reallocate_budget: budget <= 0");
  }
  if (out.size() != demands.size()) {
    throw std::invalid_argument("reallocate_budget_into: out size mismatch");
  }
  const std::size_t n = demands.size();
  const double floor_each =
      config.floor_fraction * chip_budget_w / static_cast<double>(n);

  // Scratch layout: [0, n) demand, [n, 2n) utility. assign() reuses
  // capacity, so the caller pays the allocation once.
  scratch.assign(2 * n, 0.0);
  const std::span<double> demand(scratch.data(), n);
  const std::span<double> utility(scratch.data() + n, n);

  // Demand: consumption scaled by a sensitivity-blended headroom factor.
  // Every unsaturated core gets at least one-level-step headroom; saturated
  // cores get a guard band only (they cannot grow, and inflated demand from
  // them would permanently over-subscribe the chip).
  double demand_sum = 0.0;
  double utility_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const CoreDemand& d = demands[i];
    const double sens = std::clamp(d.sensitivity, 0.0, 1.0);
    double headroom = config.saturated_headroom;
    if (d.can_raise) {
      headroom = config.idle_headroom +
                 sens * (config.growth_headroom - config.idle_headroom);
    }
    demand[i] = std::max(floor_each, std::max(0.0, d.power_w) * headroom);
    demand_sum += demand[i];
    // Squared sensitivity skews surplus hard toward cores that convert
    // watts into instructions; saturated cores cannot use surplus at all.
    utility[i] = (0.05 + sens * sens) * (d.can_raise ? 1.0 : 0.05);
    utility_sum += utility[i];
  }

  if (demand_sum <= chip_budget_w) {
    // Everyone gets their demand; surplus follows marginal utility.
    const double surplus = chip_budget_w - demand_sum;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = demand[i] + surplus * utility[i] / utility_sum;
    }
  } else {
    // Over-subscribed: divide by demand weighted with utility, so the cut
    // falls hardest on the cores that benefit least, subject to per-core
    // floors. (Floors can push the sum above B; the final renormalization
    // resolves that -- floors are soft under extreme pressure.)
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weight_sum += demand[i] * (0.15 + utility[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double w = demand[i] * (0.15 + utility[i]);
      out[i] = std::max(floor_each, chip_budget_w * w / weight_sum);
    }
  }

  // Exact renormalization: floating error (or soft floors) must not leak or
  // mint budget.
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  const double scale = chip_budget_w / sum;
  for (double& b : out) b *= scale;

  // Post-condition: the partition is positive everywhere and sums to the
  // chip budget (the paper's overshoot claims rest on this conservation).
  ODRL_VALIDATE(sim::validate_budget_partition(out, chip_budget_w));
}

std::vector<double> reallocate_budget(std::span<const CoreDemand> demands,
                                      double chip_budget_w,
                                      const ReallocConfig& config) {
  std::vector<double> budgets(demands.size());
  std::vector<double> scratch;
  reallocate_budget_into(demands, chip_budget_w, config, budgets, scratch);
  return budgets;
}

}  // namespace odrl::core
