#include "core/budget_realloc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sim/validate.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace odrl::core {

void ReallocConfig::validate() const {
  if (floor_fraction < 0.0 || floor_fraction >= 1.0) {
    throw std::invalid_argument("ReallocConfig: floor_fraction in [0, 1)");
  }
  if (saturated_headroom < 1.0) {
    throw std::invalid_argument("ReallocConfig: saturated_headroom < 1");
  }
  if (idle_headroom < saturated_headroom) {
    throw std::invalid_argument(
        "ReallocConfig: idle_headroom must be >= saturated_headroom");
  }
  if (growth_headroom < idle_headroom) {
    throw std::invalid_argument(
        "ReallocConfig: growth_headroom must be >= idle_headroom");
  }
}

namespace {

/// Per-core demand/utility rule, shared by the scalar variant and the
/// vectorized variant's remainder tail.
///
/// Demand: consumption scaled by a sensitivity-blended headroom factor.
/// Every unsaturated core gets at least one-level-step headroom; saturated
/// cores get a guard band only (they cannot grow, and inflated demand from
/// them would permanently over-subscribe the chip). Squared sensitivity
/// skews surplus hard toward cores that convert watts into instructions;
/// saturated cores cannot use surplus at all.
inline void demand_utility_at(const CoreDemand& d, const ReallocConfig& config,
                              double floor_each, double& demand_i,
                              double& utility_i) {
  const double sens = std::clamp(d.sensitivity, 0.0, 1.0);
  double headroom = config.saturated_headroom;
  if (d.can_raise) {
    headroom = config.idle_headroom +
               sens * (config.growth_headroom - config.idle_headroom);
  }
  demand_i = std::max(floor_each, std::max(0.0, d.power_w) * headroom);
  utility_i = (0.05 + sens * sens) * (d.can_raise ? 1.0 : 0.05);
}

/// Original fused-loop algorithm; the reference the vectorized variant is
/// held bit-identical to (tests/simd_kernel_test.cpp).
void realloc_scalar(std::span<const CoreDemand> demands, double chip_budget_w,
                    const ReallocConfig& config, double floor_each,
                    std::span<double> out, std::span<double> demand,
                    std::span<double> utility) {
  const std::size_t n = demands.size();
  double demand_sum = 0.0;
  double utility_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    demand_utility_at(demands[i], config, floor_each, demand[i], utility[i]);
    demand_sum += demand[i];
    utility_sum += utility[i];
  }

  if (demand_sum <= chip_budget_w) {
    // Everyone gets their demand; surplus follows marginal utility.
    const double surplus = chip_budget_w - demand_sum;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = demand[i] + surplus * utility[i] / utility_sum;
    }
  } else {
    // Over-subscribed: divide by demand weighted with utility, so the cut
    // falls hardest on the cores that benefit least, subject to per-core
    // floors. (Floors can push the sum above B; the final renormalization
    // resolves that -- floors are soft under extreme pressure.)
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      weight_sum += demand[i] * (0.15 + utility[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double w = demand[i] * (0.15 + utility[i]);
      out[i] = std::max(floor_each, chip_budget_w * w / weight_sum);
    }
  }
}

/// Vectorized variant: same arithmetic restructured as three elementwise
/// map passes over the demand/utility columns, with every reduction a
/// scalar fold in index order (util::ordered_sum) -- exactly the addition
/// sequence the fused loop performs, so the result is bit-identical.
void realloc_vec(std::span<const CoreDemand> demands, double chip_budget_w,
                 const ReallocConfig& config, double floor_each,
                 std::span<double> out, std::span<double> demand,
                 std::span<double> utility) {
  using util::vdouble;
  using util::kSimdLanes;
  const std::size_t n = demands.size();
  const vdouble zero(0.0);
  const vdouble one(1.0);
  const vdouble floorv(floor_each);
  const vdouble sat(config.saturated_headroom);
  const vdouble idle(config.idle_headroom);
  const vdouble grow_minus_idle(config.growth_headroom -
                                config.idle_headroom);
  std::size_t i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const vdouble p([&](auto k) { return demands[i + k].power_w; });
    const vdouble s([&](auto k) { return demands[i + k].sensitivity; });
    const vdouble cr(
        [&](auto k) { return demands[i + k].can_raise ? 1.0 : 0.0; });
    const auto raisable = cr > vdouble(0.5);
    const vdouble sens = util::vclamp01(s);
    const vdouble headroom =
        util::vselect(raisable, idle + sens * grow_minus_idle, sat);
    // Selects (not hardware min/max) mirror std::max's exact tie and NaN
    // semantics, keeping the column bitwise equal to the scalar pass.
    const vdouble pclip = util::vselect(p > zero, p, zero);
    const vdouble draw = pclip * headroom;
    util::vstore(&demand[i], util::vselect(draw > floorv, draw, floorv));
    const vdouble scale = util::vselect(raisable, one, vdouble(0.05));
    util::vstore(&utility[i], (vdouble(0.05) + sens * sens) * scale);
  }
  for (; i < n; ++i) {
    demand_utility_at(demands[i], config, floor_each, demand[i], utility[i]);
  }
  const double demand_sum = util::ordered_sum(demand);
  const double utility_sum = util::ordered_sum(utility);

  if (demand_sum <= chip_budget_w) {
    const double surplus = chip_budget_w - demand_sum;
    const vdouble sv(surplus);
    const vdouble usum(utility_sum);
    for (i = 0; i + kSimdLanes <= n; i += kSimdLanes) {
      const vdouble d = util::vload(&demand[i]);
      const vdouble u = util::vload(&utility[i]);
      util::vstore(&out[i], d + sv * u / usum);
    }
    for (; i < n; ++i) {
      out[i] = demand[i] + surplus * utility[i] / utility_sum;
    }
  } else {
    // Weight pass uses `out` as scratch, then rescales it in place.
    const vdouble bias(0.15);
    for (i = 0; i + kSimdLanes <= n; i += kSimdLanes) {
      const vdouble d = util::vload(&demand[i]);
      const vdouble u = util::vload(&utility[i]);
      util::vstore(&out[i], d * (bias + u));
    }
    for (; i < n; ++i) {
      out[i] = demand[i] * (0.15 + utility[i]);
    }
    const double weight_sum = util::ordered_sum(out);
    const vdouble bv(chip_budget_w);
    const vdouble wsum(weight_sum);
    for (i = 0; i + kSimdLanes <= n; i += kSimdLanes) {
      const vdouble w = util::vload(&out[i]);
      const vdouble share = bv * w / wsum;
      util::vstore(&out[i], util::vselect(share > floorv, share, floorv));
    }
    for (; i < n; ++i) {
      out[i] = std::max(floor_each, chip_budget_w * out[i] / weight_sum);
    }
  }
}

}  // namespace

void reallocate_budget_into(std::span<const CoreDemand> demands,
                            double chip_budget_w, const ReallocConfig& config,
                            std::span<double> out,
                            std::vector<double>& scratch) {
  config.validate();
  if (demands.empty()) {
    throw std::invalid_argument("reallocate_budget: no cores");
  }
  if (chip_budget_w <= 0.0) {
    throw std::invalid_argument("reallocate_budget: budget <= 0");
  }
  if (out.size() != demands.size()) {
    throw std::invalid_argument("reallocate_budget_into: out size mismatch");
  }
  const std::size_t n = demands.size();
  const double floor_each =
      config.floor_fraction * chip_budget_w / static_cast<double>(n);

  // Scratch layout: [0, n) demand, [n, 2n) utility. assign() reuses
  // capacity, so the caller pays the allocation once.
  scratch.assign(2 * n, 0.0);
  const std::span<double> demand(scratch.data(), n);
  const std::span<double> utility(scratch.data() + n, n);

  if (util::simd_active()) {
    realloc_vec(demands, chip_budget_w, config, floor_each, out, demand,
                utility);
  } else {
    realloc_scalar(demands, chip_budget_w, config, floor_each, out, demand,
                   utility);
  }

  // Exact renormalization: floating error (or soft floors) must not leak or
  // mint budget.
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  const double scale = chip_budget_w / sum;
  for (double& b : out) b *= scale;

  // Post-condition: the partition is positive everywhere and sums to the
  // chip budget (the paper's overshoot claims rest on this conservation).
  ODRL_VALIDATE(sim::validate_budget_partition(out, chip_budget_w));
}

std::vector<double> reallocate_budget(std::span<const CoreDemand> demands,
                                      double chip_budget_w,
                                      const ReallocConfig& config) {
  std::vector<double> budgets(demands.size());
  std::vector<double> scratch;
  reallocate_budget_into(demands, chip_budget_w, config, budgets, scratch);
  return budgets;
}

}  // namespace odrl::core
