// Multi-chip sharded simulation: N independent chips -- each its own
// ManyCoreSystem, controller, fault schedule and RNG substreams -- stepped
// concurrently as whole-run tasks on ONE shared task runtime
// (task/runtime.hpp). Chips never interact physically; what they share is
// the worker fleet, so a chip whose epoch loop stalls (e.g. a serial
// controller) donates its idle workers to siblings via work stealing.
//
// Determinism: every chip's run is bit-identical to running it alone
// (run_closed_loop's own contract -- chunk boundaries and reduction order
// are pure functions of (n, grain), never of which worker executed what),
// and results/aggregates are assembled in chip-index order on the calling
// thread after all chips complete. A fleet run is therefore bit-identical
// across worker counts, pinning, and scheduling jitter.
//
// Snapshot frame (see DESIGN.md "Task runtime & multi-chip sharding"):
// a multi-chip snapshot is one versioned blob with an MCHD header section
// (chip count + capture epoch) followed by one CHnn section per chip, each
// embedding that chip's standard single-run snapshot (RUNR/SYST/FLTE/CTRL)
// as an opaque string. Resuming re-validates the chip count and hands each
// chip its own embedded blob, so a resumed fleet continues bit-identically
// to one that never stopped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "task/runtime.hpp"

namespace odrl::sim {

/// Multi-chip snapshot header section: u64 chip count, u64 capture epoch.
inline constexpr std::uint32_t kSnapshotMultiChipTag =
    snapshot::section_tag("MCHD");

/// FourCC tag of chip `chip`'s embedded-run section: "CH00".."CH99".
/// Throws std::out_of_range for chip >= 100 (the two-digit namespace).
std::uint32_t chip_section_tag(std::size_t chip);

/// One chip of a fleet: non-owning system/controller plus that chip's run
/// configuration. `config.threads` and `config.runtime` must be unset --
/// run_multichip installs the shared fleet runtime itself. `config`'s
/// snapshot fields must likewise be unset when the *fleet-level* snapshot
/// fields of MultiChipConfig are used (the frame owns every chip's blob).
struct ChipSpec {
  ManyCoreSystem* system = nullptr;
  Controller* controller = nullptr;
  RunConfig config;
  /// Telemetry/reporting label; empty = "chip<index>".
  std::string tag;
};

struct MultiChipConfig {
  /// Worker threads of the shared runtime (0 = hardware concurrency).
  /// Ignored when `runtime` is provided.
  std::size_t workers = 1;
  bool pin_workers = false;
  /// Optional externally owned runtime shared with other fleets; null =
  /// run_multichip builds a private one from workers/pin_workers.
  std::shared_ptr<task::Runtime> runtime;

  /// Fleet snapshot capture: when `snapshot_out` is non-null, every chip
  /// captures at measured epoch `snapshot_epoch` and the per-chip blobs
  /// are framed into one MCHD + CHnn multi-chip snapshot.
  std::size_t snapshot_epoch = 0;
  std::string* snapshot_out = nullptr;
  /// Fleet resume: a blob produced by a snapshot_out capture. Chip count
  /// must match or run_multichip throws
  /// snapshot::SnapshotError(kDimensionMismatch). Non-owning.
  const std::string* resume_snapshot = nullptr;

  /// Per-chip telemetry sessions. When non-empty, every chip WITHOUT its
  /// own RunConfig::recorder gets a fleet-owned recorder writing to
  /// `<telemetry_dir>/<sanitized tag>.<csv|jsonl>` (tag defaults to
  /// "chip<%02zu index>"; characters outside [A-Za-z0-9._-] become '_').
  /// Chips that do carry their own recorder keep it -- only the session
  /// tag is threaded into their records. Duplicate sanitized filenames
  /// throw std::invalid_argument before any chip starts.
  std::string telemetry_dir;
  enum class TelemetryFormat { kCsv, kJsonl };
  TelemetryFormat telemetry_format = TelemetryFormat::kCsv;

  void validate(std::span<const ChipSpec> chips) const;
};

/// The effective session tag of chip `index` (spec.tag, or the
/// "chip<%02zu>" default) and its sanitized sink filename stem. Exposed
/// for tests and fleet monitors that need to locate a chip's sink file.
std::string chip_session_tag(const ChipSpec& spec, std::size_t index);
std::string sanitize_session_tag(const std::string& tag);

struct MultiChipResult {
  /// Per-chip results, chip-index order (chips[i] ran specs[i]).
  std::vector<RunResult> chips;
  /// Fleet-wide runtime counter deltas over this run (steals, overflows,
  /// parks, ...). Observational; approximate if `runtime` was shared with
  /// concurrent work outside this fleet.
  task::RuntimeStats runtime_stats;
  double wall_s = 0.0;

  // Chip-index-ordered aggregates (deterministic fold, see above).
  std::size_t total_epochs = 0;  ///< sum of per-chip measured epochs
  double total_instructions = 0.0;
  double total_energy_j = 0.0;
  double otb_energy_j = 0.0;
  /// Mean of per-chip mean powers (fleets are homogeneous in epoch count
  /// in the common case; per-chip figures remain in `chips`).
  double mean_power_w = 0.0;
  /// Fleet throughput in billions of instructions per second: total
  /// instructions over the longest chip's simulated time.
  double bips() const;
};

/// Runs every chip's closed loop concurrently on one runtime and returns
/// per-chip results plus deterministic fleet aggregates. Throws the first
/// chip failure (in scheduling order) after all chips have settled;
/// validation errors throw before any chip starts.
MultiChipResult run_multichip(std::span<ChipSpec> chips,
                              const MultiChipConfig& config = {});

/// Per-chip seed fork: draw `chip` of stream `stream` from `root`, a pure
/// function of (root, stream, chip) -- fleet size never shifts a chip's
/// streams, and distinct streams (sim / workload / controller) never
/// alias. Fleet uses streams 0/1/2; exposed for tests and out-of-tree
/// fleet builders.
std::uint64_t fleet_chip_seed(std::uint64_t root, std::size_t chip,
                              std::uint64_t stream);

/// Convenience builder for a homogeneous fleet: `chips` identical chips
/// (same core count, budget fraction, controller type, epoch schedule)
/// whose seeds are forked per chip from one root via fleet_chip_seed, so
/// chip i's workload/sensor/exploration streams are a pure function of
/// (seed, i) -- independent of fleet size and of every other chip.
///
/// Fleet goes through the ControllerRegistry front door, so like
/// make_controller() it is *defined in libodrl_registry* (the layer that
/// links every controller library): link the umbrella `odrl` target, or
/// `odrl_registry`, to use it. run_multichip itself has no such
/// dependency.
struct FleetConfig {
  std::size_t chips = 2;
  std::size_t cores = 64;
  double budget_fraction = 0.6;
  std::string controller = "OD-RL";
  ControllerOverrides overrides;  ///< applied to every chip (seed is
                                  ///< overridden per chip after copy)
  std::size_t epochs = 200;
  std::size_t warmup_epochs = 0;
  std::uint64_t seed = 1;  ///< root seed; per-chip substreams forked
  double sensor_noise_rel = 0.0;
  bool keep_traces = true;
  /// Optional fault schedule applied to every chip (non-owning; each chip
  /// builds its own engine from it, so sharing the schedule is safe).
  const FaultSchedule* faults = nullptr;

  void validate() const;
};

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);

  std::size_t size() const { return specs_.size(); }
  std::span<ChipSpec> specs() { return specs_; }
  ManyCoreSystem& system(std::size_t chip) { return *systems_.at(chip); }
  Controller& controller(std::size_t chip) { return *controllers_.at(chip); }
  const FleetConfig& config() const { return config_; }

  /// Rebuilds chip `chip`'s system and controller from the same
  /// configuration (fresh construction is the snapshot-resume
  /// precondition; see RunConfig::resume_snapshot).
  void rebuild_chip(std::size_t chip);

 private:
  FleetConfig config_;
  std::vector<std::unique_ptr<ManyCoreSystem>> systems_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::vector<ChipSpec> specs_;
};

}  // namespace odrl::sim
