// Contract validators for the span/SoA epoch data path.
//
// Each function encodes one physical or shape invariant of the control
// loop and throws util::ContractViolation when it is violated:
//
//   validate_epoch            -- post-condition of ManyCoreSystem::step_into:
//                                per-core power finite and >= 0, levels
//                                inside the V/F table, SoA columns all core-
//                                count long, chip sums consistent with the
//                                per-core columns, temperatures/IPS finite.
//   validate_out_span         -- pre-condition of Controller::decide_into:
//                                the out-span is exactly core-count long and
//                                does not alias the observation's SoA block
//                                (a controller writing levels through a span
//                                into its own input is the nastiest borrowed-
//                                view bug this path enables).
//   validate_levels           -- post-condition of Controller::decide_into:
//                                every chosen level indexes the V/F table.
//   validate_budget_partition -- post-condition of budget reallocation: all
//                                per-core budgets positive and finite and
//                                their sum equal to the chip budget within a
//                                relative tolerance (watts are conserved --
//                                reallocation must neither mint nor leak).
//
// The validators are *always compiled* (tests call them directly to prove
// each one fires); whether the library's hot-path call sites invoke them is
// decided per-TU by ODRL_CHECKED (see util/check.hpp). None of them
// allocate on the success path.
#pragma once

#include <cstddef>
#include <span>

#include "sim/observation.hpp"

namespace odrl::sim {

/// Default relative tolerance for watt-conservation checks.
inline constexpr double kBudgetSumRelTol = 1e-6;

/// Shape + physical invariants of a filled EpochResult (see file comment).
/// `n_cores` is the chip's core count, `n_levels` the V/F table size.
/// Offline cores (online column 0) must draw ~0 true watts and retire no
/// instructions -- power gating is physical, not a sensor artifact.
/// `noisy_sensors`: when true, the total_ips == sum(ips column) identity is
/// skipped -- total_ips aggregates the noise-free rates while the column
/// carries the measured (noisy) ones, so they legitimately differ (see
/// EpochResult::total_ips). The power identities always hold: both chip
/// power fields aggregate the same signal their columns carry.
void validate_epoch(const EpochResult& obs, std::size_t n_cores,
                    std::size_t n_levels, bool noisy_sensors = false);

/// The decide_into out-span contract: size matches the observation and the
/// span does not alias any column of the observation's SoA block.
void validate_out_span(const EpochResult& obs,
                       std::span<const std::size_t> out);

/// Every level indexes the V/F table (post-decide contract).
void validate_levels(std::span<const std::size_t> levels,
                     std::size_t n_levels);

/// The step_into input contract: the borrowed levels span must not alias
/// the SoA block the step is about to overwrite (no size requirement --
/// the output block may not be resized yet on a fresh EpochResult).
void validate_levels_disjoint(std::span<const std::size_t> levels,
                              const EpochResult& out);

/// Budget-partition contract: every entry positive and finite, sum equal to
/// `total_w` within `rel_tol` (relative).
void validate_budget_partition(std::span<const double> budgets,
                               double total_w,
                               double rel_tol = kBudgetSumRelTol);

}  // namespace odrl::sim
