// Name-keyed controller construction: the registry maps controller names
// ("OD-RL", "PID", "Greedy", "MaxBIPS", "Static", plus anything downstream
// code registers) to factories, so benches, examples and config-driven
// tools build controllers from strings instead of hand-wiring constructors.
//
// Controllers self-register: each implementation .cpp holds a file-scope
// ControllerRegistrar, so adding a controller never touches this file.
// Because self-registration lives in static-library members the linker is
// free to drop, libodrl_registry's make_controller() references an anchor
// symbol in every built-in controller's translation unit, guaranteeing the
// registrars run before any lookup (see src/registry/make_controller.cpp).
//
// Factories take a ControllerOverrides: a flat string->string map of
// controller-specific knobs ("lambda", "realloc_period", "kp", ...). Every
// key must be consumed by the factory -- a typo'd or inapplicable key makes
// make() throw, listing what the controller actually accepts.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "arch/chip_config.hpp"
#include "sim/controller.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::sim {

/// Flat, typed-on-read override set handed to controller factories.
/// Getters mark keys consumed; ControllerRegistry::make() rejects the
/// construction if any key was never read, so misspellings fail loudly
/// instead of silently running the default.
class ControllerOverrides {
 public:
  ControllerOverrides() = default;
  ControllerOverrides(
      std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}
  explicit ControllerOverrides(std::map<std::string, std::string> kv)
      : values_(std::move(kv)) {}

  ControllerOverrides& set(std::string key, std::string value) {
    values_[std::move(key)] = std::move(value);
    return *this;
  }

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  bool contains(const std::string& key) const {
    return values_.count(key) != 0;
  }

  /// Typed getters: return `fallback` when the key is absent, parse the
  /// stored string otherwise (throwing std::invalid_argument on garbage).
  /// Reading a key -- present or not -- marks it consumed.
  std::string get_string(const std::string& key, std::string fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys present but never read by any getter.
  std::vector<std::string> unconsumed() const;
  /// Throws std::invalid_argument naming `controller` and the stray keys.
  void throw_if_unconsumed(const std::string& controller) const;

 private:
  /// Lookup that records consumption; nullptr when absent.
  const std::string* find(const std::string& key) const;

  std::map<std::string, std::string> values_;
  // Read-tracking only. Deliberately unguarded: an Overrides instance is
  // confined to one construction (make() copies it per call), so there is
  // no concurrent access to guard against.
  // lint: allow(unguarded-capability): copied per-make(), never shared
  mutable std::set<std::string> consumed_;
};

using ControllerFactory = std::function<std::unique_ptr<Controller>(
    const arch::ChipConfig& chip, const ControllerOverrides& overrides)>;

class ControllerRegistry {
 public:
  /// The process-wide registry (Meyers singleton: safe across the static
  /// registrars in every controller TU regardless of init order).
  static ControllerRegistry& instance();

  /// Registers a factory under `name`; throws on duplicates.
  void add(std::string name, ControllerFactory factory);

  bool contains(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Builds a controller. Throws std::invalid_argument for unknown names
  /// (the message lists what is registered) and for override keys the
  /// controller's factory did not consume.
  std::unique_ptr<Controller> make(
      const std::string& name, const arch::ChipConfig& chip,
      const ControllerOverrides& overrides = {}) const;

 private:
  ControllerRegistry() = default;

  // The registry is a process-wide singleton written by static registrars
  // (serial, pre-main) *and* by tests/downstream code at runtime, and read
  // from every worker thread that hot-swaps a controller -- the
  // single-writer phase is an accident of today's callers, not a contract,
  // so the map is guarded. Rank kRegistry (lowest): make() may end up
  // inside factories that touch telemetry.
  mutable util::Mutex mutex_{util::LockRank::kRegistry,
                             "controller-registry"};
  std::map<std::string, ControllerFactory> factories_ ODRL_GUARDED_BY(mutex_);
};

/// Registers a factory at static-init time; declare one per controller at
/// file scope in the implementation .cpp:
///   const sim::ControllerRegistrar reg{"PID", &make_pid};
struct ControllerRegistrar {
  ControllerRegistrar(std::string name, ControllerFactory factory);
};

/// Convenience front door over the registry; guarantees every built-in
/// controller is linked and registered first. Defined in libodrl_registry
/// (the layer that links all controller libraries) -- link the umbrella
/// `odrl` target, or `odrl_registry`, to use it.
std::unique_ptr<Controller> make_controller(
    const std::string& name, const arch::ChipConfig& chip,
    const ControllerOverrides& overrides = {});

/// Sorted names of everything registered (built-ins linked first).
std::vector<std::string> registered_controllers();

}  // namespace odrl::sim
