#include "sim/multichip.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "util/rng.hpp"

namespace odrl::sim {

std::uint64_t fleet_chip_seed(std::uint64_t root, std::size_t chip,
                              std::uint64_t stream) {
  util::SplitMix64 mix(root ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  std::uint64_t s = 0;
  for (std::size_t i = 0; i <= chip; ++i) s = mix.next();
  return s;
}

std::uint32_t chip_section_tag(std::size_t chip) {
  if (chip >= 100) {
    throw std::out_of_range(
        "chip_section_tag: chip index " + std::to_string(chip) +
        " exceeds the CHnn two-digit section namespace (max 99)");
  }
  char name[8];
  std::snprintf(name, sizeof name, "CH%02zu", chip);
  return snapshot::section_tag(std::string_view(name, 4));
}

void MultiChipConfig::validate(std::span<const ChipSpec> chips) const {
  if (chips.empty()) {
    throw std::invalid_argument("run_multichip: empty chip list");
  }
  if ((snapshot_out != nullptr || resume_snapshot != nullptr) &&
      chips.size() > 100) {
    throw std::invalid_argument(
        "run_multichip: snapshot frame supports at most 100 chips");
  }
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const ChipSpec& spec = chips[i];
    const std::string at = "run_multichip: chip " + std::to_string(i);
    if (spec.system == nullptr || spec.controller == nullptr) {
      throw std::invalid_argument(at + ": null system or controller");
    }
    if (spec.config.threads != 0 || spec.config.runtime != nullptr) {
      throw std::invalid_argument(
          at + ": per-chip threads/runtime must be unset (the fleet "
               "installs one shared runtime)");
    }
    if ((snapshot_out != nullptr || resume_snapshot != nullptr) &&
        (spec.config.snapshot_out != nullptr ||
         spec.config.resume_snapshot != nullptr)) {
      throw std::invalid_argument(
          at + ": per-chip snapshot fields must be unset when the fleet "
               "snapshot frame is used");
    }
    // Recorder instances are single-threaded; concurrent chips must not
    // share one. (One recorder on exactly one chip is fine.)
    if (spec.config.recorder != nullptr) {
      for (std::size_t j = i + 1; j < chips.size(); ++j) {
        if (chips[j].config.recorder == spec.config.recorder) {
          throw std::invalid_argument(
              at + ": recorder shared with chip " + std::to_string(j) +
              " (recorders are single-threaded; give each chip its own)");
        }
      }
    }
  }
}

double MultiChipResult::bips() const {
  double longest_s = 0.0;
  for (const RunResult& r : chips) {
    if (r.elapsed_s() > longest_s) longest_s = r.elapsed_s();
  }
  return longest_s > 0.0 ? total_instructions / longest_s / 1e9 : 0.0;
}

namespace {

/// The per-chip whole-run task. Stored in a vector that outlives wait();
/// the runtime invokes it by reference on whichever worker claims it.
struct ChipTask {
  ManyCoreSystem* system = nullptr;
  Controller* controller = nullptr;
  const RunConfig* config = nullptr;
  RunResult* out = nullptr;

  void operator()() const {
    *out = run_closed_loop(*system, *controller, *config);
  }
};

}  // namespace

MultiChipResult run_multichip(std::span<ChipSpec> chips,
                              const MultiChipConfig& config) {
  config.validate(chips);
  const std::size_t n = chips.size();

  std::shared_ptr<task::Runtime> runtime = config.runtime;
  if (runtime == nullptr) {
    task::RuntimeConfig rc;
    rc.workers = config.workers;
    rc.pin_workers = config.pin_workers;
    runtime = std::make_shared<task::Runtime>(rc);
  }
  const task::RuntimeStats stats0 = runtime->stats();

  // Unpack the fleet resume frame into per-chip blobs (chip order).
  std::vector<std::string> resume_blobs;
  if (config.resume_snapshot != nullptr) {
    snapshot::Reader r(*config.resume_snapshot);
    r.open_section(kSnapshotMultiChipTag);
    const std::uint64_t frame_chips = r.u64();
    r.u64();  // capture epoch: informational; each chip re-checks its own
    r.expect_section_end();
    if (frame_chips != n) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kDimensionMismatch,
          "run_multichip: snapshot frame has " + std::to_string(frame_chips) +
              " chips, fleet has " + std::to_string(n));
    }
    resume_blobs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      r.open_section(chip_section_tag(i));
      resume_blobs[i] = r.str();
      r.expect_section_end();
    }
  }

  // Effective per-chip run configs: shared runtime plus the fleet's
  // snapshot/resume plumbing. The spec's config is copied, never mutated.
  std::vector<RunConfig> run_configs(n);
  std::vector<std::string> capture_blobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    run_configs[i] = chips[i].config;
    run_configs[i].runtime = runtime;
    if (config.snapshot_out != nullptr) {
      run_configs[i].snapshot_epoch = config.snapshot_epoch;
      run_configs[i].snapshot_out = &capture_blobs[i];
    }
    if (config.resume_snapshot != nullptr) {
      run_configs[i].resume_snapshot = &resume_blobs[i];
    }
  }

  MultiChipResult result;
  result.chips.resize(n);

  std::vector<ChipTask> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(ChipTask{chips[i].system, chips[i].controller,
                             &run_configs[i], &result.chips[i]});
  }

  const auto t0 = std::chrono::steady_clock::now();
  {
    task::Runtime::Group group;
    for (ChipTask& t : tasks) runtime->submit(group, t);
    runtime->wait(group);  // rethrows the first chip failure
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(t1 - t0).count();

  // Frame the fleet snapshot (chip order; assembled on this thread, after
  // the barrier, so the frame is deterministic byte-for-byte).
  if (config.snapshot_out != nullptr) {
    snapshot::Writer w;
    w.begin_section(kSnapshotMultiChipTag);
    w.u64(n);
    w.u64(config.snapshot_epoch);
    w.end_section();
    for (std::size_t i = 0; i < n; ++i) {
      w.begin_section(chip_section_tag(i));
      w.str(capture_blobs[i]);
      w.end_section();
    }
    *config.snapshot_out = std::move(w).finish();
  }

  // Deterministic chip-index-order fold of the fleet aggregates.
  for (const RunResult& r : result.chips) {
    result.total_epochs += r.epochs;
    result.total_instructions += r.total_instructions;
    result.total_energy_j += r.total_energy_j;
    result.otb_energy_j += r.otb_energy_j;
    result.mean_power_w += r.mean_power_w;
  }
  result.mean_power_w /= static_cast<double>(n);

  const task::RuntimeStats stats1 = runtime->stats();
  result.runtime_stats.tasks_executed =
      stats1.tasks_executed - stats0.tasks_executed;
  result.runtime_stats.steals = stats1.steals - stats0.steals;
  result.runtime_stats.steal_attempts =
      stats1.steal_attempts - stats0.steal_attempts;
  result.runtime_stats.overflows = stats1.overflows - stats0.overflows;
  result.runtime_stats.max_queue_depth = stats1.max_queue_depth;
  result.runtime_stats.worker_parks =
      stats1.worker_parks - stats0.worker_parks;
  result.runtime_stats.wait_parks = stats1.wait_parks - stats0.wait_parks;
  return result;
}

}  // namespace odrl::sim
