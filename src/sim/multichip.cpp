#include "sim/multichip.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "telemetry/csv_sink.hpp"
#include "telemetry/jsonl_sink.hpp"
#include "telemetry/recorder.hpp"
#include "util/rng.hpp"

namespace odrl::sim {

std::string chip_session_tag(const ChipSpec& spec, std::size_t index) {
  if (!spec.tag.empty()) return spec.tag;
  char buf[16];
  std::snprintf(buf, sizeof buf, "chip%02zu", index);
  return buf;
}

std::string sanitize_session_tag(const std::string& tag) {
  std::string out = tag;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::uint64_t fleet_chip_seed(std::uint64_t root, std::size_t chip,
                              std::uint64_t stream) {
  util::SplitMix64 mix(root ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  std::uint64_t s = 0;
  for (std::size_t i = 0; i <= chip; ++i) s = mix.next();
  return s;
}

std::uint32_t chip_section_tag(std::size_t chip) {
  if (chip >= 100) {
    throw std::out_of_range(
        "chip_section_tag: chip index " + std::to_string(chip) +
        " exceeds the CHnn two-digit section namespace (max 99)");
  }
  char name[8];
  std::snprintf(name, sizeof name, "CH%02zu", chip);
  return snapshot::section_tag(std::string_view(name, 4));
}

void MultiChipConfig::validate(std::span<const ChipSpec> chips) const {
  if (chips.empty()) {
    throw std::invalid_argument("run_multichip: empty chip list");
  }
  if ((snapshot_out != nullptr || resume_snapshot != nullptr) &&
      chips.size() > 100) {
    throw std::invalid_argument(
        "run_multichip: snapshot frame supports at most 100 chips");
  }
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const ChipSpec& spec = chips[i];
    const std::string at = "run_multichip: chip " + std::to_string(i);
    if (spec.system == nullptr || spec.controller == nullptr) {
      throw std::invalid_argument(at + ": null system or controller");
    }
    if (spec.config.threads != 0 || spec.config.runtime != nullptr) {
      throw std::invalid_argument(
          at + ": per-chip threads/runtime must be unset (the fleet "
               "installs one shared runtime)");
    }
    if ((snapshot_out != nullptr || resume_snapshot != nullptr) &&
        (spec.config.snapshot_out != nullptr ||
         spec.config.resume_snapshot != nullptr)) {
      throw std::invalid_argument(
          at + ": per-chip snapshot fields must be unset when the fleet "
               "snapshot frame is used");
    }
    // A recorder's record stream is serial per run; concurrent chips must
    // not share one (their epochs would interleave nondeterministically).
    if (spec.config.recorder != nullptr) {
      for (std::size_t j = i + 1; j < chips.size(); ++j) {
        if (chips[j].config.recorder == spec.config.recorder) {
          throw std::invalid_argument(
              at + ": recorder shared with chip " + std::to_string(j) +
              " (give each chip its own; their records would interleave)");
        }
      }
    }
  }
  if (!telemetry_dir.empty()) {
    // Distinct chips must land in distinct sink files; catching a tag
    // collision here beats two runs silently clobbering one file.
    std::set<std::string> stems;
    for (std::size_t i = 0; i < chips.size(); ++i) {
      const std::string stem =
          sanitize_session_tag(chip_session_tag(chips[i], i));
      if (!stems.insert(stem).second) {
        throw std::invalid_argument(
            "run_multichip: chip " + std::to_string(i) + " session tag \"" +
            chip_session_tag(chips[i], i) +
            "\" sanitizes to duplicate sink filename \"" + stem + "\"");
      }
    }
  }
}

double MultiChipResult::bips() const {
  double longest_s = 0.0;
  for (const RunResult& r : chips) {
    if (r.elapsed_s() > longest_s) longest_s = r.elapsed_s();
  }
  return longest_s > 0.0 ? total_instructions / longest_s / 1e9 : 0.0;
}

namespace {

/// The per-chip whole-run task. Stored in a vector that outlives wait();
/// the runtime invokes it by reference on whichever worker claims it.
struct ChipTask {
  ManyCoreSystem* system = nullptr;
  Controller* controller = nullptr;
  const RunConfig* config = nullptr;
  RunResult* out = nullptr;

  void operator()() const {
    *out = run_closed_loop(*system, *controller, *config);
  }
};

}  // namespace

MultiChipResult run_multichip(std::span<ChipSpec> chips,
                              const MultiChipConfig& config) {
  config.validate(chips);
  const std::size_t n = chips.size();

  std::shared_ptr<task::Runtime> runtime = config.runtime;
  if (runtime == nullptr) {
    task::RuntimeConfig rc;
    rc.workers = config.workers;
    rc.pin_workers = config.pin_workers;
    runtime = std::make_shared<task::Runtime>(rc);
  }
  const task::RuntimeStats stats0 = runtime->stats();

  // Unpack the fleet resume frame into per-chip blobs (chip order).
  std::vector<std::string> resume_blobs;
  if (config.resume_snapshot != nullptr) {
    snapshot::Reader r(*config.resume_snapshot);
    r.open_section(kSnapshotMultiChipTag);
    const std::uint64_t frame_chips = r.u64();
    r.u64();  // capture epoch: informational; each chip re-checks its own
    r.expect_section_end();
    if (frame_chips != n) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kDimensionMismatch,
          "run_multichip: snapshot frame has " + std::to_string(frame_chips) +
              " chips, fleet has " + std::to_string(n));
    }
    resume_blobs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      r.open_section(chip_section_tag(i));
      resume_blobs[i] = r.str();
      r.expect_section_end();
    }
  }

  // Effective per-chip run configs: shared runtime plus the fleet's
  // snapshot/resume plumbing. The spec's config is copied, never mutated.
  std::vector<RunConfig> run_configs(n);
  std::vector<std::string> capture_blobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    run_configs[i] = chips[i].config;
    run_configs[i].runtime = runtime;
    if (config.snapshot_out != nullptr) {
      run_configs[i].snapshot_epoch = config.snapshot_epoch;
      run_configs[i].snapshot_out = &capture_blobs[i];
    }
    if (config.resume_snapshot != nullptr) {
      run_configs[i].resume_snapshot = &resume_blobs[i];
    }
  }

  // Per-chip telemetry sessions: every chip's records carry its session
  // tag, and -- when telemetry_dir is set -- chips without a caller-provided
  // recorder get a fleet-owned one writing to a file named after the tag.
  // The streams/recorders outlive wait() below and flush on scope exit.
  const bool want_csv =
      config.telemetry_format == MultiChipConfig::TelemetryFormat::kCsv;
  std::vector<std::unique_ptr<std::ofstream>> sink_streams;
  std::vector<std::shared_ptr<telemetry::Sink>> sinks;
  std::vector<std::unique_ptr<telemetry::Recorder>> recorders;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string tag = chip_session_tag(chips[i], i);
    if (run_configs[i].session_tag.empty()) run_configs[i].session_tag = tag;
    if (config.telemetry_dir.empty() || run_configs[i].recorder != nullptr) {
      continue;
    }
    const std::string path = config.telemetry_dir + "/" +
                             sanitize_session_tag(tag) +
                             (want_csv ? ".csv" : ".jsonl");
    auto stream = std::make_unique<std::ofstream>(
        path, std::ios::binary | std::ios::trunc);
    if (!*stream) {
      throw std::runtime_error(
          "run_multichip: cannot open per-chip telemetry sink file " + path);
    }
    std::shared_ptr<telemetry::Sink> sink;
    if (want_csv) {
      sink = std::make_shared<telemetry::CsvSink>(*stream);
    } else {
      sink = std::make_shared<telemetry::JsonlSink>(*stream);
    }
    auto recorder = std::make_unique<telemetry::Recorder>();
    recorder->add_sink(sink);
    run_configs[i].recorder = recorder.get();
    sink_streams.push_back(std::move(stream));
    sinks.push_back(std::move(sink));
    recorders.push_back(std::move(recorder));
  }

  MultiChipResult result;
  result.chips.resize(n);

  std::vector<ChipTask> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(ChipTask{chips[i].system, chips[i].controller,
                             &run_configs[i], &result.chips[i]});
  }

  // Wall-clock feeds MultiChipResult::wall_s (reporting only; every
  // simulated quantity is deterministic regardless).
  // lint: allow(nondeterminism): wall_s is observational fleet timing
  const auto t0 = std::chrono::steady_clock::now();
  {
    task::Runtime::Group group;
    for (ChipTask& t : tasks) runtime->submit(group, t);
    runtime->wait(group);  // rethrows the first chip failure
  }
  // lint: allow(nondeterminism): wall_s is observational fleet timing
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_s = std::chrono::duration<double>(t1 - t0).count();

  // Frame the fleet snapshot (chip order; assembled on this thread, after
  // the barrier, so the frame is deterministic byte-for-byte).
  if (config.snapshot_out != nullptr) {
    snapshot::Writer w;
    w.begin_section(kSnapshotMultiChipTag);
    w.u64(n);
    w.u64(config.snapshot_epoch);
    w.end_section();
    for (std::size_t i = 0; i < n; ++i) {
      w.begin_section(chip_section_tag(i));
      w.str(capture_blobs[i]);
      w.end_section();
    }
    *config.snapshot_out = std::move(w).finish();
  }

  // Deterministic chip-index-order fold of the fleet aggregates.
  for (const RunResult& r : result.chips) {
    result.total_epochs += r.epochs;
    result.total_instructions += r.total_instructions;
    result.total_energy_j += r.total_energy_j;
    result.otb_energy_j += r.otb_energy_j;
    result.mean_power_w += r.mean_power_w;
  }
  result.mean_power_w /= static_cast<double>(n);

  const task::RuntimeStats stats1 = runtime->stats();
  result.runtime_stats.tasks_executed =
      stats1.tasks_executed - stats0.tasks_executed;
  result.runtime_stats.steals = stats1.steals - stats0.steals;
  result.runtime_stats.steal_attempts =
      stats1.steal_attempts - stats0.steal_attempts;
  result.runtime_stats.overflows = stats1.overflows - stats0.overflows;
  result.runtime_stats.max_queue_depth = stats1.max_queue_depth;
  result.runtime_stats.worker_parks =
      stats1.worker_parks - stats0.worker_parks;
  result.runtime_stats.wait_parks = stats1.wait_parks - stats0.wait_parks;
  return result;
}

}  // namespace odrl::sim
