#include "sim/validate.hpp"

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>

#include "util/check.hpp"

namespace odrl::sim {

namespace {

/// Failure path only: formats and throws. Kept out-of-line so the success
/// path of every validator is a pure scan with no allocations.
[[noreturn]] void fail(const std::string& what) {
  throw util::ContractViolation("contract violation: " + what);
}

[[noreturn]] void fail_core(const char* what, std::size_t core,
                            double value) {
  fail(std::string(what) + " at core " + std::to_string(core) + " (value " +
       std::to_string(value) + ")");
}

bool finite(double v) { return std::isfinite(v); }

/// Do the half-open byte ranges [a, a+an) and [b, b+bn) intersect?
/// std::less gives the total pointer order the raw operators do not
/// guarantee for unrelated objects.
bool ranges_overlap(const void* a, std::size_t an, const void* b,
                    std::size_t bn) {
  if (an == 0 || bn == 0) return false;
  const char* a0 = static_cast<const char*>(a);
  const char* b0 = static_cast<const char*>(b);
  const std::less<const char*> lt;
  // Disjoint iff one range ends at or before the other begins.
  const bool a_before_b = !lt(b0, a0 + an);  // a0 + an <= b0
  const bool b_before_a = !lt(a0, b0 + bn);  // b0 + bn <= a0
  return !(a_before_b || b_before_a);
}

/// Does the byte range [p, p + bytes) intersect any SoA column of `cores`?
bool overlaps_soa_block(const void* p, std::size_t bytes,
                        const CoreSamples& cores) {
  return ranges_overlap(p, bytes, cores.level().data(),
                        cores.level().size_bytes()) ||
         ranges_overlap(p, bytes, cores.ips().data(),
                        cores.ips().size_bytes()) ||
         ranges_overlap(p, bytes, cores.instructions().data(),
                        cores.instructions().size_bytes()) ||
         ranges_overlap(p, bytes, cores.power_w().data(),
                        cores.power_w().size_bytes()) ||
         ranges_overlap(p, bytes, cores.true_power_w().data(),
                        cores.true_power_w().size_bytes()) ||
         ranges_overlap(p, bytes, cores.mem_stall_frac().data(),
                        cores.mem_stall_frac().size_bytes()) ||
         ranges_overlap(p, bytes, cores.temp_c().data(),
                        cores.temp_c().size_bytes()) ||
         ranges_overlap(p, bytes, cores.online().data(),
                        cores.online().size_bytes());
}

/// Relative closeness for watt/IPS conservation sums: the chip-level
/// aggregate and a linear re-sum of the per-core column differ only by
/// floating-point association order, never by more than a few ulps per
/// term.
bool sums_match(double aggregate, double linear_sum, double rel_tol) {
  const double scale =
      std::max({1.0, std::abs(aggregate), std::abs(linear_sum)});
  return std::abs(aggregate - linear_sum) <= rel_tol * scale;
}

}  // namespace

void validate_epoch(const EpochResult& obs, std::size_t n_cores,
                    std::size_t n_levels, bool noisy_sensors) {
  const CoreSamples& cores = obs.cores;
  if (cores.size() != n_cores) {
    fail("EpochResult core count " + std::to_string(cores.size()) +
         " != chip core count " + std::to_string(n_cores));
  }
  // Every SoA column must be exactly core-count long -- a short column is
  // an out-of-bounds read waiting in every downstream scan.
  if (cores.level().size() != n_cores || cores.ips().size() != n_cores ||
      cores.instructions().size() != n_cores ||
      cores.power_w().size() != n_cores ||
      cores.true_power_w().size() != n_cores ||
      cores.mem_stall_frac().size() != n_cores ||
      cores.temp_c().size() != n_cores ||
      cores.online().size() != n_cores) {
    fail("EpochResult SoA columns have unequal lengths");
  }
  if (!finite(obs.epoch_s) || obs.epoch_s <= 0.0) {
    fail("epoch_s must be finite and > 0");
  }
  if (!finite(obs.budget_w) || obs.budget_w <= 0.0) {
    fail("budget_w must be finite and > 0");
  }
  if (!finite(obs.chip_power_w) || obs.chip_power_w < 0.0) {
    fail("chip_power_w must be finite and >= 0");
  }
  if (!finite(obs.true_chip_power_w) || obs.true_chip_power_w < 0.0) {
    fail("true_chip_power_w must be finite and >= 0");
  }
  if (!finite(obs.total_ips) || obs.total_ips < 0.0) {
    fail("total_ips must be finite and >= 0");
  }
  if (!finite(obs.max_temp_c)) fail("max_temp_c must be finite");
  if (!finite(obs.mem_latency_mult) || obs.mem_latency_mult < 1.0) {
    fail("mem_latency_mult must be finite and >= 1");
  }
  if (!finite(obs.dram_utilization) || obs.dram_utilization < 0.0) {
    fail("dram_utilization must be finite and >= 0");
  }

  const std::span<const std::size_t> level = cores.level();
  const std::span<const double> ips = cores.ips();
  const std::span<const double> instructions = cores.instructions();
  const std::span<const double> power = cores.power_w();
  const std::span<const double> true_power = cores.true_power_w();
  const std::span<const double> stall = cores.mem_stall_frac();
  const std::span<const double> temp = cores.temp_c();
  const std::span<const std::uint8_t> online = cores.online();

  double power_sum = 0.0;
  double true_power_sum = 0.0;
  double ips_sum = 0.0;
  for (std::size_t i = 0; i < n_cores; ++i) {
    if (level[i] >= n_levels) {
      fail_core("level outside V/F table", i, static_cast<double>(level[i]));
    }
    if (!finite(power[i]) || power[i] < 0.0) {
      fail_core("measured core power must be finite and >= 0", i, power[i]);
    }
    if (!finite(true_power[i]) || true_power[i] < 0.0) {
      fail_core("true core power must be finite and >= 0", i, true_power[i]);
    }
    if (!finite(ips[i]) || ips[i] < 0.0) {
      fail_core("core IPS must be finite and >= 0", i, ips[i]);
    }
    if (!finite(instructions[i]) || instructions[i] < 0.0) {
      fail_core("core instructions must be finite and >= 0", i,
                instructions[i]);
    }
    if (!finite(stall[i]) || stall[i] < 0.0 || stall[i] > 1.0) {
      fail_core("mem_stall_frac must be in [0, 1]", i, stall[i]);
    }
    if (!finite(temp[i])) fail_core("core temperature must be finite", i,
                                    temp[i]);
    // A power-gated core retires nothing and draws ~0 W -- an offline
    // core with real true power is a hotplug bug in the simulator (the
    // *measured* columns may still lie under sensor faults).
    if (online[i] == 0) {
      if (true_power[i] > 1e-9) {
        fail_core("offline core draws true power", i, true_power[i]);
      }
      if (instructions[i] > 0.0) {
        fail_core("offline core retired instructions", i, instructions[i]);
      }
    }
    power_sum += power[i];
    true_power_sum += true_power[i];
    ips_sum += ips[i];
  }

  // Chip-level aggregates must be the sums of the per-core columns (the
  // paper's budget-conservation claims are measured against these).
  if (!sums_match(obs.chip_power_w, power_sum, kBudgetSumRelTol)) {
    fail("chip_power_w does not equal the sum of per-core measured power");
  }
  if (!sums_match(obs.true_chip_power_w, true_power_sum, kBudgetSumRelTol)) {
    fail("true_chip_power_w does not equal the sum of per-core true power");
  }
  // Under sensor noise the ips column is measured while total_ips is the
  // noise-free aggregate, so the identity only holds for clean sensors.
  if (!noisy_sensors && !sums_match(obs.total_ips, ips_sum, kBudgetSumRelTol)) {
    fail("total_ips does not equal the sum of per-core IPS");
  }
}

void validate_out_span(const EpochResult& obs,
                       std::span<const std::size_t> out) {
  if (out.size() != obs.n_cores()) {
    fail("decide_into out-span size " + std::to_string(out.size()) +
         " != core count " + std::to_string(obs.n_cores()));
  }
  if (overlaps_soa_block(out.data(), out.size_bytes(), obs.cores)) {
    fail("decide_into out-span aliases the observation's SoA block");
  }
}

void validate_levels_disjoint(std::span<const std::size_t> levels,
                              const EpochResult& out) {
  if (overlaps_soa_block(levels.data(), levels.size_bytes(), out.cores)) {
    fail("step_into levels span aliases the output SoA block");
  }
}

void validate_levels(std::span<const std::size_t> levels,
                     std::size_t n_levels) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i] >= n_levels) {
      fail("decided level " + std::to_string(levels[i]) + " at core " +
           std::to_string(i) + " outside V/F table of size " +
           std::to_string(n_levels));
    }
  }
}

void validate_budget_partition(std::span<const double> budgets,
                               double total_w, double rel_tol) {
  if (budgets.empty()) fail("budget partition is empty");
  if (!finite(total_w) || total_w <= 0.0) {
    fail("budget partition total must be finite and > 0");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    if (!finite(budgets[i]) || budgets[i] <= 0.0) {
      fail_core("per-core budget must be finite and > 0", i, budgets[i]);
    }
    sum += budgets[i];
  }
  if (!sums_match(total_w, sum, rel_tol)) {
    fail("budget partition sums to " + std::to_string(sum) +
         " W, expected " + std::to_string(total_w) + " W (watts minted or "
         "leaked by reallocation)");
  }
}

}  // namespace odrl::sim
