// The closed-loop driver: runs a Controller against a ManyCoreSystem for a
// number of epochs, times every decide() call (the scalability experiment's
// measured quantity), applies scheduled power-cap events, and accumulates
// the traces and energy totals the metrics layer consumes.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/controller.hpp"
#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/record.hpp"
#include "telemetry/recorder.hpp"

namespace odrl::sim {

// -- Run snapshot sections (see snapshot/snapshot.hpp for the framing) --
//
// A run snapshot is one versioned blob with four sections, captured at the
// top of measured epoch RunConfig::snapshot_epoch, *before* that epoch's
// swap and budget events are processed:
//
//   RUNR -- the runner's own bookkeeping: the measured epoch, event/swap
//           cursors, the level double-buffer and watchdog latches.
//   SYST -- ManyCoreSystem::save_state (thermal field, RNG streams,
//           workload position, ...).
//   FLTE -- FaultEngine::save_state, present only when the run had a fault
//           schedule.
//   CTRL -- the active controller's name() followed by its save_state
//           payload.
//
// Resuming (RunConfig::resume_snapshot) on a freshly constructed
// system/controller pair built from the same configuration continues the
// run bit-identically to one that never stopped -- the resume golden
// test's guarantee.
inline constexpr std::uint32_t kSnapshotRunnerTag =
    snapshot::section_tag("RUNR");
inline constexpr std::uint32_t kSnapshotSystemTag =
    snapshot::section_tag("SYST");
inline constexpr std::uint32_t kSnapshotFaultTag =
    snapshot::section_tag("FLTE");
inline constexpr std::uint32_t kSnapshotControllerTag =
    snapshot::section_tag("CTRL");

/// One measured epoch of a run: the typed trace record. This *is* the
/// telemetry schema's chip-level record -- RunResult::trace and every
/// exported trace (CSV/JSONL) describe identical quantities, by
/// construction.
using EpochTrace = telemetry::EpochRecord;

/// At `epoch`, the chip budget becomes `budget_w` (rack-level power-cap or
/// thermal-event emulation).
struct BudgetEvent {
  std::size_t epoch = 0;
  double budget_w = 0.0;
};

/// At measured epoch `epoch` (same clock as BudgetEvent), the live
/// controller is replaced: a fresh instance of `controller` is built
/// through the ControllerRegistry with `overrides`, told the budget in
/// force, optionally seeded from a snapshot's CTRL section, and takes over
/// from the current operating point (the levels the outgoing controller
/// last decided keep driving the chip; initial_levels is not consulted).
/// The swap is recorded in RunResult::swaps and, when telemetry is on, as
/// a controller_swap event.
struct SwapEvent {
  std::size_t epoch = 0;
  std::string controller;
  ControllerOverrides overrides;
  /// Optional run snapshot whose CTRL section warm-starts the incoming
  /// controller (nullptr = cold start). The section's recorded name must
  /// match the incoming controller or the swap throws
  /// snapshot::SnapshotError(kBadValue). Non-owning; must outlive the run.
  const std::string* seed_snapshot = nullptr;
};

/// Graceful-degradation policy: a per-core fallback to the safe static
/// level (safe_uniform_level of the budget in force) when the controller
/// misbehaves. Two triggers:
///
///  * an out-of-range decided level -- sanitized to the safe level
///    immediately and that core enters fallback (any build mode; in
///    ODRL_CHECKED builds this fires *before* validate_levels would
///    throw, so a flaky controller degrades instead of aborting the run);
///  * `violation_epochs` consecutive epochs with measured chip power
///    above budget * (1 + violation_margin) while the fault engine
///    reports active faults -- every core enters fallback (the
///    controller's inputs are compromised chip-wide).
///
/// A core holds the safe level for `hold_epochs` epochs, then control is
/// handed back to the controller. Entries/exits/epochs are counted in
/// RunResult and the run's telemetry. While every core sits in fallback,
/// worst-case provisioning keeps chip power under the budget (the
/// bench_e12 acceptance property).
struct WatchdogConfig {
  bool enabled = false;
  std::size_t violation_epochs = 3;
  double violation_margin = 0.02;
  std::size_t hold_epochs = 50;

  void validate() const;
};

struct RunConfig {
  std::size_t epochs = 1000;
  /// Epochs run before measurement starts. The closed loop executes
  /// normally during warmup (controllers learn, budgets settle) but
  /// nothing is accumulated into the RunResult. Steady-state comparisons
  /// use this so a learning controller's ramp and a static controller's
  /// instant start are compared on the same (converged) footing; set to 0
  /// to measure the ramp itself (convergence experiment E6).
  std::size_t warmup_epochs = 0;
  /// Budget-change schedule, sorted by epoch. Event epochs count from the
  /// start of the *measured* region: an event at epoch e takes effect
  /// before measured epoch e runs. Events at epoch 0 describe the budget
  /// in force when measurement starts, so they are applied *before*
  /// warmup -- warmup must learn under the budget the measured region will
  /// be evaluated against, not under the default TDP.
  std::vector<BudgetEvent> budget_events;
  bool keep_traces = true;  ///< record per-epoch chip traces

  /// Execution width handed to the system and controller for this run
  /// (ManyCoreSystem::set_threads / Controller::set_threads). 0 = leave
  /// both as configured (default); 1 = force serial; n = n-wide. Results
  /// are bit-identical for every value. Mutually exclusive with
  /// `runtime`.
  std::size_t threads = 0;

  /// Shared task runtime installed on the system and controller (and any
  /// hot-swapped replacement) for this run. MultiChipRun sets this so
  /// every chip's per-core chunks land on one worker fleet; a null
  /// pointer (default) leaves each component on its own runtime. Results
  /// are bit-identical either way. Mutually exclusive with `threads`.
  std::shared_ptr<task::Runtime> runtime;

  /// Optional telemetry recorder (non-owning; must outlive the run). The
  /// runner threads it through the system and controller, emits per-epoch
  /// records, decide()-latency histograms and budget events, and detaches
  /// it when the run ends. Recording is purely observational: RunResults
  /// are bit-identical with and without a recorder, at any thread count.
  telemetry::Recorder* recorder = nullptr;

  /// Optional fault schedule (non-owning; must outlive the run). The
  /// runner builds a FaultEngine from it and attaches the engine at the
  /// start of the *measured* region -- fault-event epochs count from
  /// measured epoch 0, mirroring budget_events -- and detaches it at run
  /// end. A null (or empty) schedule leaves the run bit-identical to one
  /// with no fault plumbing at all.
  const FaultSchedule* faults = nullptr;

  /// Controller hot-swap schedule, sorted by epoch (measured clock, like
  /// budget_events). Swaps with epoch <= e are processed at the top of
  /// measured epoch e, before that epoch's budget events.
  std::vector<SwapEvent> swaps;

  /// Snapshot capture: when `snapshot_out` is non-null, the runner
  /// serializes the full run state into it at the top of measured epoch
  /// `snapshot_epoch` (before that epoch's swap/budget events). The
  /// capture allocates; it is an event epoch, excluded from the
  /// steady-state zero-allocation contract.
  std::size_t snapshot_epoch = 0;
  std::string* snapshot_out = nullptr;

  /// Resume: when non-null, the run restores from this blob instead of
  /// starting fresh. The system and controller passed to run_closed_loop
  /// must be freshly constructed from the same configuration as the run
  /// that captured the snapshot (same chip, workload, schedules, threads);
  /// warmup and epoch-0 budget pre-application are skipped and the
  /// measured loop continues from the captured epoch. Malformed or
  /// mismatched blobs throw snapshot::SnapshotError. Non-owning; must
  /// outlive the call.
  const std::string* resume_snapshot = nullptr;

  /// Controller watchdog (off by default; see WatchdogConfig).
  WatchdogConfig watchdog;

  /// Telemetry session identity, forwarded into RunInfo::tag (and from
  /// there into sink filenames/records). run_multichip sets it from
  /// ChipSpec::tag; empty means "untagged standalone run".
  std::string session_tag;

  void validate() const;
};

/// Everything a run produced. Power/energy figures use *true* (noise-free)
/// power: sensors may lie to the controller but never to the evaluation.
/// A controller hot-swap the run performed (RunResult::swaps); the same
/// record the telemetry stream carries.
using SwapTrace = telemetry::ControllerSwapRecord;

/// A/B report for one controller hot-swap: budget-compliance aggregates
/// over the measured epochs immediately before the swap (back to the
/// previous swap, or the start of the measured region) and immediately
/// after it (up to the next swap, or the end of the run). Overshoot is
/// judged the way the energy accountant judges it: *true* chip power
/// against the budget observed in force that epoch.
struct SwapImpact {
  std::size_t epoch = 0;        ///< system clock, matches SwapTrace
  std::string from;             ///< outgoing controller
  std::string to;               ///< incoming controller
  std::size_t epochs_before = 0;
  std::size_t epochs_after = 0;
  /// Mean of max(0, true_power - budget) over the segment, in watts.
  double mean_overshoot_w_before = 0.0;
  double mean_overshoot_w_after = 0.0;
  /// Fraction of the segment's epochs with true power above budget.
  double violation_frac_before = 0.0;
  double violation_frac_after = 0.0;

  /// Negative = the swap reduced overshoot / violations.
  double delta_mean_overshoot_w() const {
    return mean_overshoot_w_after - mean_overshoot_w_before;
  }
  double delta_violation_frac() const {
    return violation_frac_after - violation_frac_before;
  }
};

struct RunResult {
  std::string controller_name;
  std::size_t epochs = 0;
  double epoch_s = 0.0;
  /// First measured epoch this result covers: 0 for a fresh run, the
  /// captured epoch when resumed from a snapshot (the result then
  /// aggregates the resumed tail only).
  std::size_t start_epoch = 0;
  /// Controller hot-swaps performed, in order (epochs on the system clock,
  /// like `trace`).
  std::vector<SwapTrace> swaps;
  /// Pre/post budget-compliance aggregates, one per performed swap
  /// (swap_report[i] describes swaps[i]). Computed from in-run segment
  /// accumulators, so it is available even with keep_traces = false.
  std::vector<SwapImpact> swap_report;

  double total_instructions = 0.0;
  double total_energy_j = 0.0;
  double otb_energy_j = 0.0;      ///< energy above budget (integral)
  double time_over_s = 0.0;       ///< wall time spent above budget
  double peak_overshoot_w = 0.0;  ///< worst instantaneous overshoot
  double mean_power_w = 0.0;
  double decision_time_s = 0.0;   ///< cumulative wall time inside decide()
  std::size_t decisions = 0;
  std::size_t thermal_violation_epochs = 0;

  // -- Fault-injection & graceful-degradation accounting (all zero when
  //    no schedule / watchdog is configured) --
  std::size_t fault_events_applied = 0;     ///< schedule events activated
  std::size_t watchdog_invalid_decisions = 0;  ///< levels sanitized
  std::size_t watchdog_fallback_entries = 0;   ///< per-core entries
  std::size_t watchdog_fallback_exits = 0;     ///< per-core exits
  std::size_t watchdog_fallback_epochs = 0;    ///< epochs with any core
                                               ///< held at the safe level

  /// Per-epoch typed records (RunConfig::keep_traces), measured region
  /// only: trace[i] is measured epoch i. The records' .epoch field carries
  /// the *system's* epoch counter (which keeps counting through warmup), so
  /// trace records and controller events share one clock in exported
  /// telemetry.
  std::vector<EpochTrace> trace;

  // -- Compatibility accessors over `trace` (materialize one column) --
  /// True (noise-free) chip watts per epoch.
  std::vector<double> chip_power_trace() const;
  /// Budget in force per epoch.
  std::vector<double> budget_trace() const;
  /// Chip IPS per epoch.
  std::vector<double> ips_trace() const;
  /// Hottest tile per epoch.
  std::vector<double> max_temp_trace() const;

  double elapsed_s() const { return static_cast<double>(epochs) * epoch_s; }
  /// Mean chip throughput in billions of instructions per second.
  double bips() const;
  /// Energy efficiency: throughput per watt (BIPS/W).
  double bips_per_watt() const;
  /// ED^2-style efficiency: BIPS^3/W, the voltage-scaling-fair metric.
  double bips3_per_watt() const;
  /// Fraction of run time spent over budget.
  double overshoot_time_fraction() const;
  /// Mean decide() latency in microseconds.
  double mean_decision_us() const;
};

/// Runs the closed loop. The controller's initial_levels() seeds epoch 0;
/// afterwards each decide() output drives the next epoch.
RunResult run_closed_loop(ManyCoreSystem& system, Controller& controller,
                          const RunConfig& config);

}  // namespace odrl::sim
