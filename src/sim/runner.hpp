// The closed-loop driver: runs a Controller against a ManyCoreSystem for a
// number of epochs, times every decide() call (the scalability experiment's
// measured quantity), applies scheduled power-cap events, and accumulates
// the traces and energy totals the metrics layer consumes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/controller.hpp"
#include "sim/system.hpp"
#include "telemetry/record.hpp"
#include "telemetry/recorder.hpp"

namespace odrl::sim {

/// One measured epoch of a run: the typed trace record. This *is* the
/// telemetry schema's chip-level record -- RunResult::trace and every
/// exported trace (CSV/JSONL) describe identical quantities, by
/// construction.
using EpochTrace = telemetry::EpochRecord;

/// At `epoch`, the chip budget becomes `budget_w` (rack-level power-cap or
/// thermal-event emulation).
struct BudgetEvent {
  std::size_t epoch = 0;
  double budget_w = 0.0;
};

struct RunConfig {
  std::size_t epochs = 1000;
  /// Epochs run before measurement starts. The closed loop executes
  /// normally during warmup (controllers learn, budgets settle) but
  /// nothing is accumulated into the RunResult. Steady-state comparisons
  /// use this so a learning controller's ramp and a static controller's
  /// instant start are compared on the same (converged) footing; set to 0
  /// to measure the ramp itself (convergence experiment E6).
  std::size_t warmup_epochs = 0;
  /// Budget-change schedule, sorted by epoch. Event epochs count from the
  /// start of the *measured* region: an event at epoch e takes effect
  /// before measured epoch e runs. Events at epoch 0 describe the budget
  /// in force when measurement starts, so they are applied *before*
  /// warmup -- warmup must learn under the budget the measured region will
  /// be evaluated against, not under the default TDP.
  std::vector<BudgetEvent> budget_events;
  bool keep_traces = true;  ///< record per-epoch chip traces

  /// Execution width handed to the system and controller for this run
  /// (ManyCoreSystem::set_threads / Controller::set_threads). 0 = leave
  /// both as configured (default); 1 = force serial; n = n-wide. Results
  /// are bit-identical for every value.
  std::size_t threads = 0;

  /// Optional telemetry recorder (non-owning; must outlive the run). The
  /// runner threads it through the system and controller, emits per-epoch
  /// records, decide()-latency histograms and budget events, and detaches
  /// it when the run ends. Recording is purely observational: RunResults
  /// are bit-identical with and without a recorder, at any thread count.
  telemetry::Recorder* recorder = nullptr;

  void validate() const;
};

/// Everything a run produced. Power/energy figures use *true* (noise-free)
/// power: sensors may lie to the controller but never to the evaluation.
struct RunResult {
  std::string controller_name;
  std::size_t epochs = 0;
  double epoch_s = 0.0;

  double total_instructions = 0.0;
  double total_energy_j = 0.0;
  double otb_energy_j = 0.0;      ///< energy above budget (integral)
  double time_over_s = 0.0;       ///< wall time spent above budget
  double peak_overshoot_w = 0.0;  ///< worst instantaneous overshoot
  double mean_power_w = 0.0;
  double decision_time_s = 0.0;   ///< cumulative wall time inside decide()
  std::size_t decisions = 0;
  std::size_t thermal_violation_epochs = 0;

  /// Per-epoch typed records (RunConfig::keep_traces), measured region
  /// only: trace[i] is measured epoch i. The records' .epoch field carries
  /// the *system's* epoch counter (which keeps counting through warmup), so
  /// trace records and controller events share one clock in exported
  /// telemetry.
  std::vector<EpochTrace> trace;

  // -- Compatibility accessors over `trace` (materialize one column) --
  /// True (noise-free) chip watts per epoch.
  std::vector<double> chip_power_trace() const;
  /// Budget in force per epoch.
  std::vector<double> budget_trace() const;
  /// Chip IPS per epoch.
  std::vector<double> ips_trace() const;
  /// Hottest tile per epoch.
  std::vector<double> max_temp_trace() const;

  double elapsed_s() const { return static_cast<double>(epochs) * epoch_s; }
  /// Mean chip throughput in billions of instructions per second.
  double bips() const;
  /// Energy efficiency: throughput per watt (BIPS/W).
  double bips_per_watt() const;
  /// ED^2-style efficiency: BIPS^3/W, the voltage-scaling-fair metric.
  double bips3_per_watt() const;
  /// Fraction of run time spent over budget.
  double overshoot_time_fraction() const;
  /// Mean decide() latency in microseconds.
  double mean_decision_us() const;
};

/// Runs the closed loop. The controller's initial_levels() seeds epoch 0;
/// afterwards each decide() output drives the next epoch.
RunResult run_closed_loop(ManyCoreSystem& system, Controller& controller,
                          const RunConfig& config);

}  // namespace odrl::sim
