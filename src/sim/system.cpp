#include "sim/system.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "sim/validate.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "util/check.hpp"

namespace odrl::sim {

namespace {
// Chunk sizes for the sharded per-core loops. Fixed constants: the chunk
// layout (and therefore the floating-point reduction tree) must depend
// only on the core count, never on the thread count.
constexpr std::size_t kCoreGrain = 32;     ///< perf/power/observation loop
constexpr std::size_t kTrafficGrain = 64;  ///< DRAM traffic sum (cheaper)
}  // namespace

void SimConfig::validate() const {
  if (epoch_s <= 0.0) throw std::invalid_argument("SimConfig: epoch_s <= 0");
  if (sensor_noise_rel < 0.0 || sensor_noise_rel > 0.5) {
    throw std::invalid_argument(
        "SimConfig: sensor_noise_rel must be in [0, 0.5]");
  }
  if (switch_penalty_s < 0.0 || switch_penalty_s >= epoch_s) {
    throw std::invalid_argument(
        "SimConfig: switch_penalty_s must be in [0, epoch_s)");
  }
  if (switch_energy_j < 0.0) {
    throw std::invalid_argument("SimConfig: switch_energy_j < 0");
  }
  dram.validate();
}

ManyCoreSystem::ManyCoreSystem(arch::ChipConfig config,
                               std::unique_ptr<workload::Workload> workload,
                               SimConfig sim,
                               std::optional<arch::VariationMap> variation)
    : config_(std::move(config)),
      workload_(std::move(workload)),
      sim_(sim),
      variation_(variation ? std::move(*variation)
                           : arch::VariationMap::none(config_.n_cores())),
      thermal_(config_.mesh(), config_.thermal()),
      dram_(sim.dram),
      runtime_(std::make_shared<task::Runtime>(sim.threads)),
      tile_power_(config_.mesh().size(), 0.0),
      budget_w_(config_.tdp_w()) {
  sim_.validate();
  // Counter-based noise substreams: core i is seeded with the (i+1)-th
  // output of SplitMix64(seed), so its stream depends only on (seed, i) --
  // not on the chip's core count, the other cores' draws, or the thread
  // count. This is what makes the parallel epoch loop deterministic.
  noise_rngs_.reserve(config_.n_cores());
  util::SplitMix64 noise_seeder(sim_.seed);
  for (std::size_t i = 0; i < config_.n_cores(); ++i) {
    noise_rngs_.emplace_back(noise_seeder.next());
  }
  if (!workload_) throw std::invalid_argument("ManyCoreSystem: null workload");
  if (workload_->n_cores() != config_.n_cores()) {
    throw std::invalid_argument(
        "ManyCoreSystem: workload core count does not match chip");
  }
  if (variation_.n_cores() != config_.n_cores()) {
    throw std::invalid_argument(
        "ManyCoreSystem: variation map core count does not match chip");
  }
  perf_.reserve(config_.n_cores());
  power_.reserve(config_.n_cores());
  for (std::size_t i = 0; i < config_.n_cores(); ++i) {
    const arch::CoreParams params = variation_.apply(config_.core(), i);
    perf_.emplace_back(params);
    power_.emplace_back(params);
  }
  rebuild_power_batch();
  // Start thermals slightly warm rather than at ambient so the first
  // epochs are not unrealistically cool.
  thermal_.reset(config_.thermal().ambient_c + 5.0);
}

ManyCoreSystem::ManyCoreSystem(arch::ChipConfig config,
                               std::unique_ptr<workload::Workload> workload,
                               SimConfig sim,
                               std::vector<arch::CoreParams> per_core_params)
    : ManyCoreSystem(std::move(config), std::move(workload), sim) {
  if (per_core_params.size() != config_.n_cores()) {
    throw std::invalid_argument(
        "ManyCoreSystem: per-core params size does not match chip");
  }
  perf_.clear();
  power_.clear();
  for (const arch::CoreParams& params : per_core_params) {
    params.validate();
    perf_.emplace_back(params);
    power_.emplace_back(params);
  }
  rebuild_power_batch();
}

void ManyCoreSystem::rebuild_power_batch() {
  std::vector<arch::CoreParams> per_core;
  per_core.reserve(power_.size());
  for (const power::PowerModel& model : power_) {
    per_core.push_back(model.params());
  }
  power_batch_.emplace(per_core, config_.vf_table());
  power_scratch_.assign(power_.size(), 0.0);
}

double ManyCoreSystem::noisy(std::size_t core, double value) {
  if (sim_.sensor_noise_rel <= 0.0) return value;
  return std::max(
      0.0, value * (1.0 + noise_rngs_[core].gaussian(
                              0.0, sim_.sensor_noise_rel)));
}

void ManyCoreSystem::set_threads(std::size_t threads) {
  sim_.threads = threads;
  runtime_ = std::make_shared<task::Runtime>(threads);
}

void ManyCoreSystem::set_runtime(std::shared_ptr<task::Runtime> runtime) {
  if (!runtime) {
    throw std::invalid_argument("ManyCoreSystem::set_runtime: null runtime");
  }
  sim_.threads = runtime->size();
  runtime_ = std::move(runtime);
}

std::size_t ManyCoreSystem::threads() const { return runtime_->size(); }

void ManyCoreSystem::set_fault_engine(FaultEngine* engine) {
  if (engine != nullptr && engine->n_cores() != config_.n_cores()) {
    throw std::invalid_argument(
        "ManyCoreSystem::set_fault_engine: engine core count mismatch");
  }
  faults_ = engine;
  applied_levels_.resize(config_.n_cores());
}

void ManyCoreSystem::step_into(std::span<const std::size_t> levels,
                               EpochResult& out) {
  const std::size_t n = config_.n_cores();
  if (levels.size() != n) {
    throw std::invalid_argument("ManyCoreSystem::step: levels size mismatch");
  }
  const auto& vf = config_.vf_table();
  for (std::size_t level : levels) {
    if (level >= vf.size()) {
      throw std::invalid_argument("ManyCoreSystem::step: level out of range");
    }
  }

  // Contract: the borrowed levels span must not alias the SoA block we are
  // about to overwrite -- e.g. step_into(out.cores.level(), out) reads
  // levels the loop below has already clobbered.
  ODRL_VALIDATE(validate_levels_disjoint(levels, out));

  // Fault prologue (serial): advance the engine one epoch, route the
  // requested levels through its actuation faults, and pick up this
  // epoch's budget scaling. From here on `levels` are the *applied*
  // levels -- what the silicon physically runs at (and what switch-cost
  // accounting and the observation's level column report).
  double budget_factor = 1.0;
  if (faults_ != nullptr) {
    faults_->begin_epoch();
    faults_->apply_actuation(levels, applied_levels_);
    levels = applied_levels_;
    budget_factor = faults_->budget_factor();
  }

  const std::span<const workload::PhaseSample> samples = workload_->step();

  // Shared-memory contention: fixed point of the chip's aggregate miss
  // traffic against the queueing latency multiplier. The per-core traffic
  // terms are independent, so each solver iteration shards the sum across
  // the runtime (chunk-ordered partials keep the result bit-identical for
  // every thread count).
  double mem_scale = 1.0;
  double dram_util = 0.0;
  if (dram_.enabled()) {
    auto traffic_at = [&](double m) {
      return runtime_->parallel_reduce(
          n, kTrafficGrain, 0.0,
          [&](std::size_t begin, std::size_t end) {
            double bytes_per_s = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
              // Power-gated cores issue no memory traffic.
              if (faults_ != nullptr && faults_->core_offline(i)) continue;
              const double ips =
                  perf_[i].ips(samples[i], vf[levels[i]].freq_ghz, m);
              // parallel_reduce folds the partials in fixed chunk order.
              // lint: allow(raw-loop-reduction): chunk partial
              bytes_per_s +=
                  ips * samples[i].mpki / 1000.0 * dram_.config().line_bytes;
            }
            return bytes_per_s;
          },
          [](double acc, double partial) { return acc + partial; },
          traffic_partials_);
    };
    mem_scale = dram_.solve_multiplier(traffic_at);
    dram_util = dram_.utilization(traffic_at(mem_scale));
  }

  out.epoch = epoch_;
  out.epoch_s = sim_.epoch_s;
  out.budget_w = budget_w_ * budget_factor;
  out.mem_latency_mult = mem_scale;
  out.dram_utilization = dram_util;
  out.cores.resize(n);

  // SoA output columns; captured once, written per core in the loop.
  const std::span<std::size_t> out_level = out.cores.level();
  const std::span<double> out_ips = out.cores.ips();
  const std::span<double> out_instructions = out.cores.instructions();
  const std::span<double> out_power = out.cores.power_w();
  const std::span<double> out_true_power = out.cores.true_power_w();
  const std::span<double> out_stall = out.cores.mem_stall_frac();
  const std::span<double> out_temp = out.cores.temp_c();
  const std::span<std::uint8_t> out_online = out.cores.online();

  std::fill(tile_power_.begin(), tile_power_.end(), 0.0);

  // Per-core perf/power/observation loop, sharded across the task runtime. Every
  // core touches only its own models, noise substream and output slots;
  // the three chip-level sums are reduced over chunk-ordered partials, so
  // the additions happen in a fixed tree regardless of thread count.
  const StepSums sums = runtime_->parallel_reduce(
      n, kCoreGrain, StepSums{},
      [&](std::size_t begin, std::size_t end) {
        StepSums local;
        // Batch power for this chunk's cores (vectorized SoA kernel,
        // bit-identical to the per-core core_power calls). Offline cores'
        // slots are computed and then overwritten with 0 below.
        power_batch_->core_power_into(begin, end, levels, samples,
                                      thermal_.temperatures(), power_scratch_);
        for (std::size_t i = begin; i < end; ++i) {
          // Power-gated (hotplug-out) core: retires nothing, draws ~0 W,
          // sensors read zero. Its noise substream draws nothing this
          // epoch (no sensor, no sample) -- still deterministic, the
          // stream is private to this core.
          if (faults_ != nullptr && faults_->core_offline(i)) {
            out_level[i] = levels[i];
            out_ips[i] = 0.0;
            out_instructions[i] = 0.0;
            out_power[i] = 0.0;
            out_true_power[i] = 0.0;
            out_stall[i] = 0.0;
            out_temp[i] = thermal_.temperature(i);
            out_online[i] = 0;
            tile_power_[i] = 0.0;
            continue;
          }
          const arch::VfPoint& point = vf[levels[i]];
          const double temp = thermal_.temperature(i);
          auto ep = perf_[i].epoch(samples[i], point.freq_ghz, sim_.epoch_s,
                                   mem_scale);
          double true_w = power_scratch_[i];

          // DVFS actuation cost: a level change stalls the core and
          // dissipates regulator transition energy during this epoch.
          const bool switched =
              have_prev_levels_ && prev_levels_[i] != levels[i];
          if (switched) {
            const double run_frac =
                1.0 - sim_.switch_penalty_s / sim_.epoch_s;
            ep.instructions *= run_frac;
            ep.ips *= run_frac;
            true_w += sim_.switch_energy_j / sim_.epoch_s;
          }

          // Sensor faults corrupt the *measured* readings only, after
          // noise: true_power_w and the chip's true aggregates always
          // carry the physical values. filter_* mutates only core i's
          // stuck-at-last slot -- race-free in this per-core loop.
          double meas_ips = noisy(i, ep.ips);
          double meas_w = noisy(i, true_w);
          if (faults_ != nullptr) {
            meas_ips = faults_->filter_ips(i, meas_ips);
            meas_w = faults_->filter_power(i, meas_w);
          }

          out_level[i] = levels[i];
          out_ips[i] = meas_ips;
          out_instructions[i] = ep.instructions;
          out_power[i] = meas_w;
          out_true_power[i] = true_w;
          out_stall[i] = ep.mem_stall_frac;
          out_temp[i] = temp;
          out_online[i] = 1;

          tile_power_[i] = true_w;
          local.true_w += true_w;
          local.meas_w += out_power[i];
          local.ips += ep.ips;
        }
        return local;
      },
      [](StepSums acc, const StepSums& partial) {
        acc.true_w += partial.true_w;
        acc.meas_w += partial.meas_w;
        acc.ips += partial.ips;
        return acc;
      },
      step_partials_);
  const double chip_true_w = sums.true_w;
  const double chip_meas_w = sums.meas_w;
  const double total_ips = sums.ips;

  thermal_.step(tile_power_, sim_.epoch_s);

  out.chip_power_w = chip_meas_w;
  out.true_chip_power_w = chip_true_w;
  out.total_ips = total_ips;
  out.max_temp_c = thermal_.max_temperature();
  out.thermal_violations = thermal_.violation_count();

  // Telemetry (serial tail; nothing above may touch the recorder). Level
  // switches are counted against the previous epoch's levels before they
  // are overwritten.
  if (recorder_ && recorder_->active()) {
    std::uint64_t switches = 0;
    if (have_prev_levels_) {
      for (std::size_t i = 0; i < n; ++i) {
        if (prev_levels_[i] != levels[i]) ++switches;
      }
    }
    recorder_->counter("sim.epochs").add(1);
    recorder_->counter("sim.level_switches").add(switches);
    recorder_->counter("sim.thermal_violations").add(out.thermal_violations);
    if (dram_.enabled()) {
      recorder_->gauge("sim.dram_utilization").set(dram_util);
      recorder_->gauge("sim.mem_latency_mult").set(mem_scale);
    }
    if (faults_ != nullptr && faults_->any_active()) {
      recorder_->counter("sim.fault_epochs").add(1);
    }
  }

  prev_levels_.assign(levels.begin(), levels.end());
  have_prev_levels_ = true;
  ++epoch_;

  // Post-condition: the observation we hand to the controller satisfies
  // every shape and physical invariant (power finite and >= 0, levels in
  // the V/F table, SoA columns core-count long, chip sums consistent).
  // Active sensor faults, like noise, decouple total_ips from the
  // (corrupted) measured ips column.
  ODRL_VALIDATE(validate_epoch(
      out, n, vf.size(),
      sim_.sensor_noise_rel > 0.0 ||
          (faults_ != nullptr && faults_->any_sensor_fault())));
}

EpochResult ManyCoreSystem::step(std::span<const std::size_t> levels) {
  EpochResult result;
  step_into(levels, result);
  return result;
}

const perf::PerfModel& ManyCoreSystem::perf_model(std::size_t core) const {
  if (core >= perf_.size()) {
    throw std::out_of_range("ManyCoreSystem::perf_model: core out of range");
  }
  return perf_[core];
}

const power::PowerModel& ManyCoreSystem::power_model(std::size_t core) const {
  if (core >= power_.size()) {
    throw std::out_of_range("ManyCoreSystem::power_model: core out of range");
  }
  return power_[core];
}

void ManyCoreSystem::set_budget_w(double budget_w) {
  if (budget_w <= 0.0) {
    throw std::invalid_argument("ManyCoreSystem::set_budget_w: <= 0");
  }
  budget_w_ = budget_w;
}

void ManyCoreSystem::save_state(snapshot::Writer& w) const {
  w.u64(epoch_);
  w.f64(budget_w_);
  w.u8(have_prev_levels_ ? 1 : 0);
  w.u64(prev_levels_.size());
  for (std::size_t level : prev_levels_) w.u64(level);
  const std::vector<double>& temps = thermal_.temperatures();
  w.u64(temps.size());
  for (double t : temps) w.f64(t);
  w.u64(noise_rngs_.size());
  for (const util::Rng& rng : noise_rngs_) snapshot::save_rng(w, rng);
  workload_->save_state(w);
}

void ManyCoreSystem::load_state(snapshot::Reader& r) {
  using snapshot::SnapshotError;
  using snapshot::SnapshotStatus;
  epoch_ = r.u64();
  const double budget = r.f64();
  if (!std::isfinite(budget) || budget <= 0.0) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "system budget must be finite and > 0");
  }
  budget_w_ = budget;
  const bool have_prev = r.u8() != 0;
  const std::uint64_t n_prev = r.u64();
  if (n_prev != 0 && n_prev != config_.n_cores()) {
    throw SnapshotError(SnapshotStatus::kDimensionMismatch,
                        "prev-levels count does not match core count");
  }
  prev_levels_.resize(n_prev);
  const std::size_t n_levels = config_.vf_table().size();
  for (std::size_t& level : prev_levels_) {
    const std::uint64_t v = r.u64();
    if (v >= n_levels) {
      throw SnapshotError(SnapshotStatus::kBadValue,
                          "prev level indexes past the V/F table");
    }
    level = static_cast<std::size_t>(v);
  }
  have_prev_levels_ = have_prev;
  const std::uint64_t n_temps = r.u64();
  if (n_temps != thermal_.size()) {
    throw SnapshotError(SnapshotStatus::kDimensionMismatch,
                        "thermal field size does not match the mesh");
  }
  std::vector<double> temps(n_temps);
  for (double& t : temps) {
    t = r.f64();
    if (!std::isfinite(t)) {
      throw SnapshotError(SnapshotStatus::kNonFinite,
                          "thermal field holds a non-finite temperature");
    }
  }
  thermal_.set_temperatures(temps);
  const std::uint64_t n_rngs = r.u64();
  if (n_rngs != noise_rngs_.size()) {
    throw SnapshotError(SnapshotStatus::kDimensionMismatch,
                        "noise-stream count does not match core count");
  }
  for (util::Rng& rng : noise_rngs_) snapshot::load_rng(r, rng);
  workload_->load_state(r);
}

}  // namespace odrl::sim
