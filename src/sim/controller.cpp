#include "sim/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::sim {

namespace {
// Clears the bridging flag on every exit path (including exceptions).
struct BridgeGuard {
  bool* flag;
  ~BridgeGuard() { *flag = false; }
};
}  // namespace

void Controller::decide_into(const EpochResult& obs,
                             std::span<std::size_t> out) {
  if (bridging_) {
    throw std::logic_error(
        "Controller '" + name() +
        "' overrides neither decide_into() nor decide()");
  }
  bridging_ = true;
  BridgeGuard guard{&bridging_};
  // The deprecated decide() bridge allocates by definition of the legacy
  // API -- that is exactly why out-of-tree controllers should migrate.
  const auto levels = decide(obs);  // lint: allow(heap-in-hot-path): bridge
  if (levels.size() != out.size()) {
    throw std::logic_error("Controller '" + name() +
                           "': decide() returned wrong level count");
  }
  std::copy(levels.begin(), levels.end(), out.begin());
}

std::vector<std::size_t> Controller::decide(const EpochResult& obs) {
  if (bridging_) {
    throw std::logic_error(
        "Controller '" + name() +
        "' overrides neither decide_into() nor decide()");
  }
  bridging_ = true;
  BridgeGuard guard{&bridging_};
  std::vector<std::size_t> out(obs.n_cores());
  decide_into(obs, out);
  return out;
}

}  // namespace odrl::sim
