#include "sim/controller.hpp"

#include "snapshot/snapshot.hpp"

namespace odrl::sim {

// Empty defaults: a controller with no state between epochs (Greedy,
// MaxBIPS) snapshots as an empty payload and restores from one. Stateful
// policies override both; forgetting one side shows up immediately in the
// resume golden test (the restored decision stream diverges), not silently
// in production.
void Controller::save_state(snapshot::Writer& /*w*/) const {}

void Controller::load_state(snapshot::Reader& /*r*/) {}

}  // namespace odrl::sim
