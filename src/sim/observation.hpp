// Sensor-level observations: the only information channel between the
// simulated silicon and any controller. Mirrors what per-core power/
// performance counters expose on real parts (RAPL-class power telemetry,
// retired-instruction counters, stall-cycle counters, thermal diodes).
//
// The per-core payload is stored structure-of-arrays (one contiguous array
// per sensor field) so the hot loops -- simulator fill, controller scans,
// telemetry emission -- stream each field without striding over a 56-byte
// AoS record, and so an EpochResult can be reused across epochs with zero
// steady-state heap allocations (see DESIGN.md "Epoch data path").
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

namespace odrl::sim {

/// One core's per-epoch sensor readout, as a value snapshot. This is the
/// ergonomic row view over the SoA block below: cheap to materialize at
/// cold call sites, never stored by the hot path.
struct CoreObservation {
  std::size_t level = 0;        ///< V/F level the core ran at this epoch
  double ips = 0.0;             ///< measured instructions per second
  double instructions = 0.0;    ///< instructions retired this epoch
  double power_w = 0.0;         ///< measured core power (noise applies)
  double true_power_w = 0.0;    ///< noise-free core power (metrics only;
                                ///< controllers must not read this)
  double mem_stall_frac = 0.0;  ///< stall-cycle fraction (memory intensity)
  double temp_c = 0.0;          ///< junction temperature
  bool online = true;           ///< false while power-gated (hotplug fault)
};

/// Structure-of-arrays block of per-core sensor samples. Each field is a
/// parallel array indexed by core id; span accessors expose the columns
/// directly. `operator[]` / iteration yield CoreObservation *values*
/// (snapshots), so existing `obs.cores[i].power_w` reads keep compiling --
/// but writes must go through the spans or `set()`.
class CoreSamples {
 public:
  std::size_t size() const noexcept { return level_.size(); }
  bool empty() const noexcept { return level_.empty(); }

  /// Grows or shrinks every column; new slots are value-initialized
  /// (zero), except `online`, whose new slots are 1 -- a core is online
  /// unless a fault engine gates it. Shrinking then re-growing reuses
  /// capacity -- no steady-state allocations once the high-water mark is
  /// reached.
  void resize(std::size_t n) {
    level_.resize(n);
    ips_.resize(n);
    instructions_.resize(n);
    power_w_.resize(n);
    true_power_w_.resize(n);
    mem_stall_frac_.resize(n);
    temp_c_.resize(n);
    const std::size_t old = online_.size();
    online_.resize(n);
    if (n > old) std::fill(online_.begin() + old, online_.end(), 1);
  }

  // Column accessors (mutable + const). Spans stay valid until the next
  // resize().
  std::span<std::size_t> level() noexcept { return level_; }
  std::span<const std::size_t> level() const noexcept { return level_; }
  std::span<double> ips() noexcept { return ips_; }
  std::span<const double> ips() const noexcept { return ips_; }
  std::span<double> instructions() noexcept { return instructions_; }
  std::span<const double> instructions() const noexcept {
    return instructions_;
  }
  std::span<double> power_w() noexcept { return power_w_; }
  std::span<const double> power_w() const noexcept { return power_w_; }
  std::span<double> true_power_w() noexcept { return true_power_w_; }
  std::span<const double> true_power_w() const noexcept {
    return true_power_w_;
  }
  std::span<double> mem_stall_frac() noexcept { return mem_stall_frac_; }
  std::span<const double> mem_stall_frac() const noexcept {
    return mem_stall_frac_;
  }
  std::span<double> temp_c() noexcept { return temp_c_; }
  std::span<const double> temp_c() const noexcept { return temp_c_; }
  /// 1 = core active, 0 = power-gated this epoch (hotplug fault).
  std::span<std::uint8_t> online() noexcept { return online_; }
  std::span<const std::uint8_t> online() const noexcept { return online_; }

  /// Row snapshot (by value). Fine for cold paths and tests; hot loops
  /// should read the column spans instead.
  CoreObservation operator[](std::size_t i) const {
    CoreObservation c;
    c.level = level_[i];
    c.ips = ips_[i];
    c.instructions = instructions_[i];
    c.power_w = power_w_[i];
    c.true_power_w = true_power_w_[i];
    c.mem_stall_frac = mem_stall_frac_[i];
    c.temp_c = temp_c_[i];
    c.online = online_[i] != 0;
    return c;
  }

  /// Scatter one row back into the columns.
  void set(std::size_t i, const CoreObservation& c) {
    level_[i] = c.level;
    ips_[i] = c.ips;
    instructions_[i] = c.instructions;
    power_w_[i] = c.power_w;
    true_power_w_[i] = c.true_power_w;
    mem_stall_frac_[i] = c.mem_stall_frac;
    temp_c_[i] = c.temp_c;
    online_[i] = c.online ? 1 : 0;
  }

  /// Input iterator yielding CoreObservation snapshots, so range-for over
  /// `obs.cores` keeps working (`const auto&` binds to the lifetime-
  /// extended temporary).
  class const_iterator {
   public:
    using value_type = CoreObservation;
    using reference = CoreObservation;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::input_iterator_tag;

    const_iterator() = default;
    CoreObservation operator*() const { return (*samples_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++i_;
      return tmp;
    }
    friend bool operator==(const const_iterator&,
                           const const_iterator&) = default;

   private:
    friend class CoreSamples;
    const_iterator(const CoreSamples* samples, std::size_t i)
        : samples_(samples), i_(i) {}
    const CoreSamples* samples_ = nullptr;
    std::size_t i_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

 private:
  std::vector<std::size_t> level_;
  std::vector<double> ips_;
  std::vector<double> instructions_;
  std::vector<double> power_w_;
  std::vector<double> true_power_w_;
  std::vector<double> mem_stall_frac_;
  std::vector<double> temp_c_;
  std::vector<std::uint8_t> online_;  ///< new slots fill with 1, not 0
};

/// Chip-wide snapshot after one epoch; input to Controller::decide_into().
struct EpochResult {
  std::size_t epoch = 0;
  double epoch_s = 0.0;
  double budget_w = 0.0;            ///< TDP budget in force this epoch
  double chip_power_w = 0.0;        ///< measured total chip power
  double true_chip_power_w = 0.0;   ///< noise-free power (metrics only;
                                    ///< controllers must not read this)
  /// Chip IPS, summed from the *noise-free* per-core rates: the throughput
  /// of record for traces and metrics. Under sensor noise this is NOT the
  /// sum of the per-core `ips` column (which is measured, i.e. noisy).
  double total_ips = 0.0;
  double max_temp_c = 0.0;
  std::size_t thermal_violations = 0;
  /// Shared-DRAM state this epoch (1.0 / 0.0 when contention is disabled).
  double mem_latency_mult = 1.0;
  double dram_utilization = 0.0;
  CoreSamples cores;

  std::size_t n_cores() const noexcept { return cores.size(); }
  /// Row-snapshot proxy for ergonomic cold-path reads.
  CoreObservation core(std::size_t i) const { return cores[i]; }
};

}  // namespace odrl::sim
