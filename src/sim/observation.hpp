// Sensor-level observations: the only information channel between the
// simulated silicon and any controller. Mirrors what per-core power/
// performance counters expose on real parts (RAPL-class power telemetry,
// retired-instruction counters, stall-cycle counters, thermal diodes).
#pragma once

#include <cstddef>
#include <vector>

namespace odrl::sim {

/// One core's per-epoch sensor readout.
struct CoreObservation {
  std::size_t level = 0;        ///< V/F level the core ran at this epoch
  double ips = 0.0;             ///< measured instructions per second
  double instructions = 0.0;    ///< instructions retired this epoch
  double power_w = 0.0;         ///< measured core power (noise applies)
  double true_power_w = 0.0;    ///< noise-free core power (metrics only;
                                ///< controllers must not read this)
  double mem_stall_frac = 0.0;  ///< stall-cycle fraction (memory intensity)
  double temp_c = 0.0;          ///< junction temperature
};

/// Chip-wide snapshot after one epoch; input to Controller::decide().
struct EpochResult {
  std::size_t epoch = 0;
  double epoch_s = 0.0;
  double budget_w = 0.0;            ///< TDP budget in force this epoch
  double chip_power_w = 0.0;        ///< measured total chip power
  double true_chip_power_w = 0.0;   ///< noise-free power (metrics only;
                                    ///< controllers must not read this)
  double total_ips = 0.0;
  double max_temp_c = 0.0;
  std::size_t thermal_violations = 0;
  /// Shared-DRAM state this epoch (1.0 / 0.0 when contention is disabled).
  double mem_latency_mult = 1.0;
  double dram_utilization = 0.0;
  std::vector<CoreObservation> cores;
};

}  // namespace odrl::sim
