#include "sim/faults.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

namespace odrl::sim {

namespace {

constexpr const char* kMagic = "# odrl-faults v1";
constexpr const char* kHeader = "epoch,kind,core,duration,magnitude";

/// Does this kind consume FaultEvent::magnitude, and what must it be?
bool kind_needs_magnitude(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSensorSaturate:
    case FaultKind::kActuationDelay:
    case FaultKind::kBudgetStep:
      return true;
    default:
      return false;
  }
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("fault schedule parse: bad ") +
                             what + " value '" + s + "'");
  }
}

std::size_t parse_size(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("fault schedule parse: bad ") +
                             what + " value '" + s + "'");
  }
}

FaultKind parse_kind(const std::string& s) {
  for (FaultKind kind :
       {FaultKind::kSensorStuckZero, FaultKind::kSensorStuckLast,
        FaultKind::kSensorSaturate, FaultKind::kActuationDelay,
        FaultKind::kActuationDrop, FaultKind::kBudgetStep,
        FaultKind::kCoreOffline}) {
    if (s == fault_kind_name(kind)) return kind;
  }
  throw std::runtime_error("fault schedule parse: unknown kind '" + s + "'");
}

/// Stable order for storage and serialization: by epoch, then core (with
/// chip-wide events last at their epoch), then kind.
bool event_less(const FaultEvent& a, const FaultEvent& b) {
  if (a.epoch != b.epoch) return a.epoch < b.epoch;
  if (a.core != b.core) return a.core < b.core;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSensorStuckZero:
      return "sensor_stuck_zero";
    case FaultKind::kSensorStuckLast:
      return "sensor_stuck_last";
    case FaultKind::kSensorSaturate:
      return "sensor_saturate";
    case FaultKind::kActuationDelay:
      return "actuation_delay";
    case FaultKind::kActuationDrop:
      return "actuation_drop";
    case FaultKind::kBudgetStep:
      return "budget_step";
    case FaultKind::kCoreOffline:
      return "core_offline";
  }
  throw std::invalid_argument("fault_kind_name: invalid kind");
}

void StormConfig::validate() const {
  for (double rate : {sensor_rate, actuation_rate, offline_rate,
                      budget_rate}) {
    if (!(rate >= 0.0 && rate <= 1.0)) {
      throw std::invalid_argument("StormConfig: rates must be in [0, 1]");
    }
  }
  if (min_duration == 0 || max_duration < min_duration) {
    throw std::invalid_argument(
        "StormConfig: need 0 < min_duration <= max_duration");
  }
  if (max_delay_epochs == 0) {
    throw std::invalid_argument("StormConfig: max_delay_epochs == 0");
  }
  if (!(min_budget_factor > 0.0) ||
      !(max_budget_factor >= min_budget_factor) ||
      !std::isfinite(max_budget_factor)) {
    throw std::invalid_argument(
        "StormConfig: need 0 < min_budget_factor <= max_budget_factor");
  }
  if (!(max_saturate_scale > 0.0) || !std::isfinite(max_saturate_scale)) {
    throw std::invalid_argument("StormConfig: max_saturate_scale <= 0");
  }
}

FaultSchedule& FaultSchedule::add(const FaultEvent& event) {
  // Keep the list sorted: upper_bound preserves insertion order among
  // equal keys, so builder order breaks ties deterministically.
  const auto pos =
      std::upper_bound(events_.begin(), events_.end(), event, event_less);
  events_.insert(pos, event);
  return *this;
}

FaultSchedule& FaultSchedule::sensor_stuck_zero(std::size_t epoch,
                                                std::size_t core,
                                                std::size_t duration) {
  return add({epoch, FaultKind::kSensorStuckZero, core, duration, 0.0});
}

FaultSchedule& FaultSchedule::sensor_stuck_last(std::size_t epoch,
                                                std::size_t core,
                                                std::size_t duration) {
  return add({epoch, FaultKind::kSensorStuckLast, core, duration, 0.0});
}

FaultSchedule& FaultSchedule::sensor_saturate(std::size_t epoch,
                                              std::size_t core,
                                              std::size_t duration,
                                              double scale) {
  return add({epoch, FaultKind::kSensorSaturate, core, duration, scale});
}

FaultSchedule& FaultSchedule::actuation_delay(std::size_t epoch,
                                              std::size_t core,
                                              std::size_t duration,
                                              std::size_t delay_epochs) {
  return add({epoch, FaultKind::kActuationDelay, core, duration,
              static_cast<double>(delay_epochs)});
}

FaultSchedule& FaultSchedule::actuation_drop(std::size_t epoch,
                                             std::size_t core,
                                             std::size_t duration) {
  return add({epoch, FaultKind::kActuationDrop, core, duration, 0.0});
}

FaultSchedule& FaultSchedule::budget_step(std::size_t epoch,
                                          std::size_t duration,
                                          double factor) {
  return add({epoch, FaultKind::kBudgetStep, kChipWide, duration, factor});
}

FaultSchedule& FaultSchedule::core_offline(std::size_t epoch,
                                           std::size_t core,
                                           std::size_t duration) {
  return add({epoch, FaultKind::kCoreOffline, core, duration, 0.0});
}

void FaultSchedule::validate(std::size_t n_cores) const {
  for (const FaultEvent& event : events_) {
    if (event.duration == 0) {
      throw std::invalid_argument("FaultSchedule: event with duration 0");
    }
    if (event.kind == FaultKind::kBudgetStep) {
      if (event.core != kChipWide) {
        throw std::invalid_argument(
            "FaultSchedule: budget_step must be chip-wide (core = *)");
      }
    } else if (event.core >= n_cores) {
      throw std::invalid_argument(
          "FaultSchedule: core index " + std::to_string(event.core) +
          " outside chip of " + std::to_string(n_cores) + " cores");
    }
    if (kind_needs_magnitude(event.kind)) {
      if (!std::isfinite(event.magnitude) || event.magnitude <= 0.0) {
        throw std::invalid_argument(
            std::string("FaultSchedule: ") + fault_kind_name(event.kind) +
            " needs a finite positive magnitude");
      }
    }
    if (event.kind == FaultKind::kActuationDelay &&
        event.magnitude != std::floor(event.magnitude)) {
      throw std::invalid_argument(
          "FaultSchedule: actuation_delay magnitude must be an integral "
          "epoch count");
    }
  }
}

FaultSchedule FaultSchedule::random_storm(std::size_t n_cores,
                                          std::size_t epochs,
                                          std::uint64_t seed,
                                          const StormConfig& storm) {
  storm.validate();
  if (n_cores == 0) {
    throw std::invalid_argument("random_storm: n_cores == 0");
  }
  FaultSchedule schedule;
  // Substream seeding mirrors the simulator's sensor-noise streams: core
  // i's fault stream is the (i+1)-th SplitMix64 output -- a pure function
  // of (seed, i), independent of n_cores iteration order. The chip-wide
  // budget stream takes the next output after the last core.
  util::SplitMix64 seeder(seed);
  const auto duration_between = [&](util::Rng& rng) {
    return static_cast<std::size_t>(
        rng.between(static_cast<std::int64_t>(storm.min_duration),
                    static_cast<std::int64_t>(storm.max_duration)));
  };
  for (std::size_t core = 0; core < n_cores; ++core) {
    util::Rng rng(seeder.next());
    // A core is given at most one fault of each family at a time: track
    // the epoch each family is busy until so storms do not stack
    // conflicting modes on one core.
    std::size_t sensor_free = 0;
    std::size_t act_free = 0;
    std::size_t offline_free = 0;
    for (std::size_t e = 0; e < epochs; ++e) {
      if (e >= sensor_free && rng.chance(storm.sensor_rate)) {
        const std::size_t duration = duration_between(rng);
        switch (rng.below(3)) {
          case 0:
            schedule.sensor_stuck_zero(e, core, duration);
            break;
          case 1:
            schedule.sensor_stuck_last(e, core, duration);
            break;
          default:
            schedule.sensor_saturate(
                e, core, duration,
                rng.uniform(1.5, storm.max_saturate_scale));
            break;
        }
        sensor_free = e + duration;
      }
      if (e >= act_free && rng.chance(storm.actuation_rate)) {
        const std::size_t duration = duration_between(rng);
        if (rng.chance(0.5)) {
          schedule.actuation_delay(
              e, core, duration,
              static_cast<std::size_t>(rng.between(
                  1, static_cast<std::int64_t>(storm.max_delay_epochs))));
        } else {
          schedule.actuation_drop(e, core, duration);
        }
        act_free = e + duration;
      }
      if (e >= offline_free && rng.chance(storm.offline_rate)) {
        const std::size_t duration = duration_between(rng);
        schedule.core_offline(e, core, duration);
        offline_free = e + duration;
      }
    }
  }
  util::Rng budget_rng(seeder.next());
  std::size_t budget_free = 0;
  for (std::size_t e = 0; e < epochs; ++e) {
    if (e >= budget_free && budget_rng.chance(storm.budget_rate)) {
      const std::size_t duration = duration_between(budget_rng);
      schedule.budget_step(e, duration,
                           budget_rng.uniform(storm.min_budget_factor,
                                              storm.max_budget_factor));
      budget_free = e + duration;
    }
  }
  return schedule;
}

void save_fault_schedule(const FaultSchedule& schedule, std::ostream& out) {
  out << kMagic << '\n' << kHeader << '\n';
  char buf[32];
  for (const FaultEvent& event : schedule.events()) {
    out << event.epoch << ',' << fault_kind_name(event.kind) << ',';
    if (event.core == kChipWide) {
      out << '*';
    } else {
      out << event.core;
    }
    out << ',' << event.duration << ',';
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), event.magnitude);
    if (ec != std::errc()) {
      throw std::runtime_error("save_fault_schedule: formatting failed");
    }
    out << std::string_view(buf, static_cast<std::size_t>(ptr - buf))
        << '\n';
  }
  if (!out) throw std::runtime_error("save_fault_schedule: stream failure");
}

FaultSchedule load_fault_schedule(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("load_fault_schedule: missing magic header");
  }
  if (!std::getline(in, line) || line != kHeader) {
    throw std::runtime_error("load_fault_schedule: missing column header");
  }
  FaultSchedule schedule;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split(line);
    if (cells.size() != 5) {
      throw std::runtime_error(
          "load_fault_schedule: row with wrong arity: " + line);
    }
    FaultEvent event;
    event.epoch = parse_size(cells[0], "epoch");
    event.kind = parse_kind(cells[1]);
    event.core = cells[2] == "*" ? kChipWide : parse_size(cells[2], "core");
    event.duration = parse_size(cells[3], "duration");
    event.magnitude = parse_double(cells[4], "magnitude");
    if (event.duration == 0) {
      throw std::runtime_error(
          "load_fault_schedule: event with duration 0: " + line);
    }
    if (event.kind == FaultKind::kBudgetStep) {
      if (event.core != kChipWide) {
        throw std::runtime_error(
            "load_fault_schedule: budget_step must use core '*': " + line);
      }
    } else if (event.core == kChipWide) {
      throw std::runtime_error(
          "load_fault_schedule: per-core kind with core '*': " + line);
    }
    if (kind_needs_magnitude(event.kind) &&
        (!std::isfinite(event.magnitude) || event.magnitude <= 0.0)) {
      throw std::runtime_error(
          "load_fault_schedule: magnitude must be finite and > 0: " + line);
    }
    schedule.add(event);
  }
  return schedule;
}

void save_fault_schedule_file(const FaultSchedule& schedule,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_fault_schedule_file: cannot open " +
                             path);
  }
  save_fault_schedule(schedule, out);
  // Flush before the destructor would swallow the error: a full disk must
  // surface here, not as a mysteriously truncated file.
  out.flush();
  if (!out) {
    throw std::runtime_error("save_fault_schedule_file: write failed for " +
                             path);
  }
}

FaultSchedule load_fault_schedule_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_fault_schedule_file: cannot open " +
                             path);
  }
  return load_fault_schedule(in);
}

FaultEngine::FaultEngine(const FaultSchedule& schedule, std::size_t n_cores)
    : n_cores_(n_cores),
      events_(schedule.events()),
      sensor_mode_(n_cores, SensorMode::kNone),
      sensor_until_(n_cores, 0),
      sensor_scale_(n_cores, 1.0),
      act_mode_(n_cores, ActMode::kNone),
      act_until_(n_cores, 0),
      act_delay_(n_cores, 0),
      offline_until_(n_cores, 0),
      offline_(n_cores, 0),
      last_ips_(n_cores, 0.0),
      last_power_(n_cores, 0.0),
      last_applied_(n_cores, 0) {
  schedule.validate(n_cores);
  std::size_t max_delay = 0;
  std::size_t n_budget_events = 0;
  for (const FaultEvent& event : events_) {
    if (event.kind == FaultKind::kActuationDelay) {
      max_delay = std::max(max_delay,
                           static_cast<std::size_t>(event.magnitude));
    }
    if (event.kind == FaultKind::kBudgetStep) ++n_budget_events;
  }
  history_depth_ = max_delay + 1;
  history_.assign(history_depth_ * n_cores_, 0);
  active_budgets_.assign(std::max<std::size_t>(n_budget_events, 1), {});
}

void FaultEngine::activate(const FaultEvent& event) {
  const std::size_t until = epoch_ + event.duration;
  switch (event.kind) {
    case FaultKind::kSensorStuckZero:
      sensor_mode_[event.core] = SensorMode::kZero;
      sensor_until_[event.core] = until;
      ++counts_.sensor;
      break;
    case FaultKind::kSensorStuckLast:
      sensor_mode_[event.core] = SensorMode::kLast;
      sensor_until_[event.core] = until;
      ++counts_.sensor;
      break;
    case FaultKind::kSensorSaturate:
      sensor_mode_[event.core] = SensorMode::kSaturate;
      sensor_until_[event.core] = until;
      sensor_scale_[event.core] = event.magnitude;
      ++counts_.sensor;
      break;
    case FaultKind::kActuationDelay:
      act_mode_[event.core] = ActMode::kDelay;
      act_until_[event.core] = until;
      act_delay_[event.core] = static_cast<std::size_t>(event.magnitude);
      ++counts_.actuation;
      break;
    case FaultKind::kActuationDrop:
      act_mode_[event.core] = ActMode::kDrop;
      act_until_[event.core] = until;
      ++counts_.actuation;
      break;
    case FaultKind::kBudgetStep:
      active_budgets_[n_active_budgets_++] = {until, event.magnitude};
      ++counts_.budget;
      break;
    case FaultKind::kCoreOffline:
      offline_until_[event.core] = until;
      ++counts_.hotplug;
      break;
  }
}

void FaultEngine::begin_epoch() {
  // Activate this epoch's scheduled events. Events may share an epoch;
  // the schedule is sorted so the cursor never rewinds. Events scheduled
  // for epochs the run never reached are simply never activated.
  while (next_event_ < events_.size() &&
         events_[next_event_].epoch <= epoch_) {
    // A late attach (epoch < current) would silently drop events; the
    // runner always attaches a fresh engine, so only == occurs.
    if (events_[next_event_].epoch == epoch_) {
      activate(events_[next_event_]);
    }
    ++next_event_;
  }

  // Refresh the per-core masks and the activity census for this epoch.
  // O(n_cores) over scalars in the serial prologue -- negligible next to
  // the step's per-core model work.
  active_count_ = 0;
  sensor_active_ = 0;
  for (std::size_t i = 0; i < n_cores_; ++i) {
    const bool sensor = epoch_ < sensor_until_[i];
    const bool act = epoch_ < act_until_[i];
    const bool off = epoch_ < offline_until_[i];
    if (!sensor) sensor_mode_[i] = SensorMode::kNone;
    if (!act) act_mode_[i] = ActMode::kNone;
    offline_[i] = off ? 1 : 0;
    active_count_ += static_cast<std::size_t>(sensor) +
                     static_cast<std::size_t>(act) +
                     static_cast<std::size_t>(off);
    sensor_active_ += static_cast<std::size_t>(sensor);
  }

  // Compact expired budget steps and fold the survivors' factors.
  std::size_t kept = 0;
  budget_factor_ = 1.0;
  for (std::size_t b = 0; b < n_active_budgets_; ++b) {
    if (epoch_ < active_budgets_[b].until) {
      budget_factor_ *= active_budgets_[b].factor;
      active_budgets_[kept++] = active_budgets_[b];
    }
  }
  n_active_budgets_ = kept;
  active_count_ += n_active_budgets_;

  ++epoch_;
}

void FaultEngine::apply_actuation(std::span<const std::size_t> requested,
                                  std::span<std::size_t> applied) {
  if (requested.size() != n_cores_ || applied.size() != n_cores_) {
    throw std::invalid_argument("FaultEngine::apply_actuation: span size");
  }
  // Record this epoch's requests into the history ring first, so a delay
  // of 0 (never scheduled, but defensively) would read the fresh value
  // and a delay of d reads the request from d epochs ago.
  std::size_t* slot = &history_[history_head_ * n_cores_];
  std::copy(requested.begin(), requested.end(), slot);
  if (history_size_ < history_depth_) ++history_size_;

  for (std::size_t i = 0; i < n_cores_; ++i) {
    std::size_t level = requested[i];
    switch (act_mode_[i]) {
      case ActMode::kDelay: {
        // Clamp to the oldest recorded request while history fills.
        const std::size_t lag = std::min(act_delay_[i], history_size_ - 1);
        const std::size_t row =
            (history_head_ + history_depth_ - lag) % history_depth_;
        level = history_[row * n_cores_ + i];
        break;
      }
      case ActMode::kDrop:
        if (have_last_applied_) level = last_applied_[i];
        break;
      case ActMode::kNone:
        break;
    }
    applied[i] = level;
    last_applied_[i] = level;
  }
  have_last_applied_ = true;
  history_head_ = (history_head_ + 1) % history_depth_;
}

double FaultEngine::filter_ips(std::size_t i, double measured) {
  switch (sensor_mode_[i]) {
    case SensorMode::kZero:
      return 0.0;
    case SensorMode::kLast:
      return last_ips_[i];
    case SensorMode::kSaturate:
      measured *= sensor_scale_[i];
      break;
    case SensorMode::kNone:
      break;
  }
  last_ips_[i] = measured;
  return measured;
}

double FaultEngine::filter_power(std::size_t i, double measured) {
  switch (sensor_mode_[i]) {
    case SensorMode::kZero:
      return 0.0;
    case SensorMode::kLast:
      return last_power_[i];
    case SensorMode::kSaturate:
      measured *= sensor_scale_[i];
      break;
    case SensorMode::kNone:
      break;
  }
  last_power_[i] = measured;
  return measured;
}

void FaultEngine::save_state(snapshot::Writer& w) const {
  w.u64(n_cores_);
  w.u64(next_event_);
  w.u64(epoch_);
  for (std::size_t i = 0; i < n_cores_; ++i) {
    w.u8(static_cast<std::uint8_t>(sensor_mode_[i]));
    w.u64(sensor_until_[i]);
    w.f64(sensor_scale_[i]);
    w.u8(static_cast<std::uint8_t>(act_mode_[i]));
    w.u64(act_until_[i]);
    w.u64(act_delay_[i]);
    w.u64(offline_until_[i]);
    w.u8(offline_[i]);
    w.f64(last_ips_[i]);
    w.f64(last_power_[i]);
    w.u64(last_applied_[i]);
  }
  w.u64(history_depth_);
  w.u64(history_head_);
  w.u64(history_size_);
  for (std::size_t level : history_) w.u64(level);
  w.u8(have_last_applied_ ? 1 : 0);
  w.u64(n_active_budgets_);
  for (std::size_t i = 0; i < n_active_budgets_; ++i) {
    w.u64(active_budgets_[i].until);
    w.f64(active_budgets_[i].factor);
  }
  w.f64(budget_factor_);
  w.u64(active_count_);
  w.u64(sensor_active_);
  w.u64(counts_.sensor);
  w.u64(counts_.actuation);
  w.u64(counts_.budget);
  w.u64(counts_.hotplug);
}

void FaultEngine::load_state(snapshot::Reader& r) {
  using snapshot::SnapshotError;
  using snapshot::SnapshotStatus;
  if (r.u64() != n_cores_) {
    throw SnapshotError(SnapshotStatus::kDimensionMismatch,
                        "fault-engine core count mismatch");
  }
  const std::uint64_t next_event = r.u64();
  if (next_event > events_.size()) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "fault-engine schedule cursor out of range");
  }
  next_event_ = static_cast<std::size_t>(next_event);
  epoch_ = static_cast<std::size_t>(r.u64());
  for (std::size_t i = 0; i < n_cores_; ++i) {
    const std::uint8_t sensor_mode = r.u8();
    if (sensor_mode > static_cast<std::uint8_t>(SensorMode::kSaturate)) {
      throw SnapshotError(SnapshotStatus::kBadValue,
                          "fault-engine sensor mode out of range");
    }
    sensor_mode_[i] = static_cast<SensorMode>(sensor_mode);
    sensor_until_[i] = static_cast<std::size_t>(r.u64());
    sensor_scale_[i] = r.f64();
    const std::uint8_t act_mode = r.u8();
    if (act_mode > static_cast<std::uint8_t>(ActMode::kDrop)) {
      throw SnapshotError(SnapshotStatus::kBadValue,
                          "fault-engine actuation mode out of range");
    }
    act_mode_[i] = static_cast<ActMode>(act_mode);
    act_until_[i] = static_cast<std::size_t>(r.u64());
    act_delay_[i] = static_cast<std::size_t>(r.u64());
    offline_until_[i] = static_cast<std::size_t>(r.u64());
    const std::uint8_t offline = r.u8();
    if (offline > 1) {
      throw SnapshotError(SnapshotStatus::kBadValue,
                          "fault-engine offline flag must be 0 or 1");
    }
    offline_[i] = offline;
    last_ips_[i] = r.f64();
    last_power_[i] = r.f64();
    last_applied_[i] = static_cast<std::size_t>(r.u64());
  }
  if (r.u64() != history_depth_) {
    throw SnapshotError(SnapshotStatus::kDimensionMismatch,
                        "fault-engine history depth mismatch");
  }
  const std::uint64_t head = r.u64();
  const std::uint64_t size = r.u64();
  if (head >= history_depth_ || size > history_depth_) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "fault-engine history ring cursor out of range");
  }
  history_head_ = static_cast<std::size_t>(head);
  history_size_ = static_cast<std::size_t>(size);
  for (std::size_t& level : history_) {
    level = static_cast<std::size_t>(r.u64());
  }
  have_last_applied_ = r.u8() != 0;
  const std::uint64_t n_active = r.u64();
  if (n_active > active_budgets_.size()) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "fault-engine active-budget count out of range");
  }
  n_active_budgets_ = static_cast<std::size_t>(n_active);
  for (std::size_t i = 0; i < n_active_budgets_; ++i) {
    active_budgets_[i].until = static_cast<std::size_t>(r.u64());
    active_budgets_[i].factor = r.f64();
  }
  budget_factor_ = r.f64();
  if (!std::isfinite(budget_factor_) || budget_factor_ <= 0.0) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "fault-engine budget factor must be > 0");
  }
  active_count_ = static_cast<std::size_t>(r.u64());
  sensor_active_ = static_cast<std::size_t>(r.u64());
  counts_.sensor = static_cast<std::size_t>(r.u64());
  counts_.actuation = static_cast<std::size_t>(r.u64());
  counts_.budget = static_cast<std::size_t>(r.u64());
  counts_.hotplug = static_cast<std::size_t>(r.u64());
}

std::size_t safe_uniform_level(const arch::ChipConfig& chip,
                               double budget_w) {
  const double hot = chip.thermal().max_junction_c;
  const double n = static_cast<double>(chip.n_cores());
  std::size_t best = 0;
  for (std::size_t l = 0; l < chip.vf_table().size(); ++l) {
    const arch::VfPoint& vf = chip.vf_table()[l];
    const double worst_w = chip.core().total_power_w(vf.voltage_v,
                                                     vf.freq_ghz,
                                                     /*activity=*/1.0, hot) *
                           n;
    if (worst_w <= budget_w) best = l;
  }
  return best;
}

}  // namespace odrl::sim
