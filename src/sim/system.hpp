// The many-core system simulator: glues workload, performance, power and
// thermal models into an epoch-stepped machine.
//
// One call to step(levels) =
//   workload advances one epoch ->
//   each core retires instructions per the perf model at its level ->
//   per-core power per the power model at its level/activity/temperature ->
//   thermal network integrates over the epoch ->
//   sensors (optionally noisy) are packaged into an EpochResult.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include <optional>

#include "arch/chip_config.hpp"
#include "arch/variation.hpp"
#include "mem/dram_model.hpp"
#include "perf/perf_model.hpp"
#include "power/batch_power.hpp"
#include "power/power_model.hpp"
#include "sim/faults.hpp"
#include "sim/observation.hpp"
#include "task/runtime.hpp"
#include "telemetry/recorder.hpp"
#include "thermal/thermal_model.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace odrl::snapshot {
class Writer;
class Reader;
}  // namespace odrl::snapshot

namespace odrl::sim {

struct SimConfig {
  double epoch_s = 1e-3;          ///< control epoch length (1 ms default)
  double sensor_noise_rel = 0.0;  ///< relative sigma of power/IPS sensors
  /// Seeds the per-core sensor-noise substreams. Core i's stream is a pure
  /// function of (seed, i): it does not depend on the chip's core count or
  /// on any other core's draws (see DESIGN.md "Threading model").
  std::uint64_t seed = 1;

  /// Execution width of the per-core epoch loop (and the DRAM traffic
  /// fixed-point sum). 1 = serial (default), 0 = hardware concurrency.
  /// Results are bit-identical for every value; only wall time changes.
  std::size_t threads = 1;

  // DVFS actuation cost (0 = ideal regulators, the default). When a core's
  // level changes between epochs, it stalls for `switch_penalty_s` of the
  // next epoch (PLL relock / voltage ramp) and the regulator transition
  // dissipates `switch_energy_j`. Both charge the *switching* core, so
  // controllers that thrash levels pay for it -- ablated in E7.
  double switch_penalty_s = 0.0;
  double switch_energy_j = 0.0;

  /// Shared-DRAM bandwidth contention (peak_gbps = 0 disables; default).
  mem::DramConfig dram;

  void validate() const;
};

class ManyCoreSystem {
 public:
  /// Takes ownership of the workload. workload->n_cores() must equal
  /// config.n_cores(). An optional VariationMap makes this a specific
  /// fabricated chip instance: every core's power/performance constants
  /// are perturbed per the map (controllers are not told -- they see only
  /// sensors, exactly as on real varied silicon).
  ManyCoreSystem(arch::ChipConfig config,
                 std::unique_ptr<workload::Workload> workload,
                 SimConfig sim = {},
                 std::optional<arch::VariationMap> variation = std::nullopt);

  /// Heterogeneous-chip constructor: explicit per-core parameters (one per
  /// core, e.g. from arch::striped_layout). The ChipConfig's nominal
  /// CoreParams is ignored in favour of these.
  ManyCoreSystem(arch::ChipConfig config,
                 std::unique_ptr<workload::Workload> workload, SimConfig sim,
                 std::vector<arch::CoreParams> per_core_params);

  /// Runs one epoch with the given per-core V/F levels (size n_cores, each
  /// a valid index into the chip's VfTable), writing the observation into
  /// `out`. Every field of `out` is overwritten; its buffers (the SoA core
  /// block) are reused across calls, so a caller that passes the same
  /// EpochResult each epoch performs zero steady-state heap allocations.
  void step_into(std::span<const std::size_t> levels, EpochResult& out);

  /// \deprecated Allocating convenience wrapper around step_into();
  /// returns a fresh EpochResult per call. Kept for out-of-tree callers;
  /// in-tree code uses step_into().
  [[deprecated("use step_into() instead")]]
  EpochResult step(std::span<const std::size_t> levels);

  /// Snapshot hooks (see snapshot/snapshot.hpp): serialize/restore every
  /// mutable field of the simulated machine -- epoch counter, budget,
  /// switch-cost cache, thermal field, sensor-noise RNG streams and the
  /// workload position -- into the caller's open section. The restored
  /// system's step_into() stream is bit-identical to one that never
  /// stopped (the resume golden test's guarantee). The chip topology,
  /// models and variation map are construction-time inputs and are NOT
  /// serialized: load_state() must be called on a system built from the
  /// same configuration, and rejects shape mismatches with
  /// snapshot::SnapshotError(kDimensionMismatch).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

  const arch::ChipConfig& config() const { return config_; }
  std::size_t n_cores() const { return config_.n_cores(); }
  double epoch_s() const noexcept { return sim_.epoch_s; }
  std::size_t epochs_run() const { return epoch_; }

  /// Current chip budget; the runner moves this on power-cap events.
  double budget_w() const noexcept { return budget_w_; }
  void set_budget_w(double budget_w);

  /// Re-sizes the execution width of step_into() (1 = serial, 0 =
  /// hardware concurrency) by installing a fresh private task runtime.
  /// Never changes results -- the per-core loop is chunked identically
  /// for every width.
  void set_threads(std::size_t threads);
  std::size_t threads() const;

  /// Shares an externally owned task runtime (MultiChipRun installs one
  /// runtime across every chip so chip tasks and per-core chunks
  /// interleave on the same workers). Results stay bit-identical: the
  /// runtime only changes who executes a chunk, never the chunk layout
  /// or the reduction order. Rejects nullptr. set_threads() reverts to a
  /// private runtime.
  void set_runtime(std::shared_ptr<task::Runtime> runtime);
  const task::Runtime& runtime() const { return *runtime_; }

  /// Attaches (nullptr detaches) a telemetry recorder; the runner wires
  /// this per run. The system only updates counters/gauges (level
  /// switches, DRAM pressure) from step()'s serial tail -- never from the
  /// parallel region -- so recording is deterministic and free when off.
  void set_recorder(telemetry::Recorder* recorder) { recorder_ = recorder; }

  /// Attaches (nullptr detaches) a fault engine; the runner wires this at
  /// the start of the measured region. With an engine attached, each
  /// step_into() advances the engine one epoch, routes the requested
  /// levels through its actuation faults, gates offline cores, filters
  /// the measured sensor columns, and scales the observed budget. With no
  /// engine (or an empty schedule) the step is bit-identical to an
  /// engine-free build. The engine must outlive its attachment and must
  /// have been built for this chip's core count.
  void set_fault_engine(FaultEngine* engine);
  FaultEngine* fault_engine() const noexcept { return faults_; }

  const thermal::ThermalModel& thermal() const { return thermal_; }
  const workload::Workload& workload() const { return *workload_; }
  /// Per-core models of this chip instance (index = core).
  const perf::PerfModel& perf_model(std::size_t core = 0) const;
  const power::PowerModel& power_model(std::size_t core = 0) const;
  const arch::VariationMap& variation() const { return variation_; }

 private:
  /// Applies core `core`'s sensor-noise substream to a true value.
  double noisy(std::size_t core, double value);

  /// (Re)builds the SoA batch power evaluator from power_'s per-core
  /// parameters; called whenever power_ is (re)populated.
  void rebuild_power_batch();

  arch::ChipConfig config_;
  std::unique_ptr<workload::Workload> workload_;
  SimConfig sim_;
  arch::VariationMap variation_;
  std::vector<perf::PerfModel> perf_;    ///< one per core (variation-aware)
  std::vector<power::PowerModel> power_;
  /// Columnized mirror of power_ for the vectorized epoch kernel
  /// (bit-identical results; see power/batch_power.hpp). Optional only
  /// because it is built after the per-core models.
  std::optional<power::BatchPowerModel> power_batch_;
  std::vector<double> power_scratch_;  ///< per-core batch power outputs
  thermal::ThermalModel thermal_;
  mem::DramModel dram_;
  /// One decorrelated noise substream per core, each a pure function of
  /// (sim.seed, core index) -- independent of core count and thread count.
  std::vector<util::Rng> noise_rngs_;
  /// Shared when installed by set_runtime() (multi-chip), private
  /// otherwise; never null after construction.
  std::shared_ptr<task::Runtime> runtime_;
  std::vector<double> tile_power_;  ///< scratch, mesh-sized
  std::vector<std::size_t> prev_levels_;  ///< for switch-cost accounting
  /// Chunk partials for the per-core observation reduce (scratch; declared
  /// here so parallel_reduce can reuse capacity across epochs).
  struct StepSums {
    double true_w = 0.0;
    double meas_w = 0.0;
    double ips = 0.0;
  };
  std::vector<StepSums> step_partials_;
  std::vector<double> traffic_partials_;  ///< DRAM traffic reduce scratch
  bool have_prev_levels_ = false;
  double budget_w_;
  std::size_t epoch_ = 0;
  telemetry::Recorder* recorder_ = nullptr;  ///< non-owning, may be null
  FaultEngine* faults_ = nullptr;            ///< non-owning, may be null
  /// Post-actuation-fault levels (scratch; sized on engine attach).
  std::vector<std::size_t> applied_levels_;
};

}  // namespace odrl::sim
