#include "sim/controller_registry.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace odrl::sim {

namespace {

[[noreturn]] void throw_parse_error(const std::string& key,
                                    const std::string& value,
                                    const char* wanted) {
  std::ostringstream msg;
  msg << "controller override \"" << key << "\": cannot parse \"" << value
      << "\" as " << wanted;
  throw std::invalid_argument(msg.str());
}

}  // namespace

const std::string* ControllerOverrides::find(const std::string& key) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? nullptr : &it->second;
}

std::string ControllerOverrides::get_string(const std::string& key,
                                            std::string fallback) const {
  const std::string* v = find(key);
  return v ? *v : std::move(fallback);
}

double ControllerOverrides::get_double(const std::string& key,
                                       double fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  const char* begin = v->c_str();
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || errno == ERANGE) {
    throw_parse_error(key, *v, "a number");
  }
  return parsed;
}

std::size_t ControllerOverrides::get_size(const std::string& key,
                                          std::size_t fallback) const {
  return static_cast<std::size_t>(get_u64(key, fallback));
}

std::uint64_t ControllerOverrides::get_u64(const std::string& key,
                                           std::uint64_t fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  const char* begin = v->c_str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(begin, &end, 10);
  if (end == begin || *end != '\0' || errno == ERANGE || v->front() == '-') {
    throw_parse_error(key, *v, "a non-negative integer");
  }
  return parsed;
}

bool ControllerOverrides::get_bool(const std::string& key,
                                   bool fallback) const {
  const std::string* v = find(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "off") return false;
  throw_parse_error(key, *v, "a bool (true/false/1/0/on/off)");
}

std::vector<std::string> ControllerOverrides::unconsumed() const {
  std::vector<std::string> stray;
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) == 0) stray.push_back(key);
  }
  return stray;
}

void ControllerOverrides::throw_if_unconsumed(
    const std::string& controller) const {
  const std::vector<std::string> stray = unconsumed();
  if (stray.empty()) return;
  std::ostringstream msg;
  msg << "controller \"" << controller
      << "\" does not accept override key(s):";
  for (const std::string& key : stray) msg << " \"" << key << "\"";
  throw std::invalid_argument(msg.str());
}

ControllerRegistry& ControllerRegistry::instance() {
  static ControllerRegistry registry;
  return registry;
}

void ControllerRegistry::add(std::string name, ControllerFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("ControllerRegistry: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("ControllerRegistry: null factory for \"" +
                                name + "\"");
  }
  util::MutexLock lock(mutex_);
  if (!factories_.emplace(std::move(name), std::move(factory)).second) {
    throw std::invalid_argument(
        "ControllerRegistry: duplicate registration");
  }
}

bool ControllerRegistry::contains(const std::string& name) const {
  util::MutexLock lock(mutex_);
  return factories_.count(name) != 0;
}

std::vector<std::string> ControllerRegistry::names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::unique_ptr<Controller> ControllerRegistry::make(
    const std::string& name, const arch::ChipConfig& chip,
    const ControllerOverrides& overrides) const {
  // Copy the factory out under the lock, then invoke it unlocked: a
  // factory is arbitrary user code (it may construct telemetry, or even
  // register further controllers) and must not run under kRegistry.
  ControllerFactory factory;
  {
    util::MutexLock lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::ostringstream msg;
      msg << "unknown controller \"" << name << "\"; registered:";
      for (const auto& [known, unused] : factories_) {
        msg << " \"" << known << "\"";
      }
      throw std::invalid_argument(msg.str());
    }
    factory = it->second;
  }
  // Fresh copy so consumption tracking starts clean for this construction
  // even when the caller reuses one ControllerOverrides across makes.
  const ControllerOverrides local = overrides;
  std::unique_ptr<Controller> controller = factory(chip, local);
  if (!controller) {
    throw std::logic_error("controller factory for \"" + name +
                           "\" returned null");
  }
  local.throw_if_unconsumed(name);
  return controller;
}

ControllerRegistrar::ControllerRegistrar(std::string name,
                                         ControllerFactory factory) {
  ControllerRegistry::instance().add(std::move(name), std::move(factory));
}

}  // namespace odrl::sim
