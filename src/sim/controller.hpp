// The DVFS controller interface every policy in this library implements:
// the paper's OD-RL (src/core) and all baselines (src/baselines).
//
// Interaction protocol, each control epoch:
//   1. the simulator runs one epoch at the current per-core V/F levels;
//   2. the controller receives the resulting EpochResult (sensors only);
//   3. the controller writes the V/F level for every core for the next
//      epoch into the caller's output buffer (decide_into).
// decide_into() is the timed hot path for the scalability experiment (E5):
// its cost as a function of core count is a first-class result of the
// paper, so it must not allocate in steady state. The legacy
// vector-returning decide() survives as a deprecated forwarding default so
// out-of-tree controllers keep compiling (see DESIGN.md "Epoch data path").
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/observation.hpp"

namespace odrl::telemetry {
class Recorder;
}

namespace odrl::sim {

class Controller {
 public:
  virtual ~Controller() = default;

  virtual std::string name() const = 0;

  /// Initial per-core levels before any observation exists.
  virtual std::vector<std::size_t> initial_levels(std::size_t n_cores) = 0;

  /// Next-epoch level for every core, written into `out` (size must equal
  /// obs.n_cores()). This is the in-place hot path: implementations keep
  /// their scratch in members and perform zero heap allocations once
  /// warmed up. The default forwards to the legacy decide() so existing
  /// controllers that only override decide() keep working.
  virtual void decide_into(const EpochResult& obs,
                           std::span<std::size_t> out);

  /// \deprecated Legacy vector-returning decision API; allocates a fresh
  /// vector per call. The default forwards to decide_into(). A controller
  /// must override at least one of decide_into()/decide(); overriding
  /// neither throws std::logic_error on first use instead of recursing.
  /// New code should override decide_into().
  virtual std::vector<std::size_t> decide(const EpochResult& obs);

  /// Notifies the controller that the chip budget changed (power-cap event,
  /// e.g. a rack-level RAPL reduction). Default: ignore.
  virtual void on_budget_change(double /*new_budget_w*/) {}

  /// Clears any learned/internal state.
  virtual void reset() {}

  /// Requests an execution width for decide() (1 = serial, 0 = hardware
  /// concurrency). Controllers whose decide() is parallelizable (OD-RL's
  /// per-core TD loop) honor it; the contract is that results are
  /// bit-identical for every width. Default: ignore (serial controllers).
  virtual void set_threads(std::size_t /*threads*/) {}

  /// Attaches (or, with nullptr, detaches) a telemetry recorder. The runner
  /// calls this at run start/end with RunConfig::recorder; the recorder
  /// must outlive the run. Controllers emit internal signals (e.g. OD-RL's
  /// reallocation events) through it, from decide()'s serial sections only,
  /// and must never let recording alter their decisions -- runs are
  /// bit-identical with telemetry on or off. The default keeps the pointer
  /// for subclasses; override to forward (adapters) or add instruments.
  virtual void set_recorder(telemetry::Recorder* recorder) {
    recorder_ = recorder;
  }

 protected:
  /// Null when telemetry is off; guard every use.
  telemetry::Recorder* recorder_ = nullptr;

 private:
  /// Set while one default bridges to the other; detects a subclass that
  /// overrides neither (which would otherwise recurse forever).
  bool bridging_ = false;
};

}  // namespace odrl::sim
