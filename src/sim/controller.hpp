// The DVFS controller interface every policy in this library implements:
// the paper's OD-RL (src/core) and all baselines (src/baselines).
//
// Interaction protocol, each control epoch:
//   1. the simulator runs one epoch at the current per-core V/F levels;
//   2. the controller receives the resulting EpochResult (sensors only);
//   3. the controller writes the V/F level for every core for the next
//      epoch into the caller's output buffer (decide_into).
// decide_into() is the timed hot path for the scalability experiment (E5):
// its cost as a function of core count is a first-class result of the
// paper, so it must not allocate in steady state. It is the *only*
// decision entry point -- the legacy vector-returning decide() bridge was
// retired (see DESIGN.md "Epoch data path"); a non-virtual [[deprecated]]
// shim remains so old call sites still compile, but overriding it no
// longer does anything and tools/lint_odrl.py rejects new uses.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/observation.hpp"

namespace odrl::task {
class Runtime;
}

namespace odrl::telemetry {
class Recorder;
}

namespace odrl::snapshot {
class Writer;
class Reader;
}  // namespace odrl::snapshot

namespace odrl::sim {

class Controller {
 public:
  virtual ~Controller() = default;

  virtual std::string name() const = 0;

  /// Initial per-core levels before any observation exists.
  virtual std::vector<std::size_t> initial_levels(std::size_t n_cores) = 0;

  /// Next-epoch level for every core, written into `out` (size must equal
  /// obs.n_cores()). This is the in-place hot path: implementations keep
  /// their scratch in members and perform zero heap allocations once
  /// warmed up.
  virtual void decide_into(const EpochResult& obs,
                           std::span<std::size_t> out) = 0;

  /// \deprecated Allocating convenience shim over decide_into(), kept so
  /// out-of-tree call sites keep compiling. Deliberately non-virtual: a
  /// controller that used to override decide() now fails to compile (its
  /// `override` no longer matches), which surfaces the migration instead
  /// of silently never calling the override. New code uses decide_into().
  [[deprecated("override/call decide_into() instead")]]
  std::vector<std::size_t> decide(const EpochResult& obs) {
    std::vector<std::size_t> out(obs.n_cores(), 0);
    decide_into(obs, out);
    return out;
  }

  /// Notifies the controller that the chip budget changed (power-cap event,
  /// e.g. a rack-level RAPL reduction). Default: ignore.
  virtual void on_budget_change(double /*new_budget_w*/) {}

  /// Clears any learned/internal state.
  virtual void reset() {}

  /// Snapshot hooks (see snapshot/snapshot.hpp): write/restore every field
  /// that influences future decisions into the caller's open section --
  /// learned tables, filters, schedule positions, RNG streams. The runner
  /// uses these for checkpoint/resume and for seeding a hot-swapped
  /// replacement from a saved section; the contract is that a restored
  /// controller's decision stream is bit-identical to one that never
  /// stopped. Defaults are empty: correct for stateless policies (Greedy,
  /// MaxBIPS decide from the current observation alone).
  virtual void save_state(snapshot::Writer& w) const;
  virtual void load_state(snapshot::Reader& r);

  /// Requests an execution width for decide_into() (1 = serial, 0 =
  /// hardware concurrency). Controllers whose decision loop is
  /// parallelizable (OD-RL's per-core TD loop) honor it; the contract is
  /// that results are bit-identical for every width. Default: ignore
  /// (serial controllers).
  virtual void set_threads(std::size_t /*threads*/) {}

  /// Shares an externally owned task runtime for decide_into()'s
  /// parallel loops (MultiChipRun installs one runtime across every
  /// chip's system *and* controller). Same bit-identity contract as
  /// set_threads(); a later set_threads() reverts to a private runtime.
  /// Default: ignore (serial controllers never submit tasks).
  virtual void set_runtime(std::shared_ptr<task::Runtime> /*runtime*/) {}

  /// Attaches (or, with nullptr, detaches) a telemetry recorder. The runner
  /// calls this at run start/end with RunConfig::recorder; the recorder
  /// must outlive the run. Controllers emit internal signals (e.g. OD-RL's
  /// reallocation events) through it, from decide_into()'s serial sections
  /// only, and must never let recording alter their decisions -- runs are
  /// bit-identical with telemetry on or off. The default keeps the pointer
  /// for subclasses; override to forward (adapters) or add instruments.
  virtual void set_recorder(telemetry::Recorder* recorder) {
    recorder_ = recorder;
  }

 protected:
  /// Null when telemetry is off; guard every use.
  telemetry::Recorder* recorder_ = nullptr;
};

}  // namespace odrl::sim
