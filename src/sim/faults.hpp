// Deterministic, schedule-driven fault injection for the closed loop.
//
// A FaultSchedule is a sorted list of FaultEvents -- sensor dropout
// (stuck-at-zero / stuck-at-last / saturated per-core IPS and power
// readings), delayed or dropped V/F actuation, transient chip-budget
// steps, and core offline/online (hotplug). A FaultEngine replays a
// schedule against a running ManyCoreSystem: the runner attaches one at
// the start of the measured region and the system consults it each
// step_into().
//
// Determinism contract (PR-1): every engine mutation happens either in
// the step's serial prologue (begin_epoch, apply_actuation) or in
// per-core slots touched only by that core's loop iteration (the sensor
// filters and their stuck-at-last state), so fault runs are bit-identical
// across thread counts. random_storm() draws each core's fault stream
// from a SplitMix64 substream that is a pure function of (seed, core) --
// the generated schedule never depends on core iteration order.
//
// Sensor faults corrupt only *measured* readings (the ips / power_w
// columns); true_power_w and the energy accounting always see the
// physical truth -- sensors may lie to the controller, never to the
// evaluation. Offline cores are power-gated: they retire nothing, draw
// ~0 W, and are flagged in the observation's `online` column so
// controllers can mask them out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "sim/observation.hpp"

namespace odrl::snapshot {
class Writer;
class Reader;
}  // namespace odrl::snapshot

namespace odrl::sim {

/// Marks a chip-wide event (budget steps) in FaultEvent::core.
inline constexpr std::size_t kChipWide = static_cast<std::size_t>(-1);

enum class FaultKind : std::uint8_t {
  kSensorStuckZero,  ///< core's IPS/power sensors read 0
  kSensorStuckLast,  ///< sensors freeze at the last pre-fault reading
  kSensorSaturate,   ///< sensors scale by `magnitude` (e.g. 10 = pegged)
  kActuationDelay,   ///< applied V/F level lags the request by
                     ///< `magnitude` epochs (regulator lag)
  kActuationDrop,    ///< level requests are lost; last applied level holds
  kBudgetStep,       ///< chip budget scales by `magnitude` (rack event)
  kCoreOffline,      ///< core power-gated (hotplug out, back at expiry)
};

/// Human-readable kind name (the text format's kind column).
const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. `epoch` counts from engine attach (the runner
/// attaches at the start of the measured region, so epoch 0 is the first
/// measured epoch). The fault is active for epochs [epoch, epoch +
/// duration). `core` is a core index, or kChipWide for budget steps.
/// `magnitude` is kind-specific: the sensor-saturate scale, the actuation
/// delay in epochs, or the budget factor; unused otherwise.
struct FaultEvent {
  std::size_t epoch = 0;
  FaultKind kind = FaultKind::kSensorStuckZero;
  std::size_t core = 0;
  std::size_t duration = 1;
  double magnitude = 0.0;
};

/// Knobs for random_storm(): per-epoch per-core injection probabilities
/// (all independent Bernoulli draws from the core's substream) and event
/// shape ranges. The defaults make a dense but survivable storm.
struct StormConfig {
  double sensor_rate = 0.002;     ///< per core-epoch, any sensor fault
  double actuation_rate = 0.001;  ///< per core-epoch, delay or drop
  double offline_rate = 0.0005;   ///< per core-epoch, hotplug-out
  double budget_rate = 0.002;     ///< per epoch, chip-wide budget step
  std::size_t min_duration = 5;
  std::size_t max_duration = 40;
  std::size_t max_delay_epochs = 4;
  double min_budget_factor = 0.7;  ///< budget steps scale within
  double max_budget_factor = 1.0;  ///< [min, max] of the nominal budget
  double max_saturate_scale = 10.0;

  void validate() const;
};

/// An ordered fault schedule: programmatic builder + text serialization.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  // -- Builder (each returns *this for chaining) --
  FaultSchedule& sensor_stuck_zero(std::size_t epoch, std::size_t core,
                                   std::size_t duration);
  FaultSchedule& sensor_stuck_last(std::size_t epoch, std::size_t core,
                                   std::size_t duration);
  FaultSchedule& sensor_saturate(std::size_t epoch, std::size_t core,
                                 std::size_t duration, double scale);
  FaultSchedule& actuation_delay(std::size_t epoch, std::size_t core,
                                 std::size_t duration,
                                 std::size_t delay_epochs);
  FaultSchedule& actuation_drop(std::size_t epoch, std::size_t core,
                                std::size_t duration);
  FaultSchedule& budget_step(std::size_t epoch, std::size_t duration,
                             double factor);
  FaultSchedule& core_offline(std::size_t epoch, std::size_t core,
                              std::size_t duration);
  FaultSchedule& add(const FaultEvent& event);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  /// Throws std::invalid_argument unless every event is well-formed for a
  /// chip with `n_cores` cores: core indices in range (or kChipWide for
  /// budget steps only), durations > 0, magnitudes finite and positive
  /// where the kind consumes one.
  void validate(std::size_t n_cores) const;

  /// Deterministic storm generator: each core's fault stream is drawn
  /// from a SplitMix64 substream seeded as a pure function of
  /// (seed, core); the chip-wide budget stream uses the substream after
  /// the last core. The result is sorted by (epoch, core, kind).
  static FaultSchedule random_storm(std::size_t n_cores, std::size_t epochs,
                                    std::uint64_t seed,
                                    const StormConfig& storm = {});

 private:
  std::vector<FaultEvent> events_;  ///< kept sorted by epoch (stable)
};

// -- Text serialization, in the spirit of workload/trace_io --
//
//   # odrl-faults v1
//   epoch,kind,core,duration,magnitude
//   10,sensor_stuck_zero,3,25,0
//   40,budget_step,*,30,0.7
//
// `core` is `*` for chip-wide events. Parse errors throw
// std::runtime_error with the offending line quoted.
void save_fault_schedule(const FaultSchedule& schedule, std::ostream& out);
FaultSchedule load_fault_schedule(std::istream& in);
void save_fault_schedule_file(const FaultSchedule& schedule,
                              const std::string& path);
FaultSchedule load_fault_schedule_file(const std::string& path);

/// Activation counts by family, for telemetry and RunResult.
struct FaultCounts {
  std::size_t sensor = 0;
  std::size_t actuation = 0;
  std::size_t budget = 0;
  std::size_t hotplug = 0;
  std::size_t total() const noexcept {
    return sensor + actuation + budget + hotplug;
  }
};

/// Replays a FaultSchedule against a running system. All state is
/// preallocated at construction; begin_epoch()/apply_actuation() run in
/// the step's serial prologue and the filter_*() hooks touch only
/// core-private slots, so attaching an engine never breaks the
/// bit-identical-across-threads contract (and never allocates on the
/// epoch path).
class FaultEngine {
 public:
  /// Validates the schedule against `n_cores` and sizes all state.
  FaultEngine(const FaultSchedule& schedule, std::size_t n_cores);

  std::size_t n_cores() const noexcept { return n_cores_; }
  std::size_t epochs_run() const noexcept { return epoch_; }

  /// Serial prologue, once per step: expires elapsed faults, activates
  /// the schedule's events for this engine epoch, refreshes the offline
  /// mask and budget factor. Must be called before any other query for
  /// the epoch.
  void begin_epoch();

  /// Serial: records the controller's requested levels and writes the
  /// physically applied levels (identity, delayed via per-core history
  /// ring, or held at the last applied level). Spans must be n_cores
  /// long and may not alias.
  void apply_actuation(std::span<const std::size_t> requested,
                       std::span<std::size_t> applied);

  /// Is core `i` power-gated this epoch?
  bool core_offline(std::size_t i) const noexcept {
    return offline_[i] != 0;
  }

  /// Multiplier on the chip budget this epoch (1.0 = no budget fault).
  double budget_factor() const noexcept { return budget_factor_; }

  /// Any fault (of any kind) active this epoch? The watchdog's
  /// "under active faults" predicate.
  bool any_active() const noexcept { return active_count_ > 0; }
  /// Any sensor fault active this epoch? validate_epoch's measured-vs-
  /// true aggregate identities are relaxed while sensors lie.
  bool any_sensor_fault() const noexcept { return sensor_active_ > 0; }

  /// Per-core sensor filters, called from the parallel per-core loop.
  /// Each touches only core i's stuck-at-last slot -- safe and
  /// deterministic at any thread count.
  double filter_ips(std::size_t i, double measured);
  double filter_power(std::size_t i, double measured);

  const FaultCounts& counts() const noexcept { return counts_; }

  /// Snapshot hooks: serialize/restore the replay position and every
  /// per-core fault latch (schedule cursor, active modes and expiries,
  /// stuck-at-last memories, the actuation history ring, budget steps,
  /// counters) into the caller's open section. The schedule itself is a
  /// construction-time input: load_state() must be called on an engine
  /// built from the same schedule and core count, and rejects shape
  /// mismatches with snapshot::SnapshotError(kDimensionMismatch).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  enum class SensorMode : std::uint8_t { kNone, kZero, kLast, kSaturate };
  enum class ActMode : std::uint8_t { kNone, kDelay, kDrop };

  void activate(const FaultEvent& event);

  std::size_t n_cores_ = 0;
  std::vector<FaultEvent> events_;  ///< sorted by epoch
  std::size_t next_event_ = 0;
  std::size_t epoch_ = 0;  ///< engine epoch (counts begin_epoch calls)

  // Per-core fault state. A fault activated at epoch e with duration d is
  // active for engine epochs [e, e + d): `*_until_[i]` stores e + d.
  std::vector<SensorMode> sensor_mode_;
  std::vector<std::size_t> sensor_until_;
  std::vector<double> sensor_scale_;
  std::vector<ActMode> act_mode_;
  std::vector<std::size_t> act_until_;
  std::vector<std::size_t> act_delay_;
  std::vector<std::size_t> offline_until_;
  std::vector<std::uint8_t> offline_;  ///< refreshed by begin_epoch

  // Stuck-at-last sensor memory: the last value each core's sensor
  // *reported* while healthy (per-core slots, written only by core i).
  std::vector<double> last_ips_;
  std::vector<double> last_power_;

  // Actuation history ring: requested levels for the last
  // (max_delay + 1) epochs, and the level physically applied last epoch.
  std::size_t history_depth_ = 1;
  std::size_t history_head_ = 0;  ///< slot the *next* request lands in
  std::size_t history_size_ = 0;  ///< epochs recorded so far (<= depth)
  std::vector<std::size_t> history_;  ///< [depth][n_cores], row-major
  std::vector<std::size_t> last_applied_;
  bool have_last_applied_ = false;

  // Active chip-wide budget steps (at most the schedule's budget-event
  // count; preallocated).
  struct ActiveBudget {
    std::size_t until = 0;
    double factor = 1.0;
  };
  std::vector<ActiveBudget> active_budgets_;
  std::size_t n_active_budgets_ = 0;
  double budget_factor_ = 1.0;

  std::size_t active_count_ = 0;   ///< faults active this epoch
  std::size_t sensor_active_ = 0;  ///< sensor faults active this epoch
  FaultCounts counts_;
};

/// The highest uniform V/F level whose *worst-case* chip power (every
/// core at activity 1.0 and the junction-temperature limit, nominal core
/// parameters) fits under `budget_w` -- level 0 if none does. This is the
/// static-provisioning level (the Static baseline) and the watchdog's
/// per-core fallback level: holding every core at it keeps chip power
/// under the budget for any workload the models can produce.
std::size_t safe_uniform_level(const arch::ChipConfig& chip, double budget_w);

}  // namespace odrl::sim
