#include "sim/runner.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "power/energy.hpp"

namespace odrl::sim {

void RunConfig::validate() const {
  if (epochs == 0) throw std::invalid_argument("RunConfig: epochs == 0");
  for (std::size_t i = 0; i < budget_events.size(); ++i) {
    if (budget_events[i].budget_w <= 0.0) {
      throw std::invalid_argument("RunConfig: budget event with watts <= 0");
    }
    if (i > 0 && budget_events[i].epoch < budget_events[i - 1].epoch) {
      throw std::invalid_argument("RunConfig: budget events not sorted");
    }
  }
}

double RunResult::bips() const {
  const double t = elapsed_s();
  return t == 0.0 ? 0.0 : total_instructions / t / 1e9;
}

double RunResult::bips_per_watt() const {
  return mean_power_w == 0.0 ? 0.0 : bips() / mean_power_w;
}

double RunResult::bips3_per_watt() const {
  const double b = bips();
  return mean_power_w == 0.0 ? 0.0 : b * b * b / mean_power_w;
}

double RunResult::overshoot_time_fraction() const {
  const double t = elapsed_s();
  return t == 0.0 ? 0.0 : time_over_s / t;
}

double RunResult::mean_decision_us() const {
  return decisions == 0
             ? 0.0
             : decision_time_s / static_cast<double>(decisions) * 1e6;
}

RunResult run_closed_loop(ManyCoreSystem& system, Controller& controller,
                          const RunConfig& config) {
  config.validate();
  using Clock = std::chrono::steady_clock;

  RunResult result;
  result.controller_name = controller.name();
  result.epochs = config.epochs;
  result.epoch_s = system.epoch_s();
  if (config.keep_traces) {
    result.chip_power_trace.reserve(config.epochs);
    result.budget_trace.reserve(config.epochs);
    result.ips_trace.reserve(config.epochs);
    result.max_temp_trace.reserve(config.epochs);
  }

  if (config.threads != 0) {
    system.set_threads(config.threads);
    controller.set_threads(config.threads);
  }

  power::EnergyAccountant accountant(system.budget_w());
  std::vector<std::size_t> levels = controller.initial_levels(system.n_cores());
  if (levels.size() != system.n_cores()) {
    throw std::logic_error("controller initial_levels size mismatch");
  }

  // Events at epoch 0 are the budget in force when measurement starts;
  // apply them before warmup so warmup learns under that budget rather
  // than the default TDP (see RunConfig::budget_events).
  std::size_t next_event = 0;
  while (next_event < config.budget_events.size() &&
         config.budget_events[next_event].epoch == 0) {
    const double new_budget = config.budget_events[next_event].budget_w;
    system.set_budget_w(new_budget);
    controller.on_budget_change(new_budget);
    ++next_event;
  }

  // Unmeasured warmup: the loop runs normally, results are discarded.
  for (std::size_t e = 0; e < config.warmup_epochs; ++e) {
    const EpochResult obs = system.step(levels);
    levels = controller.decide(obs);
    if (levels.size() != system.n_cores()) {
      throw std::logic_error("controller decide() size mismatch");
    }
  }

  accountant.set_budget_w(system.budget_w());
  for (std::size_t e = 0; e < config.epochs; ++e) {
    while (next_event < config.budget_events.size() &&
           config.budget_events[next_event].epoch <= e) {
      const double new_budget = config.budget_events[next_event].budget_w;
      system.set_budget_w(new_budget);
      accountant.set_budget_w(new_budget);
      controller.on_budget_change(new_budget);
      ++next_event;
    }

    const EpochResult obs = system.step(levels);

    for (const auto& core : obs.cores) {
      result.total_instructions += core.instructions;
    }
    accountant.add_epoch(obs.true_chip_power_w, obs.epoch_s);
    if (obs.thermal_violations > 0) ++result.thermal_violation_epochs;
    if (config.keep_traces) {
      result.chip_power_trace.push_back(obs.true_chip_power_w);
      result.budget_trace.push_back(obs.budget_w);
      result.ips_trace.push_back(obs.total_ips);
      result.max_temp_trace.push_back(obs.max_temp_c);
    }

    const auto t0 = Clock::now();
    levels = controller.decide(obs);
    const auto t1 = Clock::now();
    result.decision_time_s +=
        std::chrono::duration<double>(t1 - t0).count();
    ++result.decisions;

    if (levels.size() != system.n_cores()) {
      throw std::logic_error("controller decide() size mismatch");
    }
  }

  result.total_energy_j = accountant.total_energy_j();
  result.otb_energy_j = accountant.otb_energy_j();
  result.time_over_s = accountant.time_over_budget_s();
  result.peak_overshoot_w = accountant.peak_overshoot_w();
  result.mean_power_w = accountant.mean_power_w();
  return result;
}

}  // namespace odrl::sim
