#include "sim/runner.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "power/energy.hpp"
#include "sim/validate.hpp"
#include "util/check.hpp"

namespace odrl::sim {

void WatchdogConfig::validate() const {
  if (violation_epochs == 0) {
    throw std::invalid_argument("WatchdogConfig: violation_epochs == 0");
  }
  if (!std::isfinite(violation_margin) || violation_margin < 0.0) {
    throw std::invalid_argument(
        "WatchdogConfig: violation_margin must be finite and >= 0");
  }
  if (hold_epochs == 0) {
    throw std::invalid_argument("WatchdogConfig: hold_epochs == 0");
  }
}

void RunConfig::validate() const {
  if (epochs == 0) throw std::invalid_argument("RunConfig: epochs == 0");
  for (std::size_t i = 0; i < budget_events.size(); ++i) {
    if (budget_events[i].budget_w <= 0.0) {
      throw std::invalid_argument("RunConfig: budget event with watts <= 0");
    }
    if (i > 0 && budget_events[i].epoch < budget_events[i - 1].epoch) {
      throw std::invalid_argument("RunConfig: budget events not sorted");
    }
  }
  for (std::size_t i = 0; i < swaps.size(); ++i) {
    if (swaps[i].controller.empty()) {
      throw std::invalid_argument("RunConfig: swap with empty controller");
    }
    if (i > 0 && swaps[i].epoch < swaps[i - 1].epoch) {
      throw std::invalid_argument("RunConfig: swap events not sorted");
    }
  }
  if (snapshot_out != nullptr && snapshot_epoch >= epochs) {
    throw std::invalid_argument(
        "RunConfig: snapshot_epoch beyond the measured region");
  }
  if (threads != 0 && runtime != nullptr) {
    throw std::invalid_argument(
        "RunConfig: threads and runtime are mutually exclusive");
  }
  watchdog.validate();
}

double RunResult::bips() const {
  const double t = elapsed_s();
  return t == 0.0 ? 0.0 : total_instructions / t / 1e9;
}

double RunResult::bips_per_watt() const {
  return mean_power_w == 0.0 ? 0.0 : bips() / mean_power_w;
}

double RunResult::bips3_per_watt() const {
  const double b = bips();
  return mean_power_w == 0.0 ? 0.0 : b * b * b / mean_power_w;
}

double RunResult::overshoot_time_fraction() const {
  const double t = elapsed_s();
  return t == 0.0 ? 0.0 : time_over_s / t;
}

double RunResult::mean_decision_us() const {
  return decisions == 0
             ? 0.0
             : decision_time_s / static_cast<double>(decisions) * 1e6;
}

namespace {
template <typename Get>
std::vector<double> trace_column(const std::vector<EpochTrace>& trace,
                                 Get get) {
  std::vector<double> out;
  out.reserve(trace.size());
  for (const EpochTrace& t : trace) out.push_back(get(t));
  return out;
}
}  // namespace

std::vector<double> RunResult::chip_power_trace() const {
  return trace_column(trace,
                      [](const EpochTrace& t) { return t.true_chip_power_w; });
}

std::vector<double> RunResult::budget_trace() const {
  return trace_column(trace, [](const EpochTrace& t) { return t.budget_w; });
}

std::vector<double> RunResult::ips_trace() const {
  return trace_column(trace, [](const EpochTrace& t) { return t.total_ips; });
}

std::vector<double> RunResult::max_temp_trace() const {
  return trace_column(trace, [](const EpochTrace& t) { return t.max_temp_c; });
}

RunResult run_closed_loop(ManyCoreSystem& system, Controller& controller,
                          const RunConfig& config) {
  config.validate();
  // Wall-clock timing feeds decide_s / decide_us telemetry only -- never a
  // simulated quantity, so determinism is untouched.
  // lint: allow(nondeterminism): telemetry-only decide() latency timing
  using Clock = std::chrono::steady_clock;
  const bool resuming = config.resume_snapshot != nullptr;

  RunResult result;
  result.epoch_s = system.epoch_s();

  if (config.threads != 0) {
    system.set_threads(config.threads);
    controller.set_threads(config.threads);
  }
  if (config.runtime) {
    system.set_runtime(config.runtime);
    controller.set_runtime(config.runtime);
  }
  // Runtime counters are reported as this run's delta; the shared
  // multi-chip runtime accumulates across every chip it drives.
  const task::RuntimeStats runtime_stats0 = system.runtime().stats();

  // Telemetry attach. `rec` stays null when no sink is listening, so every
  // emission below is skipped with one branch -- recording only observes,
  // it never changes what the loop computes.
  telemetry::Recorder* rec =
      (config.recorder && config.recorder->active()) ? config.recorder
                                                     : nullptr;
  system.set_recorder(rec);
  controller.set_recorder(rec);

  const std::size_t n_cores = system.n_cores();
  const std::size_t n_levels = system.config().vf_table().size();

  // Hot-swap bookkeeping: `active` is whichever controller currently
  // drives the loop; replacements built through the registry are owned
  // here so the caller's controller object is never deleted.
  Controller* active = &controller;
  std::vector<std::unique_ptr<Controller>> swapped_in;
  std::size_t next_swap = 0;
  std::size_t next_event = 0;
  std::size_t start_epoch = 0;

  // Double-buffered hot-loop state: `levels` drives the next step while
  // `next_levels` receives the controller's decision, then the two swap.
  // The one EpochResult (SoA core block included) is rewritten in place
  // each epoch, so the steady-state loop performs zero heap allocations
  // (verified by tests/alloc_test.cpp).
  std::vector<std::size_t> levels(n_cores, 0);
  std::vector<std::size_t> next_levels(n_cores, 0);
  EpochResult obs;

  // Fault engine, built up front (the construction allocates; attachment
  // happens after warmup so fault-event epochs count from measured epoch
  // 0, like budget_events).
  std::optional<FaultEngine> fault_engine;
  if (config.faults != nullptr && !config.faults->empty()) {
    fault_engine.emplace(*config.faults, n_cores);
  }

  // Watchdog state, preallocated outside the epoch loop. `fallback_hold`
  // counts the epochs each core still owes at the safe level; the safe
  // level itself is re-derived whenever the observed budget moves (cap
  // events and budget-step faults both shift it).
  const WatchdogConfig& wd = config.watchdog;
  std::vector<std::size_t> fallback_hold(n_cores, 0);
  std::size_t consecutive_violations = 0;
  std::size_t safe_level = 0;
  double safe_level_budget_w = -1.0;

  if (resuming) {
    // Restore the four sections in wire order (see runner.hpp). Every
    // structural property was checked by the Reader's constructor; the
    // checks here are the semantic ones -- does this blob describe *this*
    // run's configuration?
    snapshot::Reader r(*config.resume_snapshot);

    r.open_section(kSnapshotRunnerTag);
    const std::uint64_t e0 = r.u64();
    const std::uint64_t saved_event = r.u64();
    const std::uint64_t saved_swap = r.u64();
    if (e0 >= config.epochs) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kBadValue,
          "snapshot captured at epoch " + std::to_string(e0) +
              " but the run has only " + std::to_string(config.epochs) +
              " epochs");
    }
    if (saved_event > config.budget_events.size()) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kBadValue,
          "snapshot budget-event cursor beyond the run's schedule");
    }
    if (saved_swap > config.swaps.size()) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kBadValue,
          "snapshot swap cursor beyond the run's schedule");
    }
    const std::uint64_t saved_cores = r.u64();
    if (saved_cores != n_cores) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kDimensionMismatch,
          "snapshot has " + std::to_string(saved_cores) +
              " cores, the system has " + std::to_string(n_cores));
    }
    for (std::size_t i = 0; i < n_cores; ++i) {
      const std::uint64_t l = r.u64();
      if (l >= n_levels) {
        throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                      "snapshot level out of range");
      }
      levels[i] = static_cast<std::size_t>(l);
    }
    for (std::size_t i = 0; i < n_cores; ++i) {
      fallback_hold[i] = static_cast<std::size_t>(r.u64());
    }
    consecutive_violations = static_cast<std::size_t>(r.u64());
    r.expect_section_end();

    r.open_section(kSnapshotSystemTag);
    system.load_state(r);
    r.expect_section_end();

    if (fault_engine.has_value() != r.has_section(kSnapshotFaultTag)) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kBadValue,
          "run fault schedule and snapshot FLTE section must agree");
    }
    if (fault_engine.has_value()) {
      r.open_section(kSnapshotFaultTag);
      fault_engine->load_state(r);
      r.expect_section_end();
    }

    start_epoch = static_cast<std::size_t>(e0);
    next_event = static_cast<std::size_t>(saved_event);
    next_swap = static_cast<std::size_t>(saved_swap);

    // A swap had already fired when the snapshot was taken: rebuild the
    // replacement through the registry. load_state() below covers its
    // entire state, so no on_budget_change() replay is needed.
    if (next_swap > 0) {
      const SwapEvent& sw = config.swaps[next_swap - 1];
      swapped_in.push_back(ControllerRegistry::instance().make(
          sw.controller, system.config(), sw.overrides));
      active = swapped_in.back().get();
      if (config.threads != 0) active->set_threads(config.threads);
      if (config.runtime) active->set_runtime(config.runtime);
      active->set_recorder(rec);
    }

    r.open_section(kSnapshotControllerTag);
    const std::string saved_name = r.str();
    if (saved_name != active->name()) {
      throw snapshot::SnapshotError(
          snapshot::SnapshotStatus::kBadValue,
          "snapshot controller '" + saved_name +
              "' does not match the run's '" + active->name() + "'");
    }
    active->load_state(r);
    r.expect_section_end();

    // The engine resumes exactly where it latched; attach now (the
    // resumed loop has no warmup region).
    if (fault_engine.has_value()) system.set_fault_engine(&*fault_engine);
  } else {
    levels = controller.initial_levels(n_cores);
    if (levels.size() != n_cores) {
      throw std::logic_error("controller initial_levels size mismatch");
    }
  }

  result.controller_name = active->name();
  result.start_epoch = start_epoch;
  result.epochs = config.epochs - start_epoch;
  if (config.keep_traces) result.trace.reserve(result.epochs);

  telemetry::Histogram* decide_hist = nullptr;
  if (rec) {
    rec->begin_run({active->name(), n_cores, result.epochs, system.epoch_s(),
                    config.session_tag});
    // decide() latencies span sub-us table walks to ~1 s global solves:
    // log-spaced microsecond bins covering 0.1 us .. 10 s.
    decide_hist = &rec->histogram(
        "decide_us", telemetry::Histogram::exponential_edges(0.1, 1e7, 17));
  }

  power::EnergyAccountant accountant(system.budget_w());

  // A/B swap report bookkeeping: one budget-compliance segment per
  // controller tenure (swaps split the measured region). Plain sums kept
  // in the loop -- no trace required, so the report exists even with
  // keep_traces = false. `reserve` up front keeps swap epochs' vector
  // growth out of the steady-state loop.
  struct SwapSegment {
    std::size_t epochs = 0;
    double overshoot_sum_w = 0.0;
    std::size_t violations = 0;
    double mean_overshoot_w() const {
      return epochs == 0 ? 0.0 : overshoot_sum_w / static_cast<double>(epochs);
    }
    double violation_frac() const {
      return epochs == 0
                 ? 0.0
                 : static_cast<double>(violations) / static_cast<double>(epochs);
    }
  };
  std::vector<SwapSegment> swap_segments;
  swap_segments.reserve(config.swaps.size() + 1);
  SwapSegment current_segment;
  result.swap_report.reserve(config.swaps.size());

  // One epoch of the closed loop -- the single code path both the warmup
  // and measured regions share; returns the decide_into() wall time. The
  // ODRL_CHECKED contracts bracket the controller boundary: the out-span
  // must be well-shaped and non-aliasing going in, and every level the
  // controller wrote must index the V/F table coming out -- caught here,
  // one call before the system would fault on it. The watchdog slots in
  // on both sides of that boundary: it observes the step's chip power
  // before the decision and sanitizes/overrides the decision *before*
  // validate_levels, so a misbehaving controller degrades to the safe
  // level instead of aborting a checked run.
  auto run_epoch = [&]() -> double {
    system.step_into(levels, obs);
    if (wd.enabled) {
      if (obs.budget_w != safe_level_budget_w) {
        safe_level = safe_uniform_level(system.config(), obs.budget_w);
        safe_level_budget_w = obs.budget_w;
      }
      const FaultEngine* fe = system.fault_engine();
      const bool faults_active = fe != nullptr && fe->any_active();
      if (faults_active &&
          obs.chip_power_w > obs.budget_w * (1.0 + wd.violation_margin)) {
        ++consecutive_violations;
      } else {
        consecutive_violations = 0;
      }
    }
    ODRL_VALIDATE(validate_out_span(obs, next_levels));
    const auto t0 = Clock::now();
    active->decide_into(obs, next_levels);
    const auto t1 = Clock::now();
    if (wd.enabled) {
      // Out-of-range decisions: sanitize per offending core.
      for (std::size_t i = 0; i < n_cores; ++i) {
        if (next_levels[i] >= n_levels) {
          next_levels[i] = safe_level;
          ++result.watchdog_invalid_decisions;
          if (fallback_hold[i] == 0) ++result.watchdog_fallback_entries;
          fallback_hold[i] = wd.hold_epochs;
        }
      }
      // Chip-wide trip: the controller kept blowing the budget while its
      // inputs were compromised -- every core falls back.
      if (consecutive_violations >= wd.violation_epochs) {
        for (std::size_t i = 0; i < n_cores; ++i) {
          if (fallback_hold[i] == 0) ++result.watchdog_fallback_entries;
          fallback_hold[i] = wd.hold_epochs;
        }
        consecutive_violations = 0;
      }
      // Enforce the safe level on held cores and pay down their holds.
      bool any_fallback = false;
      for (std::size_t i = 0; i < n_cores; ++i) {
        if (fallback_hold[i] > 0) {
          next_levels[i] = safe_level;
          any_fallback = true;
          if (--fallback_hold[i] == 0) ++result.watchdog_fallback_exits;
        }
      }
      if (any_fallback) ++result.watchdog_fallback_epochs;
    }
    ODRL_VALIDATE(validate_levels(next_levels, n_levels));
    levels.swap(next_levels);
    return std::chrono::duration<double>(t1 - t0).count();
  };

  if (!resuming) {
    // Events at epoch 0 are the budget in force when measurement starts;
    // apply them before warmup so warmup learns under that budget rather
    // than the default TDP (see RunConfig::budget_events). A resumed run
    // skips all of this: the snapshot's event cursor already sits past
    // everything the original run processed.
    while (next_event < config.budget_events.size() &&
           config.budget_events[next_event].epoch == 0) {
      const double new_budget = config.budget_events[next_event].budget_w;
      system.set_budget_w(new_budget);
      active->on_budget_change(new_budget);
      if (rec) rec->record_budget_change({system.epochs_run(), new_budget});
      ++next_event;
    }

    // Unmeasured warmup: the loop runs normally, results are discarded.
    for (std::size_t e = 0; e < config.warmup_epochs; ++e) {
      (void)run_epoch();
    }

    // Fault injection starts with the measured region: engine epoch 0 is
    // measured epoch 0 (mirroring budget_events' clock).
    if (fault_engine.has_value()) system.set_fault_engine(&*fault_engine);
  }

  accountant.set_budget_w(system.budget_w());
  for (std::size_t e = start_epoch; e < config.epochs; ++e) {
    // Snapshot capture first: the blob describes the state *before* this
    // epoch's swap and budget events, so a resumed run re-processes them
    // in exactly the order the uninterrupted run did.
    if (config.snapshot_out != nullptr && e == config.snapshot_epoch) {
      snapshot::Writer w;
      w.begin_section(kSnapshotRunnerTag);
      w.u64(e);
      w.u64(next_event);
      w.u64(next_swap);
      w.u64(n_cores);
      for (std::size_t i = 0; i < n_cores; ++i) w.u64(levels[i]);
      for (std::size_t i = 0; i < n_cores; ++i) w.u64(fallback_hold[i]);
      w.u64(consecutive_violations);
      w.end_section();
      w.begin_section(kSnapshotSystemTag);
      system.save_state(w);
      w.end_section();
      if (fault_engine.has_value()) {
        w.begin_section(kSnapshotFaultTag);
        fault_engine->save_state(w);
        w.end_section();
      }
      w.begin_section(kSnapshotControllerTag);
      w.str(active->name());
      active->save_state(w);
      w.end_section();
      *config.snapshot_out = std::move(w).finish();
    }

    // Controller hot-swaps land before the epoch's budget events: the
    // incoming controller sees a same-epoch cap change the way any sitting
    // controller would. It takes over from the current operating point --
    // `levels` keeps driving the chip; initial_levels() is not consulted.
    while (next_swap < config.swaps.size() &&
           config.swaps[next_swap].epoch <= e) {
      const SwapEvent& sw = config.swaps[next_swap];
      std::unique_ptr<Controller> incoming =
          ControllerRegistry::instance().make(sw.controller, system.config(),
                                              sw.overrides);
      if (config.threads != 0) incoming->set_threads(config.threads);
      if (config.runtime) incoming->set_runtime(config.runtime);
      incoming->set_recorder(rec);
      incoming->on_budget_change(system.budget_w());
      if (sw.seed_snapshot != nullptr) {
        snapshot::Reader seed(*sw.seed_snapshot);
        seed.open_section(kSnapshotControllerTag);
        const std::string seed_name = seed.str();
        if (seed_name != incoming->name()) {
          throw snapshot::SnapshotError(
              snapshot::SnapshotStatus::kBadValue,
              "seed snapshot controller '" + seed_name +
                  "' does not match incoming '" + incoming->name() + "'");
        }
        incoming->load_state(seed);
        seed.expect_section_end();
      }
      // Close the outgoing controller's compliance segment; the next one
      // starts accumulating at this epoch's step.
      swap_segments.push_back(current_segment);
      current_segment = SwapSegment{};
      const SwapTrace swap_rec{system.epochs_run(), active->name(),
                               incoming->name()};
      result.swaps.push_back(swap_rec);
      if (rec) rec->record_controller_swap(swap_rec);
      active->set_recorder(nullptr);
      active = incoming.get();
      swapped_in.push_back(std::move(incoming));
      ++next_swap;
    }

    while (next_event < config.budget_events.size() &&
           config.budget_events[next_event].epoch <= e) {
      const double new_budget = config.budget_events[next_event].budget_w;
      system.set_budget_w(new_budget);
      accountant.set_budget_w(new_budget);
      active->on_budget_change(new_budget);
      if (rec) rec->record_budget_change({system.epochs_run(), new_budget});
      ++next_event;
    }

    const double decide_s = run_epoch();

    for (double instructions : obs.cores.instructions()) {
      result.total_instructions += instructions;
    }
    // The budget of record for this epoch is the *observed* one --
    // budget-step faults scale it below the cap-event schedule's value,
    // and overshoot must be judged against what was actually in force.
    // Fault-free this equals the accountant's current budget (no-op).
    accountant.set_budget_w(obs.budget_w);
    accountant.add_epoch(obs.true_chip_power_w, obs.epoch_s);
    ++current_segment.epochs;
    if (obs.true_chip_power_w > obs.budget_w) {
      current_segment.overshoot_sum_w += obs.true_chip_power_w - obs.budget_w;
      ++current_segment.violations;
    }
    if (obs.thermal_violations > 0) ++result.thermal_violation_epochs;
    result.decision_time_s += decide_s;
    ++result.decisions;

    // The typed record for this epoch, shared verbatim between the
    // in-memory trace and the telemetry sinks. Stamped with the *system's*
    // epoch counter (obs.epoch) so it shares a clock with the controller
    // events (realloc, budget_change) that land in the same trace stream;
    // trace[i] is measured epoch i regardless.
    EpochTrace record;
    record.epoch = obs.epoch;
    record.budget_w = obs.budget_w;
    record.chip_power_w = obs.chip_power_w;
    record.true_chip_power_w = obs.true_chip_power_w;
    record.total_ips = obs.total_ips;
    record.max_temp_c = obs.max_temp_c;
    record.thermal_violations =
        static_cast<std::uint32_t>(obs.thermal_violations);
    record.decide_s = decide_s;
    if (config.keep_traces) result.trace.push_back(record);
    if (rec) {
      rec->record_epoch(record);
      decide_hist->observe(decide_s * 1e6);
      if (rec->wants_cores(record.epoch)) {
        // Per-core emission reads the SoA columns directly -- no
        // CoreObservation temporaries on the telemetry path.
        const std::span<const std::size_t> level = obs.cores.level();
        const std::span<const double> ips = obs.cores.ips();
        const std::span<const double> power = obs.cores.power_w();
        const std::span<const double> temp = obs.cores.temp_c();
        const std::span<const double> stall = obs.cores.mem_stall_frac();
        for (std::size_t i = 0; i < n_cores; ++i) {
          rec->record_core({record.epoch, static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(level[i]), ips[i],
                            power[i], temp[i], stall[i]});
        }
      }
    }
  }

  // Assemble the A/B report: swap i sits between segments i and i+1.
  swap_segments.push_back(current_segment);
  for (std::size_t i = 0; i < result.swaps.size(); ++i) {
    SwapImpact impact;
    impact.epoch = result.swaps[i].epoch;
    impact.from = result.swaps[i].from;
    impact.to = result.swaps[i].to;
    const SwapSegment& before = swap_segments[i];
    const SwapSegment& after = swap_segments[i + 1];
    impact.epochs_before = before.epochs;
    impact.epochs_after = after.epochs;
    impact.mean_overshoot_w_before = before.mean_overshoot_w();
    impact.mean_overshoot_w_after = after.mean_overshoot_w();
    impact.violation_frac_before = before.violation_frac();
    impact.violation_frac_after = after.violation_frac();
    result.swap_report.push_back(std::move(impact));
  }

  result.total_energy_j = accountant.total_energy_j();
  result.otb_energy_j = accountant.otb_energy_j();
  result.time_over_s = accountant.time_over_budget_s();
  result.peak_overshoot_w = accountant.peak_overshoot_w();
  result.mean_power_w = accountant.mean_power_w();

  if (fault_engine.has_value()) {
    result.fault_events_applied = fault_engine->counts().total();
  }

  if (rec) {
    rec->counter("run.epochs").add(result.epochs);
    rec->counter("run.decisions").add(result.decisions);
    rec->counter("run.thermal_violation_epochs")
        .add(result.thermal_violation_epochs);
    rec->gauge("run.mean_power_w").set(result.mean_power_w);
    rec->gauge("run.otb_energy_j").set(result.otb_energy_j);
    if (fault_engine.has_value()) {
      const FaultCounts& counts = fault_engine->counts();
      rec->counter("faults.sensor").add(counts.sensor);
      rec->counter("faults.actuation").add(counts.actuation);
      rec->counter("faults.budget").add(counts.budget);
      rec->counter("faults.hotplug").add(counts.hotplug);
    }
    // Task-runtime counters, as this run's delta. Observational and (for
    // a runtime shared across concurrently stepped chips) approximate --
    // sibling chips' tasks land in the same totals; MultiChipRun reports
    // the fleet-wide figures itself.
    {
      const task::RuntimeStats ts = system.runtime().stats();
      rec->counter("task.executed")
          .add(ts.tasks_executed - runtime_stats0.tasks_executed);
      rec->counter("task.steals").add(ts.steals - runtime_stats0.steals);
      rec->counter("task.overflows")
          .add(ts.overflows - runtime_stats0.overflows);
      rec->counter("task.worker_parks")
          .add(ts.worker_parks - runtime_stats0.worker_parks);
      rec->counter("task.wait_parks")
          .add(ts.wait_parks - runtime_stats0.wait_parks);
      rec->gauge("task.max_queue_depth")
          .set(static_cast<double>(ts.max_queue_depth));
    }
    if (wd.enabled) {
      rec->counter("watchdog.invalid_decisions")
          .add(result.watchdog_invalid_decisions);
      rec->counter("watchdog.fallback_entries")
          .add(result.watchdog_fallback_entries);
      rec->counter("watchdog.fallback_exits")
          .add(result.watchdog_fallback_exits);
      rec->counter("watchdog.fallback_epochs")
          .add(result.watchdog_fallback_epochs);
    }
    rec->end_run();
  }
  // Detach: the recorder's and engine's lifetimes are only guaranteed for
  // this run.
  system.set_fault_engine(nullptr);
  system.set_recorder(nullptr);
  controller.set_recorder(nullptr);
  active->set_recorder(nullptr);
  return result;
}

}  // namespace odrl::sim
