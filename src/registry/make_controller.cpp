// The registry's front door, deliberately housed in its own library
// (odrl_registry) that links every controller library: make_controller()
// must be able to promise that all built-ins are registered, and with
// static libraries that means forcing the linker to keep each controller's
// translation unit (whose file-scope ControllerRegistrar does the actual
// registration). Calling the no-op anchor function each controller defines
// next to its registrar extracts that archive member; the registrar's
// dynamic initializer then runs before main().
#include "sim/controller_registry.hpp"

namespace odrl::core {
void odrl_controller_registered();
}  // namespace odrl::core

namespace odrl::baselines {
void pid_controller_registered();
void greedy_controller_registered();
void maxbips_controller_registered();
void static_uniform_registered();
}  // namespace odrl::baselines

namespace odrl::sim {

namespace {
void ensure_builtins_linked() {
  core::odrl_controller_registered();
  baselines::pid_controller_registered();
  baselines::greedy_controller_registered();
  baselines::maxbips_controller_registered();
  baselines::static_uniform_registered();
}
}  // namespace

std::unique_ptr<Controller> make_controller(
    const std::string& name, const arch::ChipConfig& chip,
    const ControllerOverrides& overrides) {
  ensure_builtins_linked();
  return ControllerRegistry::instance().make(name, chip, overrides);
}

std::vector<std::string> registered_controllers() {
  ensure_builtins_linked();
  return ControllerRegistry::instance().names();
}

}  // namespace odrl::sim
