// Fleet: the homogeneous multi-chip builder (declared in
// sim/multichip.hpp). Lives in the registry layer for the same reason
// make_controller() does: constructing a fleet's controllers by name must
// anchor every built-in controller library.
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/multichip.hpp"
#include "workload/workload.hpp"

namespace odrl::sim {

void FleetConfig::validate() const {
  if (chips == 0) {
    throw std::invalid_argument("FleetConfig: chips must be > 0");
  }
  if (cores == 0) {
    throw std::invalid_argument("FleetConfig: cores must be > 0");
  }
  if (epochs == 0) {
    throw std::invalid_argument("FleetConfig: epochs must be > 0");
  }
  if (!(budget_fraction > 0.0)) {
    throw std::invalid_argument("FleetConfig: budget_fraction must be > 0");
  }
  if (controller.empty()) {
    throw std::invalid_argument("FleetConfig: controller name is empty");
  }
}

Fleet::Fleet(const FleetConfig& config) : config_(config) {
  config_.validate();
  systems_.resize(config_.chips);
  controllers_.resize(config_.chips);
  specs_.resize(config_.chips);
  for (std::size_t i = 0; i < config_.chips; ++i) rebuild_chip(i);
}

void Fleet::rebuild_chip(std::size_t chip) {
  if (chip >= specs_.size()) {
    throw std::out_of_range("Fleet::rebuild_chip: chip " +
                            std::to_string(chip) + " of " +
                            std::to_string(specs_.size()));
  }
  const arch::ChipConfig cc =
      arch::ChipConfig::make(config_.cores, config_.budget_fraction);

  SimConfig sc;
  sc.sensor_noise_rel = config_.sensor_noise_rel;
  sc.seed = fleet_chip_seed(config_.seed, chip, /*stream=*/0);

  auto workload = std::make_unique<workload::GeneratedWorkload>(
      workload::GeneratedWorkload::mixed_suite(
          config_.cores, fleet_chip_seed(config_.seed, chip, /*stream=*/1)));
  systems_[chip] =
      std::make_unique<ManyCoreSystem>(cc, std::move(workload), sc);

  // Per-chip exploration seed, unless the caller pinned one explicitly
  // (a shared seed across chips is a legitimate ablation).
  ControllerOverrides ov = config_.overrides;
  if (!ov.contains("seed")) {
    ov.set("seed",
           std::to_string(fleet_chip_seed(config_.seed, chip, /*stream=*/2)));
  }
  controllers_[chip] = make_controller(config_.controller, cc, ov);

  ChipSpec& spec = specs_[chip];
  spec.system = systems_[chip].get();
  spec.controller = controllers_[chip].get();
  spec.config.epochs = config_.epochs;
  spec.config.warmup_epochs = config_.warmup_epochs;
  spec.config.keep_traces = config_.keep_traces;
  spec.config.faults = config_.faults;
  spec.tag = "chip" + std::to_string(chip);
}

}  // namespace odrl::sim
