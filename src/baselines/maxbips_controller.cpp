#include "baselines/maxbips_controller.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>

#include "sim/controller_registry.hpp"
#include "sim/validate.hpp"
#include "util/check.hpp"

namespace odrl::baselines {

void MaxBipsConfig::validate() const {
  if (power_bins_min < 8) {
    throw std::invalid_argument("MaxBipsConfig: power_bins_min < 8");
  }
  if (bins_per_core == 0) {
    throw std::invalid_argument("MaxBipsConfig: bins_per_core == 0");
  }
  if (exact_core_limit == 0) {
    throw std::invalid_argument("MaxBipsConfig: exact_core_limit == 0");
  }
}

MaxBipsController::MaxBipsController(const arch::ChipConfig& chip,
                                     MaxBipsConfig config)
    : chip_(chip), predictor_(chip), config_(config) {
  config_.validate();
}

std::string MaxBipsController::name() const {
  return config_.solver == MaxBipsSolver::kExact ? "MaxBIPS-exact" : "MaxBIPS";
}

std::vector<std::size_t> MaxBipsController::initial_levels(
    std::size_t n_cores) {
  return std::vector<std::size_t>(n_cores, 0);
}

void MaxBipsController::decide_into(const sim::EpochResult& obs,
                                    std::span<std::size_t> out) {
  ODRL_VALIDATE(sim::validate_out_span(obs, out));
  const std::size_t n = obs.cores.size();
  const std::size_t n_levels = predictor_.vf_table().size();
  const std::span<const std::uint8_t> online = obs.cores.online();
  pred_.resize(n * n_levels);
  for (std::size_t i = 0; i < n; ++i) {
    if (online[i] == 0) {
      // Offline (hotplugged-out) cores draw nothing and retire nothing at
      // any level: zeroed rows make both solvers indifferent to them, and
      // the post-solve pass below parks them at the floor deterministically.
      std::fill_n(pred_.data() + i * n_levels, n_levels, LevelPrediction{});
      continue;
    }
    predictor_.predict_all_into(
        obs.cores[i],
        std::span<LevelPrediction>(pred_.data() + i * n_levels, n_levels));
  }
  const auto park_offline = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      if (online[i] == 0) out[i] = 0;
    }
  };
  switch (config_.solver) {
    case MaxBipsSolver::kExact:
      solve_exact(pred_, obs.budget_w, out);
      park_offline();
      return;
    case MaxBipsSolver::kKnapsackDp:
      solve_dp(pred_, obs.budget_w, out);
      park_offline();
      return;
  }
  throw std::logic_error("MaxBipsController: unknown solver");
}

void MaxBipsController::solve_exact(std::span<const LevelPrediction> pred,
                                    double budget_w,
                                    std::span<std::size_t> out) {
  const std::size_t n = out.size();
  if (n > config_.exact_core_limit) {
    throw std::invalid_argument(
        "MaxBIPS exact solver: too many cores for exhaustive enumeration");
  }
  const std::size_t n_levels = predictor_.vf_table().size();

  current_.assign(n, 0);
  best_.assign(n, 0);
  double best_ips = -1.0;

  // Odometer enumeration over levels^n.
  for (;;) {
    double power = 0.0;
    double ips = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      power += pred[i * n_levels + current_[i]].power_w;
      ips += pred[i * n_levels + current_[i]].ips;
    }
    if (power <= budget_w && ips > best_ips) {
      best_ips = ips;
      best_ = current_;
    }
    std::size_t digit = 0;
    while (digit < n) {
      if (++current_[digit] < n_levels) break;
      current_[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
  }
  // If even all-minimum exceeded the budget, best_ips stayed negative;
  // all-zero is the least-bad assignment.
  if (best_ips < 0.0) {
    std::fill(out.begin(), out.end(), std::size_t{0});
  } else {
    std::copy(best_.begin(), best_.end(), out.begin());
  }
}

void MaxBipsController::solve_dp(std::span<const LevelPrediction> pred,
                                 double budget_w,
                                 std::span<std::size_t> out) {
  const std::size_t n = out.size();
  const std::size_t n_levels = predictor_.vf_table().size();
  const std::size_t bins =
      std::max(config_.power_bins_min, config_.bins_per_core * n);
  const double delta = budget_w / static_cast<double>(bins);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // Integer weight of each (core, level); ceil keeps the solution feasible
  // against the real-valued budget.
  auto weight = [&](std::size_t core, std::size_t level) -> std::size_t {
    return static_cast<std::size_t>(
        std::ceil(pred[core * n_levels + level].power_w / delta - 1e-12));
  };

  dp_.assign(bins + 1, kNegInf);
  next_.assign(bins + 1, kNegInf);
  // choice_[core * (bins+1) + w]: level picked for `core` when the prefix
  // through `core` uses weight w.
  choice_.assign(n * (bins + 1), 0xff);

  dp_[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(next_.begin(), next_.end(), kNegInf);
    for (std::size_t w = 0; w <= bins; ++w) {
      if (dp_[w] == kNegInf) continue;
      for (std::size_t l = 0; l < n_levels; ++l) {
        const std::size_t wl = weight(i, l);
        const std::size_t w2 = w + wl;
        if (w2 > bins) break;  // levels sorted by power: heavier only
        const double ips2 = dp_[w] + pred[i * n_levels + l].ips;
        if (ips2 > next_[w2]) {
          next_[w2] = ips2;
          choice_[i * (bins + 1) + w2] = static_cast<std::uint8_t>(l);
        }
      }
    }
    dp_.swap(next_);
  }

  // Best achievable total IPS within the budget.
  std::size_t best_w = bins + 1;
  double best_ips = kNegInf;
  for (std::size_t w = 0; w <= bins; ++w) {
    if (dp_[w] > best_ips) {
      best_ips = dp_[w];
      best_w = w;
    }
  }
  if (best_w > bins) {
    // Even all-minimum does not fit the discretized budget: floor levels.
    std::fill(out.begin(), out.end(), std::size_t{0});
    return;
  }

  // Walk the choice/used tables backwards to recover the assignment.
  std::fill(out.begin(), out.end(), std::size_t{0});
  std::size_t w = best_w;
  for (std::size_t i = n; i-- > 0;) {
    const std::uint8_t l = choice_[i * (bins + 1) + w];
    if (l == 0xff) {
      // Should not happen on a reachable cell; degrade safely.
      std::fill(out.begin(), out.end(), std::size_t{0});
      return;
    }
    out[i] = l;
    w -= weight(i, l);
  }
}

// -- Registry wiring ("MaxBIPS") --
namespace {

std::unique_ptr<sim::Controller> make_maxbips(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  MaxBipsConfig cfg;
  const std::string solver = ov.get_string(
      "solver", cfg.solver == MaxBipsSolver::kExact ? "exact" : "dp");
  if (solver == "exact") {
    cfg.solver = MaxBipsSolver::kExact;
  } else if (solver == "dp" || solver == "knapsack") {
    cfg.solver = MaxBipsSolver::kKnapsackDp;
  } else {
    throw std::invalid_argument(
        "MaxBIPS override \"solver\": expected dp|exact, got \"" + solver +
        "\"");
  }
  cfg.power_bins_min = ov.get_size("power_bins_min", cfg.power_bins_min);
  cfg.bins_per_core = ov.get_size("bins_per_core", cfg.bins_per_core);
  cfg.exact_core_limit = ov.get_size("exact_core_limit", cfg.exact_core_limit);
  // Deterministic policy: the common "seed" override (fleet per-chip seed
  // forking, see sim/multichip.hpp) is accepted and unused.
  ov.get_u64("seed", 0);
  return std::make_unique<MaxBipsController>(chip, cfg);
}

const sim::ControllerRegistrar maxbips_registrar{"MaxBIPS", &make_maxbips};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void maxbips_controller_registered() {}

}  // namespace odrl::baselines
