#include "baselines/maxbips_controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "sim/controller_registry.hpp"

namespace odrl::baselines {

void MaxBipsConfig::validate() const {
  if (power_bins_min < 8) {
    throw std::invalid_argument("MaxBipsConfig: power_bins_min < 8");
  }
  if (bins_per_core == 0) {
    throw std::invalid_argument("MaxBipsConfig: bins_per_core == 0");
  }
  if (exact_core_limit == 0) {
    throw std::invalid_argument("MaxBipsConfig: exact_core_limit == 0");
  }
}

MaxBipsController::MaxBipsController(const arch::ChipConfig& chip,
                                     MaxBipsConfig config)
    : chip_(chip), predictor_(chip), config_(config) {
  config_.validate();
}

std::string MaxBipsController::name() const {
  return config_.solver == MaxBipsSolver::kExact ? "MaxBIPS-exact" : "MaxBIPS";
}

std::vector<std::size_t> MaxBipsController::initial_levels(
    std::size_t n_cores) {
  return std::vector<std::size_t>(n_cores, 0);
}

std::vector<std::size_t> MaxBipsController::decide(
    const sim::EpochResult& obs) {
  const std::size_t n = obs.cores.size();
  std::vector<std::vector<LevelPrediction>> pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    pred[i] = predictor_.predict_all(obs.cores[i]);
  }
  switch (config_.solver) {
    case MaxBipsSolver::kExact:
      return solve_exact(pred, obs.budget_w);
    case MaxBipsSolver::kKnapsackDp:
      return solve_dp(pred, obs.budget_w);
  }
  throw std::logic_error("MaxBipsController: unknown solver");
}

std::vector<std::size_t> MaxBipsController::solve_exact(
    const std::vector<std::vector<LevelPrediction>>& pred,
    double budget_w) const {
  const std::size_t n = pred.size();
  if (n > config_.exact_core_limit) {
    throw std::invalid_argument(
        "MaxBIPS exact solver: too many cores for exhaustive enumeration");
  }
  const std::size_t n_levels = predictor_.vf_table().size();

  std::vector<std::size_t> current(n, 0);
  std::vector<std::size_t> best(n, 0);
  double best_ips = -1.0;

  // Odometer enumeration over levels^n.
  for (;;) {
    double power = 0.0;
    double ips = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      power += pred[i][current[i]].power_w;
      ips += pred[i][current[i]].ips;
    }
    if (power <= budget_w && ips > best_ips) {
      best_ips = ips;
      best = current;
    }
    std::size_t digit = 0;
    while (digit < n) {
      if (++current[digit] < n_levels) break;
      current[digit] = 0;
      ++digit;
    }
    if (digit == n) break;
  }
  // If even all-minimum exceeded the budget, best_ips stayed negative;
  // all-zero is the least-bad assignment.
  return best_ips < 0.0 ? std::vector<std::size_t>(n, 0) : best;
}

std::vector<std::size_t> MaxBipsController::solve_dp(
    const std::vector<std::vector<LevelPrediction>>& pred,
    double budget_w) const {
  const std::size_t n = pred.size();
  const std::size_t n_levels = predictor_.vf_table().size();
  const std::size_t bins =
      std::max(config_.power_bins_min, config_.bins_per_core * n);
  const double delta = budget_w / static_cast<double>(bins);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  // Integer weight of each (core, level); ceil keeps the solution feasible
  // against the real-valued budget.
  auto weight = [&](std::size_t core, std::size_t level) -> std::size_t {
    return static_cast<std::size_t>(
        std::ceil(pred[core][level].power_w / delta - 1e-12));
  };

  std::vector<double> dp(bins + 1, kNegInf);
  std::vector<double> next(bins + 1, kNegInf);
  // choice[core * (bins+1) + w]: level picked for `core` when the prefix
  // through `core` uses weight w.
  std::vector<std::uint8_t> choice(n * (bins + 1), 0xff);

  dp[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (std::size_t w = 0; w <= bins; ++w) {
      if (dp[w] == kNegInf) continue;
      for (std::size_t l = 0; l < n_levels; ++l) {
        const std::size_t wl = weight(i, l);
        const std::size_t w2 = w + wl;
        if (w2 > bins) break;  // levels sorted by power: heavier only
        const double ips2 = dp[w] + pred[i][l].ips;
        if (ips2 > next[w2]) {
          next[w2] = ips2;
          choice[i * (bins + 1) + w2] = static_cast<std::uint8_t>(l);
        }
      }
    }
    dp.swap(next);
  }

  // Best achievable total IPS within the budget.
  std::size_t best_w = bins + 1;
  double best_ips = kNegInf;
  for (std::size_t w = 0; w <= bins; ++w) {
    if (dp[w] > best_ips) {
      best_ips = dp[w];
      best_w = w;
    }
  }
  if (best_w > bins) {
    // Even all-minimum does not fit the discretized budget: floor levels.
    return std::vector<std::size_t>(n, 0);
  }

  // Walk the choice/used tables backwards to recover the assignment.
  std::vector<std::size_t> levels(n, 0);
  std::size_t w = best_w;
  for (std::size_t i = n; i-- > 0;) {
    const std::uint8_t l = choice[i * (bins + 1) + w];
    if (l == 0xff) {
      // Should not happen on a reachable cell; degrade safely.
      return std::vector<std::size_t>(n, 0);
    }
    levels[i] = l;
    w -= weight(i, l);
  }
  return levels;
}

// -- Registry wiring ("MaxBIPS") --
namespace {

std::unique_ptr<sim::Controller> make_maxbips(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  MaxBipsConfig cfg;
  const std::string solver = ov.get_string(
      "solver", cfg.solver == MaxBipsSolver::kExact ? "exact" : "dp");
  if (solver == "exact") {
    cfg.solver = MaxBipsSolver::kExact;
  } else if (solver == "dp" || solver == "knapsack") {
    cfg.solver = MaxBipsSolver::kKnapsackDp;
  } else {
    throw std::invalid_argument(
        "MaxBIPS override \"solver\": expected dp|exact, got \"" + solver +
        "\"");
  }
  cfg.power_bins_min = ov.get_size("power_bins_min", cfg.power_bins_min);
  cfg.bins_per_core = ov.get_size("bins_per_core", cfg.bins_per_core);
  cfg.exact_core_limit = ov.get_size("exact_core_limit", cfg.exact_core_limit);
  return std::make_unique<MaxBipsController>(chip, cfg);
}

const sim::ControllerRegistrar maxbips_registrar{"MaxBIPS", &make_maxbips};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void maxbips_controller_registered() {}

}  // namespace odrl::baselines
