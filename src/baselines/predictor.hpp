// Model-based per-core power/performance prediction.
//
// The state-of-the-art baselines the paper compares against (MaxBIPS-style
// global optimization, greedy search) are *predictive*: each epoch they use
// an analytical model plus the last epoch's sensors to extrapolate every
// core's IPS and watts at every candidate V/F level, then optimize over the
// predictions. This header is that shared predictor.
//
// Predicting from one-epoch-old sensors is exactly the weakness OD-RL's
// model-free margin-keeping avoids: when the workload changes phase between
// decision and execution, predictions are stale and budget-filling
// optimizers overshoot.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "arch/chip_config.hpp"
#include "power/power_model.hpp"
#include "sim/observation.hpp"

namespace odrl::baselines {

/// Predicted operating point of one core at one candidate level.
struct LevelPrediction {
  double ips = 0.0;
  double power_w = 0.0;
};

class Predictor {
 public:
  explicit Predictor(const arch::ChipConfig& chip);

  /// Predicts core behaviour at `target_level` given its observation at its
  /// current level.
  ///
  /// Performance: with memory-stall fraction s observed at frequency f,
  ///   IPS(f') = IPS(f) * (f'/f) / ((1 - s) + s * f'/f)
  /// (exact for the linear CPI-stack family; a standard DVFS extrapolation).
  ///
  /// Power: the observed watts are decomposed with the power model into
  /// dynamic vs. static at the observed (V, f, T); the implied activity is
  /// then re-applied at the target (V', f').
  LevelPrediction predict(const sim::CoreObservation& obs,
                          std::size_t target_level) const;

  /// All levels at once (the optimizers' inner loop). Allocates; prefer
  /// predict_all_into() in hot loops.
  std::vector<LevelPrediction> predict_all(
      const sim::CoreObservation& obs) const;

  /// In-place variant: writes one prediction per level into `out` (size
  /// must equal vf_table().size()). No allocations.
  void predict_all_into(const sim::CoreObservation& obs,
                        std::span<LevelPrediction> out) const;

  /// Implied switching activity in [0, 1] backed out of an observation.
  double implied_activity(const sim::CoreObservation& obs) const;

  const arch::VfTable& vf_table() const { return vf_; }

 private:
  arch::VfTable vf_;
  power::PowerModel power_;
};

}  // namespace odrl::baselines
