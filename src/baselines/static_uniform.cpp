#include "baselines/static_uniform.hpp"

#include <algorithm>
#include <memory>

#include "sim/controller_registry.hpp"
#include "sim/validate.hpp"
#include "util/check.hpp"

namespace odrl::baselines {

StaticUniformController::StaticUniformController(const arch::ChipConfig& chip)
    : chip_(chip), level_(safe_level_for(chip.tdp_w())) {}

std::string StaticUniformController::name() const { return "Static"; }

double StaticUniformController::worst_case_chip_power(
    std::size_t level) const {
  const arch::VfPoint& vf = chip_.vf_table()[level];
  const double hot = chip_.thermal().max_junction_c;
  return chip_.core().total_power_w(vf.voltage_v, vf.freq_ghz,
                                    /*activity=*/1.0, hot) *
         static_cast<double>(chip_.n_cores());
}

std::size_t StaticUniformController::safe_level_for(double budget_w) const {
  std::size_t best = 0;
  for (std::size_t l = 0; l < chip_.vf_table().size(); ++l) {
    if (worst_case_chip_power(l) <= budget_w) best = l;
  }
  return best;
}

std::vector<std::size_t> StaticUniformController::initial_levels(
    std::size_t n_cores) {
  return std::vector<std::size_t>(n_cores, level_);
}

void StaticUniformController::decide_into(const sim::EpochResult& obs,
                                          std::span<std::size_t> out) {
  ODRL_VALIDATE(sim::validate_out_span(obs, out));
  (void)obs;  // only the contract reads the observation
  std::fill(out.begin(), out.end(), level_);
}

void StaticUniformController::on_budget_change(double new_budget_w) {
  level_ = safe_level_for(new_budget_w);
}

// -- Registry wiring ("Static") --
namespace {

std::unique_ptr<sim::Controller> make_static(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  (void)ov;  // no knobs: the level is derived from the chip and budget
  return std::make_unique<StaticUniformController>(chip);
}

const sim::ControllerRegistrar static_registrar{"Static", &make_static};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void static_uniform_registered() {}

}  // namespace odrl::baselines
