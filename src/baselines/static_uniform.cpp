#include "baselines/static_uniform.hpp"

#include <algorithm>
#include <memory>

#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "sim/validate.hpp"
#include "snapshot/snapshot.hpp"
#include "util/check.hpp"

namespace odrl::baselines {

StaticUniformController::StaticUniformController(const arch::ChipConfig& chip)
    : chip_(chip), level_(safe_level_for(chip.tdp_w())) {}

std::string StaticUniformController::name() const { return "Static"; }

std::size_t StaticUniformController::safe_level_for(double budget_w) const {
  return sim::safe_uniform_level(chip_, budget_w);
}

std::vector<std::size_t> StaticUniformController::initial_levels(
    std::size_t n_cores) {
  return std::vector<std::size_t>(n_cores, level_);
}

void StaticUniformController::decide_into(const sim::EpochResult& obs,
                                          std::span<std::size_t> out) {
  ODRL_VALIDATE(sim::validate_out_span(obs, out));
  (void)obs;  // only the contract reads the observation
  std::fill(out.begin(), out.end(), level_);
}

void StaticUniformController::on_budget_change(double new_budget_w) {
  level_ = safe_level_for(new_budget_w);
}

void StaticUniformController::save_state(snapshot::Writer& w) const {
  w.u64(level_);
}

void StaticUniformController::load_state(snapshot::Reader& r) {
  const std::uint64_t level = r.u64();
  if (level >= chip_.vf_table().size()) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                  "provisioned level out of range");
  }
  level_ = static_cast<std::size_t>(level);
}

// -- Registry wiring ("Static") --
namespace {

std::unique_ptr<sim::Controller> make_static(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  // No knobs: the level is derived from the chip and budget. The common
  // "seed" override (fleet per-chip seed forking, see sim/multichip.hpp)
  // is accepted and unused.
  ov.get_u64("seed", 0);
  return std::make_unique<StaticUniformController>(chip);
}

const sim::ControllerRegistrar static_registrar{"Static", &make_static};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void static_uniform_registered() {}

}  // namespace odrl::baselines
