#include "baselines/greedy_controller.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "sim/controller_registry.hpp"
#include "sim/validate.hpp"
#include "telemetry/recorder.hpp"
#include "util/check.hpp"

namespace odrl::baselines {

GreedyController::GreedyController(const arch::ChipConfig& chip,
                                   double fill_target)
    : chip_(chip), predictor_(chip), fill_target_(fill_target) {
  if (fill_target <= 0.0 || fill_target > 1.2) {
    throw std::invalid_argument("GreedyController: fill_target in (0, 1.2]");
  }
}

std::string GreedyController::name() const { return "Greedy"; }

std::vector<std::size_t> GreedyController::initial_levels(
    std::size_t n_cores) {
  return std::vector<std::size_t>(n_cores, 0);
}

void GreedyController::decide_into(const sim::EpochResult& obs,
                                   std::span<std::size_t> out) {
  ODRL_VALIDATE(sim::validate_out_span(obs, out));
  const std::size_t n = obs.cores.size();
  const std::size_t n_levels = predictor_.vf_table().size();
  const double budget = fill_target_ * obs.budget_w;
  const std::span<const std::uint8_t> online = obs.cores.online();

  // Predict every (core, level) point once, into the flattened scratch.
  // Offline (hotplugged-out) cores draw nothing and take no upgrades, so
  // their rows are skipped entirely -- they neither charge the base power
  // nor enter the candidate heap.
  pred_.resize(n * n_levels);
  for (std::size_t i = 0; i < n; ++i) {
    if (online[i] == 0) continue;
    predictor_.predict_all_into(
        obs.cores[i],
        std::span<LevelPrediction>(pred_.data() + i * n_levels, n_levels));
  }

  std::fill(out.begin(), out.end(), std::size_t{0});
  double chip_power = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (online[i] == 0) continue;
    // lint: allow(raw-loop-reduction): serial fold in core-index order
    chip_power += pred_[i * n_levels].power_w;
  }

  // Max-heap of upgrade candidates by marginal IPS per marginal watt,
  // kept in the reusable heap_ buffer (push_heap/pop_heap mirror what
  // priority_queue does, minus the per-epoch container). Total pushes per
  // epoch are bounded by one per (core, level), so reserving n * n_levels
  // once makes the loop allocation-free.
  auto cmp = [](const Candidate& a, const Candidate& b) {
    return a.efficiency < b.efficiency;
  };
  heap_.clear();
  heap_.reserve(n * n_levels);

  auto push_candidate = [&](std::size_t core, std::size_t from_level) {
    if (from_level + 1 >= n_levels) return;
    const LevelPrediction& lo = pred_[core * n_levels + from_level];
    const LevelPrediction& hi = pred_[core * n_levels + from_level + 1];
    const double d_power = hi.power_w - lo.power_w;
    const double d_ips = hi.ips - lo.ips;
    if (d_power <= 0.0) return;  // degenerate; skip
    heap_.push_back(Candidate{d_ips / d_power, core, from_level + 1, d_power});
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (online[i] == 0) continue;
    push_candidate(i, 0);
  }

  std::uint64_t upgrades = 0;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const Candidate c = heap_.back();
    heap_.pop_back();
    if (out[c.core] + 1 != c.to_level) continue;  // stale entry
    if (chip_power + c.delta_power > budget) continue;  // does not fit
    out[c.core] = c.to_level;
    // lint: allow(raw-loop-reduction): serial heap walk, comparator-ordered
    chip_power += c.delta_power;
    ++upgrades;
    push_candidate(c.core, c.to_level);
  }

  if (recorder_ && recorder_->active()) {
    recorder_->counter("greedy.upgrades").add(upgrades);
    recorder_->gauge("greedy.packed_power_w").set(chip_power);
  }
}

// -- Registry wiring ("Greedy") --
namespace {

std::unique_ptr<sim::Controller> make_greedy(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  // Deterministic policy: the common "seed" override (fleet per-chip seed
  // forking, see sim/multichip.hpp) is accepted and unused.
  ov.get_u64("seed", 0);
  return std::make_unique<GreedyController>(chip,
                                            ov.get_double("fill_target", 1.0));
}

const sim::ControllerRegistrar greedy_registrar{"Greedy", &make_greedy};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void greedy_controller_registered() {}

}  // namespace odrl::baselines
