#include "baselines/greedy_controller.hpp"

#include <memory>
#include <queue>
#include <stdexcept>

#include "sim/controller_registry.hpp"
#include "telemetry/recorder.hpp"

namespace odrl::baselines {

GreedyController::GreedyController(const arch::ChipConfig& chip,
                                   double fill_target)
    : chip_(chip), predictor_(chip), fill_target_(fill_target) {
  if (fill_target <= 0.0 || fill_target > 1.2) {
    throw std::invalid_argument("GreedyController: fill_target in (0, 1.2]");
  }
}

std::string GreedyController::name() const { return "Greedy"; }

std::vector<std::size_t> GreedyController::initial_levels(
    std::size_t n_cores) {
  return std::vector<std::size_t>(n_cores, 0);
}

std::vector<std::size_t> GreedyController::decide(
    const sim::EpochResult& obs) {
  const std::size_t n = obs.cores.size();
  const std::size_t n_levels = predictor_.vf_table().size();
  const double budget = fill_target_ * obs.budget_w;

  // Predict every (core, level) point once.
  std::vector<std::vector<LevelPrediction>> pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    pred[i] = predictor_.predict_all(obs.cores[i]);
  }

  std::vector<std::size_t> levels(n, 0);
  double chip_power = 0.0;
  for (std::size_t i = 0; i < n; ++i) chip_power += pred[i][0].power_w;

  // Max-heap of upgrade candidates by marginal IPS per marginal watt.
  struct Candidate {
    double efficiency;
    std::size_t core;
    std::size_t to_level;
    double delta_power;
  };
  auto cmp = [](const Candidate& a, const Candidate& b) {
    return a.efficiency < b.efficiency;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(cmp)> heap(
      cmp);

  auto push_candidate = [&](std::size_t core, std::size_t from_level) {
    if (from_level + 1 >= n_levels) return;
    const auto& lo = pred[core][from_level];
    const auto& hi = pred[core][from_level + 1];
    const double d_power = hi.power_w - lo.power_w;
    const double d_ips = hi.ips - lo.ips;
    if (d_power <= 0.0) return;  // degenerate; skip
    heap.push(Candidate{d_ips / d_power, core, from_level + 1, d_power});
  };

  for (std::size_t i = 0; i < n; ++i) push_candidate(i, 0);

  std::uint64_t upgrades = 0;
  while (!heap.empty()) {
    const Candidate c = heap.top();
    heap.pop();
    if (levels[c.core] + 1 != c.to_level) continue;  // stale entry
    if (chip_power + c.delta_power > budget) continue;  // does not fit
    levels[c.core] = c.to_level;
    chip_power += c.delta_power;
    ++upgrades;
    push_candidate(c.core, c.to_level);
  }

  if (recorder_ && recorder_->active()) {
    recorder_->counter("greedy.upgrades").add(upgrades);
    recorder_->gauge("greedy.packed_power_w").set(chip_power);
  }
  return levels;
}

// -- Registry wiring ("Greedy") --
namespace {

std::unique_ptr<sim::Controller> make_greedy(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  return std::make_unique<GreedyController>(chip,
                                            ov.get_double("fill_target", 1.0));
}

const sim::ControllerRegistrar greedy_registrar{"Greedy", &make_greedy};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void greedy_controller_registered() {}

}  // namespace odrl::baselines
