#include "baselines/pid_controller.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/controller_registry.hpp"
#include "sim/validate.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"
#include "telemetry/recorder.hpp"
#include "util/check.hpp"

namespace odrl::baselines {

PidController::PidController(const arch::ChipConfig& chip, PidGains gains)
    : chip_(chip),
      gains_(gains),
      u_(static_cast<double>(chip.vf_table().size() - 1) / 2.0) {}

std::string PidController::name() const { return "PID"; }

std::vector<std::size_t> PidController::initial_levels(std::size_t n_cores) {
  const auto level = chip_.vf_table().clamp_level(
      static_cast<long>(std::lround(u_)));
  return std::vector<std::size_t>(n_cores, level);
}

void PidController::decide_into(const sim::EpochResult& obs,
                                std::span<std::size_t> out) {
  ODRL_VALIDATE(sim::validate_out_span(obs, out));
  // Positive error = headroom available, push frequency up.
  const double error = (obs.budget_w - obs.chip_power_w) / obs.budget_w;

  integral_ = std::clamp(integral_ + error, -gains_.integral_limit,
                         gains_.integral_limit);
  const double derivative = have_prev_ ? error - prev_error_ : 0.0;
  prev_error_ = error;
  have_prev_ = true;

  const double delta =
      gains_.kp * error + gains_.ki * integral_ + gains_.kd * derivative;
  const double max_level = static_cast<double>(chip_.vf_table().size() - 1);
  u_ = std::clamp(u_ + delta, 0.0, max_level);

  const auto level =
      chip_.vf_table().clamp_level(static_cast<long>(std::lround(u_)));

  if (recorder_ && recorder_->active()) {
    recorder_->gauge("pid.error").set(error);
    recorder_->gauge("pid.control_signal").set(u_);
  }
  std::fill(out.begin(), out.end(), level);
}

void PidController::on_budget_change(double /*new_budget_w*/) {
  // The error signal adapts on its own; just bleed the integral so the old
  // operating point does not fight the new budget.
  integral_ = 0.0;
}

void PidController::reset() {
  u_ = static_cast<double>(chip_.vf_table().size() - 1) / 2.0;
  integral_ = 0.0;
  prev_error_ = 0.0;
  have_prev_ = false;
}

void PidController::save_state(snapshot::Writer& w) const {
  w.f64(u_);
  w.f64(integral_);
  w.f64(prev_error_);
  w.u8(have_prev_ ? 1 : 0);
}

void PidController::load_state(snapshot::Reader& r) {
  const double u = r.f64();
  const double integral = r.f64();
  const double prev_error = r.f64();
  if (!std::isfinite(u) || !std::isfinite(integral) ||
      !std::isfinite(prev_error)) {
    throw snapshot::SnapshotError(snapshot::SnapshotStatus::kNonFinite,
                                  "PID loop state must be finite");
  }
  const bool have_prev = snapshot::load_bool(r, "have_prev");
  u_ = u;
  integral_ = integral;
  prev_error_ = prev_error;
  have_prev_ = have_prev;
}

// -- Registry wiring ("PID") --
namespace {

std::unique_ptr<sim::Controller> make_pid(
    const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
  PidGains gains;
  gains.kp = ov.get_double("kp", gains.kp);
  gains.ki = ov.get_double("ki", gains.ki);
  gains.kd = ov.get_double("kd", gains.kd);
  gains.integral_limit = ov.get_double("integral_limit", gains.integral_limit);
  // Deterministic policy: the common "seed" override (fleet per-chip seed
  // forking, see sim/multichip.hpp) is accepted and unused.
  ov.get_u64("seed", 0);
  return std::make_unique<PidController>(chip, gains);
}

const sim::ControllerRegistrar pid_registrar{"PID", &make_pid};

}  // namespace

/// Link anchor: make_controller() (libodrl_registry) calls this no-op so
/// the linker must extract this archive member, which runs the registrar
/// above. A data anchor is not enough -- a discarded load of an extern
/// constant is dead code the optimizer may drop, reference and all.
void pid_controller_registered() {}

}  // namespace odrl::baselines
