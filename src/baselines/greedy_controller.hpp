// Greedy predictive global search (the Isci-style "maximize-then-trim"
// heuristic family).
//
// Each epoch, starting from level 0 everywhere, repeatedly grants +1 level
// to the core with the highest predicted marginal IPS per marginal watt, as
// long as the predicted chip power stays within the budget. Per-core
// predictions come from the shared model-based Predictor. Cost is
// O(n * levels * log n) per epoch (priority queue of upgrade candidates) --
// polynomial but markedly heavier than OD-RL's O(n) table walk, and it
// inherits the predictor's staleness-driven overshoot.
#pragma once

#include "arch/chip_config.hpp"
#include "baselines/predictor.hpp"
#include "sim/controller.hpp"

namespace odrl::baselines {

class GreedyController final : public sim::Controller {
 public:
  /// `fill_target` scales the budget the optimizer packs to (1.0 = fill the
  /// whole budget; the paper-era heuristics fill fully, which is what makes
  /// them overshoot under prediction error).
  GreedyController(const arch::ChipConfig& chip, double fill_target = 1.0);

  std::string name() const override;
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override;
  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override;

 private:
  /// One +1-level upgrade proposal in the marginal-efficiency heap.
  struct Candidate {
    double efficiency;
    std::size_t core;
    std::size_t to_level;
    double delta_power;
  };

  arch::ChipConfig chip_;
  Predictor predictor_;
  double fill_target_;

  // Reusable scratch (decide_into performs zero steady-state allocations).
  std::vector<LevelPrediction> pred_;  ///< flattened [core * n_levels + l]
  std::vector<Candidate> heap_;        ///< binary-heap storage
};

}  // namespace odrl::baselines
