// MaxBIPS-class global optimization (the paper's "state-of-the-art"
// comparison point for both quality and runtime).
//
// Each epoch it solves, over model-based predictions for every core at every
// level:  maximize sum(IPS_i(l_i))  s.t.  sum(P_i(l_i)) <= budget.
// Two solvers:
//
//  * kExact      -- exhaustive enumeration of all levels^n assignments.
//                   Only usable for tiny n; exists to validate the DP.
//  * kKnapsackDp -- multiple-choice knapsack DP over a discretized power
//                   axis: O(n * levels * bins) per epoch. Polynomial but
//                   with a large constant; at hundreds of cores its decision
//                   latency is the "two orders of magnitude" the abstract
//                   claims OD-RL wins by (E5).
//
// Like every budget-filling predictive scheme it packs power to 100% of the
// budget against one-epoch-stale predictions, so phase changes and sensor
// noise convert directly into overshoot (E2/E3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/chip_config.hpp"
#include "baselines/predictor.hpp"
#include "sim/controller.hpp"

namespace odrl::baselines {

enum class MaxBipsSolver { kExact, kKnapsackDp };

struct MaxBipsConfig {
  MaxBipsSolver solver = MaxBipsSolver::kKnapsackDp;
  /// Power-axis resolution of the DP: bins = max(power_bins_min,
  /// bins_per_core * n). Per-core discretization waste is one bin's width,
  /// so resolution must grow with n or the optimizer leaves O(n/bins) of
  /// the budget unpacked -- this is what makes the DP O(n^2) in practice
  /// and is the runtime wall the paper's scalability claim is about.
  std::size_t power_bins_min = 512;
  std::size_t bins_per_core = 100;
  /// Exhaustive solver refuses above this core count (levels^n blow-up).
  std::size_t exact_core_limit = 8;

  void validate() const;
};

class MaxBipsController final : public sim::Controller {
 public:
  MaxBipsController(const arch::ChipConfig& chip, MaxBipsConfig config = {});

  std::string name() const override;
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override;
  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override;

  const MaxBipsConfig& config() const { return config_; }

 private:
  /// Both solvers read the flattened prediction table
  /// (pred[core * n_levels + level]) and write the assignment into `out`;
  /// non-const because they use the member scratch buffers below.
  void solve_exact(std::span<const LevelPrediction> pred, double budget_w,
                   std::span<std::size_t> out);
  void solve_dp(std::span<const LevelPrediction> pred, double budget_w,
                std::span<std::size_t> out);

  arch::ChipConfig chip_;
  Predictor predictor_;
  MaxBipsConfig config_;

  // Reusable scratch (decide_into performs zero steady-state allocations).
  std::vector<LevelPrediction> pred_;   ///< flattened [core * n_levels + l]
  std::vector<double> dp_;              ///< DP row (bins + 1)
  std::vector<double> next_;            ///< DP row being built
  std::vector<std::uint8_t> choice_;    ///< [core * (bins+1) + w] -> level
  std::vector<std::size_t> current_;    ///< exact-solver odometer
  std::vector<std::size_t> best_;       ///< exact-solver incumbent
};

}  // namespace odrl::baselines
