// MaxBIPS-class global optimization (the paper's "state-of-the-art"
// comparison point for both quality and runtime).
//
// Each epoch it solves, over model-based predictions for every core at every
// level:  maximize sum(IPS_i(l_i))  s.t.  sum(P_i(l_i)) <= budget.
// Two solvers:
//
//  * kExact      -- exhaustive enumeration of all levels^n assignments.
//                   Only usable for tiny n; exists to validate the DP.
//  * kKnapsackDp -- multiple-choice knapsack DP over a discretized power
//                   axis: O(n * levels * bins) per epoch. Polynomial but
//                   with a large constant; at hundreds of cores its decision
//                   latency is the "two orders of magnitude" the abstract
//                   claims OD-RL wins by (E5).
//
// Like every budget-filling predictive scheme it packs power to 100% of the
// budget against one-epoch-stale predictions, so phase changes and sensor
// noise convert directly into overshoot (E2/E3).
#pragma once

#include <cstddef>

#include "arch/chip_config.hpp"
#include "baselines/predictor.hpp"
#include "sim/controller.hpp"

namespace odrl::baselines {

enum class MaxBipsSolver { kExact, kKnapsackDp };

struct MaxBipsConfig {
  MaxBipsSolver solver = MaxBipsSolver::kKnapsackDp;
  /// Power-axis resolution of the DP: bins = max(power_bins_min,
  /// bins_per_core * n). Per-core discretization waste is one bin's width,
  /// so resolution must grow with n or the optimizer leaves O(n/bins) of
  /// the budget unpacked -- this is what makes the DP O(n^2) in practice
  /// and is the runtime wall the paper's scalability claim is about.
  std::size_t power_bins_min = 512;
  std::size_t bins_per_core = 100;
  /// Exhaustive solver refuses above this core count (levels^n blow-up).
  std::size_t exact_core_limit = 8;

  void validate() const;
};

class MaxBipsController final : public sim::Controller {
 public:
  MaxBipsController(const arch::ChipConfig& chip, MaxBipsConfig config = {});

  std::string name() const override;
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override;
  std::vector<std::size_t> decide(const sim::EpochResult& obs) override;

  const MaxBipsConfig& config() const { return config_; }

 private:
  std::vector<std::size_t> solve_exact(
      const std::vector<std::vector<LevelPrediction>>& pred,
      double budget_w) const;
  std::vector<std::size_t> solve_dp(
      const std::vector<std::vector<LevelPrediction>>& pred,
      double budget_w) const;

  arch::ChipConfig chip_;
  Predictor predictor_;
  MaxBipsConfig config_;
};

}  // namespace odrl::baselines
