// Chip-level PID power capping (the RAPL/feedback-governor family).
//
// A single PID loop on normalized power error drives one uniform V/F level
// for the whole chip. Representative of deployed firmware power capping:
// cheap (O(1) per decision plus an O(n) fan-out), reactive (it only corrects
// *after* an overshoot is measured -- one full epoch of budget violation per
// workload upswing), and unable to distinguish cores (memory-bound cores get
// the same frequency as compute-bound ones).
#pragma once

#include "arch/chip_config.hpp"
#include "sim/controller.hpp"

namespace odrl::baselines {

struct PidGains {
  double kp = 6.0;
  double ki = 1.5;
  double kd = 0.5;
  /// Anti-windup clamp on the integral term (in normalized-error units).
  double integral_limit = 2.0;
};

class PidController final : public sim::Controller {
 public:
  PidController(const arch::ChipConfig& chip, PidGains gains = {});

  std::string name() const override;
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override;
  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override;
  void on_budget_change(double new_budget_w) override;
  void reset() override;

  /// Snapshot hooks: the loop's continuous command, integral accumulator
  /// and previous-error latch (see snapshot/snapshot.hpp).
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  /// Continuous control signal (level units) before quantization.
  double control_signal() const { return u_; }

 private:
  arch::ChipConfig chip_;
  PidGains gains_;
  double u_;  ///< continuous level command in [0, levels-1]
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool have_prev_ = false;
};

}  // namespace odrl::baselines
