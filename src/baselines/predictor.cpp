#include "baselines/predictor.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::baselines {

Predictor::Predictor(const arch::ChipConfig& chip)
    : vf_(chip.vf_table()), power_(chip.core()) {}

double Predictor::implied_activity(const sim::CoreObservation& obs) const {
  const arch::VfPoint& at = vf_.at(obs.level);
  const auto& p = power_.params();
  const double static_w =
      p.leakage_power_w(at.voltage_v, obs.temp_c) + p.uncore_w;
  const double dyn_w = std::max(0.0, obs.power_w - static_w);
  const double dyn_max =
      p.dynamic_power_w(at.voltage_v, at.freq_ghz, /*activity=*/1.0);
  if (dyn_max <= 0.0) return 0.0;
  return std::clamp(dyn_w / dyn_max, 0.0, 1.0);
}

LevelPrediction Predictor::predict(const sim::CoreObservation& obs,
                                   std::size_t target_level) const {
  const arch::VfPoint& from = vf_.at(obs.level);
  const arch::VfPoint& to = vf_.at(target_level);

  LevelPrediction out;

  // Performance extrapolation from the observed stall split.
  const double s = std::clamp(obs.mem_stall_frac, 0.0, 1.0);
  const double f_ratio = to.freq_ghz / from.freq_ghz;
  out.ips = obs.ips * f_ratio / ((1.0 - s) + s * f_ratio);

  // Power: re-apply implied activity at the target point.
  const double activity = implied_activity(obs);
  const auto pw = power_.core_power_at(to, activity, obs.temp_c);
  out.power_w = pw.total_w();
  return out;
}

std::vector<LevelPrediction> Predictor::predict_all(
    const sim::CoreObservation& obs) const {
  std::vector<LevelPrediction> out(vf_.size());
  predict_all_into(obs, out);
  return out;
}

void Predictor::predict_all_into(const sim::CoreObservation& obs,
                                 std::span<LevelPrediction> out) const {
  if (out.size() != vf_.size()) {
    throw std::invalid_argument("Predictor::predict_all_into: size mismatch");
  }
  for (std::size_t l = 0; l < vf_.size(); ++l) out[l] = predict(obs, l);
}

}  // namespace odrl::baselines
