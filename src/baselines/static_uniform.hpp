// Static uniform baseline: design-time worst-case provisioning.
//
// Before the run it picks the highest single V/F level at which the chip
// cannot exceed the budget even with every core fully active at the thermal
// design corner, then never moves. Guaranteed zero overshoot; leaves all the
// workload-dependent headroom on the table. This is the "no DPM" anchor of
// the comparison.
#pragma once

#include "arch/chip_config.hpp"
#include "sim/controller.hpp"

namespace odrl::baselines {

class StaticUniformController final : public sim::Controller {
 public:
  explicit StaticUniformController(const arch::ChipConfig& chip);

  std::string name() const override;
  std::vector<std::size_t> initial_levels(std::size_t n_cores) override;
  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override;
  void on_budget_change(double new_budget_w) override;

  /// Snapshot hooks: the provisioned level (it tracks budget events, so it
  /// is run state, not configuration).
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  std::size_t chosen_level() const { return level_; }

 private:
  /// Highest uniform level that fits `budget_w` at the design corner
  /// (delegates to sim::safe_uniform_level, the same provisioning rule the
  /// runner's watchdog falls back to).
  std::size_t safe_level_for(double budget_w) const;

  arch::ChipConfig chip_;
  std::size_t level_;
};

}  // namespace odrl::baselines
