// Q-table serialization.
//
// A learned policy is a deployment artifact: production DVFS firmware
// warm-starts from a table trained on a reference workload instead of
// paying the cold-start ramp on every boot (E6 shows that ramp costs a few
// seconds of budget under-utilization).
//
// Since snapshot format v1 the on-disk artifact is a single-section binary
// snapshot (magic ODRLSNAP, one 'QTAB' section: dimensions, Q-values,
// visit counts; see snapshot/snapshot.hpp for framing and the versioning
// policy). The previous line-oriented text format ("# odrl-qtable v1") is
// still *read* behind a format sniff so existing corpora and policy files
// keep loading; it is no longer written.
//
// All failure paths throw snapshot::SnapshotError carrying a
// SnapshotStatus code -- the same taxonomy the snapshot Reader and the
// fuzz harness use -- so callers can distinguish a truncated stream
// (kTruncated) from hostile dimensions (kBadValue) from a poisoned table
// (kNonFinite) without parsing messages.
#pragma once

#include <iosfwd>
#include <string>

#include "rl/qtable.hpp"
#include "snapshot/snapshot.hpp"

namespace odrl::rl {

/// The 'QTAB' section tag of the binary Q-table artifact.
inline constexpr std::uint32_t kQtableSectionTag =
    snapshot::section_tag("QTAB");

/// Hard cap on declared n_states * n_actions: a corrupt (or hostile)
/// header must be rejected, not obeyed. Far above any real policy -- the
/// largest configured state space is a few thousand states by tens of
/// actions.
inline constexpr std::size_t kMaxQtableCells = std::size_t{1} << 26;

/// Writes the table's payload (dims, Q-values, visit counts) into the
/// caller's open snapshot section. Shared by the standalone artifact
/// below, TdAgent::save_state and OD-RL's policy files.
void save_qtable_payload(snapshot::Writer& w, const QTable& table);
/// Reads a payload written by save_qtable_payload, enforcing the cell cap
/// and rejecting non-finite Q-values (kBadValue / kNonFinite).
QTable load_qtable_payload(snapshot::Reader& r);

/// Writes the table as a standalone single-section snapshot blob.
void save_qtable(const QTable& table, std::ostream& out);

/// Reads a table: sniffs the binary snapshot magic first, then the legacy
/// text header. Throws snapshot::SnapshotError on malformed input.
/// Consumes the whole stream (the binary sniff needs the full frame).
QTable load_qtable(std::istream& in);

/// Incremental legacy-text reader: consumes exactly one "# odrl-qtable v1"
/// block and leaves the stream positioned after it. Used by sniffers that
/// parse concatenated legacy tables (old OD-RL policy files).
QTable load_legacy_qtable_text(std::istream& in);

/// Convenience file wrappers.
void save_qtable_file(const QTable& table, const std::string& path);
QTable load_qtable_file(const std::string& path);

}  // namespace odrl::rl
