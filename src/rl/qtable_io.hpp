// Q-table serialization.
//
// A learned policy is a deployment artifact: production DVFS firmware
// warm-starts from a table trained on a reference workload instead of
// paying the cold-start ramp on every boot (E6 shows that ramp costs a few
// seconds of budget under-utilization). The format is a small
// line-oriented text file: dimensions, then one row of Q-values and one of
// visit counts per state.
#pragma once

#include <iosfwd>
#include <string>

#include "rl/qtable.hpp"

namespace odrl::rl {

/// Writes the table (Q-values and visit counts).
void save_qtable(const QTable& table, std::ostream& out);

/// Reads a table written by save_qtable; throws std::runtime_error on
/// malformed input.
QTable load_qtable(std::istream& in);

/// Convenience file wrappers.
void save_qtable_file(const QTable& table, const std::string& path);
QTable load_qtable_file(const std::string& path);

}  // namespace odrl::rl
