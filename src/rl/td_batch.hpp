// Batched TD update across many independent agents (one per core in OD-RL).
//
// The per-epoch learning pass applies one TD update to every online core's
// agent. Done naively that is a chain of scalar loads around a handful of
// flops; batching restructures it into
//
//   phase A (scalar): per agent, bootstrap lookup (max_q / q), visit
//     bookkeeping, learning-rate lookup and current-Q read -- table walks
//     that cannot be vectorized bit-safely;
//   phase B (vector): delta = alpha * ((reward + gamma * bootstrap) - q0),
//     pure elementwise IEEE arithmetic over the gathered columns;
//   phase C (scalar): bump_q writeback and update counters.
//
// Because every agent owns a disjoint Q-table and appears at most once per
// batch, the phases commute with the sequential learn() loop and the result
// is bit-identical to calling TdAgent::learn per slot in index order
// (tests/simd_kernel_test.cpp pins this; the golden digests pin it end to
// end).
#pragma once

#include <cstddef>
#include <span>

#include "rl/agent.hpp"

namespace odrl::rl {

/// One TD transition per slot, compact (no gaps). All spans have the same
/// length; `next_action` may be empty when every agent uses Q-learning
/// (SARSA agents require it, matching TdAgent::learn). Each TdAgent may
/// appear at most once -- duplicate agents would reorder reads relative to
/// the sequential loop.
struct TdBatchSpans {
  std::span<TdAgent* const> agents;
  std::span<const std::size_t> prev_state;
  std::span<const std::size_t> prev_action;
  std::span<const std::size_t> next_state;
  std::span<const std::size_t> next_action;
  std::span<const double> reward;
};

/// Applies one TD update per slot, bit-identical to
/// `agents[j]->learn(prev_state[j], prev_action[j], reward[j],
/// next_state[j], next_action[j])` for j in index order. `scratch` must
/// hold at least 3 * agents.size() doubles (alpha/bootstrap/delta columns);
/// zero heap allocations.
void td_update_batch(const TdBatchSpans& batch, std::span<double> scratch);

}  // namespace odrl::rl
