#include "rl/discretizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::rl {

Discretizer::Discretizer(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins) {
  if (!(lo < hi)) throw std::invalid_argument("Discretizer: need lo < hi");
  if (bins == 0) throw std::invalid_argument("Discretizer: need bins > 0");
}

std::size_t Discretizer::bin(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return bins_ - 1;
  const double frac = (x - lo_) / (hi_ - lo_);
  return std::min(static_cast<std::size_t>(frac * static_cast<double>(bins_)),
                  bins_ - 1);
}

double Discretizer::center(std::size_t bin) const {
  if (bin >= bins_) throw std::out_of_range("Discretizer::center: bad bin");
  const double width = (hi_ - lo_) / static_cast<double>(bins_);
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

StateSpace::StateSpace(std::vector<std::size_t> dims)
    : dims_(std::move(dims)), size_(1) {
  if (dims_.empty()) throw std::invalid_argument("StateSpace: no dimensions");
  for (std::size_t d : dims_) {
    if (d == 0) throw std::invalid_argument("StateSpace: zero-size dimension");
    if (size_ > (static_cast<std::size_t>(-1) / d)) {
      throw std::invalid_argument("StateSpace: size overflow");
    }
    size_ *= d;
  }
}

std::size_t StateSpace::dim(std::size_t i) const {
  if (i >= dims_.size()) throw std::out_of_range("StateSpace::dim");
  return dims_[i];
}

std::size_t StateSpace::encode(std::span<const std::size_t> coords) const {
  if (coords.size() != dims_.size()) {
    throw std::invalid_argument("StateSpace::encode: wrong arity");
  }
  std::size_t id = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (coords[i] >= dims_[i]) {
      throw std::out_of_range("StateSpace::encode: coordinate out of range");
    }
    id = id * dims_[i] + coords[i];
  }
  return id;
}

std::vector<std::size_t> StateSpace::decode(std::size_t id) const {
  if (id >= size_) throw std::out_of_range("StateSpace::decode: id too big");
  std::vector<std::size_t> coords(dims_.size());
  for (std::size_t i = dims_.size(); i-- > 0;) {
    coords[i] = id % dims_[i];
    id /= dims_[i];
  }
  return coords;
}

}  // namespace odrl::rl
