// Dense tabular action-value store. One QTable per core in OD-RL; kept
// deliberately flat (single contiguous vector) because the per-epoch control
// path touches it on every core and cache behaviour matters at 1000 cores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace odrl::rl {

class QTable {
 public:
  QTable(std::size_t n_states, std::size_t n_actions, double init_q = 0.0);

  std::size_t n_states() const noexcept { return n_states_; }
  std::size_t n_actions() const noexcept { return n_actions_; }

  double q(std::size_t state, std::size_t action) const;
  void set_q(std::size_t state, std::size_t action, double value);
  /// q += delta; returns the new value.
  double bump_q(std::size_t state, std::size_t action, double delta);

  /// Greedy action (argmax over actions; first index wins ties).
  std::size_t greedy_action(std::size_t state) const;
  double max_q(std::size_t state) const;
  /// Row view of all action values for a state.
  std::span<const double> row(std::size_t state) const;

  /// Visit bookkeeping (used by 1/n learning-rate schedules and by the
  /// policy-inspection example).
  void record_visit(std::size_t state, std::size_t action);
  /// Bulk restore of a visit count (deserialization / warm start).
  void set_visits(std::size_t state, std::size_t action, std::uint32_t n);
  std::size_t visits(std::size_t state, std::size_t action) const;
  std::size_t state_visits(std::size_t state) const;
  /// Number of (state, action) pairs visited at least once.
  std::size_t coverage() const noexcept;

  void fill(double value) noexcept;

  /// True when every stored action value is finite. A NaN/inf Q-value is a
  /// poisoned bootstrap: it spreads through every TD update that touches
  /// the row and silently corrupts the policy, so the ODRL_CHECK contract
  /// layer asserts this at every coarse-grain reallocation and on policy
  /// load. Allocation-free (a single scan).
  bool all_finite() const noexcept;

 private:
  std::size_t index(std::size_t state, std::size_t action) const;

  std::size_t n_states_;
  std::size_t n_actions_;
  std::vector<double> q_;
  std::vector<std::uint32_t> visits_;
};

}  // namespace odrl::rl
