// Exploration and learning-rate schedules.
//
// On-line control needs *continued* exploration (workloads change phases
// forever), so the default schedules decay to a floor rather than to zero:
// the agent keeps probing occasionally even after convergence, which is how
// it notices that the optimal policy has moved.
#pragma once

#include <cstddef>

namespace odrl::rl {

/// epsilon(t) = max(eps_min, eps0 * decay^t). decay in (0, 1]; decay == 1
/// gives a constant schedule.
class EpsilonSchedule {
 public:
  EpsilonSchedule(double eps0, double eps_min, double decay);
  static EpsilonSchedule constant(double eps);

  /// Value at step t (does not advance).
  double at(std::size_t t) const;
  /// Returns the current value and advances one step.
  double next();
  double current() const { return at(t_); }
  void reset() { t_ = 0; }
  /// Schedule position, exposed for snapshot/restore.
  std::size_t step_count() const { return t_; }
  void set_step_count(std::size_t t) { t_ = t; }

 private:
  double eps0_;
  double eps_min_;
  double decay_;
  std::size_t t_ = 0;
};

/// Learning rate: either constant alpha, or the classic 1/(1 + visits/k)
/// visit-count decay (k controls how slowly it cools).
class LearningRateSchedule {
 public:
  static LearningRateSchedule constant(double alpha);
  static LearningRateSchedule visit_decay(double alpha0, double k);

  /// Rate given the visit count of the (s, a) pair being updated.
  double rate(std::size_t visits) const;

 private:
  LearningRateSchedule(double alpha0, double k, bool decaying);
  double alpha0_;
  double k_;
  bool decaying_;
};

}  // namespace odrl::rl
