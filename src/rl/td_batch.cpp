#include "rl/td_batch.hpp"

#include <optional>
#include <stdexcept>

#include "util/simd.hpp"

namespace odrl::rl {

void td_update_batch(const TdBatchSpans& batch, std::span<double> scratch) {
  const std::size_t m = batch.agents.size();
  if (batch.prev_state.size() != m || batch.prev_action.size() != m ||
      batch.next_state.size() != m || batch.reward.size() != m ||
      (!batch.next_action.empty() && batch.next_action.size() != m)) {
    throw std::invalid_argument("td_update_batch: span size mismatch");
  }
  if (m == 0) return;
  // The scratch contract is mode-independent: rejecting an undersized
  // buffer only when SIMD happens to be active would let callers pass
  // configuration-dependent sizes that explode later.
  if (scratch.size() < 3 * m) {
    throw std::invalid_argument("td_update_batch: scratch too small");
  }

  if (!util::simd_active()) {
    // Reference path: the sequential learn() loop the batched variant is
    // held bit-identical to.
    for (std::size_t j = 0; j < m; ++j) {
      const std::optional<std::size_t> na =
          batch.next_action.empty()
              ? std::nullopt
              : std::optional<std::size_t>(batch.next_action[j]);
      batch.agents[j]->learn(batch.prev_state[j], batch.prev_action[j],
                             batch.reward[j], batch.next_state[j], na);
    }
    return;
  }

  const std::span<double> alpha = scratch.subspan(0, m);
  const std::span<double> boot = scratch.subspan(m, m);
  // Holds q(s, a) after phase A; overwritten with delta by phase B.
  const std::span<double> delta = scratch.subspan(2 * m, m);

  // Phase A: per-agent table walks, in slot order (agents are disjoint, so
  // this order is interchangeable with the sequential loop's).
  for (std::size_t j = 0; j < m; ++j) {
    TdAgent& agent = *batch.agents[j];
    const std::size_t s = batch.prev_state[j];
    const std::size_t a = batch.prev_action[j];
    const std::size_t ns = batch.next_state[j];
    switch (agent.config_.rule) {
      case TdRule::kQLearning:
        boot[j] = agent.table_.max_q(ns);
        break;
      case TdRule::kSarsa:
        if (batch.next_action.empty()) {
          throw std::invalid_argument(
              "TdAgent::learn: SARSA needs next_action");
        }
        boot[j] = agent.table_.q(ns, batch.next_action[j]);
        break;
    }
    agent.table_.record_visit(s, a);
    alpha[j] = agent.config_.alpha.rate(agent.table_.visits(s, a));
    delta[j] = agent.table_.q(s, a);
  }

  // Phase B: delta = alpha * ((reward + gamma * bootstrap) - q0) -- the
  // exact association order learn() uses, elementwise.
  {
    using util::vdouble;
    using util::kSimdLanes;
    std::size_t j = 0;
    for (; j + kSimdLanes <= m; j += kSimdLanes) {
      const vdouble av = util::vload(&alpha[j]);
      const vdouble bv = util::vload(&boot[j]);
      const vdouble q0 = util::vload(&delta[j]);
      const vdouble rv = util::vload(&batch.reward[j]);
      const vdouble gv(
          [&](auto k) { return batch.agents[j + k]->config_.gamma; });
      util::vstore(&delta[j], av * ((rv + gv * bv) - q0));
    }
    for (; j < m; ++j) {
      const double gamma = batch.agents[j]->config_.gamma;
      delta[j] = alpha[j] * ((batch.reward[j] + gamma * boot[j]) - delta[j]);
    }
  }

  // Phase C: writeback.
  for (std::size_t j = 0; j < m; ++j) {
    TdAgent& agent = *batch.agents[j];
    agent.table_.bump_q(batch.prev_state[j], batch.prev_action[j], delta[j]);
    ++agent.updates_;
  }
}

}  // namespace odrl::rl
