#include "rl/qtable.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odrl::rl {

QTable::QTable(std::size_t n_states, std::size_t n_actions, double init_q)
    : n_states_(n_states),
      n_actions_(n_actions),
      q_(n_states * n_actions, init_q),
      visits_(n_states * n_actions, 0) {
  if (n_states == 0 || n_actions == 0) {
    throw std::invalid_argument("QTable: states/actions must be > 0");
  }
}

std::size_t QTable::index(std::size_t state, std::size_t action) const {
  if (state >= n_states_ || action >= n_actions_) {
    throw std::out_of_range("QTable: state/action out of range");
  }
  return state * n_actions_ + action;
}

double QTable::q(std::size_t state, std::size_t action) const {
  return q_[index(state, action)];
}

void QTable::set_q(std::size_t state, std::size_t action, double value) {
  q_[index(state, action)] = value;
}

double QTable::bump_q(std::size_t state, std::size_t action, double delta) {
  return q_[index(state, action)] += delta;
}

std::size_t QTable::greedy_action(std::size_t state) const {
  const auto base = index(state, 0);
  std::size_t best = 0;
  double best_q = q_[base];
  for (std::size_t a = 1; a < n_actions_; ++a) {
    if (q_[base + a] > best_q) {
      best_q = q_[base + a];
      best = a;
    }
  }
  return best;
}

double QTable::max_q(std::size_t state) const {
  const auto base = index(state, 0);
  return *std::max_element(q_.begin() + static_cast<std::ptrdiff_t>(base),
                           q_.begin() +
                               static_cast<std::ptrdiff_t>(base + n_actions_));
}

std::span<const double> QTable::row(std::size_t state) const {
  const auto base = index(state, 0);
  return {q_.data() + base, n_actions_};
}

void QTable::record_visit(std::size_t state, std::size_t action) {
  ++visits_[index(state, action)];
}

void QTable::set_visits(std::size_t state, std::size_t action,
                        std::uint32_t n) {
  visits_[index(state, action)] = n;
}

std::size_t QTable::visits(std::size_t state, std::size_t action) const {
  return visits_[index(state, action)];
}

std::size_t QTable::state_visits(std::size_t state) const {
  const auto base = index(state, 0);
  std::size_t sum = 0;
  for (std::size_t a = 0; a < n_actions_; ++a) sum += visits_[base + a];
  return sum;
}

std::size_t QTable::coverage() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(visits_.begin(), visits_.end(),
                    [](std::uint32_t v) { return v > 0; }));
}

void QTable::fill(double value) noexcept {
  std::fill(q_.begin(), q_.end(), value);
}

bool QTable::all_finite() const noexcept {
  return std::all_of(q_.begin(), q_.end(),
                     [](double v) { return std::isfinite(v); });
}

}  // namespace odrl::rl
