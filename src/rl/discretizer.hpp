// State-space discretization for tabular RL.
//
// Tabular Q-learning needs a small discrete state space; the paper's per-core
// agents observe continuous signals (power headroom, memory intensity) and
// bin them. Discretizer handles one signal; StateSpace composes several
// dimensions (plus categorical ones like the current V/F level) into a single
// dense state id suitable for a flat Q-table.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace odrl::rl {

/// Uniform bins over [lo, hi]; inputs outside the range clamp to the edge
/// bins (sensor excursions must never index out of the table).
class Discretizer {
 public:
  Discretizer(double lo, double hi, std::size_t bins);

  std::size_t bin(double x) const;
  std::size_t bins() const { return bins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Center value of a bin (inverse mapping, for policy inspection).
  double center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
};

/// Mixed-radix encoder: product space of categorical dimensions.
class StateSpace {
 public:
  explicit StateSpace(std::vector<std::size_t> dims);

  std::size_t size() const { return size_; }
  std::size_t n_dims() const { return dims_.size(); }
  std::size_t dim(std::size_t i) const;

  /// coords.size() == n_dims(), coords[i] < dim(i).
  std::size_t encode(std::span<const std::size_t> coords) const;
  std::vector<std::size_t> decode(std::size_t id) const;

 private:
  std::vector<std::size_t> dims_;
  std::size_t size_;
};

}  // namespace odrl::rl
