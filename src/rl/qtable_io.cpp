#include "rl/qtable_io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace odrl::rl {

using snapshot::SnapshotError;
using snapshot::SnapshotStatus;

namespace {
constexpr const char* kLegacyMagic = "# odrl-qtable v1";

void check_dims(std::uint64_t n_states, std::uint64_t n_actions) {
  if (n_states == 0 || n_actions == 0) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "qtable dimensions must be nonzero");
  }
  if (n_states > kMaxQtableCells ||
      n_actions > kMaxQtableCells / n_states) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "implausible qtable dimensions " +
                            std::to_string(n_states) + "x" +
                            std::to_string(n_actions));
  }
}

}  // namespace

/// The pre-snapshot text format, kept readable behind the format sniff.
QTable load_legacy_qtable_text(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kLegacyMagic) {
    throw SnapshotError(SnapshotStatus::kBadMagic,
                        "missing qtable magic header");
  }
  std::size_t n_states = 0;
  std::size_t n_actions = 0;
  if (!(in >> n_states >> n_actions)) {
    throw SnapshotError(in.eof() ? SnapshotStatus::kTruncated
                                 : SnapshotStatus::kBadValue,
                        "bad qtable dimensions line");
  }
  check_dims(n_states, n_actions);
  QTable table(n_states, n_actions);
  for (std::size_t s = 0; s < n_states; ++s) {
    std::string tag;
    if (!(in >> tag) || tag != "q") {
      throw SnapshotError(in.eof() ? SnapshotStatus::kTruncated
                                   : SnapshotStatus::kBadValue,
                          "expected q row for state " + std::to_string(s));
    }
    for (std::size_t a = 0; a < n_actions; ++a) {
      double q = 0.0;
      if (!(in >> q)) {
        throw SnapshotError(in.eof() ? SnapshotStatus::kTruncated
                                     : SnapshotStatus::kBadValue,
                            "truncated q row");
      }
      // A NaN/inf action value would poison every TD bootstrap that reads
      // it (the same invariant QTable::all_finite guards on the hot path),
      // so a corrupt policy file must be rejected at the door.
      if (!std::isfinite(q)) {
        throw SnapshotError(SnapshotStatus::kNonFinite,
                            "non-finite q value in state " +
                                std::to_string(s));
      }
      table.set_q(s, a, q);
    }
    if (!(in >> tag) || tag != "v") {
      throw SnapshotError(in.eof() ? SnapshotStatus::kTruncated
                                   : SnapshotStatus::kBadValue,
                          "expected v row for state " + std::to_string(s));
    }
    for (std::size_t a = 0; a < n_actions; ++a) {
      long long visits = 0;
      if (!(in >> visits) || visits < 0 ||
          visits > std::numeric_limits<std::uint32_t>::max()) {
        throw SnapshotError(in.eof() && visits == 0
                                ? SnapshotStatus::kTruncated
                                : SnapshotStatus::kBadValue,
                            "bad visit count");
      }
      table.set_visits(s, a, static_cast<std::uint32_t>(visits));
    }
  }
  return table;
}

void save_qtable_payload(snapshot::Writer& w, const QTable& table) {
  w.u64(table.n_states());
  w.u64(table.n_actions());
  for (std::size_t s = 0; s < table.n_states(); ++s) {
    for (std::size_t a = 0; a < table.n_actions(); ++a) {
      w.f64(table.q(s, a));
    }
  }
  for (std::size_t s = 0; s < table.n_states(); ++s) {
    for (std::size_t a = 0; a < table.n_actions(); ++a) {
      w.u32(static_cast<std::uint32_t>(table.visits(s, a)));
    }
  }
}

QTable load_qtable_payload(snapshot::Reader& r) {
  const std::uint64_t n_states = r.u64();
  const std::uint64_t n_actions = r.u64();
  check_dims(n_states, n_actions);
  QTable table(static_cast<std::size_t>(n_states),
               static_cast<std::size_t>(n_actions));
  for (std::size_t s = 0; s < n_states; ++s) {
    for (std::size_t a = 0; a < n_actions; ++a) {
      const double q = r.f64();
      if (!std::isfinite(q)) {
        throw SnapshotError(SnapshotStatus::kNonFinite,
                            "non-finite q value in state " +
                                std::to_string(s));
      }
      table.set_q(s, a, q);
    }
  }
  for (std::size_t s = 0; s < n_states; ++s) {
    for (std::size_t a = 0; a < n_actions; ++a) {
      table.set_visits(s, a, r.u32());
    }
  }
  return table;
}

void save_qtable(const QTable& table, std::ostream& out) {
  snapshot::Writer w;
  w.begin_section(kQtableSectionTag);
  save_qtable_payload(w, table);
  w.end_section();
  const std::string blob = std::move(w).finish();
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "save_qtable: stream failure");
  }
}

QTable load_qtable(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "load_qtable: stream failure");
  }
  const std::string blob = std::move(buf).str();
  if (blob.size() >= snapshot::kMagic.size() &&
      std::string_view(blob).substr(0, snapshot::kMagic.size()) ==
          snapshot::kMagic) {
    snapshot::Reader r(blob);
    r.open_section(kQtableSectionTag);
    QTable table = load_qtable_payload(r);
    r.expect_section_end();
    return table;
  }
  // Legacy text artifact (or garbage -- the text path rejects that too).
  std::istringstream text(blob);
  return load_legacy_qtable_text(text);
}

void save_qtable_file(const QTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "save_qtable_file: cannot open " + path);
  }
  save_qtable(table, out);
  // Flush before the destructor would swallow the error: a full disk must
  // surface here, not as a silently truncated policy file.
  out.flush();
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "save_qtable_file: write failed for " + path);
  }
}

QTable load_qtable_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "load_qtable_file: cannot open " + path);
  }
  return load_qtable(in);
}

}  // namespace odrl::rl
