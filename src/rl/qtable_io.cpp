#include "rl/qtable_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <system_error>

namespace odrl::rl {

namespace {
constexpr const char* kMagic = "# odrl-qtable v1";
}

void save_qtable(const QTable& table, std::ostream& out) {
  out << kMagic << '\n';
  out << table.n_states() << ' ' << table.n_actions() << '\n';
  char buf[32];
  for (std::size_t s = 0; s < table.n_states(); ++s) {
    out << "q";
    for (std::size_t a = 0; a < table.n_actions(); ++a) {
      auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof(buf), table.q(s, a));
      if (ec != std::errc()) {
        // Never emit a partially-formatted value: a silently truncated
        // number would corrupt the policy file and only fail at load time
        // (if at all).
        throw std::runtime_error("save_qtable: value formatting failed");
      }
      out << ' ' << std::string_view(buf,
                                     static_cast<std::size_t>(ptr - buf));
    }
    out << '\n';
    out << "v";
    for (std::size_t a = 0; a < table.n_actions(); ++a) {
      out << ' ' << table.visits(s, a);
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_qtable: stream failure");
}

QTable load_qtable(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("load_qtable: missing magic header");
  }
  std::size_t n_states = 0;
  std::size_t n_actions = 0;
  if (!(in >> n_states >> n_actions) || n_states == 0 || n_actions == 0) {
    throw std::runtime_error("load_qtable: bad dimensions");
  }
  // Bound the declared size before allocating for it: a corrupt (or
  // hostile) header must be rejected, not obeyed. The cap is far above any
  // real policy -- the largest configured state space is a few thousand
  // states by tens of actions.
  constexpr std::size_t kMaxCells = std::size_t{1} << 26;
  if (n_states > kMaxCells || n_actions > kMaxCells / n_states) {
    throw std::runtime_error("load_qtable: implausible dimensions");
  }
  QTable table(n_states, n_actions);
  for (std::size_t s = 0; s < n_states; ++s) {
    std::string tag;
    if (!(in >> tag) || tag != "q") {
      throw std::runtime_error("load_qtable: expected q row for state " +
                               std::to_string(s));
    }
    for (std::size_t a = 0; a < n_actions; ++a) {
      double q = 0.0;
      if (!(in >> q)) {
        throw std::runtime_error("load_qtable: truncated q row");
      }
      // A NaN/inf action value would poison every TD bootstrap that reads
      // it (the same invariant QTable::all_finite guards on the hot path),
      // so a corrupt policy file must be rejected at the door.
      if (!std::isfinite(q)) {
        throw std::runtime_error("load_qtable: non-finite q value in state " +
                                 std::to_string(s));
      }
      table.set_q(s, a, q);
    }
    if (!(in >> tag) || tag != "v") {
      throw std::runtime_error("load_qtable: expected v row for state " +
                               std::to_string(s));
    }
    for (std::size_t a = 0; a < n_actions; ++a) {
      long long visits = 0;
      if (!(in >> visits) || visits < 0 ||
          visits > std::numeric_limits<std::uint32_t>::max()) {
        throw std::runtime_error("load_qtable: bad visit count");
      }
      table.set_visits(s, a, static_cast<std::uint32_t>(visits));
    }
  }
  return table;
}

void save_qtable_file(const QTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_qtable_file: cannot open " + path);
  save_qtable(table, out);
  // Flush before the destructor would swallow the error: a full disk must
  // surface here, not as a silently truncated policy file.
  out.flush();
  if (!out) {
    throw std::runtime_error("save_qtable_file: write failed for " + path);
  }
}

QTable load_qtable_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_qtable_file: cannot open " + path);
  return load_qtable(in);
}

}  // namespace odrl::rl
