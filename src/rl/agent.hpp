// Tabular temporal-difference agent: Q-learning (off-policy) or SARSA
// (on-policy), selectable per AgentConfig. This is the generic RL machinery;
// the OD-RL controller in src/core instantiates one agent per core with the
// paper's state/action/reward construction.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "rl/qtable.hpp"
#include "rl/schedule.hpp"
#include "util/rng.hpp"

namespace odrl::snapshot {
class Writer;
class Reader;
}  // namespace odrl::snapshot

namespace odrl::rl {

struct TdBatchSpans;
void td_update_batch(const TdBatchSpans& batch, std::span<double> scratch);

enum class TdRule { kQLearning, kSarsa };

struct TdConfig {
  double gamma = 0.7;       ///< discount; modest, control is near-myopic
  double q_init = 0.5;      ///< optimistic init > 0 encourages exploration
  TdRule rule = TdRule::kQLearning;
  EpsilonSchedule epsilon = EpsilonSchedule(0.4, 0.03, 0.997);
  /// Constant rate by default: the control environment is non-stationary
  /// (phases move, budgets move), so the agent must keep adapting forever;
  /// visit-decayed rates are available for stationary uses.
  LearningRateSchedule alpha = LearningRateSchedule::constant(0.2);

  void validate() const;
};

class TdAgent {
 public:
  TdAgent(std::size_t n_states, std::size_t n_actions, TdConfig config);

  /// epsilon-greedy action for `state`; advances the exploration schedule.
  std::size_t act(std::size_t state, util::Rng& rng);

  /// Greedy action without exploration or schedule side effects.
  std::size_t exploit(std::size_t state) const;

  /// TD update for the transition (s, a) --r--> s'. For SARSA, `next_action`
  /// must carry the action actually taken in s' (pass std::nullopt for
  /// Q-learning; it is ignored there).
  void learn(std::size_t state, std::size_t action, double reward,
             std::size_t next_state,
             std::optional<std::size_t> next_action = std::nullopt);

  const QTable& table() const { return table_; }
  /// Replaces the learned table (warm start from a serialized policy).
  /// Dimensions must match; throws std::invalid_argument otherwise.
  void restore_table(QTable table);
  const TdConfig& config() const { return config_; }
  double epsilon() const { return epsilon_.current(); }
  std::size_t updates() const { return updates_; }

  void reset();

  /// Serializes the full learning state (Q-values, visit counts, the
  /// exploration schedule's position, update counter) into the caller's
  /// open snapshot section. load_state validates dimensions against this
  /// agent's configuration and rejects non-finite Q-values with the
  /// snapshot failure taxonomy (snapshot::SnapshotError).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  /// The batched TD kernel (rl/td_batch.hpp) phases this agent's learn()
  /// across many agents; it needs the same member access learn() has.
  friend void td_update_batch(const TdBatchSpans& batch,
                              std::span<double> scratch);

  TdConfig config_;
  QTable table_;
  EpsilonSchedule epsilon_;
  std::size_t updates_ = 0;
};

}  // namespace odrl::rl
