#include "rl/agent.hpp"

#include <stdexcept>
#include <utility>

#include "rl/qtable_io.hpp"
#include "snapshot/snapshot.hpp"

namespace odrl::rl {

void TdConfig::validate() const {
  if (gamma < 0.0 || gamma >= 1.0) {
    throw std::invalid_argument("TdConfig: gamma must be in [0, 1)");
  }
}

TdAgent::TdAgent(std::size_t n_states, std::size_t n_actions, TdConfig config)
    : config_(config),
      table_(n_states, n_actions, config.q_init),
      epsilon_(config.epsilon) {
  config_.validate();
}

std::size_t TdAgent::act(std::size_t state, util::Rng& rng) {
  const double eps = epsilon_.next();
  if (rng.chance(eps)) {
    return rng.below(table_.n_actions());
  }
  return table_.greedy_action(state);
}

std::size_t TdAgent::exploit(std::size_t state) const {
  return table_.greedy_action(state);
}

void TdAgent::learn(std::size_t state, std::size_t action, double reward,
                    std::size_t next_state,
                    std::optional<std::size_t> next_action) {
  double bootstrap = 0.0;
  switch (config_.rule) {
    case TdRule::kQLearning:
      bootstrap = table_.max_q(next_state);
      break;
    case TdRule::kSarsa: {
      if (!next_action.has_value()) {
        throw std::invalid_argument("TdAgent::learn: SARSA needs next_action");
      }
      bootstrap = table_.q(next_state, *next_action);
      break;
    }
  }
  table_.record_visit(state, action);
  const double alpha =
      config_.alpha.rate(table_.visits(state, action));
  const double target = reward + config_.gamma * bootstrap;
  const double delta = alpha * (target - table_.q(state, action));
  table_.bump_q(state, action, delta);
  ++updates_;
}

void TdAgent::restore_table(QTable table) {
  if (table.n_states() != table_.n_states() ||
      table.n_actions() != table_.n_actions()) {
    throw std::invalid_argument("TdAgent::restore_table: dimension mismatch");
  }
  table_ = std::move(table);
}

void TdAgent::save_state(snapshot::Writer& w) const {
  save_qtable_payload(w, table_);
  w.u64(epsilon_.step_count());
  w.u64(updates_);
}

void TdAgent::load_state(snapshot::Reader& r) {
  QTable table = load_qtable_payload(r);
  if (table.n_states() != table_.n_states() ||
      table.n_actions() != table_.n_actions()) {
    throw snapshot::SnapshotError(
        snapshot::SnapshotStatus::kDimensionMismatch,
        "agent table is " + std::to_string(table_.n_states()) + "x" +
            std::to_string(table_.n_actions()) + ", snapshot holds " +
            std::to_string(table.n_states()) + "x" +
            std::to_string(table.n_actions()));
  }
  table_ = std::move(table);
  epsilon_.set_step_count(r.u64());
  updates_ = r.u64();
}

void TdAgent::reset() {
  table_.fill(config_.q_init);
  epsilon_.reset();
  updates_ = 0;
  // Visit counts are part of the learning-rate state; re-create the table to
  // clear them.
  table_ = QTable(table_.n_states(), table_.n_actions(), config_.q_init);
}

}  // namespace odrl::rl
