#include "rl/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odrl::rl {

EpsilonSchedule::EpsilonSchedule(double eps0, double eps_min, double decay)
    : eps0_(eps0), eps_min_(eps_min), decay_(decay) {
  if (eps0 < 0.0 || eps0 > 1.0) {
    throw std::invalid_argument("EpsilonSchedule: eps0 must be in [0, 1]");
  }
  if (eps_min < 0.0 || eps_min > eps0) {
    throw std::invalid_argument(
        "EpsilonSchedule: eps_min must be in [0, eps0]");
  }
  if (decay <= 0.0 || decay > 1.0) {
    throw std::invalid_argument("EpsilonSchedule: decay must be in (0, 1]");
  }
}

EpsilonSchedule EpsilonSchedule::constant(double eps) {
  return EpsilonSchedule(eps, eps, 1.0);
}

double EpsilonSchedule::at(std::size_t t) const {
  return std::max(eps_min_, eps0_ * std::pow(decay_, static_cast<double>(t)));
}

double EpsilonSchedule::next() {
  const double v = at(t_);
  ++t_;
  return v;
}

LearningRateSchedule::LearningRateSchedule(double alpha0, double k,
                                           bool decaying)
    : alpha0_(alpha0), k_(k), decaying_(decaying) {
  if (alpha0 <= 0.0 || alpha0 > 1.0) {
    throw std::invalid_argument(
        "LearningRateSchedule: alpha0 must be in (0, 1]");
  }
  if (decaying && k <= 0.0) {
    throw std::invalid_argument("LearningRateSchedule: k must be > 0");
  }
}

LearningRateSchedule LearningRateSchedule::constant(double alpha) {
  return LearningRateSchedule(alpha, 1.0, false);
}

LearningRateSchedule LearningRateSchedule::visit_decay(double alpha0,
                                                       double k) {
  return LearningRateSchedule(alpha0, k, true);
}

double LearningRateSchedule::rate(std::size_t visits) const {
  if (!decaying_) return alpha0_;
  return alpha0_ / (1.0 + static_cast<double>(visits) / k_);
}

}  // namespace odrl::rl
