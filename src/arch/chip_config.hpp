// Chip-level configuration: core count, operating-point table, floorplan,
// technology constants, and the power budget (TDP) the controllers must
// respect. One immutable ChipConfig parameterizes a whole simulation.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "arch/mesh.hpp"
#include "arch/vf_table.hpp"

namespace odrl::arch {

/// Per-core technology/microarchitecture constants (45nm-class defaults,
/// McPAT-calibrated order of magnitude). See src/power and src/perf for how
/// each constant enters the models.
struct CoreParams {
  /// Effective switched capacitance x activity normalization, in nF:
  /// P_dyn [W] = c_eff_nf * activity * V^2 * f_ghz.
  double c_eff_nf = 1.9;

  /// Leakage calibration: P_leak = leak_scale * V * exp(leak_v_coeff*(V-1))
  ///                               * exp(leak_t_coeff*(T-85C)) watts.
  double leak_scale_w = 0.9;
  double leak_v_coeff = 2.0;
  double leak_t_coeff = 0.02;

  /// Uncore/always-on power per core share (clock tree, router idle), watts.
  double uncore_w = 0.25;

  /// Round-trip DRAM access latency seen by a stalled core, nanoseconds.
  /// Fixed in wall-clock time, so the stall grows in *cycles* with frequency
  /// -- the mechanism that makes memory-bound code DVFS-insensitive.
  double mem_latency_ns = 80.0;

  /// Fraction of memory stall cycles hidden by MLP/out-of-order overlap,
  /// in [0, 1).
  double mem_overlap = 0.3;

  /// Issue width: peak instructions per cycle when nothing stalls.
  double issue_width = 2.0;

  void validate() const;

  /// Dynamic power at (V, f) with the given switching-activity factor in
  /// [0, 1]. Defined here, next to the constants, so every layer (power
  /// model, budget math, controllers' analytical baselines) uses the same
  /// formula.
  double dynamic_power_w(double voltage_v, double freq_ghz,
                         double activity) const;

  /// Leakage power at (V, T).
  double leakage_power_w(double voltage_v, double temp_c) const;

  /// Total core power including the uncore share.
  double total_power_w(double voltage_v, double freq_ghz, double activity,
                       double temp_c) const;
};

/// Thermal RC constants per tile (HotSpot-class lumped model).
struct ThermalParams {
  double ambient_c = 45.0;          ///< package/heat-sink proxy temperature
  double r_vertical_c_per_w = 1.8;  ///< tile -> heatsink thermal resistance
  double r_lateral_c_per_w = 4.0;   ///< tile <-> tile lateral resistance
  double c_tile_j_per_c = 0.03;     ///< tile heat capacity
  double max_junction_c = 105.0;    ///< thermal emergency threshold

  void validate() const;
};

/// Complete many-core chip description.
class ChipConfig {
 public:
  ChipConfig(std::size_t n_cores, VfTable vf_table, double tdp_w,
             CoreParams core = {}, ThermalParams thermal = {});

  /// Canonical experiment chip: n cores, default 8-level table, TDP set to
  /// `budget_fraction` of the chip's maximum sustained power (all cores at
  /// top level, fully active, at 85C). The paper's power-limited regime
  /// corresponds to fractions well below 1.
  static ChipConfig make(std::size_t n_cores, double budget_fraction = 0.6);

  std::size_t n_cores() const noexcept { return n_cores_; }
  const VfTable& vf_table() const { return vf_table_; }
  const Mesh& mesh() const { return mesh_; }
  double tdp_w() const noexcept { return tdp_w_; }
  const CoreParams& core() const { return core_; }
  const ThermalParams& thermal() const { return thermal_; }

  /// Maximum sustained chip power: every core at the top operating point,
  /// activity 1.0, junction at 85C. Useful to express budgets as fractions.
  double max_chip_power_w() const;

  /// Returns a copy with a different power budget (same silicon).
  ChipConfig with_tdp(double tdp_w) const;

 private:
  std::size_t n_cores_;
  VfTable vf_table_;
  Mesh mesh_;
  double tdp_w_;
  CoreParams core_;
  ThermalParams thermal_;
};

}  // namespace odrl::arch
