// 2-D mesh floorplan geometry. Cores are laid out row-major on a
// width x height grid; the thermal model uses 4-neighbour adjacency for
// lateral heat conduction, matching the tiled many-core floorplans the paper
// targets.
#pragma once

#include <cstddef>
#include <vector>

namespace odrl::arch {

struct MeshCoord {
  std::size_t x = 0;
  std::size_t y = 0;
  friend bool operator==(const MeshCoord&, const MeshCoord&) = default;
};

class Mesh {
 public:
  /// width, height >= 1.
  Mesh(std::size_t width, std::size_t height);

  /// Squarest mesh containing at least n cores (width >= height); callers
  /// with non-rectangular counts simply leave trailing tiles unused.
  static Mesh for_cores(std::size_t n);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t size() const { return width_ * height_; }

  MeshCoord coord_of(std::size_t index) const;
  std::size_t index_of(MeshCoord c) const;
  bool contains(MeshCoord c) const;

  /// Indices of the 4-neighbours (N/S/E/W) that exist for this tile.
  std::vector<std::size_t> neighbors(std::size_t index) const;

  /// Manhattan hop distance between tiles (NoC latency proxy).
  std::size_t hop_distance(std::size_t a, std::size_t b) const;

 private:
  std::size_t width_;
  std::size_t height_;
};

}  // namespace odrl::arch
