#include "arch/vfi.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::arch {

VfiPartition::VfiPartition(std::vector<std::vector<std::size_t>> islands)
    : islands_(std::move(islands)) {
  if (islands_.empty()) {
    throw std::invalid_argument("VfiPartition: no islands");
  }
  std::size_t n = 0;
  for (const auto& island : islands_) {
    if (island.empty()) {
      throw std::invalid_argument("VfiPartition: empty island");
    }
    n += island.size();
  }
  island_of_.assign(n, n);  // sentinel: not assigned yet
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    for (std::size_t core : islands_[i]) {
      if (core >= n) {
        throw std::invalid_argument("VfiPartition: core index out of range");
      }
      if (island_of_[core] != n) {
        throw std::invalid_argument("VfiPartition: core in two islands");
      }
      island_of_[core] = i;
    }
  }
}

VfiPartition VfiPartition::per_core(std::size_t n_cores) {
  if (n_cores == 0) throw std::invalid_argument("VfiPartition: 0 cores");
  std::vector<std::vector<std::size_t>> islands(n_cores);
  for (std::size_t i = 0; i < n_cores; ++i) islands[i] = {i};
  return VfiPartition(std::move(islands));
}

VfiPartition VfiPartition::blocks(std::size_t n_cores,
                                  std::size_t island_size) {
  if (n_cores == 0) throw std::invalid_argument("VfiPartition: 0 cores");
  if (island_size == 0) {
    throw std::invalid_argument("VfiPartition: island_size == 0");
  }
  std::vector<std::vector<std::size_t>> islands;
  for (std::size_t start = 0; start < n_cores; start += island_size) {
    std::vector<std::size_t> island;
    for (std::size_t c = start; c < std::min(start + island_size, n_cores);
         ++c) {
      island.push_back(c);
    }
    islands.push_back(std::move(island));
  }
  return VfiPartition(std::move(islands));
}

const std::vector<std::size_t>& VfiPartition::island(std::size_t i) const {
  if (i >= islands_.size()) {
    throw std::out_of_range("VfiPartition::island: out of range");
  }
  return islands_[i];
}

std::size_t VfiPartition::island_of(std::size_t core) const {
  if (core >= island_of_.size()) {
    throw std::out_of_range("VfiPartition::island_of: out of range");
  }
  return island_of_[core];
}

std::size_t VfiPartition::max_island_size() const {
  std::size_t best = 0;
  for (const auto& island : islands_) best = std::max(best, island.size());
  return best;
}

}  // namespace odrl::arch
