// Voltage/Frequency operating points.
//
// The action space of every DVFS controller in this library is an index into
// a VfTable: a strictly increasing sequence of (voltage, frequency) pairs,
// mirroring the discrete P-state tables exposed by real many-core parts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace odrl::arch {

/// One DVFS operating point. Voltage in volts, frequency in GHz.
struct VfPoint {
  double voltage_v = 0.0;
  double freq_ghz = 0.0;

  friend bool operator==(const VfPoint&, const VfPoint&) = default;
};

/// An ordered table of operating points, index 0 = slowest/lowest-voltage.
/// Invariant (checked at construction): at least 2 points, frequencies and
/// voltages strictly increasing, all values positive.
class VfTable {
 public:
  explicit VfTable(std::vector<VfPoint> points);

  /// Conventional table used across the paper-style experiments: `levels`
  /// points with frequency spanning [f_min, f_max] GHz and voltage tracking
  /// frequency linearly from v_min to v_max (the near-linear V-f relation of
  /// conventional-range DVFS; see Juan et al., CODES+ISSS'13 for why the
  /// conventional range is well-approximated linearly).
  static VfTable linear(std::size_t levels, double f_min_ghz, double f_max_ghz,
                        double v_min_v, double v_max_v);

  /// Default 8-level table: 1.0-3.0 GHz, 0.70-1.10 V (45nm-class part).
  static VfTable default_table();

  std::size_t size() const noexcept { return points_.size(); }
  const VfPoint& operator[](std::size_t level) const;
  const VfPoint& at(std::size_t level) const;
  std::span<const VfPoint> points() const { return points_; }

  std::size_t min_level() const { return 0; }
  std::size_t max_level() const { return points_.size() - 1; }

  double min_freq_ghz() const { return points_.front().freq_ghz; }
  double max_freq_ghz() const { return points_.back().freq_ghz; }

  /// Clamps a signed level to the valid range.
  std::size_t clamp_level(long level) const;

  /// Highest level whose frequency is <= the given frequency; returns 0 when
  /// even level 0 exceeds it (the table cannot go slower than its floor).
  std::size_t level_for_freq(double freq_ghz) const;

  friend bool operator==(const VfTable&, const VfTable&) = default;

 private:
  std::vector<VfPoint> points_;
};

}  // namespace odrl::arch
