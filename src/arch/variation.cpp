#include "arch/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace odrl::arch {

void VariationConfig::validate() const {
  if (leakage_sigma < 0.0 || leakage_sigma > 1.0) {
    throw std::invalid_argument("VariationConfig: leakage_sigma in [0, 1]");
  }
  if (c_eff_sigma < 0.0 || c_eff_sigma > 0.5) {
    throw std::invalid_argument("VariationConfig: c_eff_sigma in [0, 0.5]");
  }
  if (correlation_length <= 0.0) {
    throw std::invalid_argument("VariationConfig: correlation_length <= 0");
  }
}

VariationMap::VariationMap(std::vector<double> leak, std::vector<double> ceff)
    : leakage_mult_(std::move(leak)), c_eff_mult_(std::move(ceff)) {}

VariationMap VariationMap::none(std::size_t n_cores) {
  if (n_cores == 0) throw std::invalid_argument("VariationMap: 0 cores");
  return VariationMap(std::vector<double>(n_cores, 1.0),
                      std::vector<double>(n_cores, 1.0));
}

namespace {

/// Spatially-correlated standard-normal field over the first n tiles of a
/// mesh: white noise convolved with an exp(-d/rho) kernel over Manhattan
/// distance, re-normalized to unit variance. O(n^2) -- construction only.
std::vector<double> correlated_field(const Mesh& mesh, std::size_t n,
                                     double rho, util::Rng& rng) {
  std::vector<double> white(n);
  for (double& w : white) w = rng.gaussian();

  std::vector<double> field(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double weight_sq_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = static_cast<double>(mesh.hop_distance(i, j));
      const double w = std::exp(-d / rho);
      field[i] += w * white[j];
      weight_sq_sum += w * w;
    }
    field[i] /= std::sqrt(weight_sq_sum);  // restore unit variance
  }
  return field;
}

}  // namespace

VariationMap VariationMap::sample(const Mesh& mesh, std::size_t n_cores,
                                  const VariationConfig& config) {
  config.validate();
  if (n_cores == 0 || n_cores > mesh.size()) {
    throw std::invalid_argument("VariationMap::sample: bad core count");
  }
  util::Rng rng(config.seed);
  const auto z_leak =
      correlated_field(mesh, n_cores, config.correlation_length, rng);
  const auto z_ceff =
      correlated_field(mesh, n_cores, config.correlation_length, rng);

  std::vector<double> leak(n_cores);
  std::vector<double> ceff(n_cores);
  const double s = config.leakage_sigma;
  for (std::size_t i = 0; i < n_cores; ++i) {
    // Log-normal with E[mult] = 1: exp(s z - s^2/2).
    leak[i] = std::exp(s * z_leak[i] - 0.5 * s * s);
    // Normal, clamped away from zero.
    ceff[i] = std::max(0.5, 1.0 + config.c_eff_sigma * z_ceff[i]);
  }
  return VariationMap(std::move(leak), std::move(ceff));
}

double VariationMap::leakage_mult(std::size_t core) const {
  if (core >= leakage_mult_.size()) {
    throw std::out_of_range("VariationMap::leakage_mult");
  }
  return leakage_mult_[core];
}

double VariationMap::c_eff_mult(std::size_t core) const {
  if (core >= c_eff_mult_.size()) {
    throw std::out_of_range("VariationMap::c_eff_mult");
  }
  return c_eff_mult_[core];
}

CoreParams VariationMap::apply(const CoreParams& nominal,
                               std::size_t core) const {
  CoreParams out = nominal;
  out.leak_scale_w *= leakage_mult(core);
  out.c_eff_nf *= c_eff_mult(core);
  return out;
}

double VariationMap::mean_leakage_mult() const {
  double sum = 0.0;
  for (double m : leakage_mult_) sum += m;
  return sum / static_cast<double>(leakage_mult_.size());
}

double VariationMap::max_leakage_mult() const {
  return *std::max_element(leakage_mult_.begin(), leakage_mult_.end());
}

}  // namespace odrl::arch
