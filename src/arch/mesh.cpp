#include "arch/mesh.hpp"

#include <cmath>
#include <stdexcept>

namespace odrl::arch {

Mesh::Mesh(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("Mesh: dimensions must be >= 1");
  }
}

Mesh Mesh::for_cores(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Mesh::for_cores: n must be >= 1");
  auto h = static_cast<std::size_t>(std::floor(std::sqrt(static_cast<double>(n))));
  if (h == 0) h = 1;
  std::size_t w = (n + h - 1) / h;
  return Mesh(w, h);
}

MeshCoord Mesh::coord_of(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("Mesh::coord_of: index out of range");
  }
  return MeshCoord{index % width_, index / width_};
}

std::size_t Mesh::index_of(MeshCoord c) const {
  if (!contains(c)) throw std::out_of_range("Mesh::index_of: coord outside");
  return c.y * width_ + c.x;
}

bool Mesh::contains(MeshCoord c) const {
  return c.x < width_ && c.y < height_;
}

std::vector<std::size_t> Mesh::neighbors(std::size_t index) const {
  const MeshCoord c = coord_of(index);
  std::vector<std::size_t> out;
  out.reserve(4);
  if (c.x > 0) out.push_back(index_of({c.x - 1, c.y}));
  if (c.x + 1 < width_) out.push_back(index_of({c.x + 1, c.y}));
  if (c.y > 0) out.push_back(index_of({c.x, c.y - 1}));
  if (c.y + 1 < height_) out.push_back(index_of({c.x, c.y + 1}));
  return out;
}

std::size_t Mesh::hop_distance(std::size_t a, std::size_t b) const {
  const MeshCoord ca = coord_of(a);
  const MeshCoord cb = coord_of(b);
  const auto dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
  const auto dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
  return dx + dy;
}

}  // namespace odrl::arch
