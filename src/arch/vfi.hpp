// Voltage/Frequency Island (VFI) partitions.
//
// Per-core DVFS (one voltage regulator per core) is the paper's default,
// but real parts often group cores into islands that share one V/F setting
// to save regulator/clock-tree cost. A VfiPartition names which cores share
// a domain; the VFI controller adapter (src/core/vfi_adapter.hpp) runs
// OD-RL at island granularity on top of it. Experiment E9 sweeps island
// size to reproduce the classic granularity trade-off: coarser islands are
// cheaper but lose the throughput that per-core allocation buys.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/mesh.hpp"

namespace odrl::arch {

class VfiPartition {
 public:
  /// Explicit islands: every core 0..n-1 must appear exactly once.
  explicit VfiPartition(std::vector<std::vector<std::size_t>> islands);

  /// One island per core (per-core DVFS, the identity partition).
  static VfiPartition per_core(std::size_t n_cores);

  /// Contiguous blocks of `island_size` cores in mesh index order (the
  /// usual tiled layout: spatially adjacent cores share a regulator).
  /// The last island takes the remainder if n_cores is not divisible.
  static VfiPartition blocks(std::size_t n_cores, std::size_t island_size);

  std::size_t n_cores() const { return island_of_.size(); }
  std::size_t n_islands() const { return islands_.size(); }
  const std::vector<std::size_t>& island(std::size_t i) const;
  std::size_t island_of(std::size_t core) const;
  /// Largest island size (for sizing worst-case budget shares).
  std::size_t max_island_size() const;

 private:
  std::vector<std::vector<std::size_t>> islands_;
  std::vector<std::size_t> island_of_;
};

}  // namespace odrl::arch
