#include "arch/chip_config.hpp"

#include <cmath>

namespace odrl::arch {

void CoreParams::validate() const {
  if (c_eff_nf <= 0.0) throw std::invalid_argument("CoreParams: c_eff_nf <= 0");
  if (leak_scale_w < 0.0) {
    throw std::invalid_argument("CoreParams: leak_scale_w < 0");
  }
  if (uncore_w < 0.0) throw std::invalid_argument("CoreParams: uncore_w < 0");
  if (mem_latency_ns < 0.0) {
    throw std::invalid_argument("CoreParams: mem_latency_ns < 0");
  }
  if (mem_overlap < 0.0 || mem_overlap >= 1.0) {
    throw std::invalid_argument("CoreParams: mem_overlap must be in [0, 1)");
  }
  if (issue_width <= 0.0) {
    throw std::invalid_argument("CoreParams: issue_width <= 0");
  }
}

double CoreParams::dynamic_power_w(double voltage_v, double freq_ghz,
                                   double activity) const {
  return c_eff_nf * activity * voltage_v * voltage_v * freq_ghz;
}

double CoreParams::leakage_power_w(double voltage_v, double temp_c) const {
  return leak_scale_w * voltage_v * std::exp(leak_v_coeff * (voltage_v - 1.0)) *
         std::exp(leak_t_coeff * (temp_c - 85.0));
}

double CoreParams::total_power_w(double voltage_v, double freq_ghz,
                                 double activity, double temp_c) const {
  return dynamic_power_w(voltage_v, freq_ghz, activity) +
         leakage_power_w(voltage_v, temp_c) + uncore_w;
}

void ThermalParams::validate() const {
  if (r_vertical_c_per_w <= 0.0 || r_lateral_c_per_w <= 0.0 ||
      c_tile_j_per_c <= 0.0) {
    throw std::invalid_argument("ThermalParams: RC constants must be > 0");
  }
  if (max_junction_c <= ambient_c) {
    throw std::invalid_argument(
        "ThermalParams: max_junction_c must exceed ambient_c");
  }
}

ChipConfig::ChipConfig(std::size_t n_cores, VfTable vf_table, double tdp_w,
                       CoreParams core, ThermalParams thermal)
    : n_cores_(n_cores),
      vf_table_(std::move(vf_table)),
      mesh_(Mesh::for_cores(n_cores == 0 ? 1 : n_cores)),
      tdp_w_(tdp_w),
      core_(core),
      thermal_(thermal) {
  if (n_cores == 0) throw std::invalid_argument("ChipConfig: n_cores == 0");
  if (tdp_w <= 0.0) throw std::invalid_argument("ChipConfig: tdp_w <= 0");
  core_.validate();
  thermal_.validate();
}

ChipConfig ChipConfig::make(std::size_t n_cores, double budget_fraction) {
  if (budget_fraction <= 0.0 || budget_fraction > 1.5) {
    throw std::invalid_argument(
        "ChipConfig::make: budget_fraction must be in (0, 1.5]");
  }
  // Construct once with a placeholder budget to reuse max_chip_power_w().
  ChipConfig tmp(n_cores, VfTable::default_table(), /*tdp_w=*/1.0);
  return tmp.with_tdp(budget_fraction * tmp.max_chip_power_w());
}

double ChipConfig::max_chip_power_w() const {
  const VfPoint& top = vf_table_[vf_table_.max_level()];
  const double per_core =
      core_.total_power_w(top.voltage_v, top.freq_ghz, /*activity=*/1.0,
                          /*temp_c=*/85.0);
  return per_core * static_cast<double>(n_cores_);
}

ChipConfig ChipConfig::with_tdp(double tdp_w) const {
  ChipConfig copy = *this;
  if (tdp_w <= 0.0) throw std::invalid_argument("with_tdp: tdp_w <= 0");
  copy.tdp_w_ = tdp_w;
  return copy;
}

}  // namespace odrl::arch
