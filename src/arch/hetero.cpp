#include "arch/hetero.hpp"

#include <stdexcept>

namespace odrl::arch {

CoreType big_core() {
  CoreParams p;
  p.c_eff_nf = 2.6;
  p.leak_scale_w = 1.2;
  p.uncore_w = 0.35;
  p.issue_width = 3.0;
  p.mem_overlap = 0.45;  // deep OoO window hides more of the miss latency
  return {"big", p};
}

CoreType little_core() {
  CoreParams p;
  p.c_eff_nf = 0.7;
  p.leak_scale_w = 0.35;
  p.uncore_w = 0.15;
  p.issue_width = 1.0;
  p.mem_overlap = 0.1;  // in-order: misses mostly serialize
  return {"little", p};
}

HeteroLayout striped_layout(const std::vector<CoreType>& types,
                            std::size_t n_cores) {
  if (types.empty()) {
    throw std::invalid_argument("striped_layout: no core types");
  }
  if (n_cores == 0) throw std::invalid_argument("striped_layout: 0 cores");
  HeteroLayout layout;
  layout.params.reserve(n_cores);
  layout.labels.reserve(n_cores);
  for (std::size_t i = 0; i < n_cores; ++i) {
    const CoreType& t = types[i % types.size()];
    t.params.validate();
    layout.params.push_back(t.params);
    layout.labels.push_back(t.name);
  }
  return layout;
}

HeteroLayout clustered_layout(std::size_t n_big, std::size_t n_cores) {
  if (n_cores == 0) throw std::invalid_argument("clustered_layout: 0 cores");
  if (n_big > n_cores) {
    throw std::invalid_argument("clustered_layout: n_big > n_cores");
  }
  const CoreType big = big_core();
  const CoreType little = little_core();
  HeteroLayout layout;
  layout.params.reserve(n_cores);
  layout.labels.reserve(n_cores);
  for (std::size_t i = 0; i < n_cores; ++i) {
    const CoreType& t = i < n_big ? big : little;
    layout.params.push_back(t.params);
    layout.labels.push_back(t.name);
  }
  return layout;
}

double hetero_max_chip_power_w(const ChipConfig& chip,
                               const std::vector<CoreParams>& params) {
  if (params.size() != chip.n_cores()) {
    throw std::invalid_argument("hetero_max_chip_power_w: size mismatch");
  }
  const VfPoint& top = chip.vf_table()[chip.vf_table().max_level()];
  double total = 0.0;
  for (const CoreParams& p : params) {
    total += p.total_power_w(top.voltage_v, top.freq_ghz, /*activity=*/1.0,
                             /*temp_c=*/85.0);
  }
  return total;
}

}  // namespace odrl::arch
