#include "arch/vf_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::arch {

VfTable::VfTable(std::vector<VfPoint> points) : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("VfTable: need at least 2 operating points");
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].voltage_v <= 0.0 || points_[i].freq_ghz <= 0.0) {
      throw std::invalid_argument("VfTable: voltages/frequencies must be > 0");
    }
    if (i > 0) {
      if (points_[i].freq_ghz <= points_[i - 1].freq_ghz ||
          points_[i].voltage_v <= points_[i - 1].voltage_v) {
        throw std::invalid_argument(
            "VfTable: points must be strictly increasing in V and f");
      }
    }
  }
}

VfTable VfTable::linear(std::size_t levels, double f_min_ghz, double f_max_ghz,
                        double v_min_v, double v_max_v) {
  if (levels < 2) throw std::invalid_argument("VfTable::linear: levels < 2");
  if (!(f_min_ghz < f_max_ghz) || !(v_min_v < v_max_v)) {
    throw std::invalid_argument("VfTable::linear: ranges must be increasing");
  }
  std::vector<VfPoint> pts;
  pts.reserve(levels);
  for (std::size_t i = 0; i < levels; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(levels - 1);
    pts.push_back(VfPoint{v_min_v + t * (v_max_v - v_min_v),
                          f_min_ghz + t * (f_max_ghz - f_min_ghz)});
  }
  return VfTable(std::move(pts));
}

VfTable VfTable::default_table() {
  return linear(/*levels=*/8, /*f_min_ghz=*/1.0, /*f_max_ghz=*/3.0,
                /*v_min_v=*/0.70, /*v_max_v=*/1.10);
}

const VfPoint& VfTable::operator[](std::size_t level) const {
  return points_[level];
}

const VfPoint& VfTable::at(std::size_t level) const {
  if (level >= points_.size()) {
    throw std::out_of_range("VfTable::at: level out of range");
  }
  return points_[level];
}

std::size_t VfTable::clamp_level(long level) const {
  if (level < 0) return 0;
  return std::min(static_cast<std::size_t>(level), max_level());
}

std::size_t VfTable::level_for_freq(double freq_ghz) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].freq_ghz <= freq_ghz) best = i;
  }
  return best;
}

}  // namespace odrl::arch
