// Heterogeneous core types (big.LITTLE-class chips).
//
// The paper evaluates a homogeneous chip, but nothing in OD-RL assumes
// homogeneity: agents and the budget reallocator consume only per-core
// sensors, so a chip mixing wide out-of-order cores with narrow in-order
// ones is handled unmodified -- each agent simply learns its own core's
// power/performance landscape. (Model-based baselines, by contrast, carry
// one nominal parameter set.) Experiment E10 demonstrates this.
//
// This header provides canonical big/little parameter sets and helpers to
// lay core types out across a chip.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"

namespace odrl::arch {

/// A named core type: parameters plus a label for reports.
struct CoreType {
  std::string name;
  CoreParams params;
};

/// Wide out-of-order core: high IPC ceiling, expensive switching.
CoreType big_core();

/// Narrow in-order core: half the issue width, ~1/4 the dynamic power,
/// less latency hiding.
CoreType little_core();

/// Core i gets types[i % types.size()] (striped layout). Returns per-core
/// parameter vectors plus parallel labels.
struct HeteroLayout {
  std::vector<CoreParams> params;
  std::vector<std::string> labels;
};
HeteroLayout striped_layout(const std::vector<CoreType>& types,
                            std::size_t n_cores);

/// First `n_big` cores are big, the rest little (clustered layout).
HeteroLayout clustered_layout(std::size_t n_big, std::size_t n_cores);

/// Maximum sustained chip power for per-core parameters (all cores at the
/// top operating point, activity 1, junction 85C) -- the heterogeneous
/// analogue of ChipConfig::max_chip_power_w, for expressing TDP as a
/// fraction of peak.
double hetero_max_chip_power_w(const ChipConfig& chip,
                               const std::vector<CoreParams>& params);

}  // namespace odrl::arch
