// Manufacturing process variation.
//
// Scaled technologies exhibit core-to-core (within-die) parameter
// variation: leakage current varies log-normally and effective switched
// capacitance varies normally, both with spatial correlation across the
// die (neighbouring tiles come from the same region of the wafer).
// A VariationMap samples one chip instance: per-core multipliers applied
// to the nominal CoreParams.
//
// Why this matters for the paper's comparison: model-based controllers
// predict power from *nominal* datasheet constants, so on a varied chip
// their predictions are biased per core -- leaky cores draw more than
// predicted and budget-filling optimizers overshoot. OD-RL never consults
// a model (it observes measured watts), so variation costs it nothing.
// Experiment E8 sweeps variation strength to expose exactly this gap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/chip_config.hpp"
#include "arch/mesh.hpp"

namespace odrl::arch {

struct VariationConfig {
  /// Relative sigma of the log-normal per-core leakage multiplier
  /// (E[mult] = 1). Leakage is the variation-dominated component.
  double leakage_sigma = 0.15;
  /// Relative sigma of the (normal, clamped) dynamic-capacitance
  /// multiplier.
  double c_eff_sigma = 0.05;
  /// Spatial correlation length in tiles: multipliers of tiles closer than
  /// this are strongly correlated (systematic within-die component).
  double correlation_length = 2.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// One sampled chip instance: per-core multipliers, immutable.
class VariationMap {
 public:
  /// Uniform chip (all multipliers 1): the no-variation identity.
  static VariationMap none(std::size_t n_cores);

  /// Samples a spatially-correlated instance over the given floorplan.
  /// n_cores must not exceed mesh.size().
  static VariationMap sample(const Mesh& mesh, std::size_t n_cores,
                             const VariationConfig& config);

  std::size_t n_cores() const { return leakage_mult_.size(); }
  double leakage_mult(std::size_t core) const;
  double c_eff_mult(std::size_t core) const;

  /// Nominal params adjusted for one core of this instance.
  CoreParams apply(const CoreParams& nominal, std::size_t core) const;

  /// Summary: mean and max leakage multiplier (for experiment tables).
  double mean_leakage_mult() const;
  double max_leakage_mult() const;

 private:
  VariationMap(std::vector<double> leak, std::vector<double> ceff);

  std::vector<double> leakage_mult_;
  std::vector<double> c_eff_mult_;
};

}  // namespace odrl::arch
