#include "workload/phase.hpp"

#include <stdexcept>

namespace odrl::workload {

void Phase::validate() const {
  if (base_cpi <= 0.0) throw std::invalid_argument("Phase: base_cpi <= 0");
  if (mpki < 0.0) throw std::invalid_argument("Phase: mpki < 0");
  if (activity <= 0.0 || activity > 1.0) {
    throw std::invalid_argument("Phase: activity must be in (0, 1]");
  }
  if (mean_dwell_epochs < 1.0) {
    throw std::invalid_argument("Phase: mean_dwell_epochs must be >= 1");
  }
}

PhaseSample exact_sample(const Phase& phase) {
  return PhaseSample{phase.base_cpi, phase.mpki, phase.activity};
}

}  // namespace odrl::workload
