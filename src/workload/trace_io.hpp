// RecordedTrace serialization.
//
// Experiments are reproducible from seeds alone, but shipping a recorded
// trace lets others rerun a comparison on byte-identical workload inputs
// without the generator (and lets real-machine traces, converted to the
// phase-parameter schema, drive the simulator).
//
// Since snapshot format v1 the on-disk artifact is a single-section binary
// snapshot (magic ODRLSNAP, one 'TRCE' section: core count, labels, epoch
// count, per-epoch-per-core phase samples; see snapshot/snapshot.hpp for
// framing and the versioning policy). The previous CSV format
// ("# odrl-trace v1") is still *read* behind a format sniff so existing
// trace files keep loading; it is no longer written by the file wrapper.
//
// Legacy CSV (v1):
//   # odrl-trace v1
//   labels,<label core 0>,<label core 1>,...
//   epoch,core,base_cpi,mpki,activity
//   0,0,0.55,0.31,0.94
//   ...
// Labels must not contain commas, quotes or newlines (enforced on save).
#pragma once

#include <iosfwd>
#include <string>

#include "snapshot/snapshot.hpp"
#include "workload/workload.hpp"

namespace odrl::workload {

/// The 'TRCE' section tag of the binary trace artifact.
inline constexpr std::uint32_t kTraceSectionTag =
    snapshot::section_tag("TRCE");

/// Hard cap on declared n_cores * n_epochs: a corrupt (or hostile) header
/// must be rejected, not obeyed. Far above any real trace.
inline constexpr std::size_t kMaxTraceCells = std::size_t{1} << 26;

/// Writes the trace's payload (cores, labels, samples) into the caller's
/// open snapshot section.
void save_trace_payload(snapshot::Writer& w, const RecordedTrace& trace);
/// Reads a payload written by save_trace_payload, enforcing the cell cap
/// (kBadValue) and rejecting non-finite samples (kNonFinite).
RecordedTrace load_trace_payload(snapshot::Reader& r);

/// Writes the trace as a standalone single-section snapshot blob.
void save_trace(const RecordedTrace& trace, std::ostream& out);

/// Reads a trace: sniffs the binary snapshot magic first, then the legacy
/// CSV header. Binary failures throw snapshot::SnapshotError; legacy CSV
/// failures keep their historical std::runtime_error. Consumes the whole
/// stream (the binary sniff needs the full frame).
RecordedTrace load_trace(std::istream& in);

/// Legacy CSV writer; throws std::invalid_argument on unserializable
/// labels and std::runtime_error on stream failure. Kept for
/// interoperability with external tooling that consumes the CSV schema.
void save_trace_csv(const RecordedTrace& trace, std::ostream& out);

/// Legacy CSV parser; throws std::runtime_error on malformed input.
RecordedTrace load_trace_csv(std::istream& in);

/// Convenience file wrappers: save writes the binary snapshot artifact,
/// load sniffs both formats.
void save_trace_file(const RecordedTrace& trace, const std::string& path);
RecordedTrace load_trace_file(const std::string& path);

}  // namespace odrl::workload
