// RecordedTrace serialization (CSV).
//
// Experiments are reproducible from seeds alone, but shipping a recorded
// trace lets others rerun a comparison on byte-identical workload inputs
// without the generator (and lets real-machine traces, converted to the
// phase-parameter schema, drive the simulator).
//
// Format (v1):
//   # odrl-trace v1
//   labels,<label core 0>,<label core 1>,...
//   epoch,core,base_cpi,mpki,activity
//   0,0,0.55,0.31,0.94
//   ...
// Labels must not contain commas, quotes or newlines (enforced on save).
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.hpp"

namespace odrl::workload {

/// Writes the trace; throws std::invalid_argument on unserializable labels
/// and std::runtime_error on stream failure.
void save_trace_csv(const RecordedTrace& trace, std::ostream& out);

/// Parses a trace; throws std::runtime_error on malformed input.
RecordedTrace load_trace_csv(std::istream& in);

/// Convenience file wrappers.
void save_trace_file(const RecordedTrace& trace, const std::string& path);
RecordedTrace load_trace_file(const std::string& path);

}  // namespace odrl::workload
