#include "workload/workload.hpp"

#include <stdexcept>

#include "snapshot/snapshot.hpp"
#include "snapshot/state_io.hpp"

namespace odrl::workload {

void Workload::save_state(snapshot::Writer& /*w*/) const {
  throw snapshot::SnapshotError(snapshot::SnapshotStatus::kUnsupported,
                                "this workload does not support snapshot");
}

void Workload::load_state(snapshot::Reader& /*r*/) {
  throw snapshot::SnapshotError(snapshot::SnapshotStatus::kUnsupported,
                                "this workload does not support snapshot");
}

RecordedTrace::RecordedTrace(std::size_t n_cores,
                             std::vector<std::string> labels)
    : n_cores_(n_cores), labels_(std::move(labels)) {
  if (n_cores == 0) throw std::invalid_argument("RecordedTrace: 0 cores");
  if (labels_.size() != n_cores_) {
    throw std::invalid_argument("RecordedTrace: label count mismatch");
  }
}

void RecordedTrace::append_epoch(std::vector<PhaseSample> samples) {
  if (samples.size() != n_cores_) {
    throw std::invalid_argument("RecordedTrace::append_epoch: size mismatch");
  }
  epochs_.push_back(std::move(samples));
}

const std::vector<PhaseSample>& RecordedTrace::epoch(std::size_t e) const {
  if (e >= epochs_.size()) {
    throw std::out_of_range("RecordedTrace::epoch: out of range");
  }
  return epochs_[e];
}

const std::string& RecordedTrace::label(std::size_t core) const {
  if (core >= labels_.size()) {
    throw std::out_of_range("RecordedTrace::label: out of range");
  }
  return labels_[core];
}

GeneratedWorkload::GeneratedWorkload(std::size_t n_cores,
                                     const BenchmarkProfile& profile,
                                     std::uint64_t seed)
    : GeneratedWorkload(n_cores, std::vector<BenchmarkProfile>{profile},
                        seed) {}

GeneratedWorkload::GeneratedWorkload(
    std::size_t n_cores, const std::vector<BenchmarkProfile>& profiles,
    std::uint64_t seed) {
  if (n_cores == 0) throw std::invalid_argument("GeneratedWorkload: 0 cores");
  if (profiles.empty()) {
    throw std::invalid_argument("GeneratedWorkload: no profiles");
  }
  util::Rng root(seed);
  machines_.reserve(n_cores);
  rngs_.reserve(n_cores);
  labels_.reserve(n_cores);
  for (std::size_t i = 0; i < n_cores; ++i) {
    const BenchmarkProfile& profile = profiles[i % profiles.size()];
    util::Rng stream = root.fork();
    machines_.push_back(profile.instantiate(stream));
    rngs_.push_back(std::move(stream));
    labels_.push_back(profile.name);
  }
}

GeneratedWorkload GeneratedWorkload::mixed_suite(std::size_t n_cores,
                                                 std::uint64_t seed) {
  return GeneratedWorkload(n_cores, benchmark_suite(), seed);
}

std::span<const PhaseSample> GeneratedWorkload::step() {
  scratch_.resize(machines_.size());
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    scratch_[i] = machines_[i].step(rngs_[i]);
  }
  return scratch_;
}

std::string GeneratedWorkload::core_label(std::size_t core) const {
  if (core >= labels_.size()) {
    throw std::out_of_range("GeneratedWorkload::core_label: out of range");
  }
  return labels_[core];
}

void GeneratedWorkload::save_state(snapshot::Writer& w) const {
  w.u64(machines_.size());
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    w.u64(machines_[i].current_phase());
    w.u64(machines_[i].dwell());
    snapshot::save_rng(w, rngs_[i]);
  }
}

void GeneratedWorkload::load_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  if (n != machines_.size()) {
    throw snapshot::SnapshotError(
        snapshot::SnapshotStatus::kDimensionMismatch,
        "workload has " + std::to_string(machines_.size()) +
            " cores, snapshot holds " + std::to_string(n));
  }
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    const std::uint64_t phase = r.u64();
    const std::uint64_t dwell = r.u64();
    if (phase >= machines_[i].phase_count()) {
      throw snapshot::SnapshotError(snapshot::SnapshotStatus::kBadValue,
                                    "phase index out of range for core " +
                                        std::to_string(i));
    }
    machines_[i].restore(static_cast<std::size_t>(phase),
                         static_cast<std::size_t>(dwell));
    snapshot::load_rng(r, rngs_[i]);
  }
}

RecordedTrace GeneratedWorkload::record(std::size_t n_epochs) {
  RecordedTrace trace(n_cores(), labels_);
  for (std::size_t e = 0; e < n_epochs; ++e) {
    const std::span<const PhaseSample> samples = step();
    trace.append_epoch(std::vector<PhaseSample>(samples.begin(),
                                                samples.end()));
  }
  return trace;
}

ReplayWorkload::ReplayWorkload(RecordedTrace trace)
    : trace_(std::move(trace)) {
  if (trace_.n_epochs() == 0) {
    throw std::invalid_argument("ReplayWorkload: empty trace");
  }
}

std::span<const PhaseSample> ReplayWorkload::step() {
  const std::vector<PhaseSample>& samples = trace_.epoch(cursor_);
  cursor_ = (cursor_ + 1) % trace_.n_epochs();
  return samples;
}

std::string ReplayWorkload::core_label(std::size_t core) const {
  return trace_.label(core);
}

void ReplayWorkload::save_state(snapshot::Writer& w) const {
  w.u64(cursor_);
}

void ReplayWorkload::load_state(snapshot::Reader& r) {
  const std::uint64_t cursor = r.u64();
  if (cursor >= trace_.n_epochs()) {
    throw snapshot::SnapshotError(
        snapshot::SnapshotStatus::kBadValue,
        "replay cursor " + std::to_string(cursor) +
            " out of range for a " + std::to_string(trace_.n_epochs()) +
            "-epoch trace");
  }
  cursor_ = static_cast<std::size_t>(cursor);
}

}  // namespace odrl::workload
