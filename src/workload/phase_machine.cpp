#include "workload/phase_machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odrl::workload {

TransitionMatrix TransitionMatrix::uniform(std::size_t n) {
  if (n == 0) throw std::invalid_argument("TransitionMatrix::uniform: n == 0");
  std::vector<std::vector<double>> rows(
      n, std::vector<double>(n, 1.0 / static_cast<double>(n)));
  return TransitionMatrix(std::move(rows));
}

TransitionMatrix TransitionMatrix::cyclic(std::size_t n) {
  if (n == 0) throw std::invalid_argument("TransitionMatrix::cyclic: n == 0");
  std::vector<std::vector<double>> rows(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) rows[i][(i + 1) % n] = 1.0;
  return TransitionMatrix(std::move(rows));
}

TransitionMatrix::TransitionMatrix(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  if (rows_.empty()) throw std::invalid_argument("TransitionMatrix: empty");
  for (const auto& row : rows_) {
    if (row.size() != rows_.size()) {
      throw std::invalid_argument("TransitionMatrix: must be square");
    }
    double sum = 0.0;
    for (double p : row) {
      if (p < 0.0) throw std::invalid_argument("TransitionMatrix: p < 0");
      sum += p;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      throw std::invalid_argument("TransitionMatrix: row must sum to 1");
    }
  }
}

std::size_t TransitionMatrix::sample_next(std::size_t current,
                                          util::Rng& rng) const {
  if (current >= rows_.size()) {
    throw std::out_of_range("TransitionMatrix::sample_next: bad state");
  }
  const auto& row = rows_[current];
  double u = rng.uniform();
  for (std::size_t i = 0; i < row.size(); ++i) {
    u -= row[i];
    if (u < 0.0) return i;
  }
  return row.size() - 1;  // numerical slack lands in the last state
}

double TransitionMatrix::probability(std::size_t from, std::size_t to) const {
  if (from >= rows_.size() || to >= rows_.size()) {
    throw std::out_of_range("TransitionMatrix::probability: out of range");
  }
  return rows_[from][to];
}

PhaseMachine::PhaseMachine(std::vector<Phase> phases,
                           TransitionMatrix transitions,
                           std::size_t initial_phase, JitterConfig jitter)
    : phases_(std::move(phases)),
      transitions_(std::move(transitions)),
      jitter_(jitter),
      current_(initial_phase) {
  if (phases_.empty()) throw std::invalid_argument("PhaseMachine: no phases");
  if (transitions_.size() != phases_.size()) {
    throw std::invalid_argument(
        "PhaseMachine: transition matrix size mismatch");
  }
  if (initial_phase >= phases_.size()) {
    throw std::invalid_argument("PhaseMachine: initial phase out of range");
  }
  for (const auto& p : phases_) p.validate();
}

namespace {
double jittered(double value, double rel_sigma, util::Rng& rng) {
  if (rel_sigma <= 0.0) return value;
  // Multiplicative noise, clamped so parameters keep their sign/range.
  const double factor = std::max(0.1, 1.0 + rng.gaussian(0.0, rel_sigma));
  return value * factor;
}
}  // namespace

PhaseSample PhaseMachine::step(util::Rng& rng) {
  // Geometric dwell: leave with probability 1/mean_dwell each epoch.
  const double leave_p = 1.0 / phases_[current_].mean_dwell_epochs;
  if (rng.chance(leave_p)) {
    current_ = transitions_.sample_next(current_, rng);
    dwell_ = 0;
  } else {
    ++dwell_;
  }
  const Phase& ph = phases_[current_];
  PhaseSample s;
  s.base_cpi = jittered(ph.base_cpi, jitter_.base_cpi_rel, rng);
  s.mpki = std::max(0.0, jittered(ph.mpki, jitter_.mpki_rel, rng));
  s.activity = std::clamp(jittered(ph.activity, jitter_.activity_rel, rng),
                          0.05, 1.0);
  return s;
}

void PhaseMachine::restore(std::size_t current_phase, std::size_t dwell) {
  if (current_phase >= phases_.size()) {
    throw std::invalid_argument("PhaseMachine::restore: phase out of range");
  }
  current_ = current_phase;
  dwell_ = dwell;
}

const Phase& PhaseMachine::phase(std::size_t i) const {
  if (i >= phases_.size()) {
    throw std::out_of_range("PhaseMachine::phase: out of range");
  }
  return phases_[i];
}

}  // namespace odrl::workload
