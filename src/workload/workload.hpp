// Chip-level workload: one phase process per core, advanced in lockstep with
// the simulator's control epochs. Two concrete forms exist:
//
//   * GeneratedWorkload -- live Markov-modulated generation (seeded,
//     reproducible), built from benchmark profiles;
//   * ReplayWorkload -- replays a RecordedTrace so different controllers can
//     be compared on *identical* per-epoch inputs (the apples-to-apples
//     methodology the paper's controller comparison requires).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/benchmarks.hpp"
#include "workload/phase.hpp"
#include "workload/phase_machine.hpp"

namespace odrl::snapshot {
class Writer;
class Reader;
}  // namespace odrl::snapshot

namespace odrl::workload {

/// Abstract per-epoch workload source for an n-core chip.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::size_t n_cores() const = 0;
  /// Advances one epoch; element i is core i's phase parameters. The span
  /// points at storage owned by the workload (a scratch buffer or the
  /// backing trace) and stays valid until the next step() call -- callers
  /// that need the samples longer must copy. Returning a view instead of a
  /// fresh vector keeps the per-epoch hot path allocation-free.
  virtual std::span<const PhaseSample> step() = 0;
  /// Human-readable label of what core i is running.
  virtual std::string core_label(std::size_t core) const = 0;

  /// Snapshot/resume hooks: write/restore the generator position (phase
  /// machines + RNG streams, or the replay cursor) within the caller's
  /// open snapshot section. The defaults throw
  /// snapshot::SnapshotError(kUnsupported) -- a workload that cannot
  /// checkpoint makes the *run* un-checkpointable, and that must fail
  /// loudly at save time, not corrupt a resume.
  virtual void save_state(snapshot::Writer& w) const;
  virtual void load_state(snapshot::Reader& r);
};

/// A fully materialized workload: samples[epoch][core].
class RecordedTrace {
 public:
  RecordedTrace(std::size_t n_cores, std::vector<std::string> labels);

  void append_epoch(std::vector<PhaseSample> samples);
  std::size_t n_cores() const { return n_cores_; }
  std::size_t n_epochs() const { return epochs_.size(); }
  const std::vector<PhaseSample>& epoch(std::size_t e) const;
  const std::string& label(std::size_t core) const;

 private:
  std::size_t n_cores_;
  std::vector<std::string> labels_;
  std::vector<std::vector<PhaseSample>> epochs_;
};

/// Live generator: per-core PhaseMachine + forked RNG streams.
class GeneratedWorkload final : public Workload {
 public:
  /// Every core runs `profile` (phase-shifted starts).
  GeneratedWorkload(std::size_t n_cores, const BenchmarkProfile& profile,
                    std::uint64_t seed);

  /// Core i runs profiles[i % profiles.size()].
  GeneratedWorkload(std::size_t n_cores,
                    const std::vector<BenchmarkProfile>& profiles,
                    std::uint64_t seed);

  /// Convenience: the canonical heterogeneous mix -- the whole built-in
  /// suite striped across cores.
  static GeneratedWorkload mixed_suite(std::size_t n_cores,
                                       std::uint64_t seed);

  std::size_t n_cores() const override { return machines_.size(); }
  std::span<const PhaseSample> step() override;
  std::string core_label(std::size_t core) const override;
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;

  /// Runs the generator for n_epochs and materializes a trace (the
  /// generator is consumed/advanced by this).
  RecordedTrace record(std::size_t n_epochs);

 private:
  std::vector<PhaseMachine> machines_;
  std::vector<util::Rng> rngs_;
  std::vector<std::string> labels_;
  std::vector<PhaseSample> scratch_;  ///< reused step() output buffer
};

/// Replays a RecordedTrace; wraps around at the end so controllers can run
/// longer than the recording if needed.
class ReplayWorkload final : public Workload {
 public:
  explicit ReplayWorkload(RecordedTrace trace);

  std::size_t n_cores() const override { return trace_.n_cores(); }
  std::span<const PhaseSample> step() override;
  std::string core_label(std::size_t core) const override;
  void save_state(snapshot::Writer& w) const override;
  void load_state(snapshot::Reader& r) override;
  void rewind() { cursor_ = 0; }
  std::size_t cursor() const { return cursor_; }

 private:
  RecordedTrace trace_;
  std::size_t cursor_ = 0;
};

}  // namespace odrl::workload
