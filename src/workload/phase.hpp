// Program phases.
//
// DVFS control at millisecond epochs does not see instructions; it sees the
// aggregate compute/memory character of whatever phase the program is in.
// A Phase captures exactly the parameters the epoch-level performance and
// power models need. Real applications (SPLASH-2 / PARSEC class) are
// represented as stochastic processes over a small set of phases; this is the
// substitution for trace-driven microarchitectural simulation documented in
// DESIGN.md.
#pragma once

#include <string>

namespace odrl::workload {

/// Epoch-level program-phase descriptor.
struct Phase {
  /// CPI with an infinitely fast memory system (pure core-bound CPI).
  /// >= 1/issue_width in practice; validated > 0.
  double base_cpi = 1.0;

  /// Long-latency (off-chip) misses per kilo-instruction. Together with the
  /// memory latency this determines frequency-insensitivity: at high mpki,
  /// raising f buys almost no IPS.
  double mpki = 1.0;

  /// Switching-activity factor in (0, 1]: scales dynamic power.
  double activity = 0.8;

  /// Mean dwell time of the phase, in control epochs (geometric dwell).
  double mean_dwell_epochs = 50.0;

  void validate() const;
};

/// Phase with small multiplicative per-epoch jitter applied -- what the
/// simulator actually executes for one epoch.
struct PhaseSample {
  double base_cpi = 1.0;
  double mpki = 1.0;
  double activity = 0.8;
};

/// Returns a PhaseSample equal to the phase parameters with no jitter.
PhaseSample exact_sample(const Phase& phase);

}  // namespace odrl::workload
