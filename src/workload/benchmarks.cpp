#include "workload/benchmarks.hpp"

#include <stdexcept>

namespace odrl::workload {

PhaseMachine BenchmarkProfile::instantiate(util::Rng& rng) const {
  const std::size_t start = rng.below(phases.size());
  return PhaseMachine(phases, transitions, start, jitter);
}

namespace {

// Helper: two-phase alternating profile.
BenchmarkProfile alternating(std::string name, std::string desc, Phase a,
                             Phase b) {
  BenchmarkProfile p;
  p.name = std::move(name);
  p.description = std::move(desc);
  p.phases = {a, b};
  p.transitions = TransitionMatrix::cyclic(2);
  return p;
}

std::vector<BenchmarkProfile> build_suite() {
  std::vector<BenchmarkProfile> suite;

  // 1. compute.dense -- dense FP kernel, high ILP, tiny working set.
  {
    BenchmarkProfile p;
    p.name = "compute.dense";
    p.description = "dense floating-point kernel; frequency-hungry";
    p.phases = {Phase{.base_cpi = 0.55,
                      .mpki = 0.3,
                      .activity = 0.95,
                      .mean_dwell_epochs = 200.0}};
    p.transitions = TransitionMatrix::uniform(1);
    suite.push_back(std::move(p));
  }

  // 2. compute.branchy -- integer control-heavy code, moderate CPI.
  {
    BenchmarkProfile p;
    p.name = "compute.branchy";
    p.description = "branch-heavy integer code; compute-bound, lower activity";
    p.phases = {Phase{.base_cpi = 0.9,
                      .mpki = 1.0,
                      .activity = 0.75,
                      .mean_dwell_epochs = 150.0}};
    p.transitions = TransitionMatrix::uniform(1);
    suite.push_back(std::move(p));
  }

  // 3. memory.stream -- streaming over large arrays; DVFS-insensitive.
  {
    BenchmarkProfile p;
    p.name = "memory.stream";
    p.description = "streaming memory access; throughput set by DRAM";
    p.phases = {Phase{.base_cpi = 0.7,
                      .mpki = 22.0,
                      .activity = 0.55,
                      .mean_dwell_epochs = 300.0}};
    p.transitions = TransitionMatrix::uniform(1);
    suite.push_back(std::move(p));
  }

  // 4. memory.pointer -- pointer chasing, serialized misses.
  {
    BenchmarkProfile p;
    p.name = "memory.pointer";
    p.description = "pointer-chasing; serialized long-latency misses";
    p.phases = {Phase{.base_cpi = 1.4,
                      .mpki = 30.0,
                      .activity = 0.45,
                      .mean_dwell_epochs = 250.0}};
    p.transitions = TransitionMatrix::uniform(1);
    suite.push_back(std::move(p));
  }

  // 5. phased.solver -- iterative solver alternating compute and exchange.
  suite.push_back(alternating(
      "phased.solver",
      "iterative solver: compute sweep then boundary exchange",
      Phase{.base_cpi = 0.6, .mpki = 1.5, .activity = 0.9,
            .mean_dwell_epochs = 80.0},
      Phase{.base_cpi = 0.8, .mpki = 18.0, .activity = 0.6,
            .mean_dwell_epochs = 40.0}));

  // 6. phased.pipeline -- three-stage pipeline with distinct stages.
  {
    BenchmarkProfile p;
    p.name = "phased.pipeline";
    p.description = "three-stage media pipeline: decode / transform / emit";
    p.phases = {Phase{.base_cpi = 0.7, .mpki = 4.0, .activity = 0.85,
                      .mean_dwell_epochs = 60.0},
                Phase{.base_cpi = 0.5, .mpki = 0.8, .activity = 0.95,
                      .mean_dwell_epochs = 90.0},
                Phase{.base_cpi = 1.1, .mpki = 12.0, .activity = 0.6,
                      .mean_dwell_epochs = 45.0}};
    p.transitions = TransitionMatrix::cyclic(3);
    suite.push_back(std::move(p));
  }

  // 7. bursty.gc -- mostly compute with occasional memory-thrashing bursts.
  {
    BenchmarkProfile p;
    p.name = "bursty.gc";
    p.description = "managed-runtime style: compute with GC-like bursts";
    p.phases = {Phase{.base_cpi = 0.8, .mpki = 2.0, .activity = 0.85,
                      .mean_dwell_epochs = 180.0},
                Phase{.base_cpi = 1.0, .mpki = 26.0, .activity = 0.5,
                      .mean_dwell_epochs = 25.0}};
    // Asymmetric: burst is rare but always returns to compute.
    p.transitions = TransitionMatrix({{0.0, 1.0}, {1.0, 0.0}});
    suite.push_back(std::move(p));
  }

  // 8. mixed.graph -- graph analytics: irregular mix of all behaviours.
  {
    BenchmarkProfile p;
    p.name = "mixed.graph";
    p.description = "graph analytics: irregular alternation of traversal "
                    "and per-vertex compute";
    p.phases = {Phase{.base_cpi = 0.65, .mpki = 3.0, .activity = 0.9,
                      .mean_dwell_epochs = 70.0},
                Phase{.base_cpi = 1.2, .mpki = 16.0, .activity = 0.55,
                      .mean_dwell_epochs = 70.0},
                Phase{.base_cpi = 0.9, .mpki = 8.0, .activity = 0.7,
                      .mean_dwell_epochs = 70.0}};
    p.transitions = TransitionMatrix::uniform(3);
    suite.push_back(std::move(p));
  }

  // 9. idle.periodic -- mostly idle service thread with periodic activity.
  {
    BenchmarkProfile p;
    p.name = "idle.periodic";
    p.description = "service thread: near-idle with periodic work spikes";
    p.phases = {Phase{.base_cpi = 2.0, .mpki = 1.0, .activity = 0.15,
                      .mean_dwell_epochs = 120.0},
                Phase{.base_cpi = 0.7, .mpki = 2.0, .activity = 0.9,
                      .mean_dwell_epochs = 30.0}};
    p.transitions = TransitionMatrix({{0.0, 1.0}, {1.0, 0.0}});
    suite.push_back(std::move(p));
  }

  // 10. mixed.balanced -- the "average" application.
  {
    BenchmarkProfile p;
    p.name = "mixed.balanced";
    p.description = "balanced compute/memory application";
    p.phases = {Phase{.base_cpi = 0.8, .mpki = 6.0, .activity = 0.8,
                      .mean_dwell_epochs = 100.0},
                Phase{.base_cpi = 0.75, .mpki = 10.0, .activity = 0.7,
                      .mean_dwell_epochs = 100.0}};
    p.transitions = TransitionMatrix::uniform(2);
    suite.push_back(std::move(p));
  }

  // 11. server.spiky -- request serving: idle baseline with short, sharp
  // compute spikes (fast phase churn stresses on-line adaptation).
  {
    BenchmarkProfile p;
    p.name = "server.spiky";
    p.description = "request serving: near-idle with short compute spikes";
    p.phases = {Phase{.base_cpi = 1.6, .mpki = 2.0, .activity = 0.2,
                      .mean_dwell_epochs = 40.0},
                Phase{.base_cpi = 0.6, .mpki = 3.0, .activity = 0.95,
                      .mean_dwell_epochs = 8.0},
                Phase{.base_cpi = 0.9, .mpki = 12.0, .activity = 0.6,
                      .mean_dwell_epochs = 12.0}};
    p.transitions = TransitionMatrix({{0.0, 0.7, 0.3},
                                      {0.8, 0.0, 0.2},
                                      {0.9, 0.1, 0.0}});
    suite.push_back(std::move(p));
  }

  // 12. hpc.fft -- butterfly stages: long compute sweeps punctuated by
  // all-to-all exchange phases that saturate memory.
  suite.push_back(alternating(
      "hpc.fft", "FFT-style: compute butterflies then all-to-all exchange",
      Phase{.base_cpi = 0.5, .mpki = 1.2, .activity = 0.98,
            .mean_dwell_epochs = 120.0},
      Phase{.base_cpi = 0.9, .mpki = 28.0, .activity = 0.5,
            .mean_dwell_epochs = 35.0}));

  // 13. ml.inference -- steady dense kernels with a periodic
  // weight-streaming phase; high activity throughout.
  {
    BenchmarkProfile p;
    p.name = "ml.inference";
    p.description = "NN inference: dense GEMM with periodic weight streaming";
    p.phases = {Phase{.base_cpi = 0.52, .mpki = 1.8, .activity = 0.97,
                      .mean_dwell_epochs = 150.0},
                Phase{.base_cpi = 0.7, .mpki = 15.0, .activity = 0.75,
                      .mean_dwell_epochs = 30.0}};
    p.transitions = TransitionMatrix({{0.0, 1.0}, {1.0, 0.0}});
    suite.push_back(std::move(p));
  }

  return suite;
}

}  // namespace

const std::vector<BenchmarkProfile>& benchmark_suite() {
  static const std::vector<BenchmarkProfile> suite = build_suite();
  return suite;
}

const BenchmarkProfile& benchmark_by_name(std::string_view name) {
  for (const auto& p : benchmark_suite()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("benchmark_by_name: unknown benchmark '" +
                              std::string(name) + "'");
}

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  names.reserve(benchmark_suite().size());
  for (const auto& p : benchmark_suite()) names.push_back(p.name);
  return names;
}

}  // namespace odrl::workload
