// Markov-modulated phase process: the per-core workload engine.
//
// Each core runs one PhaseMachine. Every epoch the machine either stays in
// its current phase (geometric dwell with the phase's mean) or transitions
// according to a row-stochastic matrix, then emits a PhaseSample with small
// multiplicative jitter. This reproduces the phase-change dynamics that make
// *on-line* learning necessary: a policy tuned for one phase goes stale when
// the program moves on.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"
#include "workload/phase.hpp"

namespace odrl::workload {

/// Row-stochastic transition matrix over phases. Row i gives the
/// distribution of the *next* phase when leaving phase i (self-transitions
/// allowed; dwell is handled separately by the machine).
class TransitionMatrix {
 public:
  /// Uniform transitions among n phases.
  static TransitionMatrix uniform(std::size_t n);
  /// Cyclic: phase i -> phase (i+1) mod n with probability 1 (pipelined /
  /// iterative solvers with regular phase structure).
  static TransitionMatrix cyclic(std::size_t n);
  /// From explicit rows; validates each row sums to ~1 and is non-negative.
  explicit TransitionMatrix(std::vector<std::vector<double>> rows);

  std::size_t size() const { return rows_.size(); }
  /// Samples the next phase index given the current one.
  std::size_t sample_next(std::size_t current, util::Rng& rng) const;
  double probability(std::size_t from, std::size_t to) const;

 private:
  std::vector<std::vector<double>> rows_;
};

/// Per-epoch jitter configuration (multiplicative log-normal-ish noise).
struct JitterConfig {
  double base_cpi_rel = 0.05;  ///< relative sigma on base CPI
  double mpki_rel = 0.10;      ///< relative sigma on mpki
  double activity_rel = 0.03;  ///< relative sigma on activity
};

class PhaseMachine {
 public:
  /// phases non-empty and each valid; transitions.size() == phases.size().
  PhaseMachine(std::vector<Phase> phases, TransitionMatrix transitions,
               std::size_t initial_phase = 0, JitterConfig jitter = {});

  /// Advances one epoch and returns the sampled phase parameters.
  PhaseSample step(util::Rng& rng);

  std::size_t current_phase() const { return current_; }
  const Phase& phase(std::size_t i) const;
  std::size_t phase_count() const { return phases_.size(); }

  /// Epochs spent in the current phase since last transition.
  std::size_t dwell() const { return dwell_; }

  /// Bulk restore of the Markov position (snapshot/resume). Throws
  /// std::invalid_argument when `current_phase` is out of range.
  void restore(std::size_t current_phase, std::size_t dwell);

 private:
  std::vector<Phase> phases_;
  TransitionMatrix transitions_;
  JitterConfig jitter_;
  std::size_t current_;
  std::size_t dwell_ = 0;
};

}  // namespace odrl::workload
