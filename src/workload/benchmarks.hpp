// Named synthetic benchmark profiles.
//
// Thirteen profiles spanning the compute/memory spectrum stand in for the
// SPLASH-2 / PARSEC suites the paper evaluates on (see the substitution table
// in DESIGN.md). Names follow the convention "<behaviour>.<variant>"; each
// profile is a PhaseMachine blueprint (phases + transition structure).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "workload/phase_machine.hpp"

namespace odrl::workload {

/// Blueprint from which per-core PhaseMachines are instantiated.
struct BenchmarkProfile {
  std::string name;
  std::string description;
  std::vector<Phase> phases;
  TransitionMatrix transitions = TransitionMatrix::uniform(1);
  JitterConfig jitter;

  /// Instantiates a machine starting in a phase chosen by `rng` (so cores
  /// running the same benchmark are phase-shifted, as threads of a real
  /// multiprogrammed mix would be).
  PhaseMachine instantiate(util::Rng& rng) const;
};

/// The full built-in suite, in canonical order.
const std::vector<BenchmarkProfile>& benchmark_suite();

/// Looks a profile up by name; throws std::invalid_argument if unknown.
const BenchmarkProfile& benchmark_by_name(std::string_view name);

/// Names only, canonical order (used by benches to emit table rows).
std::vector<std::string> benchmark_names();

}  // namespace odrl::workload
