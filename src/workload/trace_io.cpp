#include "workload/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace odrl::workload {

using snapshot::SnapshotError;
using snapshot::SnapshotStatus;

namespace {

constexpr const char* kMagic = "# odrl-trace v1";

double finite_sample(snapshot::Reader& r, const char* what) {
  const double v = r.f64();
  if (!std::isfinite(v)) {
    throw SnapshotError(SnapshotStatus::kNonFinite,
                        std::string("trace: non-finite ") + what);
  }
  return v;
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto comma = line.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace parse: bad ") + what +
                             " value '" + s + "'");
  }
}

std::size_t parse_size(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace parse: bad ") + what +
                             " value '" + s + "'");
  }
}

}  // namespace

void save_trace_payload(snapshot::Writer& w, const RecordedTrace& trace) {
  w.u64(trace.n_cores());
  for (std::size_t c = 0; c < trace.n_cores(); ++c) w.str(trace.label(c));
  w.u64(trace.n_epochs());
  for (std::size_t e = 0; e < trace.n_epochs(); ++e) {
    const auto& samples = trace.epoch(e);
    for (const PhaseSample& s : samples) {
      w.f64(s.base_cpi);
      w.f64(s.mpki);
      w.f64(s.activity);
    }
  }
}

RecordedTrace load_trace_payload(snapshot::Reader& r) {
  const std::uint64_t n_cores = r.u64();
  if (n_cores == 0) {
    throw SnapshotError(SnapshotStatus::kBadValue, "trace: zero cores");
  }
  if (n_cores > kMaxTraceCells) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "trace: implausible core count " +
                            std::to_string(n_cores));
  }
  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(n_cores));
  for (std::uint64_t c = 0; c < n_cores; ++c) labels.push_back(r.str());

  const std::uint64_t n_epochs = r.u64();
  if (n_epochs == 0) {
    throw SnapshotError(SnapshotStatus::kBadValue, "trace: zero epochs");
  }
  if (n_epochs > kMaxTraceCells / n_cores) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "trace: implausible dimensions " +
                            std::to_string(n_cores) + "x" +
                            std::to_string(n_epochs));
  }

  RecordedTrace trace(static_cast<std::size_t>(n_cores), std::move(labels));
  std::vector<PhaseSample> samples(static_cast<std::size_t>(n_cores));
  for (std::uint64_t e = 0; e < n_epochs; ++e) {
    for (PhaseSample& s : samples) {
      s.base_cpi = finite_sample(r, "base_cpi");
      s.mpki = finite_sample(r, "mpki");
      s.activity = finite_sample(r, "activity");
    }
    trace.append_epoch(samples);
  }
  return trace;
}

void save_trace(const RecordedTrace& trace, std::ostream& out) {
  snapshot::Writer w;
  w.begin_section(kTraceSectionTag);
  save_trace_payload(w, trace);
  w.end_section();
  const std::string blob = std::move(w).finish();
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "save_trace: stream failure");
  }
}

RecordedTrace load_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "load_trace: stream failure");
  }
  const std::string blob = std::move(buf).str();
  if (blob.size() >= snapshot::kMagic.size() &&
      std::string_view(blob).substr(0, snapshot::kMagic.size()) ==
          snapshot::kMagic) {
    snapshot::Reader r(blob);
    r.open_section(kTraceSectionTag);
    RecordedTrace trace = load_trace_payload(r);
    r.expect_section_end();
    return trace;
  }
  // Legacy CSV artifact (or garbage -- the CSV path rejects that too).
  std::istringstream text(blob);
  return load_trace_csv(text);
}

void save_trace_csv(const RecordedTrace& trace, std::ostream& out) {
  out << kMagic << '\n';
  out << "labels";
  for (std::size_t c = 0; c < trace.n_cores(); ++c) {
    const std::string& label = trace.label(c);
    if (label.find_first_of(",\"\n\r") != std::string::npos) {
      throw std::invalid_argument("save_trace_csv: label '" + label +
                                  "' contains forbidden characters");
    }
    out << ',' << label;
  }
  out << '\n';
  out << "epoch,core,base_cpi,mpki,activity\n";
  for (std::size_t e = 0; e < trace.n_epochs(); ++e) {
    const auto& samples = trace.epoch(e);
    for (std::size_t c = 0; c < samples.size(); ++c) {
      char buf[32];
      out << e << ',' << c;
      for (double v : {samples[c].base_cpi, samples[c].mpki,
                       samples[c].activity}) {
        auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
        if (ec != std::errc()) {
          // Never emit a partially-formatted value: a silently truncated
          // number would corrupt the trace and only fail at load time.
          throw std::runtime_error("save_trace_csv: value formatting failed");
        }
        out << ',' << std::string_view(buf,
                                       static_cast<std::size_t>(ptr - buf));
      }
      out << '\n';
    }
  }
  if (!out) throw std::runtime_error("save_trace_csv: stream failure");
}

RecordedTrace load_trace_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("load_trace_csv: missing magic header");
  }
  if (!std::getline(in, line) || line.rfind("labels,", 0) != 0) {
    throw std::runtime_error("load_trace_csv: missing labels row");
  }
  auto label_cells = split(line);
  label_cells.erase(label_cells.begin());  // drop "labels"
  if (label_cells.empty()) {
    throw std::runtime_error("load_trace_csv: no cores in labels row");
  }
  const std::size_t n_cores = label_cells.size();

  if (!std::getline(in, line) ||
      line != "epoch,core,base_cpi,mpki,activity") {
    throw std::runtime_error("load_trace_csv: missing column header");
  }

  RecordedTrace trace(n_cores, label_cells);
  std::vector<PhaseSample> epoch_samples(n_cores);
  std::size_t expected_epoch = 0;
  std::size_t expected_core = 0;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = split(line);
    if (cells.size() != 5) {
      throw std::runtime_error("load_trace_csv: row with wrong arity: " +
                               line);
    }
    const std::size_t e = parse_size(cells[0], "epoch");
    const std::size_t c = parse_size(cells[1], "core");
    if (e != expected_epoch || c != expected_core) {
      throw std::runtime_error("load_trace_csv: rows out of order at epoch " +
                               cells[0] + " core " + cells[1]);
    }
    PhaseSample& s = epoch_samples[c];
    s.base_cpi = parse_double(cells[2], "base_cpi");
    s.mpki = parse_double(cells[3], "mpki");
    s.activity = parse_double(cells[4], "activity");

    if (++expected_core == n_cores) {
      trace.append_epoch(epoch_samples);
      expected_core = 0;
      ++expected_epoch;
    }
  }
  if (expected_core != 0) {
    throw std::runtime_error("load_trace_csv: truncated final epoch");
  }
  if (trace.n_epochs() == 0) {
    throw std::runtime_error("load_trace_csv: empty trace");
  }
  return trace;
}

void save_trace_file(const RecordedTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "save_trace_file: cannot open " + path);
  }
  save_trace(trace, out);
  // Flush before the destructor would swallow the error: a full disk must
  // surface here, not as a mysteriously truncated file.
  out.flush();
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "save_trace_file: write failed for " + path);
  }
}

RecordedTrace load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "load_trace_file: cannot open " + path);
  }
  return load_trace(in);
}

}  // namespace odrl::workload
