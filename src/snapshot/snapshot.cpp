#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

namespace odrl::snapshot {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Little-endian encode/decode. The simulator only targets little-endian
/// hosts today; memcpy keeps this well-defined either way and the explicit
/// byte math below makes the wire order independent of the host.
void put_le(std::string& out, std::uint64_t v, std::size_t n_bytes) {
  for (std::size_t i = 0; i < n_bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_le(std::string_view data, std::size_t offset,
                     std::size_t n_bytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n_bytes; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* snapshot_status_name(SnapshotStatus status) {
  switch (status) {
    case SnapshotStatus::kOk:
      return "ok";
    case SnapshotStatus::kIoError:
      return "io_error";
    case SnapshotStatus::kBadMagic:
      return "bad_magic";
    case SnapshotStatus::kBadVersion:
      return "bad_version";
    case SnapshotStatus::kTruncated:
      return "truncated";
    case SnapshotStatus::kChecksumMismatch:
      return "checksum_mismatch";
    case SnapshotStatus::kBadSection:
      return "bad_section";
    case SnapshotStatus::kBadValue:
      return "bad_value";
    case SnapshotStatus::kDimensionMismatch:
      return "dimension_mismatch";
    case SnapshotStatus::kNonFinite:
      return "non_finite";
    case SnapshotStatus::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

SnapshotError::SnapshotError(SnapshotStatus status,
                             const std::string& message)
    : std::runtime_error("snapshot: " +
                         std::string(snapshot_status_name(status)) + ": " +
                         message),
      status_(status) {}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = kFnvOffset;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

// ---------------------------------------------------------------- Writer

Writer::Writer() {
  buf_.append(kMagic);
  put_le(buf_, kFormatVersion, 4);
}

void Writer::begin_section(std::uint32_t tag) {
  if (finished_) {
    throw std::logic_error("snapshot::Writer: begin_section after finish");
  }
  if (in_section_) {
    throw std::logic_error("snapshot::Writer: sections may not nest");
  }
  if (tag == 0) {
    throw std::logic_error("snapshot::Writer: tag 0 is the end marker");
  }
  if (std::find(tags_seen_.begin(), tags_seen_.end(), tag) !=
      tags_seen_.end()) {
    throw std::logic_error("snapshot::Writer: duplicate section tag");
  }
  tags_seen_.push_back(tag);
  put_le(buf_, tag, 4);
  section_start_ = buf_.size();
  put_le(buf_, 0, 8);  // length back-patched by end_section
  in_section_ = true;
}

void Writer::end_section() {
  if (!in_section_) {
    throw std::logic_error("snapshot::Writer: end_section outside section");
  }
  const std::uint64_t len = buf_.size() - (section_start_ + 8);
  for (std::size_t i = 0; i < 8; ++i) {
    buf_[section_start_ + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  in_section_ = false;
}

void Writer::raw(const void* data, std::size_t n) {
  if (!in_section_) {
    throw std::logic_error("snapshot::Writer: write outside section");
  }
  buf_.append(static_cast<const char*>(data), n);
}

void Writer::u8(std::uint8_t v) { raw(&v, 1); }

void Writer::u32(std::uint32_t v) {
  if (!in_section_) {
    throw std::logic_error("snapshot::Writer: write outside section");
  }
  put_le(buf_, v, 4);
}

void Writer::u64(std::uint64_t v) {
  if (!in_section_) {
    throw std::logic_error("snapshot::Writer: write outside section");
  }
  put_le(buf_, v, 8);
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(std::span<const std::uint8_t> data) {
  raw(data.data(), data.size());
}

void Writer::str(std::string_view s) {
  u64(s.size());
  raw(s.data(), s.size());
}

std::string Writer::finish() && {
  if (in_section_) {
    throw std::logic_error("snapshot::Writer: finish inside open section");
  }
  if (finished_) {
    throw std::logic_error("snapshot::Writer: finish called twice");
  }
  finished_ = true;
  const std::uint64_t checksum = fnv1a64(buf_);
  put_le(buf_, 0, 4);  // end-of-sections marker
  put_le(buf_, checksum, 8);
  return std::move(buf_);
}

// ---------------------------------------------------------------- Reader

Reader::Reader(std::string_view blob) : blob_(blob) {
  if (blob_.size() < kMagic.size() ||
      blob_.substr(0, kMagic.size()) != kMagic) {
    throw SnapshotError(SnapshotStatus::kBadMagic,
                        "stream does not start with ODRLSNAP");
  }
  if (blob_.size() < kMagic.size() + 4) {
    throw SnapshotError(SnapshotStatus::kTruncated,
                        "stream ends inside the version field");
  }
  const std::uint64_t version = get_le(blob_, kMagic.size(), 4);
  if (version != kFormatVersion) {
    throw SnapshotError(SnapshotStatus::kBadVersion,
                        "format version " + std::to_string(version) +
                            " (this build reads version " +
                            std::to_string(kFormatVersion) + ")");
  }

  std::size_t pos = kMagic.size() + 4;
  for (;;) {
    if (blob_.size() - pos < 4) {
      throw SnapshotError(SnapshotStatus::kTruncated,
                          "stream ends inside a section tag");
    }
    const std::uint32_t tag =
        static_cast<std::uint32_t>(get_le(blob_, pos, 4));
    pos += 4;
    if (tag == 0) {
      // Trailer: checksum over every byte before the end marker.
      if (blob_.size() - pos < 8) {
        throw SnapshotError(SnapshotStatus::kTruncated,
                            "stream ends inside the checksum trailer");
      }
      const std::uint64_t stored = get_le(blob_, pos, 8);
      const std::uint64_t actual = fnv1a64(blob_.substr(0, pos - 4));
      if (stored != actual) {
        throw SnapshotError(SnapshotStatus::kChecksumMismatch,
                            "trailer checksum does not match contents");
      }
      if (pos + 8 != blob_.size()) {
        throw SnapshotError(SnapshotStatus::kBadSection,
                            "trailing bytes after the checksum");
      }
      break;
    }
    if (blob_.size() - pos < 8) {
      throw SnapshotError(SnapshotStatus::kTruncated,
                          "stream ends inside a section length");
    }
    const std::uint64_t len = get_le(blob_, pos, 8);
    pos += 8;
    if (len > blob_.size() - pos) {
      throw SnapshotError(SnapshotStatus::kTruncated,
                          "section payload extends past end of stream");
    }
    for (const Section& s : sections_) {
      if (s.tag == tag) {
        throw SnapshotError(SnapshotStatus::kBadSection,
                            "duplicate section tag");
      }
    }
    sections_.push_back(
        Section{tag, pos, static_cast<std::size_t>(len)});
    pos += static_cast<std::size_t>(len);
  }
}

const Reader::Section* Reader::find(std::uint32_t tag) const noexcept {
  for (const Section& s : sections_) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

bool Reader::has_section(std::uint32_t tag) const noexcept {
  return find(tag) != nullptr;
}

std::vector<std::uint32_t> Reader::section_tags() const {
  std::vector<std::uint32_t> tags;
  tags.reserve(sections_.size());
  for (const Section& s : sections_) tags.push_back(s.tag);
  return tags;
}

void Reader::open_section(std::uint32_t tag) {
  const Section* s = find(tag);
  if (s == nullptr) {
    std::string name(4, '?');
    for (std::size_t i = 0; i < 4; ++i) {
      const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
      name[i] = (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    throw SnapshotError(SnapshotStatus::kBadSection,
                        "missing section '" + name + "'");
  }
  cursor_ = s->offset;
  section_end_ = s->offset + s->size;
}

void Reader::need(std::size_t n) const {
  if (section_end_ == 0) {
    throw std::logic_error("snapshot::Reader: read before open_section");
  }
  if (section_end_ - cursor_ < n) {
    throw SnapshotError(SnapshotStatus::kTruncated,
                        "read past end of section");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(get_le(blob_, cursor_++, 1));
}

std::uint32_t Reader::u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(get_le(blob_, cursor_, 4));
  cursor_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  const std::uint64_t v = get_le(blob_, cursor_, 8);
  cursor_ += 8;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

void Reader::bytes(std::span<std::uint8_t> out) {
  need(out.size());
  std::memcpy(out.data(), blob_.data() + cursor_, out.size());
  cursor_ += out.size();
}

std::string Reader::str() {
  const std::uint64_t len = u64();
  need(len);
  std::string s(blob_.substr(cursor_, len));
  cursor_ += len;
  return s;
}

std::size_t Reader::remaining() const noexcept {
  return section_end_ - cursor_;
}

void Reader::expect_section_end() const {
  if (cursor_ != section_end_) {
    throw SnapshotError(SnapshotStatus::kBadSection,
                        "section holds " + std::to_string(remaining()) +
                            " unread trailing bytes");
  }
}

// ------------------------------------------------------------- file I/O

void save_snapshot_file(const std::string& blob, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError, "cannot open " + path);
  }
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out) {
    throw SnapshotError(SnapshotStatus::kIoError,
                        "write failed for " + path);
  }
}

std::string load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError(SnapshotStatus::kIoError, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw SnapshotError(SnapshotStatus::kIoError, "read failed for " + path);
  }
  return std::move(buf).str();
}

}  // namespace odrl::snapshot
