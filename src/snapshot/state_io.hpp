// Inline payload helpers for the small util-layer value types that many
// Snapshotable implementations embed (RNG streams, EMA filters). Kept
// header-only so the snapshot library itself stays dependency-free; the
// including layer already links odrl_util.
#pragma once

#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#include <cmath>

namespace odrl::snapshot {

inline void save_rng(Writer& w, const util::Rng& rng) {
  const util::Rng::State s = rng.state();
  for (std::uint64_t word : s.s) w.u64(word);
  w.f64(s.cached_gaussian);
  w.u8(s.has_cached_gaussian ? 1 : 0);
}

inline void load_rng(Reader& r, util::Rng& rng) {
  util::Rng::State s;
  for (std::uint64_t& word : s.s) word = r.u64();
  s.cached_gaussian = r.f64();
  const std::uint8_t cached = r.u8();
  if (cached > 1) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "rng gaussian-cache flag must be 0 or 1");
  }
  s.has_cached_gaussian = cached != 0;
  rng.set_state(s);
}

inline void save_ema(Writer& w, const util::Ema& ema) {
  w.f64(ema.value());
  w.u8(ema.primed() ? 1 : 0);
}

inline void load_ema(Reader& r, util::Ema& ema) {
  const double value = r.f64();
  const std::uint8_t primed = r.u8();
  if (primed > 1) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        "ema primed flag must be 0 or 1");
  }
  if (primed != 0 && !std::isfinite(value)) {
    throw SnapshotError(SnapshotStatus::kNonFinite,
                        "ema value must be finite");
  }
  ema.restore(value, primed != 0);
}

/// Reads a u8 bool field, rejecting anything but 0/1.
inline bool load_bool(Reader& r, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > 1) {
    throw SnapshotError(SnapshotStatus::kBadValue,
                        std::string(what) + " flag must be 0 or 1");
  }
  return v != 0;
}

}  // namespace odrl::snapshot
