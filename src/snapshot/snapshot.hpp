// Versioned binary snapshot format: the serialization substrate for
// save/restore of full simulation state (system, fault engine, controllers,
// runner bookkeeping) and for the binary Q-table/trace/policy artifacts.
//
// Wire layout (all integers little-endian):
//
//   offset 0   8 bytes   magic "ODRLSNAP"
//   offset 8   u32       format version (kFormatVersion)
//   then, repeated:
//              u32       section tag (FourCC, e.g. 'QTAB'; never 0)
//              u64       payload length in bytes
//              ...       payload
//   trailer:   u32       0 (end-of-sections marker)
//              u64       FNV-1a 64 checksum of every byte before the marker
//
// A Writer buffers everything in memory and seals the blob with finish();
// a Reader validates magic, version, section framing and checksum up front
// (before any caller touches a payload), then hands out bounds-checked
// typed reads per section. All failures throw SnapshotError, which carries
// a SnapshotStatus code -- the one failure taxonomy shared by the fuzz
// harness, the Q-table loader and every load_state() implementation.
//
// Compatibility policy: the version is bumped whenever any section's
// payload layout changes; readers reject versions they do not know
// (kBadVersion) rather than guessing. Unknown *sections* in a known
// version are skipped by construction (readers open sections by tag), so
// adding a section is not a breaking change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace odrl::snapshot {

/// Current wire-format version written by Writer and accepted by Reader.
inline constexpr std::uint32_t kFormatVersion = 1;

/// The 8-byte stream magic ("ODRLSNAP").
inline constexpr std::string_view kMagic = "ODRLSNAP";

/// Failure taxonomy for every snapshot-shaped artifact (full snapshots,
/// binary Q-tables, policies, traces). Codes, not message parsing, are the
/// contract: tests and the fuzz harness assert on the enum.
enum class SnapshotStatus : std::uint8_t {
  kOk = 0,
  kIoError,            ///< file open/read/write failure
  kBadMagic,           ///< stream does not start with kMagic
  kBadVersion,         ///< version this reader does not understand
  kTruncated,          ///< stream ends inside a header/section/trailer
  kChecksumMismatch,   ///< trailer checksum does not match the bytes
  kBadSection,         ///< malformed framing, duplicate or missing section
  kBadValue,           ///< semantic rejection (implausible count, bad enum)
  kDimensionMismatch,  ///< stored state shape != the restoring object's
  kNonFinite,          ///< a float field that must be finite is not
  kUnsupported,        ///< the object does not implement snapshotting
};

/// Stable lowercase name for a status code (error messages, fuzz logs).
const char* snapshot_status_name(SnapshotStatus status);

/// Thrown by every snapshot failure path. Derives std::runtime_error so
/// pre-existing catch sites keep working; new code switches on status().
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotStatus status, const std::string& message);

  SnapshotStatus status() const noexcept { return status_; }

 private:
  SnapshotStatus status_;
};

/// FourCC section tag, e.g. section_tag("QTAB").
constexpr std::uint32_t section_tag(std::string_view name) {
  return (name.size() == 4)
             ? (static_cast<std::uint32_t>(
                    static_cast<unsigned char>(name[0])) |
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(name[1]))
                 << 8) |
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(name[2]))
                 << 16) |
                (static_cast<std::uint32_t>(
                     static_cast<unsigned char>(name[3]))
                 << 24))
             : throw std::invalid_argument("section_tag: need 4 chars");
}

/// Builds a snapshot blob in memory. Usage:
///
///   Writer w;
///   w.begin_section(section_tag("SYST"));
///   w.u64(...); w.f64(...);
///   w.end_section();
///   std::string blob = std::move(w).finish();
///
/// Sections may not nest; duplicate tags are rejected at write time so a
/// blob is always uniquely indexable by tag. finish() seals the trailer.
class Writer {
 public:
  Writer();

  void begin_section(std::uint32_t tag);
  void end_section();

  // -- Primitive encoders (only valid inside a section) --
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 binary64 bit pattern: round-trips every value (NaN included)
  /// exactly, which the bit-identical resume guarantee depends on.
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u64) string.
  void str(std::string_view s);

  /// Seals the blob (end marker + checksum) and returns it. The Writer is
  /// spent afterwards.
  std::string finish() &&;

 private:
  void raw(const void* data, std::size_t n);

  std::string buf_;
  std::vector<std::uint32_t> tags_seen_;
  std::size_t section_start_ = 0;  ///< offset of the open section's length
  bool in_section_ = false;
  bool finished_ = false;
};

/// Parses and validates a snapshot blob, then serves bounds-checked reads.
/// Construction verifies the full frame -- magic, version, every section
/// header, the end marker, the checksum, and that nothing trails the
/// checksum -- so a Reader that exists is structurally sound; only
/// per-field semantic checks remain for load_state() implementations.
///
/// The Reader borrows the blob: the string/span handed to the constructor
/// must outlive it.
class Reader {
 public:
  explicit Reader(std::string_view blob);

  /// Positions the cursor at the start of section `tag`. Throws
  /// kBadSection when absent. Each section can be (re)opened any number of
  /// times; reads never cross its end.
  void open_section(std::uint32_t tag);
  bool has_section(std::uint32_t tag) const noexcept;
  /// Tags in stream order (introspection/tools).
  std::vector<std::uint32_t> section_tags() const;

  // -- Primitive decoders (only valid after open_section) --
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  void bytes(std::span<std::uint8_t> out);
  std::string str();

  /// Bytes left in the open section.
  std::size_t remaining() const noexcept;
  /// Throws kBadSection unless the open section was fully consumed --
  /// load_state() implementations call this to reject oversized payloads.
  void expect_section_end() const;

 private:
  struct Section {
    std::uint32_t tag = 0;
    std::size_t offset = 0;  ///< payload start within blob_
    std::size_t size = 0;
  };

  const Section* find(std::uint32_t tag) const noexcept;
  void need(std::size_t n) const;

  std::string_view blob_;
  std::vector<Section> sections_;
  std::size_t cursor_ = 0;
  std::size_t section_end_ = 0;
};

/// The save/restore contract. Implementations write/read only their own
/// payload fields -- the caller owns section framing, so one object's state
/// can be embedded in a full snapshot or shipped alone (policy seeding).
/// load_state() must either fully restore the object or throw
/// SnapshotError without observable partial effects callers need to worry
/// about (the runner treats any throw as fatal for the resume).
class Snapshotable {
 public:
  virtual ~Snapshotable() = default;
  virtual void save_state(Writer& w) const = 0;
  virtual void load_state(Reader& r) = 0;
};

// -- Convenience file wrappers (tools / CLI; not hot paths) --
void save_snapshot_file(const std::string& blob, const std::string& path);
std::string load_snapshot_file(const std::string& path);

/// FNV-1a 64-bit over a byte range (the trailer checksum; exposed for
/// tests and tools).
std::uint64_t fnv1a64(std::string_view data);

}  // namespace odrl::snapshot
