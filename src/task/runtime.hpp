// Work-stealing task runtime: the execution substrate for the epoch
// pipeline and for multi-chip sharded runs (sim::MultiChipRun).
//
// Shape (in the style of mx::tasking): `workers - 1` spawned threads plus
// the calling thread, each with an owner-local deque operated with the
// Chase-Lev discipline -- the owner pushes and pops at the *bottom*
// (LIFO, cache-warm), thieves steal from the *top* (FIFO, oldest task
// first) -- plus a bounded MPSC submission channel that external
// (non-worker) threads round-robin tasks into. Idle workers drain their
// channel, then their deque, then scan the other workers' structures;
// when a full scan finds nothing they park on a generation-counted
// epoch barrier until a producer publishes new work. Core pinning is
// optional and best-effort (Linux sched affinity).
//
// The rings are fixed-capacity and guarded by per-ring mutexes rather
// than the lock-free Chase-Lev protocol: the protocol's *discipline*
// (owner-bottom / thief-top) is kept, the racy memory reclamation is
// not, so the runtime is ThreadSanitizer-clean by construction and the
// tsan CI job can pin the whole epoch pipeline (see DESIGN.md "Task
// runtime & multi-chip sharding"). At this library's task granularity
// (a chunk of cores, or a whole chip run) the mutex cost is noise.
// Every lock here is an annotated util::Mutex: guarded members are
// machine-checked by Clang Thread Safety Analysis (CI builds src/ with
// -Wthread-safety -Werror) and the ODRL_CHECKED lock-rank checker aborts
// on any out-of-order acquisition (util/lock_rank.hpp rank table).
//
// Determinism contract (inherited verbatim from the retired fork-join
// util::ThreadPool, pinned by tests/threading_test.cpp + golden suite):
// parallel_for/parallel_reduce partition [0, n) into chunks whose
// boundaries are a pure function of (n, grain) -- never of worker count
// or of which worker claims which chunk. Reductions store one partial
// per chunk in a disjoint slot and fold the partials serially in chunk
// order, so the floating-point summation tree is fixed: stealing can
// reorder *execution*, never the *reduction*. A runtime of width 1
// spawns no workers and executes inline through the same chunked path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "util/function_ref.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::task {

/// Construction knobs. The defaults match the retired ThreadPool: width 1
/// (inline execution, no spawned threads), no pinning.
struct RuntimeConfig {
  /// Total execution width including the calling thread; the runtime
  /// spawns `workers - 1` threads. 0 means hardware_concurrency.
  std::size_t workers = 1;
  /// Best-effort: pin spawned worker i to CPU (i % hardware_concurrency).
  /// Failures are ignored (containers often restrict affinity masks).
  bool pin_workers = false;
  /// Slots per worker-owned deque. A full deque never loses work: the
  /// pushing thread executes the task inline and counts an overflow.
  std::size_t deque_capacity = 256;
  /// Slots per worker submission channel (external producers).
  std::size_t channel_capacity = 64;
};

/// Monotonic counters since construction (or the last reset_stats()).
/// Observational only -- reading them never perturbs scheduling, and the
/// multi-chip layer exports them as telemetry (task.steals, ...).
struct RuntimeStats {
  std::uint64_t tasks_executed = 0;  ///< tasks run to completion
  std::uint64_t steals = 0;          ///< tasks taken from another slot
  std::uint64_t steal_attempts = 0;  ///< victim probes (incl. misses)
  std::uint64_t overflows = 0;       ///< full-ring submissions run inline
  std::uint64_t max_queue_depth = 0; ///< deepest ring seen at push
  std::uint64_t worker_parks = 0;    ///< idle workers hitting the barrier
  std::uint64_t wait_parks = 0;      ///< wait() callers that had to block
};

class Runtime {
 public:
  /// Completion barrier for a batch of submitted tasks. Caller-owned and
  /// reusable after wait() returns; must outlive every task submitted
  /// against it. Not copyable/movable (tasks hold its address).
  class Group {
   public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

   private:
    friend class Runtime;
    // Completion is observed through pending_ alone and *signalled*
    // through the runtime-wide scheduler CV, never a per-group CV: the
    // last finisher's final touch of the (possibly stack-allocated)
    // Group is the fetch_sub itself, so a waiter that observes zero can
    // safely destroy the Group even while the finisher is still waking
    // other threads. mutex_ guards only error_, and only *before* the
    // owning task's decrement, so the same argument covers it.
    std::atomic<std::size_t> pending_{0};
    util::Mutex mutex_{util::LockRank::kGroup, "task-group"};
    std::exception_ptr error_ ODRL_GUARDED_BY(mutex_);  ///< first exception
  };

  /// `workers` = total execution width including the calling thread.
  explicit Runtime(std::size_t workers = 1);
  explicit Runtime(const RuntimeConfig& config);
  /// Drains every still-queued task inline (submitted-but-unwaited groups
  /// complete, never leak), then joins the workers. No submissions may be
  /// concurrent with destruction.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execution width (spawned workers + the calling thread).
  std::size_t size() const noexcept { return width_; }
  const RuntimeConfig& config() const noexcept { return config_; }

  /// 0 -> hardware_concurrency (>= 1), anything else unchanged. Throws
  /// std::invalid_argument on absurd counts (> 4096), which in practice
  /// means a negative value was cast to size_t on the way in.
  static std::size_t resolve_workers(std::size_t requested);

  /// Enqueues one task against `group`. The callable is *borrowed*: it
  /// must stay alive until wait(group) returns (keep it in a container
  /// next to the Group). A worker caller pushes to its own deque bottom;
  /// an external caller round-robins across the submission channels. If
  /// the target ring is full the task runs inline here (counted as an
  /// overflow) -- submission is therefore allocation-free and never
  /// blocks on a slow consumer.
  template <typename F>
  void submit(Group& group, F& fn) {
    static_assert(std::is_invocable_v<F&>,
                  "submit() callables take no arguments");
    group.pending_.fetch_add(1, std::memory_order_relaxed);
    enqueue(Task{&invoke_callable<F>, std::addressof(fn), 0, 0, &group});
    publish();
  }

  /// Blocks until every task submitted against `group` completed,
  /// *helping*: the caller executes queued tasks of this group (its own
  /// deque first, then steals) instead of spinning. Tasks of other
  /// groups are deliberately left alone -- helping must not capture the
  /// caller inside an unrelated long-running task (a nested chip step
  /// would otherwise block behind a sibling chip's whole run). Rethrows
  /// the first exception any task of the group threw.
  void wait(Group& group);

  /// Invokes body(begin, end) once per chunk of at most `grain` indices,
  /// covering [0, n) exactly. Chunks run concurrently; the caller helps
  /// and returns only when every chunk finished. The first exception
  /// thrown by a chunk is rethrown here (remaining chunks still run).
  /// Nestable: a task may call parallel_for on its own runtime (the
  /// per-chip epoch loops do exactly that under MultiChipRun).
  void parallel_for(std::size_t n, std::size_t grain,
                    util::FunctionRef<void(std::size_t, std::size_t)> body);

  /// Chunked map/reduce: acc = combine(acc, map(chunk)) folded serially
  /// in chunk order, starting from `identity`. Because the fold order is
  /// a pure function of (n, grain), the result is bit-identical for any
  /// worker count. This overload allocates a partials vector per call;
  /// hot loops pass a reusable scratch buffer to the overload below.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                    Combine&& combine) {
    std::vector<T> partials;
    return parallel_reduce(n, grain, std::move(identity),
                           std::forward<Map>(map),
                           std::forward<Combine>(combine), partials);
  }

  /// Scratch-buffer variant: `partials` is resized (capacity reused) to
  /// one slot per chunk, so a warmed-up caller performs zero heap
  /// allocations. Each chunk writes only its own slot (begin / grain) --
  /// disjoint stores, no synchronization beyond the group barrier.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, std::size_t grain, T identity, Map&& map,
                    Combine&& combine, std::vector<T>& partials) {
    if (n == 0) return identity;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t n_chunks = (n + g - 1) / g;
    partials.assign(n_chunks, identity);
    auto body = [&](std::size_t begin, std::size_t end) {
      partials[begin / g] = map(begin, end);
    };
    parallel_for(n, g, body);
    T acc = identity;
    for (const T& partial : partials) acc = combine(acc, partial);
    return acc;
  }

  /// Snapshot of the counters (torn reads across fields are acceptable:
  /// each field is individually consistent).
  RuntimeStats stats() const;
  void reset_stats();

 private:
  /// One queued unit of work: a raw trampoline + context (allocation-free
  /// by construction), an index range for chunk tasks, and the barrier it
  /// reports completion to.
  struct Task {
    void (*fn)(void* ctx, std::size_t begin, std::size_t end) = nullptr;
    void* ctx = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    Group* group = nullptr;
  };

  template <typename F>
  static void invoke_callable(void* ctx, std::size_t /*begin*/,
                              std::size_t /*end*/) {
    (*static_cast<F*>(ctx))();
  }

  /// Fixed-capacity ring operated with the Chase-Lev discipline under a
  /// per-ring mutex: owner at the bottom, thieves at the top.
  class TaskRing {
   public:
    explicit TaskRing(std::size_t capacity);
    bool push_bottom(const Task& task);           ///< false when full
    bool pop_bottom(Task& out);                   ///< owner end
    bool pop_bottom_if(const Group* group, Task& out);
    bool steal_top(Task& out);                    ///< thief end
    bool steal_top_if(const Group* group, Task& out);
    std::size_t depth() const;

   private:
    // All rings share rank kRing: the runtime's discipline is "release
    // the current ring before touching another", so two ring locks never
    // nest (the rank checker enforces that, same-rank nesting aborts).
    mutable util::Mutex mutex_{util::LockRank::kRing, "task-ring"};
    std::vector<Task> slots_ ODRL_GUARDED_BY(mutex_);
    std::size_t top_ ODRL_GUARDED_BY(mutex_) = 0;    ///< oldest task
    std::size_t count_ ODRL_GUARDED_BY(mutex_) = 0;  ///< live task count
  };

  /// Per-slot state. Slot 0 belongs to external callers (the thread that
  /// owns the Runtime, typically); slots 1..width-1 to spawned workers.
  struct WorkerState {
    WorkerState(std::size_t deque_cap, std::size_t channel_cap)
        : deque(deque_cap), channel(channel_cap) {}
    TaskRing deque;    ///< owner-local, Chase-Lev discipline
    TaskRing channel;  ///< bounded MPSC submission channel
  };

  void start_workers();
  void worker_loop(std::size_t slot);
  /// Slot of the calling thread in *this* runtime, or 0 for external
  /// threads (they share the external slot's rings under its locks).
  std::size_t current_slot() const;
  bool is_worker_thread() const;

  /// Routes a task to a ring (own deque for workers, round-robin channel
  /// for external callers); runs it inline on overflow.
  void enqueue(const Task& task);
  /// Bumps the activity generation and wakes parked workers.
  void publish();
  /// Next runnable task for `slot`, any group: own channel, own deque,
  /// then steal scan. Powers the idle worker loop and the destructor
  /// drain.
  bool find_task(std::size_t slot, Task& out);
  /// Group-filtered variant powering wait()'s help loop.
  bool find_group_task(std::size_t slot, const Group& group, Task& out);
  void execute(const Task& task);
  void note_depth(std::size_t depth);

  RuntimeConfig config_;
  std::size_t width_ = 1;
  std::vector<std::unique_ptr<WorkerState>> slots_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> round_robin_{0};

  /// Epoch barrier for idle workers: producers bump the generation under
  /// the mutex after publishing work; a worker whose full scan came up
  /// empty parks until the generation moves past the one it scanned at.
  util::Mutex sched_mutex_{util::LockRank::kScheduler, "task-sched"};
  util::CondVar sched_cv_;
  std::uint64_t activity_ ODRL_GUARDED_BY(sched_mutex_) = 0;
  bool stop_ ODRL_GUARDED_BY(sched_mutex_) = false;

  // Counters (relaxed; observational only).
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> worker_parks_{0};
  std::atomic<std::uint64_t> wait_parks_{0};
};

}  // namespace odrl::task
