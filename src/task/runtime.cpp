#include "task/runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace odrl::task {

namespace {

// A request beyond this is always a bug (e.g. a negative CLI value cast to
// size_t), never a real machine; fail with a readable message instead of
// letting vector::reserve throw length_error deep inside the constructor.
constexpr std::size_t kMaxWorkers = 4096;

// Which runtime (if any) the current thread is a spawned worker of, and
// its slot there. External threads -- including the runtime's owner --
// stay unregistered and share slot 0's rings under its locks.
thread_local const void* tls_runtime = nullptr;
thread_local std::size_t tls_slot = 0;

void pin_current_thread(std::size_t slot) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(slot % hw), &set);
  // Best-effort: containers and cgroups often restrict the affinity mask;
  // a failed pin costs locality, never correctness.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)slot;
#endif
}

}  // namespace

// ------------------------------------------------------------- TaskRing

Runtime::TaskRing::TaskRing(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {}

bool Runtime::TaskRing::push_bottom(const Task& task) {
  util::MutexLock lock(mutex_);
  if (count_ == slots_.size()) return false;
  slots_[(top_ + count_) % slots_.size()] = task;
  ++count_;
  return true;
}

bool Runtime::TaskRing::pop_bottom(Task& out) {
  util::MutexLock lock(mutex_);
  if (count_ == 0) return false;
  --count_;
  out = slots_[(top_ + count_) % slots_.size()];
  return true;
}

bool Runtime::TaskRing::pop_bottom_if(const Group* group, Task& out) {
  util::MutexLock lock(mutex_);
  if (count_ == 0) return false;
  const std::size_t bottom = (top_ + count_ - 1) % slots_.size();
  if (slots_[bottom].group != group) return false;
  --count_;
  out = slots_[bottom];
  return true;
}

bool Runtime::TaskRing::steal_top(Task& out) {
  util::MutexLock lock(mutex_);
  if (count_ == 0) return false;
  out = slots_[top_];
  top_ = (top_ + 1) % slots_.size();
  --count_;
  return true;
}

bool Runtime::TaskRing::steal_top_if(const Group* group, Task& out) {
  util::MutexLock lock(mutex_);
  if (count_ == 0 || slots_[top_].group != group) return false;
  out = slots_[top_];
  top_ = (top_ + 1) % slots_.size();
  --count_;
  return true;
}

std::size_t Runtime::TaskRing::depth() const {
  util::MutexLock lock(mutex_);
  return count_;
}

// -------------------------------------------------------------- Runtime

std::size_t Runtime::resolve_workers(std::size_t requested) {
  if (requested > kMaxWorkers) {
    throw std::invalid_argument("task::Runtime: worker count " +
                                std::to_string(requested) +
                                " exceeds the supported maximum (" +
                                std::to_string(kMaxWorkers) + ")");
  }
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

Runtime::Runtime(std::size_t workers) : Runtime(RuntimeConfig{workers}) {}

Runtime::Runtime(const RuntimeConfig& config) : config_(config) {
  width_ = resolve_workers(config_.workers);
  config_.workers = width_;
  config_.deque_capacity = std::max<std::size_t>(config_.deque_capacity, 1);
  config_.channel_capacity =
      std::max<std::size_t>(config_.channel_capacity, 1);
  slots_.reserve(width_);
  for (std::size_t s = 0; s < width_; ++s) {
    slots_.push_back(std::make_unique<WorkerState>(config_.deque_capacity,
                                                   config_.channel_capacity));
  }
  start_workers();
}

void Runtime::start_workers() {
  threads_.reserve(width_ - 1);
  for (std::size_t s = 1; s < width_; ++s) {
    threads_.emplace_back([this, s] { worker_loop(s); });
  }
}

Runtime::~Runtime() {
  // Drain: submitted-but-unwaited groups complete instead of leaking.
  // Workers race us for the remaining tasks; every task popped anywhere
  // runs to completion, so after the rings are empty and the workers are
  // joined no Group has pending work.
  Task task;
  while (find_task(current_slot(), task)) execute(task);
  {
    util::MutexLock lock(sched_mutex_);
    stop_ = true;
    ++activity_;
  }
  sched_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::size_t Runtime::current_slot() const {
  return tls_runtime == this ? tls_slot : 0;
}

bool Runtime::is_worker_thread() const { return tls_runtime == this; }

void Runtime::enqueue(const Task& task) {
  if (is_worker_thread()) {
    // Owner end: newest work at the bottom, cache-warm for ourselves,
    // while thieves drain the oldest chunks from the top.
    TaskRing& deque = slots_[tls_slot]->deque;
    if (deque.push_bottom(task)) {
      note_depth(deque.depth());
      return;
    }
  } else {
    // External producer: round-robin across the bounded submission
    // channels so a fleet of chip tasks spreads over the workers even
    // before any stealing happens.
    const std::size_t start =
        round_robin_.fetch_add(1, std::memory_order_relaxed) % width_;
    for (std::size_t i = 0; i < width_; ++i) {
      TaskRing& channel = slots_[(start + i) % width_]->channel;
      if (channel.push_bottom(task)) {
        note_depth(channel.depth());
        return;
      }
    }
  }
  // Every ring full: run inline. Submission never blocks or drops work;
  // the counter makes sustained overflow visible in telemetry.
  overflows_.fetch_add(1, std::memory_order_relaxed);
  execute(task);
}

void Runtime::publish() {
  {
    util::MutexLock lock(sched_mutex_);
    ++activity_;
  }
  sched_cv_.notify_all();
}

bool Runtime::find_task(std::size_t slot, Task& out) {
  WorkerState& self = *slots_[slot];
  // Own submissions first (FIFO), then own deque (LIFO), then steal the
  // oldest task from each victim in round-robin order.
  if (self.channel.steal_top(out)) return true;
  if (self.deque.pop_bottom(out)) return true;
  for (std::size_t i = 1; i < width_; ++i) {
    WorkerState& victim = *slots_[(slot + i) % width_];
    steal_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (victim.deque.steal_top(out) || victim.channel.steal_top(out)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool Runtime::find_group_task(std::size_t slot, const Group& group,
                              Task& out) {
  WorkerState& self = *slots_[slot];
  if (self.channel.steal_top_if(&group, out)) return true;
  if (self.deque.pop_bottom_if(&group, out)) return true;
  for (std::size_t i = 1; i < width_; ++i) {
    WorkerState& victim = *slots_[(slot + i) % width_];
    steal_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (victim.deque.steal_top_if(&group, out) ||
        victim.channel.steal_top_if(&group, out)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void Runtime::execute(const Task& task) {
  try {
    task.fn(task.ctx, task.begin, task.end);
  } catch (...) {
    if (task.group != nullptr) {
      util::MutexLock lock(task.group->mutex_);
      if (!task.group->error_) task.group->error_ = std::current_exception();
    }
  }
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (task.group != nullptr) {
    // The fetch_sub is the finisher's last touch of the Group (see the
    // Group declaration); completion wakeups go through the runtime CV.
    if (task.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        util::MutexLock lock(sched_mutex_);
        ++activity_;
      }
      sched_cv_.notify_all();
    }
  }
}

void Runtime::wait(Group& group) {
  const std::size_t slot = current_slot();
  Task task;
  while (group.pending_.load(std::memory_order_acquire) != 0) {
    if (find_group_task(slot, group, task)) {
      execute(task);
      continue;
    }
    // Nothing of ours is claimable: the rest of the group is either
    // running on other threads or buried behind other groups' tasks
    // (which only idle workers run, on purpose -- helping must not trap
    // us inside an unrelated long task). Park until the scheduler
    // generation moves, which every publish and every group completion
    // bumps.
    std::uint64_t seen = 0;
    {
      util::MutexLock lock(sched_mutex_);
      seen = activity_;
    }
    if (find_group_task(slot, group, task)) {  // close the publish race
      execute(task);
      continue;
    }
    {
      // Manual predicate loop (not the wait(lock, pred) overload): the
      // thread-safety analysis cannot follow locks across a predicate
      // lambda, and the explicit shape keeps the park accounting exact --
      // wait_parks counts callers that actually blocked.
      util::MutexLock lock(sched_mutex_);
      if (activity_ == seen &&
          group.pending_.load(std::memory_order_acquire) != 0) {
        wait_parks_.fetch_add(1, std::memory_order_relaxed);
        while (activity_ == seen &&
               group.pending_.load(std::memory_order_acquire) != 0) {
          sched_cv_.wait(sched_mutex_);
        }
      }
    }
  }
  std::exception_ptr error;
  {
    util::MutexLock lock(group.mutex_);
    error = group.error_;
    group.error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void Runtime::parallel_for(
    std::size_t n, std::size_t grain,
    util::FunctionRef<void(std::size_t, std::size_t)> body) {
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t n_chunks = (n + g - 1) / g;
  if (width_ == 1 || n_chunks == 1) {
    // Inline path: same chunk layout, zero synchronization. Keeps a
    // width-1 runtime free and guarantees identical chunk boundaries.
    for (std::size_t c = 0; c < n_chunks; ++c) {
      body(c * g, std::min(n, (c + 1) * g));
    }
    return;
  }

  Group group;
  group.pending_.store(n_chunks, std::memory_order_relaxed);
  Task task;
  task.fn = [](void* ctx, std::size_t begin, std::size_t end) {
    (*static_cast<util::FunctionRef<void(std::size_t, std::size_t)>*>(ctx))(
        begin, end);
  };
  task.ctx = &body;  // borrowed; alive until wait() returns below
  task.group = &group;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    task.begin = c * g;
    task.end = std::min(n, (c + 1) * g);
    enqueue(task);
  }
  publish();
  wait(group);
}

void Runtime::note_depth(std::size_t depth) {
  std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void Runtime::worker_loop(std::size_t slot) {
  tls_runtime = this;
  tls_slot = slot;
  if (config_.pin_workers) pin_current_thread(slot);
  std::uint64_t seen = 0;
  for (;;) {
    {
      util::MutexLock lock(sched_mutex_);
      if (stop_) return;
      seen = activity_;
    }
    Task task;
    bool ran = false;
    while (find_task(slot, task)) {
      execute(task);
      ran = true;
    }
    if (ran) continue;  // rescan under a fresh generation
    util::MutexLock lock(sched_mutex_);
    if (stop_) return;
    if (activity_ == seen) {
      // Per-worker epoch barrier: the scan at generation `seen` found
      // nothing, so sleep until a producer (or a group completion)
      // advances the generation. Manual predicate loop, same reasoning
      // as in wait().
      worker_parks_.fetch_add(1, std::memory_order_relaxed);
      while (!stop_ && activity_ == seen) sched_cv_.wait(sched_mutex_);
      if (stop_) return;
    }
  }
}

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.steal_attempts = steal_attempts_.load(std::memory_order_relaxed);
  s.overflows = overflows_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.worker_parks = worker_parks_.load(std::memory_order_relaxed);
  s.wait_parks = wait_parks_.load(std::memory_order_relaxed);
  return s;
}

void Runtime::reset_stats() {
  tasks_executed_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  steal_attempts_.store(0, std::memory_order_relaxed);
  overflows_.store(0, std::memory_order_relaxed);
  max_queue_depth_.store(0, std::memory_order_relaxed);
  worker_parks_.store(0, std::memory_order_relaxed);
  wait_parks_.store(0, std::memory_order_relaxed);
}

}  // namespace odrl::task
