#include "power/batch_power.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "power/power_model.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace odrl::power {

BatchPowerModel::BatchPowerModel(std::span<const arch::CoreParams> per_core,
                                 const arch::VfTable& table)
    : n_cores_(per_core.size()), n_levels_(table.size()) {
  if (per_core.empty()) {
    throw std::invalid_argument("BatchPowerModel: no cores");
  }
  volt_.reserve(n_levels_);
  freq_.reserve(n_levels_);
  for (const arch::VfPoint& point : table.points()) {
    volt_.push_back(point.voltage_v);
    freq_.push_back(point.freq_ghz);
  }
  c_eff_.reserve(n_cores_);
  leak_scale_.reserve(n_cores_);
  leak_t_coeff_.reserve(n_cores_);
  uncore_.reserve(n_cores_);
  exp_v_.reserve(n_cores_ * n_levels_);
  for (const arch::CoreParams& p : per_core) {
    p.validate();
    c_eff_.push_back(p.c_eff_nf);
    leak_scale_.push_back(p.leak_scale_w);
    leak_t_coeff_.push_back(p.leak_t_coeff);
    uncore_.push_back(p.uncore_w);
    // The cached factor is produced by the *same* std::exp expression
    // CoreParams::leakage_power_w evaluates per call, so substituting the
    // cache is a bitwise no-op on the result.
    for (std::size_t l = 0; l < n_levels_; ++l) {
      exp_v_.push_back(std::exp(p.leak_v_coeff * (volt_[l] - 1.0)));
    }
  }
}

void BatchPowerModel::kernel_scalar(
    std::size_t begin, std::size_t end, std::span<const std::size_t> level,
    std::span<const workload::PhaseSample> phases,
    std::span<const double> temp_c, std::span<double> out_w, double& act_min,
    double& act_max) const {
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t l = level[i];
    const double activity = phases[i].activity;
    act_min = std::min(act_min, activity);
    act_max = std::max(act_max, activity);
    const double a = std::clamp(activity, 0.0, 1.0);
    // Same association order as CoreParams::dynamic_power_w /
    // leakage_power_w / PowerBreakdown::total_w -- bit-identical by
    // construction.
    const double dyn = c_eff_[i] * a * volt_[l] * volt_[l] * freq_[l];
    const double exp_t =
        std::exp(leak_t_coeff_[i] * (temp_c[i] - 85.0));
    const double leak =
        leak_scale_[i] * volt_[l] * exp_v_[i * n_levels_ + l] * exp_t;
    out_w[i] = dyn + leak + uncore_[i];
  }
}

void BatchPowerModel::kernel_vec(std::size_t begin, std::size_t end,
                                 std::span<const std::size_t> level,
                                 std::span<const workload::PhaseSample> phases,
                                 std::span<const double> temp_c,
                                 std::span<double> out_w, double& act_min,
                                 double& act_max) const {
  using util::vdouble;
  using util::kSimdLanes;
  vdouble amin(act_min);
  vdouble amax(act_max);
  std::size_t i = begin;
  for (; i + kSimdLanes <= end; i += kSimdLanes) {
    const vdouble volts([&](auto k) { return volt_[level[i + k]]; });
    const vdouble freqs([&](auto k) { return freq_[level[i + k]]; });
    const vdouble expv(
        [&](auto k) { return exp_v_[(i + k) * n_levels_ + level[i + k]]; });
    const vdouble act([&](auto k) { return phases[i + k].activity; });
    amin = util::vmin(amin, act);
    amax = util::vmax(amax, act);
    const vdouble a = util::vclamp01(act);
    const vdouble c = util::vload(&c_eff_[i]);
    const vdouble ls = util::vload(&leak_scale_[i]);
    const vdouble unc = util::vload(&uncore_[i]);
    // The temperature exponential stays scalar per element: a vectorized
    // exp would not be bit-compatible with libm's.
    alignas(util::kSimdAlign) double et[kSimdLanes];
    for (std::size_t k = 0; k < kSimdLanes; ++k) {
      et[k] = std::exp(leak_t_coeff_[i + k] * (temp_c[i + k] - 85.0));
    }
    const vdouble expt = util::vload(et);
    const vdouble dyn = c * a * volts * volts * freqs;
    const vdouble leak = ls * volts * expv * expt;
    util::vstore(&out_w[i], dyn + leak + unc);
  }
  act_min = std::min(act_min, util::vreduce_min(amin));
  act_max = std::max(act_max, util::vreduce_max(amax));
  kernel_scalar(i, end, level, phases, temp_c, out_w, act_min, act_max);
}

void BatchPowerModel::core_power_into(
    std::size_t begin, std::size_t end, std::span<const std::size_t> level,
    std::span<const workload::PhaseSample> phases,
    std::span<const double> temp_c, std::span<double> out_w) const {
  if (end > n_cores_ || begin > end) {
    throw std::invalid_argument("BatchPowerModel: bad core range");
  }
  if (level.size() < end || phases.size() < end || temp_c.size() < end ||
      out_w.size() < end) {
    throw std::invalid_argument("BatchPowerModel: input span too short");
  }
  // The range check is hoisted out of the per-element path: the kernels
  // track min/max activity and one verdict is rendered per call, with the
  // same semantics as PowerModel::core_power_at (hard contract when
  // checked, tolerance clamp in release, throw beyond the tolerance).
  double act_min = 0.0;
  double act_max = 1.0;
  if (util::simd_active()) {
    kernel_vec(begin, end, level, phases, temp_c, out_w, act_min, act_max);
  } else {
    kernel_scalar(begin, end, level, phases, temp_c, out_w, act_min, act_max);
  }
  ODRL_CHECK(act_min >= 0.0 && act_max <= 1.0,
             "BatchPowerModel: activity must be in [0, 1]");
  if (act_min < -kActivityTol || act_max > 1.0 + kActivityTol) {
    throw std::invalid_argument("PowerModel: activity must be in [0, 1]");
  }
}

}  // namespace odrl::power
