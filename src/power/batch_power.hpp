// Batch (SoA, vectorized) evaluation of the per-core power model.
//
// The simulator's epoch loop evaluates core power for every core every
// epoch -- with the scalar PowerModel that is two std::exp calls per core
// per epoch, which dominates the kernel. BatchPowerModel restructures the
// same arithmetic for throughput without changing a single bit of the
// result:
//
//  * per-core constants (c_eff, leak_scale, leak_t_coeff, uncore) are laid
//    out as columns, so a lane-group of cores loads contiguously;
//  * the voltage-dependent leakage factor exp(leak_v_coeff * (V - 1)) only
//    takes one of n_levels values per core, so it is precomputed per
//    (core, level) at construction with the *same* std::exp call the
//    scalar model makes -- identical bits, and the hot path drops from two
//    exponentials per core to one;
//  * everything else is elementwise IEEE arithmetic, vectorized with
//    util/simd.hpp; the remaining temperature exponential stays scalar per
//    element (vectorized exp is not bit-compatible with libm).
//
// core_power_into() is bit-identical to looping
// PowerModel::core_power_at(vf[level], activity, temp).total_w(), including
// the activity tolerance-clamp semantics (see power_model.hpp), for both
// the scalar and vectorized variants -- tests/simd_kernel_test.cpp pins
// this, and the golden digests pin it end to end.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "arch/chip_config.hpp"
#include "arch/vf_table.hpp"
#include "workload/phase.hpp"

namespace odrl::power {

class BatchPowerModel {
 public:
  /// One CoreParams per core (variation- or hetero-applied), plus the
  /// chip's V/F table. Parameters are validated and frozen; the exp-v
  /// cache is built here (n_cores * n_levels doubles).
  BatchPowerModel(std::span<const arch::CoreParams> per_core,
                  const arch::VfTable& table);

  /// Writes total core power (dynamic + leakage + uncore, exactly
  /// PowerBreakdown::total_w()'s summation order) for cores [begin, end)
  /// into out_w[i]. Inputs are indexed by absolute core id; slots outside
  /// [begin, end) are untouched, so sharded callers can fill disjoint
  /// ranges concurrently. Zero heap allocations.
  void core_power_into(std::size_t begin, std::size_t end,
                       std::span<const std::size_t> level,
                       std::span<const workload::PhaseSample> phases,
                       std::span<const double> temp_c,
                       std::span<double> out_w) const;

  std::size_t n_cores() const noexcept { return n_cores_; }
  std::size_t n_levels() const noexcept { return n_levels_; }

 private:
  void kernel_scalar(std::size_t begin, std::size_t end,
                     std::span<const std::size_t> level,
                     std::span<const workload::PhaseSample> phases,
                     std::span<const double> temp_c, std::span<double> out_w,
                     double& act_min, double& act_max) const;
  void kernel_vec(std::size_t begin, std::size_t end,
                  std::span<const std::size_t> level,
                  std::span<const workload::PhaseSample> phases,
                  std::span<const double> temp_c, std::span<double> out_w,
                  double& act_min, double& act_max) const;

  std::size_t n_cores_ = 0;
  std::size_t n_levels_ = 0;
  // Per-level operating point columns.
  std::vector<double> volt_;
  std::vector<double> freq_;
  // Per-core technology columns.
  std::vector<double> c_eff_;
  std::vector<double> leak_scale_;
  std::vector<double> leak_t_coeff_;
  std::vector<double> uncore_;
  /// exp(leak_v_coeff * (V_level - 1)) per (core, level), level-major per
  /// core: exp_v_[core * n_levels + level].
  std::vector<double> exp_v_;
};

}  // namespace odrl::power
