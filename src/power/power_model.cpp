#include "power/power_model.hpp"

#include <stdexcept>

namespace odrl::power {

PowerModel::PowerModel(arch::CoreParams params) : params_(params) {
  params_.validate();
}

PowerBreakdown PowerModel::core_power(const arch::VfPoint& vf,
                                      const workload::PhaseSample& phase,
                                      double temp_c) const {
  return core_power_at(vf, phase.activity, temp_c);
}

PowerBreakdown PowerModel::core_power_at(const arch::VfPoint& vf,
                                         double activity,
                                         double temp_c) const {
  if (activity < 0.0 || activity > 1.0) {
    throw std::invalid_argument("PowerModel: activity must be in [0, 1]");
  }
  PowerBreakdown out;
  out.dynamic_w = params_.dynamic_power_w(vf.voltage_v, vf.freq_ghz, activity);
  out.leakage_w = params_.leakage_power_w(vf.voltage_v, temp_c);
  out.uncore_w = params_.uncore_w;
  return out;
}

double PowerModel::idle_power_w(const arch::VfPoint& vf, double temp_c) const {
  return core_power_at(vf, 0.0, temp_c).total_w();
}

double PowerModel::max_core_power_w(const arch::VfPoint& vf,
                                    double temp_c) const {
  return core_power_at(vf, 1.0, temp_c).total_w();
}

}  // namespace odrl::power
