#include "power/power_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace odrl::power {

PowerModel::PowerModel(arch::CoreParams params) : params_(params) {
  params_.validate();
}

PowerBreakdown PowerModel::core_power(const arch::VfPoint& vf,
                                      const workload::PhaseSample& phase,
                                      double temp_c) const {
  return core_power_at(vf, phase.activity, temp_c);
}

PowerBreakdown PowerModel::core_power_at(const arch::VfPoint& vf,
                                         double activity,
                                         double temp_c) const {
  // Contract first (checked builds reject any excursion), tolerance clamp
  // second: a saturating sensor path handing us 1.0 + epsilon must not
  // abort a release run -- but a wildly out-of-range value is corrupt
  // input and still throws.
  ODRL_CHECK(activity >= 0.0 && activity <= 1.0,
             "PowerModel: activity must be in [0, 1]");
  if (activity < -kActivityTol || activity > 1.0 + kActivityTol) {
    throw std::invalid_argument("PowerModel: activity must be in [0, 1]");
  }
  const double a = std::clamp(activity, 0.0, 1.0);
  PowerBreakdown out;
  out.dynamic_w = params_.dynamic_power_w(vf.voltage_v, vf.freq_ghz, a);
  out.leakage_w = params_.leakage_power_w(vf.voltage_v, temp_c);
  out.uncore_w = params_.uncore_w;
  return out;
}

double PowerModel::idle_power_w(const arch::VfPoint& vf, double temp_c) const {
  return core_power_at(vf, 0.0, temp_c).total_w();
}

double PowerModel::max_core_power_w(const arch::VfPoint& vf,
                                    double temp_c) const {
  return core_power_at(vf, 1.0, temp_c).total_w();
}

}  // namespace odrl::power
