#include "power/energy.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::power {

EnergyAccountant::EnergyAccountant(double budget_w) : budget_w_(budget_w) {
  if (budget_w <= 0.0) {
    throw std::invalid_argument("EnergyAccountant: budget_w <= 0");
  }
}

void EnergyAccountant::set_budget_w(double budget_w) {
  if (budget_w <= 0.0) {
    throw std::invalid_argument("EnergyAccountant::set_budget_w: <= 0");
  }
  budget_w_ = budget_w;
}

void EnergyAccountant::add_epoch(double chip_w, double epoch_s) {
  if (chip_w < 0.0) {
    throw std::invalid_argument("EnergyAccountant: chip_w < 0");
  }
  if (epoch_s <= 0.0) {
    throw std::invalid_argument("EnergyAccountant: epoch_s <= 0");
  }
  total_j_ += chip_w * epoch_s;
  const double over = chip_w - budget_w_;
  if (over > 0.0) {
    otb_j_ += over * epoch_s;
    time_over_s_ += epoch_s;
    peak_overshoot_w_ = std::max(peak_overshoot_w_, over);
  }
  elapsed_s_ += epoch_s;
  ++epochs_;
}

double EnergyAccountant::mean_power_w() const {
  return elapsed_s_ == 0.0 ? 0.0 : total_j_ / elapsed_s_;
}

double EnergyAccountant::overshoot_time_fraction() const {
  return elapsed_s_ == 0.0 ? 0.0 : time_over_s_ / elapsed_s_;
}

void EnergyAccountant::reset() {
  total_j_ = 0.0;
  otb_j_ = 0.0;
  time_over_s_ = 0.0;
  elapsed_s_ = 0.0;
  peak_overshoot_w_ = 0.0;
  epochs_ = 0;
}

}  // namespace odrl::power
