// McPAT-class per-core power model.
//
// Dynamic power scales as a C V^2 f (activity- and workload-dependent),
// leakage as V * exp-in-V with an exponential temperature dependence, plus a
// constant uncore share. The defining formulas live on arch::CoreParams so
// budget math everywhere in the library agrees to the last bit; this module
// adds the breakdown/accounting machinery controllers and metrics consume.
#pragma once

#include "arch/chip_config.hpp"
#include "workload/phase.hpp"

namespace odrl::power {

/// Tolerance on the activity range check. Saturating/noisy sensor paths
/// can legitimately present 1.0 + epsilon (rounding in a fault filter or a
/// baseline's implied-activity back-solve); values inside the tolerance
/// band are clamped to [0, 1], values beyond it still throw -- that is
/// corrupt input, not rounding. ODRL_CHECKED builds keep the hard [0, 1]
/// contract (a ContractViolation fires before any clamp).
inline constexpr double kActivityTol = 1e-6;

/// Per-core power split for one epoch.
struct PowerBreakdown {
  double dynamic_w = 0.0;
  double leakage_w = 0.0;
  double uncore_w = 0.0;

  double total_w() const { return dynamic_w + leakage_w + uncore_w; }
};

class PowerModel {
 public:
  explicit PowerModel(arch::CoreParams params);

  /// Power of a core running `phase` at operating point `vf`, junction
  /// temperature `temp_c`.
  PowerBreakdown core_power(const arch::VfPoint& vf,
                            const workload::PhaseSample& phase,
                            double temp_c) const;

  /// Power with explicit activity (bypasses the phase struct; used by
  /// analytical baselines that predict power for hypothetical activity).
  /// Activity within kActivityTol of [0, 1] is clamped; beyond that it
  /// throws std::invalid_argument (and ODRL_CHECKED builds enforce the
  /// strict [0, 1] contract first).
  PowerBreakdown core_power_at(const arch::VfPoint& vf, double activity,
                               double temp_c) const;

  /// Idle power (zero switching activity): leakage + uncore only.
  double idle_power_w(const arch::VfPoint& vf, double temp_c) const;

  /// Upper bound on a single core's power at this operating point
  /// (activity = 1, given temperature). Budget allocators use this to
  /// translate watts into a safe V/F ceiling.
  double max_core_power_w(const arch::VfPoint& vf, double temp_c) const;

  const arch::CoreParams& params() const { return params_; }

 private:
  arch::CoreParams params_;
};

}  // namespace odrl::power
