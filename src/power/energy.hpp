// Chip-level energy accounting.
//
// Tracks total energy and, crucially for the paper's headline metrics,
// *over-the-budget* (OTB) energy: the integral of chip power above the TDP
// budget. OTB energy is what stresses the power-delivery network and erodes
// thermal headroom; "throughput per OTB energy" (E3) rewards controllers
// that convert any overshoot they do commit into performance.
#pragma once

#include <cstddef>
#include <vector>

namespace odrl::power {

class EnergyAccountant {
 public:
  explicit EnergyAccountant(double budget_w);

  /// Records one epoch of `epoch_s` seconds at total chip power `chip_w`.
  void add_epoch(double chip_w, double epoch_s);

  double budget_w() const { return budget_w_; }
  /// Budget can move at runtime (power-cap events); accounting continues
  /// against the new value from the next epoch on.
  void set_budget_w(double budget_w);

  double total_energy_j() const { return total_j_; }
  double otb_energy_j() const { return otb_j_; }
  /// Seconds spent with chip power strictly above budget.
  double time_over_budget_s() const { return time_over_s_; }
  double elapsed_s() const { return elapsed_s_; }
  std::size_t epochs() const { return epochs_; }
  /// Worst instantaneous overshoot observed, in watts (0 if never over).
  double peak_overshoot_w() const { return peak_overshoot_w_; }
  /// Mean chip power over the run.
  double mean_power_w() const;
  /// Fraction of time over budget, in [0, 1].
  double overshoot_time_fraction() const;

  void reset();

 private:
  double budget_w_;
  double total_j_ = 0.0;
  double otb_j_ = 0.0;
  double time_over_s_ = 0.0;
  double elapsed_s_ = 0.0;
  double peak_overshoot_w_ = 0.0;
  std::size_t epochs_ = 0;
};

}  // namespace odrl::power
