#include "service/client.hpp"

#include <stdexcept>
#include <utility>

#include "arch/chip_config.hpp"
#include "workload/workload.hpp"

namespace odrl::service {
namespace {

sim::ManyCoreSystem make_tenant_system(const TenantConfig& config) {
  sim::SimConfig sim;
  sim.seed = config.seed;
  sim.threads = 1;
  return sim::ManyCoreSystem(
      arch::ChipConfig::make(config.cores, config.budget_fraction),
      std::make_unique<workload::GeneratedWorkload>(
          workload::GeneratedWorkload::mixed_suite(config.cores,
                                                   config.seed)),
      sim);
}

}  // namespace

LoopbackClient::LoopbackClient(Server& server, std::string name)
    : conn_(server.connect()), name_(std::move(name)) {}

std::uint64_t LoopbackClient::post(Message msg) {
  const std::uint64_t seq = next_seq_++;
  std::visit([seq](auto& m) { m.head.seq = seq; }, msg);
  conn_->post(encode_message(msg));
  return seq;
}

Message LoopbackClient::wait_reply() {
  return decode_message(conn_->take_reply());
}

Message LoopbackClient::call(Message msg) {
  post(std::move(msg));
  return wait_reply();
}

template <typename R>
R LoopbackClient::expect(Message reply) {
  if (auto* r = std::get_if<R>(&reply)) return std::move(*r);
  if (auto* err = std::get_if<ErrorReply>(&reply)) {
    throw ServiceError(err->status, err->message);
  }
  throw ServiceError(ServiceStatus::kBadMessage,
                     "client: unexpected reply type");
}

HelloReply LoopbackClient::hello() {
  HelloRequest req;
  req.head.type = MsgType::kHello;
  req.client = name_;
  return expect<HelloReply>(call(std::move(req)));
}

OpenSessionReply LoopbackClient::open_session(OpenSessionRequest req) {
  req.head = MsgHeader{};
  req.head.type = MsgType::kOpenSession;
  return expect<OpenSessionReply>(call(std::move(req)));
}

StepEpochReply LoopbackClient::step(std::uint64_t session_id,
                                    std::uint64_t epoch,
                                    const sim::EpochResult& obs) {
  StepEpochRequest req;
  req.head.type = MsgType::kStepEpoch;
  req.head.session_id = session_id;
  req.epoch = epoch;
  req.obs = obs;
  return expect<StepEpochReply>(call(std::move(req)));
}

SnapshotReply LoopbackClient::snapshot(std::uint64_t session_id) {
  SnapshotRequest req;
  req.head.type = MsgType::kSnapshot;
  req.head.session_id = session_id;
  return expect<SnapshotReply>(call(std::move(req)));
}

CloseSessionReply LoopbackClient::close_session(std::uint64_t session_id) {
  CloseSessionRequest req;
  req.head.type = MsgType::kCloseSession;
  req.head.session_id = session_id;
  return expect<CloseSessionReply>(call(std::move(req)));
}

Tenant::Tenant(LoopbackClient& client, const TenantConfig& config)
    : client_(client), system_(make_tenant_system(config)) {
  OpenSessionRequest open;
  open.controller = config.controller;
  open.cores = config.cores;
  open.budget_fraction = config.budget_fraction;
  open.seed = config.seed;
  open.tag = config.tag;
  open.watchdog = config.watchdog;
  open.overrides = config.overrides;
  OpenSessionReply reply = client_.open_session(std::move(open));
  session_id_ = reply.head.session_id;
  levels_ = std::move(reply.initial_levels);
  if (levels_.size() != config.cores) {
    throw ServiceError(ServiceStatus::kDimensionMismatch,
                       "tenant: initial levels size mismatch");
  }
}

const StepEpochReply& Tenant::step() {
  post_step();
  return complete_step();
}

void Tenant::post_step() {
  system_.step_into(levels_, obs_);
  StepEpochRequest req;
  req.head.type = MsgType::kStepEpoch;
  req.head.session_id = session_id_;
  req.epoch = epoch_;
  req.obs = obs_;
  client_.post(std::move(req));
}

const StepEpochReply& Tenant::complete_step() {
  Message reply = client_.wait_reply();
  if (auto* err = std::get_if<ErrorReply>(&reply)) {
    throw ServiceError(err->status, err->message);
  }
  auto* step_reply = std::get_if<StepEpochReply>(&reply);
  if (step_reply == nullptr || step_reply->epoch != epoch_) {
    throw ServiceError(ServiceStatus::kBadMessage,
                       "tenant: mismatched step reply");
  }
  adopt(*step_reply);
  return last_;
}

void Tenant::adopt(const StepEpochReply& reply) {
  last_ = reply;
  levels_ = reply.levels;
  ++epoch_;
  for (const std::size_t level : reply.levels) {
    // FNV-1a over the level bytes, folded level by level: cheap, order-
    // sensitive, and identical across platforms for 64-bit size_t.
    digest_ ^= static_cast<std::uint64_t>(level);
    digest_ *= 0x100000001b3ull;
  }
}

CloseSessionReply Tenant::close() {
  return client_.close_session(session_id_);
}

}  // namespace odrl::service
