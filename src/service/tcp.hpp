// Thin TCP adapter over the service wire protocol: length-prefixed frames
// (wire.hpp framing) on a localhost/LAN socket. Deliberately minimal --
// the in-process Connection is the primary transport; this adapter exists
// so a real tenant host can talk to the service from outside the process.
//
// Threading: the adapter owns NO threads (lint rule raw-thread). The
// caller pumps poll_once() from whatever thread it likes; request
// handling still happens on the Server's task runtime (or inline at
// width 1), so the pump is a pure byte shuttle. Socket failures on a
// single peer close that peer, never the server: sends use MSG_NOSIGNAL
// so a peer that resets mid-write surfaces as EPIPE (dead peer), not
// SIGPIPE (dead process).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/server.hpp"
#include "service/wire.hpp"

namespace odrl::service {

/// Accepts TCP peers and bridges each one to a Server::Connection.
class TcpServer {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; read the
  /// outcome back with port()). Throws std::runtime_error on socket
  /// failures.
  TcpServer(Server& server, std::uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  std::size_t peer_count() const noexcept { return peers_.size(); }

  /// One pump iteration: waits up to `timeout_ms` for socket readiness
  /// (0 = non-blocking), accepts pending peers, reads complete frames
  /// into the server, flushes pending replies. Returns the number of
  /// frames moved in either direction (0 = idle). A peer that sends a
  /// hostile length prefix, hangs up, or is owed a reply too large to
  /// frame (> kMaxFrameBytes) is closed; the loop keeps serving the rest.
  std::size_t poll_once(int timeout_ms = 0);

 private:
  struct Peer {
    int fd = -1;
    std::shared_ptr<Server::Connection> conn;
    FrameDecoder decoder;
    std::string outbuf;  ///< framed reply bytes not yet written
  };

  void close_peer(std::size_t index);

  Server& server_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Peer> peers_;
};

/// Blocking client socket speaking the same framing; the test-side
/// counterpart of TcpServer (a real deployment would reimplement this
/// loop in the tenant host's own language/runtime).
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port,
                     const std::string& host = "127.0.0.1");
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Frames and writes one request payload (blocking until written).
  void post(std::string_view payload);
  /// Blocks until one complete reply frame arrives and returns its
  /// payload. Throws std::runtime_error if the server hangs up first.
  std::string take_reply();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace odrl::service
