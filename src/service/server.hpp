// The control-plane service: one Server process supervising a fleet of
// tenant chips, each tenant a *session* -- a controller instance built
// through the registry, stepped one observation batch at a time over the
// wire protocol (service/wire.hpp).
//
// Execution model (actor-style, on the PR 8 task runtime):
//
//   * A Connection is a duplex pair of FIFO queues (inbox of request
//     payloads, outbox of reply payloads). post() enqueues a request and
//     schedules at most ONE drain task per connection on the runtime; the
//     drain processes the inbox in order, so replies leave a connection
//     in request order, pipelining included.
//   * handle() -- decode, dispatch, encode -- is the synchronous core.
//     Drain tasks never block on other tasks and sessions never submit
//     nested work (session controllers run at width 1), so a worker is
//     never parked inside a handler: the server cannot deadlock itself.
//   * With a width-1 runtime the drain runs inline in post()'s caller
//     (the runtime spawns no workers at width 1), which keeps a
//     single-threaded server live without a pump thread.
//
// Determinism: each session's decision stream depends only on its own
// request sequence -- per-connection FIFO plus a per-session lock plus
// width-1 controllers means worker count changes *interleaving across
// sessions*, never the decisions of any one session. The soak test pins
// this: 256 sessions, workers 1/2/4, bit-identical level streams.
//
// Error contract: handle() never throws and never crashes the process on
// client bytes -- every failure becomes an ErrorReply carrying a
// ServiceStatus (hostile frames, unknown sessions, shape mismatches,
// non-finite sensor readings). The only escapes are logic_error-family
// exceptions (util::ContractViolation), which indicate a server bug and
// are deliberately left fatal so the fuzzer surfaces them.
//
// Lock order (util/lock_rank.hpp): kServiceTable (32) -> kServiceSession
// (34) -> kServiceQueue (36) -> runtime internals (40+). Registry and
// recorder locks rank *below* the service ranks, so controllers are
// built and counters exported with no service lock held.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "service/wire.hpp"
#include "sim/controller.hpp"
#include "sim/runner.hpp"
#include "task/runtime.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::telemetry {
class Recorder;
}

namespace odrl::service {

struct ServerConfig {
  /// Execution width of the server's task runtime (1 = inline drains,
  /// 0 = hardware concurrency). Replies are bit-identical for any value.
  std::size_t workers = 1;
  /// Session-table capacity; OpenSession beyond it gets kSessionLimit.
  std::size_t max_sessions = 4096;
  /// Largest chip a tenant may open (cores); guards the per-session
  /// memory footprint against a hostile OpenSession.
  std::size_t max_cores = 4096;
  /// Server identity echoed in HelloReply.
  std::string name = "odrl-service";
  /// Default watchdog policy applied to sessions that request one
  /// (OpenSessionRequest::watchdog). `enabled` is ignored -- the per-open
  /// flag decides; the thresholds come from here.
  sim::WatchdogConfig watchdog;

  void validate() const;
};

/// Monotonic server-wide counters (relaxed atomic reads; observational).
struct ServerStats {
  std::uint64_t requests = 0;         ///< payloads handled, errors included
  std::uint64_t errors = 0;           ///< ErrorReply responses produced
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t epochs = 0;           ///< StepEpoch requests served
  std::uint64_t sanitized = 0;        ///< watchdog level corrections
};

class Server {
 public:
  /// One client endpoint: paired FIFO queues bridged by the server's
  /// drain tasks. Create via Server::connect(); the server keeps every
  /// connection alive until it is destroyed, so a client may drop its
  /// handle at any time.
  class Connection {
   public:
    /// Enqueues one request payload (a wire message, no length prefix)
    /// and wakes the server. Never blocks on the server being busy.
    void post(std::string payload);
    /// Blocks until the next reply payload is available and returns it.
    /// Replies arrive in request order.
    std::string take_reply();
    /// Non-blocking variant; false when no reply is pending.
    bool try_take_reply(std::string& out);

   private:
    friend class Server;
    explicit Connection(Server* server) : server_(server) {}

    /// One queued request. The shutdown cut is taken at post() time:
    /// `accepted` records whether the payload beat begin_shutdown(), so a
    /// drain running after shutdown still answers pre-shutdown requests
    /// normally.
    struct Inbound {
      std::string payload;
      bool accepted = true;
    };

    Server* server_;
    util::Mutex mutex_{util::LockRank::kServiceQueue, "service-conn"};
    util::CondVar reply_ready_;
    std::deque<Inbound> inbox_ ODRL_GUARDED_BY(mutex_);
    std::deque<std::string> outbox_ ODRL_GUARDED_BY(mutex_);
    /// True while a drain task is queued or running for this connection
    /// (at most one at a time -- the per-connection FIFO guarantee).
    bool drain_scheduled_ ODRL_GUARDED_BY(mutex_) = false;
    /// The borrowed callable submitted to the runtime (task::Runtime
    /// borrows callables; this one lives as long as the connection).
    struct DrainTask {
      Connection* conn = nullptr;
      void operator()() const;
    };
    DrainTask drain_task_{this};
  };

  explicit Server(ServerConfig config = {});
  /// Stops accepting work (everything posted before this point --
  /// including requests still queued in a connection inbox -- finishes
  /// and is answered normally; anything posted after is answered
  /// kShutdown), waits for every scheduled drain, then joins the runtime.
  /// No post() may be concurrent with destruction's *completion* -- same
  /// contract as task::Runtime.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServerConfig& config() const noexcept { return config_; }

  /// Opens a new in-process connection (the LoopbackClient transport; the
  /// TCP adapter opens one per accepted socket).
  std::shared_ptr<Connection> connect();

  /// The synchronous request core: decodes `payload`, dispatches, returns
  /// the encoded reply. Exposed publicly for the fuzz driver and direct
  /// tests; transports go through Connection::post(). Shutdown is
  /// enforced at post() time, so direct handle() calls are always served.
  std::string handle(std::string_view payload);

  /// Rejects all requests posted after this call with kShutdown
  /// (idempotent). The cut is taken at Connection::post() time:
  /// already-queued requests still get real replies even if their drain
  /// runs later. The destructor calls this; exposed so a host can drain
  /// gracefully first.
  void begin_shutdown();

  ServerStats stats() const;
  /// Number of live sessions (tests/monitoring).
  std::size_t session_count() const;

  /// Adds the server-wide counters and every live session's per-session
  /// counters (service.session.<tag>.*) into `recorder`'s instruments.
  /// Caller-thread only, per the Recorder threading contract; snapshots
  /// the values first so no service lock is held across recorder calls.
  void export_counters(telemetry::Recorder& recorder) const;

 private:
  /// One tenant: a chip shape, a controller, and the session-scoped
  /// bookkeeping (epoch cursor, watchdog latches, counters).
  struct Session {
    explicit Session(arch::ChipConfig chip_config)
        : chip(std::move(chip_config)) {}

    const arch::ChipConfig chip;
    std::string tag;  ///< immutable after open (telemetry identity)

    util::Mutex mutex{util::LockRank::kServiceSession, "service-session"};
    std::unique_ptr<sim::Controller> controller ODRL_GUARDED_BY(mutex);
    std::uint64_t next_epoch ODRL_GUARDED_BY(mutex) = 0;
    bool closed ODRL_GUARDED_BY(mutex) = false;
    double budget_w ODRL_GUARDED_BY(mutex) = 0.0;
    std::vector<std::size_t> levels ODRL_GUARDED_BY(mutex);  ///< scratch

    // Watchdog policy (per-tenant; see sim::WatchdogConfig). Mirrors the
    // runner's semantics minus the fault-engine gate -- the service sees
    // only what the tenant reports, so sustained overshoot alone trips
    // the chip-wide fallback.
    bool watchdog ODRL_GUARDED_BY(mutex) = false;
    sim::WatchdogConfig wd;  ///< thresholds; immutable after open
    std::size_t safe_level ODRL_GUARDED_BY(mutex) = 0;
    double safe_level_budget_w ODRL_GUARDED_BY(mutex) = -1.0;
    std::size_t consecutive_violations ODRL_GUARDED_BY(mutex) = 0;
    std::vector<std::size_t> fallback_hold ODRL_GUARDED_BY(mutex);

    // Lifetime counters; atomic so export_counters() reads them without
    // the session lock.
    std::atomic<std::uint64_t> epochs{0};
    std::atomic<std::uint64_t> sanitized{0};
  };

  // -- Request handlers (one per MsgType; each returns the reply) --
  Message handle_hello(const HelloRequest& req);
  Message handle_open(const OpenSessionRequest& req);
  Message handle_step(const StepEpochRequest& req);
  Message handle_snapshot(const SnapshotRequest& req);
  Message handle_close(const CloseSessionRequest& req);

  /// Looks up a live session or throws ServiceError(kUnknownSession).
  std::shared_ptr<Session> find_session(std::uint64_t id) const
      ODRL_EXCLUDES(table_mutex_);

  /// Rejects non-finite / out-of-range observation fields with
  /// ServiceError before any of them reach a controller (whose
  /// ODRL_CHECKED contracts would abort-by-design on garbage).
  static void validate_observation(const Session& session,
                                   const StepEpochRequest& req)
      ODRL_REQUIRES(session.mutex);

  /// Serializes one session (SESS bookkeeping + the runner-format CTRL
  /// section, so the blob warm-starts a future OpenSession).
  static std::string snapshot_session(Session& session)
      ODRL_REQUIRES(session.mutex);

  /// Builds the kShutdown ErrorReply for a payload that was posted after
  /// begin_shutdown() (counted in requests_ and errors_).
  std::string reject_shutdown(std::string_view payload);

  /// Drains `conn`'s inbox (FIFO) until empty; the body of DrainTask.
  void drain(Connection& conn);
  /// Schedules a drain for `conn` unless one is already pending; runs it
  /// inline when the runtime has width 1.
  void schedule_drain(Connection& conn);

  ServerConfig config_;
  std::unique_ptr<task::Runtime> runtime_;
  /// Completion barrier for every drain task ever submitted; waited in
  /// the destructor.
  task::Runtime::Group drains_;

  mutable util::Mutex table_mutex_{util::LockRank::kServiceTable,
                                   "service-table"};
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_
      ODRL_GUARDED_BY(table_mutex_);
  std::vector<std::shared_ptr<Connection>> connections_
      ODRL_GUARDED_BY(table_mutex_);
  std::uint64_t next_session_id_ ODRL_GUARDED_BY(table_mutex_) = 1;

  std::atomic<bool> shutdown_{false};

  // Server-wide counters (relaxed; observational only).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::uint64_t> sanitized_{0};
};

}  // namespace odrl::service
