// Client-side conveniences over the wire protocol: a LoopbackClient that
// drives a Server over an in-process Connection (the transport every test
// and bench uses -- no sockets, no hardware), and a Tenant that closes
// the loop end to end: a simulated chip whose epoch observations go up to
// the service and whose V/F levels come back down, exactly the
// deployment shape minus the network.
//
// A LoopbackClient is deliberately NOT thread-safe: it models one tenant
// host pumping one connection. Concurrency comes from many clients (each
// with its own Connection), which is also how the soak test exercises
// worker counts -- per-session decision streams must not change when the
// server's worker fleet grows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/server.hpp"
#include "service/wire.hpp"
#include "sim/observation.hpp"
#include "sim/system.hpp"

namespace odrl::service {

class LoopbackClient {
 public:
  /// Opens a fresh connection on `server` (which must outlive the
  /// client).
  explicit LoopbackClient(Server& server, std::string name = "loopback");

  // -- Pipelined primitives --

  /// Assigns the next sequence number, encodes, posts. Returns the seq
  /// for matching against replies. The message's head.seq is overwritten.
  std::uint64_t post(Message msg);
  /// Blocks for the next reply (replies arrive in post order) and
  /// decodes it. ErrorReply comes back as a value here -- pipelined
  /// callers match status codes themselves.
  Message wait_reply();

  /// post() + wait_reply(): the synchronous RPC shape.
  Message call(Message msg);

  // -- Typed RPCs (throw ServiceError when the server answers with an
  //    ErrorReply; the thrown status is the reply's status) --

  HelloReply hello();
  /// head fields of `req` are overwritten (seq assigned, session 0).
  OpenSessionReply open_session(OpenSessionRequest req);
  StepEpochReply step(std::uint64_t session_id, std::uint64_t epoch,
                      const sim::EpochResult& obs);
  SnapshotReply snapshot(std::uint64_t session_id);
  CloseSessionReply close_session(std::uint64_t session_id);

 private:
  template <typename R>
  R expect(Message reply);

  std::shared_ptr<Server::Connection> conn_;
  std::string name_;
  std::uint64_t next_seq_ = 1;
};

/// Tenant knobs: what OpenSession asks for plus the local chip's own
/// simulation seed (workload + sensors), forked from `seed` so two
/// tenants with different seeds diverge on both sides of the wire.
struct TenantConfig {
  std::string controller = "OD-RL";
  std::size_t cores = 8;
  double budget_fraction = 0.6;
  std::uint64_t seed = 1;
  std::string tag;
  bool watchdog = false;
  std::map<std::string, std::string> overrides;
};

/// One simulated tenant chip under service control. Construction opens
/// the session (and adopts the initial levels); each step() runs one
/// epoch of the local ManyCoreSystem at the current levels, ships the
/// measured observation to the service, and adopts the decided levels
/// for the next epoch.
///
/// The split post_step()/complete_step() pair pipelines: several tenants
/// sharing one client may each post_step(), then complete in the same
/// order (replies on a connection are FIFO).
class Tenant {
 public:
  Tenant(LoopbackClient& client, const TenantConfig& config);

  std::uint64_t session_id() const noexcept { return session_id_; }
  std::uint64_t epochs_stepped() const noexcept { return epoch_; }
  const std::vector<std::size_t>& levels() const noexcept { return levels_; }
  const StepEpochReply& last_reply() const noexcept { return last_; }

  /// Synchronous epoch: sim step -> StepEpoch RPC -> adopt levels.
  const StepEpochReply& step();

  /// Pipelined halves of step(). Every post_step() must be matched by
  /// complete_step() on this tenant before its next post_step(), and
  /// tenants sharing a client must complete in post order.
  void post_step();
  const StepEpochReply& complete_step();

  /// Rolling FNV-1a-style fold of every decided level so far -- the
  /// bit-identity fingerprint the soak test compares across worker
  /// counts.
  std::uint64_t decision_digest() const noexcept { return digest_; }

  CloseSessionReply close();

 private:
  void adopt(const StepEpochReply& reply);

  LoopbackClient& client_;
  std::uint64_t session_id_ = 0;
  std::uint64_t epoch_ = 0;
  sim::ManyCoreSystem system_;
  sim::EpochResult obs_;
  std::vector<std::size_t> levels_;
  StepEpochReply last_;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;  ///< FNV-1a offset basis
};

}  // namespace odrl::service
