#include "service/wire.hpp"

#include <cstring>
#include <limits>
#include <utility>

namespace odrl::service {
namespace {

using snapshot::Reader;
using snapshot::SnapshotError;
using snapshot::SnapshotStatus;
using snapshot::Writer;

[[noreturn]] void fail(ServiceStatus status, const std::string& message) {
  throw ServiceError(status, message);
}

// Reads an element count and rejects it unless the open section could
// physically contain `count * min_bytes_each` more bytes. This caps every
// allocation a hostile payload can request at the payload's own size --
// the same defence load_qtable uses -- so decode never turns a 40-byte
// frame into a multi-gigabyte resize.
std::uint64_t read_count(Reader& r, std::size_t min_bytes_each,
                         const char* what) {
  const std::uint64_t n = r.u64();
  if (min_bytes_each == 0) min_bytes_each = 1;
  if (n > r.remaining() / min_bytes_each) {
    fail(ServiceStatus::kBadMessage,
         std::string("wire: hostile ") + what + " count " +
             std::to_string(n));
  }
  return n;
}

void write_header(Writer& w, const MsgHeader& head) {
  w.begin_section(kMsgHeaderTag);
  w.u32(kWireVersion);
  w.u8(static_cast<std::uint8_t>(head.type));
  w.u64(head.seq);
  w.u64(head.session_id);
  w.end_section();
}

void write_levels(Writer& w, const std::vector<std::size_t>& levels) {
  w.u64(levels.size());
  for (const std::size_t level : levels) w.u64(level);
}

std::vector<std::size_t> read_levels(Reader& r) {
  const std::uint64_t n = read_count(r, 8, "level");
  std::vector<std::size_t> levels(static_cast<std::size_t>(n));
  for (std::size_t& level : levels) {
    level = static_cast<std::size_t>(r.u64());
  }
  return levels;
}

// Bytes one core row occupies in an OBSV section: five f64 columns, one
// u64 (level), one u8 (online). true_* never crosses the wire -- the
// service is the controller side of the link and may only see what the
// tenant's sensors measured.
constexpr std::size_t kObsBytesPerCore = 5 * 8 + 8 + 1;

void write_observation(Writer& w, std::uint64_t epoch,
                       const sim::EpochResult& obs) {
  w.begin_section(kObservationTag);
  w.u64(epoch);
  w.u64(obs.epoch);
  w.f64(obs.epoch_s);
  w.f64(obs.budget_w);
  w.f64(obs.chip_power_w);
  w.f64(obs.total_ips);
  w.f64(obs.max_temp_c);
  w.u64(obs.thermal_violations);
  w.f64(obs.mem_latency_mult);
  w.f64(obs.dram_utilization);
  const std::size_t n = obs.cores.size();
  w.u64(n);
  const auto level = obs.cores.level();
  const auto ips = obs.cores.ips();
  const auto instructions = obs.cores.instructions();
  const auto power = obs.cores.power_w();
  const auto stall = obs.cores.mem_stall_frac();
  const auto temp = obs.cores.temp_c();
  const auto online = obs.cores.online();
  for (std::size_t i = 0; i < n; ++i) w.u64(level[i]);
  for (std::size_t i = 0; i < n; ++i) w.f64(ips[i]);
  for (std::size_t i = 0; i < n; ++i) w.f64(instructions[i]);
  for (std::size_t i = 0; i < n; ++i) w.f64(power[i]);
  for (std::size_t i = 0; i < n; ++i) w.f64(stall[i]);
  for (std::size_t i = 0; i < n; ++i) w.f64(temp[i]);
  for (std::size_t i = 0; i < n; ++i) w.u8(online[i]);
  w.end_section();
}

StepEpochRequest read_observation(Reader& r, const MsgHeader& head) {
  StepEpochRequest req;
  req.head = head;
  r.open_section(kObservationTag);
  req.epoch = r.u64();
  sim::EpochResult& obs = req.obs;
  obs.epoch = static_cast<std::size_t>(r.u64());
  obs.epoch_s = r.f64();
  obs.budget_w = r.f64();
  obs.chip_power_w = r.f64();
  obs.total_ips = r.f64();
  obs.max_temp_c = r.f64();
  obs.thermal_violations = static_cast<std::size_t>(r.u64());
  obs.mem_latency_mult = r.f64();
  obs.dram_utilization = r.f64();
  const std::uint64_t n = read_count(r, kObsBytesPerCore, "core");
  obs.cores.resize(static_cast<std::size_t>(n));
  const auto level = obs.cores.level();
  const auto ips = obs.cores.ips();
  const auto instructions = obs.cores.instructions();
  const auto power = obs.cores.power_w();
  const auto stall = obs.cores.mem_stall_frac();
  const auto temp = obs.cores.temp_c();
  const auto online = obs.cores.online();
  for (std::size_t i = 0; i < n; ++i) {
    level[i] = static_cast<std::size_t>(r.u64());
  }
  for (std::size_t i = 0; i < n; ++i) ips[i] = r.f64();
  for (std::size_t i = 0; i < n; ++i) instructions[i] = r.f64();
  for (std::size_t i = 0; i < n; ++i) power[i] = r.f64();
  for (std::size_t i = 0; i < n; ++i) stall[i] = r.f64();
  for (std::size_t i = 0; i < n; ++i) temp[i] = r.f64();
  for (std::size_t i = 0; i < n; ++i) online[i] = r.u8();
  r.expect_section_end();
  // The wire carries only measured values; mirror them into the true_*
  // fields so downstream code that logs "true" power degrades to the
  // measured signal instead of reading zeros.
  const auto true_power = obs.cores.true_power_w();
  for (std::size_t i = 0; i < n; ++i) true_power[i] = power[i];
  obs.true_chip_power_w = obs.chip_power_w;
  return req;
}

MsgHeader read_header(Reader& r) {
  r.open_section(kMsgHeaderTag);
  const std::uint32_t version = r.u32();
  if (version != kWireVersion) {
    fail(ServiceStatus::kBadVersion,
         "wire: version " + std::to_string(version) + " != " +
             std::to_string(kWireVersion));
  }
  const std::uint8_t type = r.u8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello:
    case MsgType::kOpenSession:
    case MsgType::kStepEpoch:
    case MsgType::kSnapshot:
    case MsgType::kCloseSession:
    case MsgType::kHelloReply:
    case MsgType::kOpenReply:
    case MsgType::kStepReply:
    case MsgType::kSnapshotReply:
    case MsgType::kCloseReply:
    case MsgType::kErrorReply:
      break;
    default:
      fail(ServiceStatus::kUnknownType,
           "wire: unknown message type " + std::to_string(type));
  }
  MsgHeader head;
  head.type = static_cast<MsgType>(type);
  head.seq = r.u64();
  head.session_id = r.u64();
  r.expect_section_end();
  return head;
}

struct Encoder {
  Writer& w;

  void operator()(const HelloRequest& m) const {
    w.begin_section(kHelloTag);
    w.str(m.client);
    w.end_section();
  }
  void operator()(const HelloReply& m) const {
    w.begin_section(kHelloTag);
    w.str(m.server);
    w.u64(m.controllers.size());
    for (const std::string& name : m.controllers) w.str(name);
    w.end_section();
  }
  void operator()(const OpenSessionRequest& m) const {
    w.begin_section(kOpenTag);
    w.str(m.controller);
    w.u64(m.cores);
    w.f64(m.budget_fraction);
    w.u64(m.seed);
    w.str(m.tag);
    w.u8(m.watchdog ? 1 : 0);
    w.u64(m.overrides.size());
    for (const auto& [key, value] : m.overrides) {
      w.str(key);
      w.str(value);
    }
    w.str(m.seed_blob);
    w.end_section();
  }
  void operator()(const OpenSessionReply& m) const {
    w.begin_section(kOpenReplyTag);
    w.f64(m.budget_w);
    write_levels(w, m.initial_levels);
    w.end_section();
  }
  void operator()(const StepEpochRequest& m) const {
    write_observation(w, m.epoch, m.obs);
  }
  void operator()(const StepEpochReply& m) const {
    w.begin_section(kDecisionTag);
    w.u64(m.epoch);
    write_levels(w, m.levels);
    w.u64(m.sanitized);
    w.u8(m.watchdog_holding ? 1 : 0);
    w.end_section();
  }
  void operator()(const SnapshotRequest&) const {
    // Header-only request: the session id in MSGH says everything.
  }
  void operator()(const SnapshotReply& m) const {
    w.begin_section(kSnapshotBlobTag);
    w.u64(m.epoch);
    w.str(m.blob);
    w.end_section();
  }
  void operator()(const CloseSessionRequest&) const {
    // Header-only request.
  }
  void operator()(const CloseSessionReply& m) const {
    w.begin_section(kCloseReplyTag);
    w.u64(m.epochs);
    w.u64(m.sanitized);
    w.end_section();
  }
  void operator()(const ErrorReply& m) const {
    w.begin_section(kErrorTag);
    w.u8(static_cast<std::uint8_t>(m.status));
    w.str(m.message);
    w.end_section();
  }
};

}  // namespace

const char* service_status_name(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kBadFrame:
      return "bad_frame";
    case ServiceStatus::kBadVersion:
      return "bad_version";
    case ServiceStatus::kBadMessage:
      return "bad_message";
    case ServiceStatus::kUnknownType:
      return "unknown_type";
    case ServiceStatus::kUnknownSession:
      return "unknown_session";
    case ServiceStatus::kSessionLimit:
      return "session_limit";
    case ServiceStatus::kDimensionMismatch:
      return "dimension_mismatch";
    case ServiceStatus::kOutOfOrderEpoch:
      return "out_of_order_epoch";
    case ServiceStatus::kBadValue:
      return "bad_value";
    case ServiceStatus::kShutdown:
      return "shutdown";
    case ServiceStatus::kInternal:
      return "internal";
  }
  return "unknown";
}

ServiceError::ServiceError(ServiceStatus status, const std::string& message)
    : std::runtime_error(message), status_(status) {}

const MsgHeader& header_of(const Message& msg) {
  return std::visit([](const auto& m) -> const MsgHeader& { return m.head; },
                    msg);
}

std::string encode_message(const Message& msg) {
  Writer w;
  write_header(w, header_of(msg));
  std::visit(Encoder{w}, msg);
  return std::move(w).finish();
}

Message decode_message(std::string_view payload) {
  Reader r(payload);
  const MsgHeader head = read_header(r);
  switch (head.type) {
    case MsgType::kHello: {
      HelloRequest m;
      m.head = head;
      r.open_section(kHelloTag);
      m.client = r.str();
      r.expect_section_end();
      return m;
    }
    case MsgType::kHelloReply: {
      HelloReply m;
      m.head = head;
      r.open_section(kHelloTag);
      m.server = r.str();
      const std::uint64_t n = read_count(r, 8, "controller-name");
      m.controllers.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) m.controllers.push_back(r.str());
      r.expect_section_end();
      return m;
    }
    case MsgType::kOpenSession: {
      OpenSessionRequest m;
      m.head = head;
      r.open_section(kOpenTag);
      m.controller = r.str();
      m.cores = r.u64();
      m.budget_fraction = r.f64();
      m.seed = r.u64();
      m.tag = r.str();
      m.watchdog = r.u8() != 0;
      const std::uint64_t n = read_count(r, 16, "override");
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        m.overrides[std::move(key)] = r.str();
      }
      m.seed_blob = r.str();
      r.expect_section_end();
      return m;
    }
    case MsgType::kOpenReply: {
      OpenSessionReply m;
      m.head = head;
      r.open_section(kOpenReplyTag);
      m.budget_w = r.f64();
      m.initial_levels = read_levels(r);
      r.expect_section_end();
      return m;
    }
    case MsgType::kStepEpoch:
      return read_observation(r, head);
    case MsgType::kStepReply: {
      StepEpochReply m;
      m.head = head;
      r.open_section(kDecisionTag);
      m.epoch = r.u64();
      m.levels = read_levels(r);
      m.sanitized = r.u64();
      m.watchdog_holding = r.u8() != 0;
      r.expect_section_end();
      return m;
    }
    case MsgType::kSnapshot: {
      SnapshotRequest m;
      m.head = head;
      return m;
    }
    case MsgType::kSnapshotReply: {
      SnapshotReply m;
      m.head = head;
      r.open_section(kSnapshotBlobTag);
      m.epoch = r.u64();
      m.blob = r.str();
      r.expect_section_end();
      return m;
    }
    case MsgType::kCloseSession: {
      CloseSessionRequest m;
      m.head = head;
      return m;
    }
    case MsgType::kCloseReply: {
      CloseSessionReply m;
      m.head = head;
      r.open_section(kCloseReplyTag);
      m.epochs = r.u64();
      m.sanitized = r.u64();
      r.expect_section_end();
      return m;
    }
    case MsgType::kErrorReply: {
      ErrorReply m;
      m.head = head;
      r.open_section(kErrorTag);
      const std::uint8_t status = r.u8();
      if (status > static_cast<std::uint8_t>(ServiceStatus::kInternal)) {
        fail(ServiceStatus::kBadMessage,
             "wire: unknown status code " + std::to_string(status));
      }
      m.status = static_cast<ServiceStatus>(status);
      m.message = r.str();
      r.expect_section_end();
      return m;
    }
  }
  // read_header already rejected every unknown type byte.
  fail(ServiceStatus::kUnknownType, "wire: unreachable type");
}

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    fail(ServiceStatus::kBadFrame,
         "wire: frame of " + std::to_string(payload.size()) +
             " bytes exceeds cap");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.append(payload);
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  buf_.append(bytes);
  // Validate the first pending length prefix eagerly so a hostile peer is
  // rejected at ingest, before next() buffers toward an absurd target.
  if (buf_.size() - pos_ >= 4) {
    const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    if (len > kMaxFrameBytes) {
      fail(ServiceStatus::kBadFrame,
           "wire: frame length " + std::to_string(len) + " exceeds cap");
    }
  }
}

bool FrameDecoder::next(std::string& out) {
  if (buf_.size() - pos_ < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  if (len > kMaxFrameBytes) {
    fail(ServiceStatus::kBadFrame,
         "wire: frame length " + std::to_string(len) + " exceeds cap");
  }
  if (buf_.size() - pos_ - 4 < len) return false;
  out.assign(buf_, pos_ + 4, len);
  pos_ += 4 + static_cast<std::size_t>(len);
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

}  // namespace odrl::service
