// Control-plane wire protocol: the message layer of the power-management
// service (src/service/server.hpp). One *frame* on the wire is
//
//   u32 payload length (little-endian; kMaxFrameBytes cap)
//   ...  payload: a complete snapshot frame (snapshot/snapshot.hpp --
//        "ODRLSNAP" magic, FourCC sections, FNV-1a trailer)
//
// so every message payload is checksummed, versioned and section-indexed
// by the same substrate that serializes Q-tables, traces and run
// snapshots -- a pre-trained Q-table or a mid-run session snapshot rides
// inside an OpenSession request without re-encoding.
//
// Every payload carries a "MSGH" header section (wire version, message
// type, sequence number, session id) followed by the type's own sections.
// Decoders are total: any byte string either decodes to a Message or
// throws ServiceError / snapshot::SnapshotError -- never crashes, never
// aborts -- which is the contract the fuzz driver (tests/fuzz/
// fuzz_service.cpp) and the golden wire digests enforce.
//
// Compatibility policy mirrors the snapshot format: kWireVersion is
// bumped whenever any section's layout changes and peers reject versions
// they do not know (kBadVersion); adding a *section* to a message is not
// a breaking change (readers open sections by tag).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "sim/observation.hpp"
#include "snapshot/snapshot.hpp"

namespace odrl::service {

/// Wire-format version spoken by this build (Hello negotiates nothing:
/// equal or rejected).
inline constexpr std::uint32_t kWireVersion = 1;

/// Frames larger than this are rejected with kBadFrame before any
/// allocation happens -- a hostile length prefix must not become an
/// out-of-memory abort.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

/// Per-message section tags.
inline constexpr std::uint32_t kMsgHeaderTag = snapshot::section_tag("MSGH");
inline constexpr std::uint32_t kHelloTag = snapshot::section_tag("HELO");
inline constexpr std::uint32_t kOpenTag = snapshot::section_tag("OPEN");
inline constexpr std::uint32_t kOpenReplyTag = snapshot::section_tag("OPNR");
inline constexpr std::uint32_t kObservationTag =
    snapshot::section_tag("OBSV");
inline constexpr std::uint32_t kDecisionTag = snapshot::section_tag("DECV");
inline constexpr std::uint32_t kSnapshotBlobTag =
    snapshot::section_tag("SNAP");
inline constexpr std::uint32_t kCloseReplyTag = snapshot::section_tag("CLOS");
inline constexpr std::uint32_t kErrorTag = snapshot::section_tag("ERRS");
/// Session snapshot bookkeeping section (epoch cursor, watchdog latches);
/// the controller state rides in the runner's CTRL section so run
/// snapshots and session snapshots share one warm-start door.
inline constexpr std::uint32_t kSessionStateTag =
    snapshot::section_tag("SESS");

/// Message types. Requests and replies share one numbering space; replies
/// start at 64 so a truncated type byte never aliases a request into a
/// reply.
enum class MsgType : std::uint8_t {
  kHello = 1,
  kOpenSession = 2,
  kStepEpoch = 3,
  kSnapshot = 4,
  kCloseSession = 5,

  kHelloReply = 64,
  kOpenReply = 65,
  kStepReply = 66,
  kSnapshotReply = 67,
  kCloseReply = 68,
  kErrorReply = 69,
};

/// Failure taxonomy of the service layer. Codes, not message text, are
/// the contract: clients and tests switch on the enum, and every reply
/// the server refuses carries exactly one of these in an ErrorReply.
/// Frame/section-level corruption below the message layer surfaces as
/// snapshot::SnapshotStatus via SnapshotError instead -- the two enums
/// deliberately do not overlap in meaning.
enum class ServiceStatus : std::uint8_t {
  kOk = 0,
  kBadFrame,         ///< length prefix truncated or over kMaxFrameBytes
  kBadVersion,       ///< wire version this peer does not speak
  kBadMessage,       ///< header/section shape wrong for the message type
  kUnknownType,      ///< MsgType byte outside the enum
  kUnknownSession,   ///< session id not in the table (never opened/closed)
  kSessionLimit,     ///< server at max_sessions
  kDimensionMismatch,///< request shape != the session's chip (core count)
  kOutOfOrderEpoch,  ///< StepEpoch::epoch != the session's next epoch
  kBadValue,         ///< semantic rejection (non-finite sample, bad knob)
  kShutdown,         ///< server is draining; no new work accepted
  kInternal,         ///< handler failure that is not the client's fault
};

/// Stable lowercase name for a status code (error replies, fuzz logs).
const char* service_status_name(ServiceStatus status);

/// Thrown by decoders and by LoopbackClient when the server replies with
/// an ErrorReply. Derives std::runtime_error so the fuzz harness's
/// documented-rejection catch covers it; new code switches on status().
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ServiceStatus status, const std::string& message);

  ServiceStatus status() const noexcept { return status_; }

 private:
  ServiceStatus status_;
};

// -- Message structs (the decoded forms) --

/// Every message starts with this header; `seq` is chosen by the client
/// and echoed verbatim in the matching reply so pipelined requests can be
/// matched without transport-level bookkeeping.
struct MsgHeader {
  MsgType type = MsgType::kHello;
  std::uint64_t seq = 0;
  std::uint64_t session_id = 0;  ///< 0 for Hello/OpenSession
};

struct HelloRequest {
  MsgHeader head;
  std::string client;  ///< free-form client identity (diagnostics only)
};

struct HelloReply {
  MsgHeader head;
  std::string server;
  std::vector<std::string> controllers;  ///< registry names, sorted
};

/// Opens one tenant session: a controller instance supervising one chip.
struct OpenSessionRequest {
  MsgHeader head;
  std::string controller;        ///< registry name ("OD-RL", "PID", ...)
  std::uint64_t cores = 0;       ///< chip size (1..ServerConfig::max_cores)
  double budget_fraction = 0.6;  ///< of chip TDP, in (0, 1]
  std::uint64_t seed = 1;        ///< controller "seed" override
  std::string tag;               ///< telemetry session tag ("" = default)
  bool watchdog = false;         ///< arm the per-tenant watchdog policy
  std::map<std::string, std::string> overrides;  ///< registry overrides
  /// Optional warm start: any snapshot blob with a CTRL section whose
  /// recorded controller name matches `controller` -- a run snapshot from
  /// run_closed_loop, a session snapshot from this service, or a bare
  /// CTRL frame around a pre-trained Q-table. Empty = cold start.
  std::string seed_blob;
};

struct OpenSessionReply {
  MsgHeader head;  ///< session_id = the newly assigned id
  double budget_w = 0.0;
  std::vector<std::size_t> initial_levels;
};

/// One measured epoch of the tenant chip: the sensor columns a real part
/// would report (measured, possibly noisy -- true power never crosses the
/// wire; the service is a controller, not an oracle).
struct StepEpochRequest {
  MsgHeader head;
  std::uint64_t epoch = 0;  ///< must equal the session's next epoch
  sim::EpochResult obs;     ///< true_* fields mirror the measured ones
};

struct StepEpochReply {
  MsgHeader head;
  std::uint64_t epoch = 0;
  std::vector<std::size_t> levels;     ///< next-epoch V/F level per core
  std::uint64_t sanitized = 0;         ///< watchdog level corrections
  bool watchdog_holding = false;       ///< chip-wide safe-level hold active
};

struct SnapshotRequest {
  MsgHeader head;
};

struct SnapshotReply {
  MsgHeader head;
  std::uint64_t epoch = 0;  ///< next epoch the session expects
  std::string blob;         ///< session snapshot (SESS + CTRL sections)
};

struct CloseSessionRequest {
  MsgHeader head;
};

struct CloseSessionReply {
  MsgHeader head;
  std::uint64_t epochs = 0;     ///< epochs stepped over the session's life
  std::uint64_t sanitized = 0;  ///< watchdog level corrections, total
};

struct ErrorReply {
  MsgHeader head;  ///< seq/session echo the request that failed
  ServiceStatus status = ServiceStatus::kInternal;
  std::string message;
};

using Message =
    std::variant<HelloRequest, HelloReply, OpenSessionRequest,
                 OpenSessionReply, StepEpochRequest, StepEpochReply,
                 SnapshotRequest, SnapshotReply, CloseSessionRequest,
                 CloseSessionReply, ErrorReply>;

/// Header of any decoded message (the variant's common prefix).
const MsgHeader& header_of(const Message& msg);

// -- Payload encode/decode --

/// Encodes one message into a snapshot-framed payload (no length prefix).
std::string encode_message(const Message& msg);

/// Decodes a payload. Throws snapshot::SnapshotError for frame-level
/// corruption (bad magic/checksum/section) and ServiceError for
/// message-level violations (unknown type, bad version, hostile counts).
Message decode_message(std::string_view payload);

// -- Stream framing --

/// Prepends the u32 length prefix. Throws ServiceError(kBadFrame) when
/// the payload exceeds kMaxFrameBytes.
std::string encode_frame(std::string_view payload);

/// Incremental length-prefixed frame splitter for byte-stream transports
/// (the TCP adapter). feed() appends bytes; next() yields complete
/// payloads in order. A hostile length prefix throws ServiceError
/// (kBadFrame) from feed() before any payload allocation.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);
  /// Moves the next complete payload into `out`; false when more bytes
  /// are needed.
  bool next(std::string& out);
  /// Bytes buffered but not yet returned (diagnostics/tests).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

}  // namespace odrl::service
