#include "service/server.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "telemetry/recorder.hpp"

namespace odrl::service {
namespace {

/// Best-effort header recovery for error replies: when the payload is
/// structurally sound enough to carry a MSGH section, echo its seq and
/// session id; otherwise zeros. Never throws (a second failure here must
/// not mask the original one).
MsgHeader recover_header(std::string_view payload) noexcept {
  MsgHeader head;
  try {
    snapshot::Reader r(payload);
    r.open_section(kMsgHeaderTag);
    (void)r.u32();  // version (unchecked: recovery only)
    (void)r.u8();   // type
    head.seq = r.u64();
    head.session_id = r.u64();
  } catch (...) {
    head.seq = 0;
    head.session_id = 0;
  }
  return head;
}

MsgHeader reply_header(MsgType type, const MsgHeader& request) {
  MsgHeader head;
  head.type = type;
  head.seq = request.seq;
  head.session_id = request.session_id;
  return head;
}

void require_finite(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw ServiceError(ServiceStatus::kBadValue,
                       std::string("service: non-finite ") + what);
  }
}

}  // namespace

void ServerConfig::validate() const {
  if (max_sessions == 0) {
    throw std::invalid_argument("ServerConfig: max_sessions == 0");
  }
  if (max_cores == 0) {
    throw std::invalid_argument("ServerConfig: max_cores == 0");
  }
  if (name.empty()) {
    throw std::invalid_argument("ServerConfig: empty server name");
  }
  watchdog.validate();  // thresholds; `enabled` is per-session
}

// -- Connection --

void Server::Connection::DrainTask::operator()() const {
  conn->server_->drain(*conn);
}

void Server::Connection::post(std::string payload) {
  // Capture the shutdown cut here, not at drain time: a request that
  // beat begin_shutdown() is answered normally no matter when its drain
  // actually runs (the documented ~Server contract).
  const bool accepted =
      !server_->shutdown_.load(std::memory_order_acquire);
  bool schedule = false;
  {
    util::MutexLock lock(mutex_);
    inbox_.push_back(Inbound{std::move(payload), accepted});
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) server_->schedule_drain(*this);
}

std::string Server::Connection::take_reply() {
  util::MutexLock lock(mutex_);
  while (outbox_.empty()) reply_ready_.wait(mutex_);
  std::string reply = std::move(outbox_.front());
  outbox_.pop_front();
  return reply;
}

bool Server::Connection::try_take_reply(std::string& out) {
  util::MutexLock lock(mutex_);
  if (outbox_.empty()) return false;
  out = std::move(outbox_.front());
  outbox_.pop_front();
  return true;
}

// -- Server --

Server::Server(ServerConfig config) : config_(std::move(config)) {
  config_.validate();
  task::RuntimeConfig rc;
  rc.workers = config_.workers;
  runtime_ = std::make_unique<task::Runtime>(rc);
}

Server::~Server() {
  begin_shutdown();
  runtime_->wait(drains_);
}

void Server::begin_shutdown() {
  shutdown_.store(true, std::memory_order_release);
}

std::shared_ptr<Server::Connection> Server::connect() {
  // No make_shared: the constructor is private to keep Server the only
  // producer of connections.
  std::shared_ptr<Connection> conn(new Connection(this));
  util::MutexLock lock(table_mutex_);
  connections_.push_back(conn);
  return conn;
}

void Server::schedule_drain(Connection& conn) {
  // A width-1 runtime spawns no workers, so queued tasks would only run
  // at wait(); execute inline instead -- the single-threaded server stays
  // live and fully deterministic.
  if (runtime_->size() == 1) {
    drain(conn);
    return;
  }
  runtime_->submit(drains_, conn.drain_task_);
}

void Server::drain(Connection& conn) {
  for (;;) {
    Connection::Inbound item;
    {
      util::MutexLock lock(conn.mutex_);
      if (conn.inbox_.empty()) {
        conn.drain_scheduled_ = false;
        return;
      }
      item = std::move(conn.inbox_.front());
      conn.inbox_.pop_front();
    }
    std::string reply = item.accepted ? handle(item.payload)
                                      : reject_shutdown(item.payload);
    {
      util::MutexLock lock(conn.mutex_);
      conn.outbox_.push_back(std::move(reply));
    }
    conn.reply_ready_.notify_all();
  }
}

std::string Server::handle(std::string_view payload) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  ServiceStatus status = ServiceStatus::kInternal;
  std::string detail;
  try {
    Message msg = decode_message(payload);
    Message reply = std::visit(
        [&](auto& m) -> Message {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, HelloRequest>) {
            return handle_hello(m);
          } else if constexpr (std::is_same_v<T, OpenSessionRequest>) {
            return handle_open(m);
          } else if constexpr (std::is_same_v<T, StepEpochRequest>) {
            return handle_step(m);
          } else if constexpr (std::is_same_v<T, SnapshotRequest>) {
            return handle_snapshot(m);
          } else if constexpr (std::is_same_v<T, CloseSessionRequest>) {
            return handle_close(m);
          } else {
            // A reply type arriving as a request: shaped like a message,
            // meaningless as one.
            throw ServiceError(ServiceStatus::kBadMessage,
                               "service: reply type sent as a request");
          }
        },
        msg);
    return encode_message(reply);
  } catch (const ServiceError& e) {
    status = e.status();
    detail = e.what();
  } catch (const snapshot::SnapshotError& e) {
    // The payload frame itself was corrupt (decode_message's Reader).
    // seed-blob corruption inside handlers is re-thrown as kBadValue
    // before reaching here.
    status = ServiceStatus::kBadFrame;
    detail = std::string("service: payload frame: ") +
             snapshot::snapshot_status_name(e.status()) + ": " + e.what();
  } catch (const std::invalid_argument& e) {
    // Registry rejections: unknown controller name, unconsumed override
    // keys, config validation.
    status = ServiceStatus::kBadValue;
    detail = std::string("service: ") + e.what();
  } catch (const std::logic_error&) {
    // Contract violations are server bugs, not client errors: let them
    // escape so tests and the fuzzer see them instead of an ErrorReply.
    throw;
  } catch (const std::exception& e) {
    status = ServiceStatus::kInternal;
    detail = std::string("service: ") + e.what();
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  ErrorReply err;
  err.head = reply_header(MsgType::kErrorReply, recover_header(payload));
  err.status = status;
  err.message = std::move(detail);
  return encode_message(Message(std::move(err)));
}

std::string Server::reject_shutdown(std::string_view payload) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  errors_.fetch_add(1, std::memory_order_relaxed);
  ErrorReply err;
  err.head = reply_header(MsgType::kErrorReply, recover_header(payload));
  err.status = ServiceStatus::kShutdown;
  err.message = "service: server is shutting down";
  return encode_message(Message(std::move(err)));
}

Message Server::handle_hello(const HelloRequest& req) {
  HelloReply reply;
  reply.head = reply_header(MsgType::kHelloReply, req.head);
  reply.server = config_.name;
  reply.controllers = sim::registered_controllers();
  return reply;
}

Message Server::handle_open(const OpenSessionRequest& req) {
  if (req.cores == 0 || req.cores > config_.max_cores) {
    throw ServiceError(ServiceStatus::kBadValue,
                       "service: cores " + std::to_string(req.cores) +
                           " outside [1, " +
                           std::to_string(config_.max_cores) + "]");
  }
  if (!std::isfinite(req.budget_fraction) || req.budget_fraction <= 0.0 ||
      req.budget_fraction > 1.0) {
    throw ServiceError(ServiceStatus::kBadValue,
                       "service: budget_fraction outside (0, 1]");
  }
  const std::size_t n_cores = static_cast<std::size_t>(req.cores);

  // Registry work happens before any service lock is taken (registry and
  // recorder locks rank below the service locks by design).
  arch::ChipConfig chip = arch::ChipConfig::make(n_cores, req.budget_fraction);
  sim::ControllerOverrides overrides{
      std::map<std::string, std::string>(req.overrides)};
  if (!overrides.contains("seed")) {
    overrides.set("seed", std::to_string(req.seed));
  }
  std::unique_ptr<sim::Controller> controller =
      sim::make_controller(req.controller, chip, overrides);
  // Width 1 pins the per-session decision stream: worker count varies the
  // interleaving across sessions, never the decisions within one.
  controller->set_threads(1);

  if (!req.seed_blob.empty()) {
    // Warm start from any blob carrying the runner-format CTRL section --
    // a run snapshot, a service session snapshot, or a bare Q-table
    // wrapper. A corrupt or mismatched blob is the *client's* data, so it
    // surfaces as kBadValue, not as a frame error.
    try {
      snapshot::Reader r(req.seed_blob);
      r.open_section(sim::kSnapshotControllerTag);
      const std::string saved_name = r.str();
      if (saved_name != controller->name()) {
        throw ServiceError(ServiceStatus::kBadValue,
                           "service: seed blob controller '" + saved_name +
                               "' does not match '" + controller->name() +
                               "'");
      }
      controller->load_state(r);
      r.expect_section_end();
    } catch (const snapshot::SnapshotError& e) {
      throw ServiceError(ServiceStatus::kBadValue,
                         std::string("service: seed blob: ") +
                             snapshot::snapshot_status_name(e.status()) +
                             ": " + e.what());
    }
  }

  std::vector<std::size_t> initial = controller->initial_levels(n_cores);
  if (initial.size() != n_cores) {
    throw ServiceError(ServiceStatus::kInternal,
                       "service: controller initial_levels size mismatch");
  }

  auto session = std::make_shared<Session>(chip);
  {
    util::MutexLock lock(session->mutex);
    session->controller = std::move(controller);
    session->budget_w = chip.tdp_w();
    session->levels = initial;
    session->watchdog = req.watchdog;
    session->wd = config_.watchdog;
    session->wd.enabled = req.watchdog;
    session->fallback_hold.assign(n_cores, 0);
  }

  std::uint64_t id = 0;
  {
    util::MutexLock lock(table_mutex_);
    if (sessions_.size() >= config_.max_sessions) {
      throw ServiceError(ServiceStatus::kSessionLimit,
                         "service: session table full (" +
                             std::to_string(config_.max_sessions) + ")");
    }
    id = next_session_id_++;
    session->tag =
        req.tag.empty() ? "session-" + std::to_string(id) : req.tag;
    sessions_.emplace(id, session);
  }
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);

  OpenSessionReply reply;
  reply.head = reply_header(MsgType::kOpenReply, req.head);
  reply.head.session_id = id;
  reply.budget_w = chip.tdp_w();
  reply.initial_levels = std::move(initial);
  return reply;
}

void Server::validate_observation(const Session& session,
                                  const StepEpochRequest& req) {
  const sim::EpochResult& obs = req.obs;
  require_finite(obs.epoch_s, "epoch_s");
  require_finite(obs.budget_w, "budget_w");
  require_finite(obs.chip_power_w, "chip_power_w");
  require_finite(obs.total_ips, "total_ips");
  require_finite(obs.max_temp_c, "max_temp_c");
  require_finite(obs.mem_latency_mult, "mem_latency_mult");
  require_finite(obs.dram_utilization, "dram_utilization");
  if (obs.budget_w <= 0.0) {
    throw ServiceError(ServiceStatus::kBadValue,
                       "service: budget_w must be positive");
  }
  const std::size_t max_level = session.chip.vf_table().max_level();
  const auto level = obs.cores.level();
  const auto ips = obs.cores.ips();
  const auto instructions = obs.cores.instructions();
  const auto power = obs.cores.power_w();
  const auto stall = obs.cores.mem_stall_frac();
  const auto temp = obs.cores.temp_c();
  for (std::size_t i = 0; i < obs.cores.size(); ++i) {
    if (level[i] > max_level) {
      throw ServiceError(ServiceStatus::kBadValue,
                         "service: core " + std::to_string(i) +
                             " reports level " + std::to_string(level[i]) +
                             " > max " + std::to_string(max_level));
    }
    require_finite(ips[i], "core ips");
    require_finite(instructions[i], "core instructions");
    require_finite(power[i], "core power_w");
    require_finite(stall[i], "core mem_stall_frac");
    require_finite(temp[i], "core temp_c");
  }
}

Message Server::handle_step(const StepEpochRequest& req) {
  std::shared_ptr<Session> session = find_session(req.head.session_id);
  util::MutexLock lock(session->mutex);
  if (session->closed) {
    throw ServiceError(ServiceStatus::kUnknownSession,
                       "service: session already closed");
  }
  if (req.epoch != session->next_epoch) {
    throw ServiceError(ServiceStatus::kOutOfOrderEpoch,
                       "service: epoch " + std::to_string(req.epoch) +
                           " != expected " +
                           std::to_string(session->next_epoch));
  }
  const std::size_t n_cores = session->chip.n_cores();
  if (req.obs.n_cores() != n_cores) {
    throw ServiceError(ServiceStatus::kDimensionMismatch,
                       "service: observation has " +
                           std::to_string(req.obs.n_cores()) +
                           " cores, session chip has " +
                           std::to_string(n_cores));
  }
  validate_observation(*session, req);

  const double budget_w = req.obs.budget_w;
  if (budget_w != session->budget_w) {
    session->controller->on_budget_change(budget_w);
    session->budget_w = budget_w;
  }

  std::uint64_t fixed = 0;
  bool holding = false;
  const sim::WatchdogConfig& wd = session->wd;
  if (session->watchdog) {
    if (budget_w != session->safe_level_budget_w) {
      session->safe_level = sim::safe_uniform_level(session->chip, budget_w);
      session->safe_level_budget_w = budget_w;
    }
    if (req.obs.chip_power_w > budget_w * (1.0 + wd.violation_margin)) {
      ++session->consecutive_violations;
    } else {
      session->consecutive_violations = 0;
    }
  }

  session->controller->decide_into(req.obs, session->levels);

  if (session->watchdog) {
    const std::size_t n_levels = session->chip.vf_table().size();
    // Out-of-range decisions fall back per offending core.
    for (std::size_t i = 0; i < n_cores; ++i) {
      if (session->levels[i] >= n_levels) {
        session->fallback_hold[i] = wd.hold_epochs;
      }
    }
    // Sustained overshoot of the reported budget trips every core: the
    // tenant's telemetry says the controller is not holding the cap.
    if (session->consecutive_violations >= wd.violation_epochs) {
      session->consecutive_violations = 0;
      for (std::size_t i = 0; i < n_cores; ++i) {
        if (session->fallback_hold[i] < wd.hold_epochs) {
          session->fallback_hold[i] = wd.hold_epochs;
        }
      }
    }
    for (std::size_t i = 0; i < n_cores; ++i) {
      if (session->fallback_hold[i] > 0) {
        holding = true;
        --session->fallback_hold[i];
        if (session->levels[i] != session->safe_level) {
          session->levels[i] = session->safe_level;
          ++fixed;
        }
      }
    }
  }

  ++session->next_epoch;
  session->epochs.fetch_add(1, std::memory_order_relaxed);
  session->sanitized.fetch_add(fixed, std::memory_order_relaxed);
  epochs_.fetch_add(1, std::memory_order_relaxed);
  sanitized_.fetch_add(fixed, std::memory_order_relaxed);

  StepEpochReply reply;
  reply.head = reply_header(MsgType::kStepReply, req.head);
  reply.epoch = req.epoch;
  reply.levels = session->levels;
  reply.sanitized = fixed;
  reply.watchdog_holding = holding;
  return reply;
}

std::string Server::snapshot_session(Session& session) {
  snapshot::Writer w;
  w.begin_section(kSessionStateTag);
  w.u64(session.next_epoch);
  w.f64(session.budget_w);
  w.u8(session.watchdog ? 1 : 0);
  w.u64(session.consecutive_violations);
  w.u64(session.epochs.load(std::memory_order_relaxed));
  w.u64(session.sanitized.load(std::memory_order_relaxed));
  w.u64(session.levels.size());
  for (const std::size_t level : session.levels) w.u64(level);
  for (const std::size_t hold : session.fallback_hold) w.u64(hold);
  w.end_section();
  // The runner's CTRL framing, verbatim, so this blob walks back in
  // through OpenSessionRequest::seed_blob (and run_closed_loop's
  // resume path recognizes the section).
  w.begin_section(sim::kSnapshotControllerTag);
  w.str(session.controller->name());
  session.controller->save_state(w);
  w.end_section();
  return std::move(w).finish();
}

Message Server::handle_snapshot(const SnapshotRequest& req) {
  std::shared_ptr<Session> session = find_session(req.head.session_id);
  util::MutexLock lock(session->mutex);
  if (session->closed) {
    throw ServiceError(ServiceStatus::kUnknownSession,
                       "service: session already closed");
  }
  SnapshotReply reply;
  reply.head = reply_header(MsgType::kSnapshotReply, req.head);
  reply.epoch = session->next_epoch;
  reply.blob = snapshot_session(*session);
  return reply;
}

Message Server::handle_close(const CloseSessionRequest& req) {
  std::shared_ptr<Session> session;
  {
    util::MutexLock lock(table_mutex_);
    auto it = sessions_.find(req.head.session_id);
    if (it == sessions_.end()) {
      throw ServiceError(ServiceStatus::kUnknownSession,
                         "service: unknown session " +
                             std::to_string(req.head.session_id));
    }
    session = it->second;
    sessions_.erase(it);
  }
  {
    // Table rank (32) < session rank (34): this nesting is the sanctioned
    // order, though the table lock is already gone here.
    util::MutexLock lock(session->mutex);
    session->closed = true;
  }
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);

  CloseSessionReply reply;
  reply.head = reply_header(MsgType::kCloseReply, req.head);
  reply.epochs = session->epochs.load(std::memory_order_relaxed);
  reply.sanitized = session->sanitized.load(std::memory_order_relaxed);
  return reply;
}

std::shared_ptr<Server::Session> Server::find_session(
    std::uint64_t id) const {
  util::MutexLock lock(table_mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw ServiceError(ServiceStatus::kUnknownSession,
                       "service: unknown session " + std::to_string(id));
  }
  return it->second;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.epochs = epochs_.load(std::memory_order_relaxed);
  s.sanitized = sanitized_.load(std::memory_order_relaxed);
  return s;
}

std::size_t Server::session_count() const {
  util::MutexLock lock(table_mutex_);
  return sessions_.size();
}

void Server::export_counters(telemetry::Recorder& recorder) const {
  // Snapshot everything under the service locks first: recorder locks
  // rank *below* the service ranks, so touching the recorder while a
  // service lock is held would abort under the rank checker.
  const ServerStats s = stats();
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>>
      per_session;
  {
    util::MutexLock lock(table_mutex_);
    per_session.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
      per_session.emplace_back(
          session->tag, session->epochs.load(std::memory_order_relaxed),
          session->sanitized.load(std::memory_order_relaxed));
    }
  }
  recorder.counter("service.requests").add(s.requests);
  recorder.counter("service.errors").add(s.errors);
  recorder.counter("service.sessions_opened").add(s.sessions_opened);
  recorder.counter("service.sessions_closed").add(s.sessions_closed);
  recorder.counter("service.epochs").add(s.epochs);
  recorder.counter("service.sanitized").add(s.sanitized);
  for (const auto& [tag, epochs, sanitized] : per_session) {
    recorder.counter("service.session." + tag + ".epochs").add(epochs);
    recorder.counter("service.session." + tag + ".sanitized").add(sanitized);
  }
}

}  // namespace odrl::service
