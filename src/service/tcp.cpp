#include "service/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace odrl::service {
namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("tcp: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

TcpServer::TcpServer(Server& server, std::uint16_t port) : server_(server) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sys_fail("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    sys_fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
}

TcpServer::~TcpServer() {
  for (Peer& peer : peers_) {
    if (peer.fd >= 0) ::close(peer.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpServer::close_peer(std::size_t index) {
  ::close(peers_[index].fd);
  peers_.erase(peers_.begin() + static_cast<std::ptrdiff_t>(index));
}

std::size_t TcpServer::poll_once(int timeout_ms) {
  // Drain pending replies into per-peer write buffers first, so the poll
  // set below asks for POLLOUT exactly where bytes are waiting.
  std::size_t moved = 0;
  std::string payload;
  for (std::size_t i = peers_.size(); i-- > 0;) {
    Peer& peer = peers_[i];
    try {
      while (peer.conn->try_take_reply(payload)) {
        peer.outbuf += encode_frame(payload);
        ++moved;
      }
    } catch (const ServiceError&) {
      // A reply too large to frame (kBadFrame): this peer cannot be
      // served its answer, but the rest of the fleet can.
      close_peer(i);
    }
  }

  // fds[i + 1] mirrors peers_[i] only for peers that exist NOW; accepts
  // below append past `polled` and get polled on the next pump.
  const std::size_t polled = peers_.size();
  std::vector<pollfd> fds;
  fds.reserve(polled + 1);
  fds.push_back({listen_fd_, POLLIN, 0});
  for (const Peer& peer : peers_) {
    short events = POLLIN;
    if (!peer.outbuf.empty()) events |= POLLOUT;
    fds.push_back({peer.fd, events, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return moved;
    sys_fail("poll");
  }

  if ((fds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN or transient -- retry next pump
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Peer peer;
      peer.fd = fd;
      peer.conn = server_.connect();
      peers_.push_back(std::move(peer));
    }
  }

  // Iterate backwards so close_peer's erase cannot skip a peer; only the
  // `polled` peers the poll set was built from have valid revents.
  for (std::size_t i = polled; i-- > 0;) {
    const pollfd& pfd = fds[i + 1];
    Peer& peer = peers_[i];
    bool dead = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    if (!dead && (pfd.revents & POLLOUT) != 0 && !peer.outbuf.empty()) {
      const ssize_t n = ::send(peer.fd, peer.outbuf.data(),
                               peer.outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        peer.outbuf.erase(0, static_cast<std::size_t>(n));
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        dead = true;
      }
    }
    if (!dead && (pfd.revents & POLLIN) != 0) {
      char buf[16384];
      for (;;) {
        const ssize_t n = ::recv(peer.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          try {
            peer.decoder.feed(std::string_view(buf,
                                               static_cast<std::size_t>(n)));
            while (peer.decoder.next(payload)) {
              peer.conn->post(std::move(payload));
              ++moved;
            }
          } catch (const ServiceError&) {
            // Hostile length prefix: this peer is done, the server is not.
            dead = true;
            break;
          }
          continue;
        }
        if (n == 0) dead = true;  // orderly hangup
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) dead = true;
        break;
      }
    }
    if (dead) close_peer(i);
  }
  return moved;
}

TcpClient::TcpClient(std::uint16_t port, const std::string& host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) sys_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("tcp: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    sys_fail("connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClient::post(std::string_view payload) {
  std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string TcpClient::take_reply() {
  std::string payload;
  while (!decoder_.next(payload)) {
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("recv");
    }
    if (n == 0) throw std::runtime_error("tcp: server closed connection");
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  return payload;
}

}  // namespace odrl::service
