#include "telemetry/csv_sink.hpp"

#include <array>
#include <string>

#include "telemetry/text.hpp"
#include "util/csv.hpp"

namespace odrl::telemetry {

namespace {

// Column layout (fixed; the header row is the single source of truth for
// consumers). Indices name the cells Row fills per record kind.
constexpr std::size_t kColumns = 21;
constexpr const char* kHeader =
    "record,epoch,name,value,edge,budget_w,chip_power_w,true_chip_power_w,"
    "total_ips,max_temp_c,thermal_violations,decide_s,core,level,ips,"
    "power_w,temp_c,mem_stall_frac,mu,mean_reward,epsilon";

enum Col : std::size_t {
  kRecord = 0,
  kEpoch,
  kName,
  kValue,
  kEdge,
  kBudgetW,
  kChipPowerW,
  kTrueChipPowerW,
  kTotalIps,
  kMaxTempC,
  kThermalViolations,
  kDecideS,
  kCore,
  kLevel,
  kIps,
  kPowerW,
  kTempC,
  kMemStallFrac,
  kMu,
  kMeanReward,
  kEpsilon,
};

struct Row {
  std::array<std::string, kColumns> cells;

  void set(Col col, std::string v) { cells[col] = std::move(v); }
  void set(Col col, double v) { cells[col] = fmt_double(v); }
  void set(Col col, std::uint64_t v) { cells[col] = std::to_string(v); }

  void write(std::ostream& out) const {
    for (std::size_t i = 0; i < kColumns; ++i) {
      if (i > 0) out << ',';
      out << util::csv_escape(cells[i]);
    }
    out << '\n';
  }
};

}  // namespace

CsvSink::CsvSink(std::ostream& out) : out_(&out) { *out_ << kHeader << '\n'; }

void CsvSink::begin_run(const RunInfo& info) {
  util::MutexLock lock(mutex_);
  *out_ << "# run controller=" << util::csv_escape(info.controller)
        << " cores=" << info.n_cores << " epochs=" << info.epochs
        << " epoch_s=" << fmt_double(info.epoch_s);
  if (!info.tag.empty()) *out_ << " tag=" << util::csv_escape(info.tag);
  *out_ << '\n';
  Row row;
  row.set(kRecord, "run_begin");
  row.set(kName, info.controller);
  // Session tag in the value cell; untagged runs keep the cell empty so
  // the pre-tag byte layout (and every golden digest) is preserved.
  if (!info.tag.empty()) row.set(kValue, info.tag);
  row.write(*out_);
}

void CsvSink::epoch(const EpochRecord& rec) {
  util::MutexLock lock(mutex_);
  Row row;
  row.set(kRecord, "epoch");
  row.set(kEpoch, rec.epoch);
  row.set(kBudgetW, rec.budget_w);
  row.set(kChipPowerW, rec.chip_power_w);
  row.set(kTrueChipPowerW, rec.true_chip_power_w);
  row.set(kTotalIps, rec.total_ips);
  row.set(kMaxTempC, rec.max_temp_c);
  row.set(kThermalViolations, std::uint64_t{rec.thermal_violations});
  row.set(kDecideS, rec.decide_s);
  row.write(*out_);
}

void CsvSink::core(const CoreRecord& rec) {
  util::MutexLock lock(mutex_);
  Row row;
  row.set(kRecord, "core");
  row.set(kEpoch, rec.epoch);
  row.set(kCore, std::uint64_t{rec.core});
  row.set(kLevel, std::uint64_t{rec.level});
  row.set(kIps, rec.ips);
  row.set(kPowerW, rec.power_w);
  row.set(kTempC, rec.temp_c);
  row.set(kMemStallFrac, rec.mem_stall_frac);
  row.write(*out_);
}

void CsvSink::realloc(const ReallocRecord& rec) {
  util::MutexLock lock(mutex_);
  Row row;
  row.set(kRecord, "realloc");
  row.set(kEpoch, rec.epoch);
  row.set(kValue, rec.index);
  row.set(kBudgetW, rec.chip_budget_w);
  row.set(kMu, rec.mu);
  row.set(kMeanReward, rec.mean_reward);
  row.set(kEpsilon, rec.epsilon);
  row.write(*out_);
}

void CsvSink::budget_change(const BudgetChangeRecord& rec) {
  util::MutexLock lock(mutex_);
  Row row;
  row.set(kRecord, "budget_change");
  row.set(kEpoch, rec.epoch);
  row.set(kBudgetW, rec.budget_w);
  row.write(*out_);
}

void CsvSink::controller_swap(const ControllerSwapRecord& rec) {
  util::MutexLock lock(mutex_);
  Row row;
  row.set(kRecord, "controller_swap");
  row.set(kEpoch, rec.epoch);
  row.set(kName, rec.to);
  row.set(kValue, rec.from);
  row.write(*out_);
}

void CsvSink::metrics(const MetricsSnapshot& snap) {
  util::MutexLock lock(mutex_);
  for (const auto& c : snap.counters) {
    Row row;
    row.set(kRecord, "counter");
    row.set(kName, c.name);
    row.set(kValue, c.value);
    row.write(*out_);
  }
  for (const auto& g : snap.gauges) {
    Row row;
    row.set(kRecord, "gauge");
    row.set(kName, g.name);
    row.set(kValue, g.value);
    row.write(*out_);
  }
  for (const auto& h : snap.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      Row row;
      row.set(kRecord, "histogram_bin");
      row.set(kName, h.name);
      row.set(kEdge, i < h.upper_edges.size() ? fmt_double(h.upper_edges[i])
                                              : std::string("inf"));
      row.set(kValue, h.counts[i]);
      row.write(*out_);
    }
    Row row;
    row.set(kRecord, "histogram_sum");
    row.set(kName, h.name);
    row.set(kValue, h.count);
    row.set(kEdge, h.sum);
    row.write(*out_);
  }
}

void CsvSink::end_run() {
  util::MutexLock lock(mutex_);
  Row row;
  row.set(kRecord, "run_end");
  row.write(*out_);
  out_->flush();
}

}  // namespace odrl::telemetry
