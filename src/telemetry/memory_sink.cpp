#include "telemetry/memory_sink.hpp"

namespace odrl::telemetry {

namespace {

/// Ring-buffer push: grow until `capacity`, then overwrite the oldest slot
/// (which lives at seen % capacity once the buffer is full).
template <typename T>
void ring_push(std::vector<T>& buf, std::size_t capacity, std::size_t seen,
               const T& value) {
  if (capacity == 0 || buf.size() < capacity) {
    buf.push_back(value);
  } else {
    buf[seen % capacity] = value;
  }
}

/// Unrolls a ring into oldest-first order.
template <typename T>
std::vector<T> ring_unroll(const std::vector<T>& buf, std::size_t capacity,
                           std::size_t seen) {
  if (capacity == 0 || seen <= capacity) return buf;
  std::vector<T> out;
  out.reserve(buf.size());
  const std::size_t head = seen % capacity;  // oldest surviving record
  for (std::size_t i = 0; i < buf.size(); ++i) {
    out.push_back(buf[(head + i) % capacity]);
  }
  return out;
}

}  // namespace

void MemorySink::begin_run(const RunInfo& info) {
  util::MutexLock lock(mutex_);
  runs_.push_back(info);
}

void MemorySink::epoch(const EpochRecord& rec) {
  util::MutexLock lock(mutex_);
  ring_push(epochs_, capacity_, epochs_seen_, rec);
  ++epochs_seen_;
}

void MemorySink::core(const CoreRecord& rec) {
  util::MutexLock lock(mutex_);
  ring_push(cores_, capacity_, cores_seen_, rec);
  ++cores_seen_;
}

void MemorySink::realloc(const ReallocRecord& rec) {
  util::MutexLock lock(mutex_);
  reallocs_.push_back(rec);
}

void MemorySink::budget_change(const BudgetChangeRecord& rec) {
  util::MutexLock lock(mutex_);
  budget_changes_.push_back(rec);
}

void MemorySink::controller_swap(const ControllerSwapRecord& rec) {
  util::MutexLock lock(mutex_);
  controller_swaps_.push_back(rec);
}

void MemorySink::metrics(const MetricsSnapshot& snap) {
  util::MutexLock lock(mutex_);
  metrics_ = snap;
}

void MemorySink::end_run() {
  util::MutexLock lock(mutex_);
  ++runs_ended_;
}

std::vector<EpochRecord> MemorySink::epochs() const {
  util::MutexLock lock(mutex_);
  return ring_unroll(epochs_, capacity_, epochs_seen_);
}

std::vector<CoreRecord> MemorySink::cores() const {
  util::MutexLock lock(mutex_);
  return ring_unroll(cores_, capacity_, cores_seen_);
}

std::vector<ReallocRecord> MemorySink::reallocs() const {
  util::MutexLock lock(mutex_);
  return reallocs_;
}

std::vector<BudgetChangeRecord> MemorySink::budget_changes() const {
  util::MutexLock lock(mutex_);
  return budget_changes_;
}

std::vector<ControllerSwapRecord> MemorySink::controller_swaps() const {
  util::MutexLock lock(mutex_);
  return controller_swaps_;
}

std::vector<RunInfo> MemorySink::runs() const {
  util::MutexLock lock(mutex_);
  return runs_;
}

MetricsSnapshot MemorySink::last_metrics() const {
  util::MutexLock lock(mutex_);
  return metrics_;
}

std::size_t MemorySink::epochs_seen() const {
  util::MutexLock lock(mutex_);
  return epochs_seen_;
}

std::size_t MemorySink::cores_seen() const {
  util::MutexLock lock(mutex_);
  return cores_seen_;
}

std::size_t MemorySink::runs_ended() const {
  util::MutexLock lock(mutex_);
  return runs_ended_;
}

}  // namespace odrl::telemetry
