#include "telemetry/memory_sink.hpp"

namespace odrl::telemetry {

namespace {

/// Ring-buffer push: grow until `capacity`, then overwrite the oldest slot
/// (which lives at seen % capacity once the buffer is full).
template <typename T>
void ring_push(std::vector<T>& buf, std::size_t capacity, std::size_t seen,
               const T& value) {
  if (capacity == 0 || buf.size() < capacity) {
    buf.push_back(value);
  } else {
    buf[seen % capacity] = value;
  }
}

/// Unrolls a ring into oldest-first order.
template <typename T>
std::vector<T> ring_unroll(const std::vector<T>& buf, std::size_t capacity,
                           std::size_t seen) {
  if (capacity == 0 || seen <= capacity) return buf;
  std::vector<T> out;
  out.reserve(buf.size());
  const std::size_t head = seen % capacity;  // oldest surviving record
  for (std::size_t i = 0; i < buf.size(); ++i) {
    out.push_back(buf[(head + i) % capacity]);
  }
  return out;
}

}  // namespace

void MemorySink::begin_run(const RunInfo& info) { runs_.push_back(info); }

void MemorySink::epoch(const EpochRecord& rec) {
  ring_push(epochs_, capacity_, epochs_seen_, rec);
  ++epochs_seen_;
}

void MemorySink::core(const CoreRecord& rec) {
  ring_push(cores_, capacity_, cores_seen_, rec);
  ++cores_seen_;
}

void MemorySink::realloc(const ReallocRecord& rec) {
  reallocs_.push_back(rec);
}

void MemorySink::budget_change(const BudgetChangeRecord& rec) {
  budget_changes_.push_back(rec);
}

void MemorySink::controller_swap(const ControllerSwapRecord& rec) {
  controller_swaps_.push_back(rec);
}

void MemorySink::metrics(const MetricsSnapshot& snap) { metrics_ = snap; }

void MemorySink::end_run() { ++runs_ended_; }

std::vector<EpochRecord> MemorySink::epochs() const {
  return ring_unroll(epochs_, capacity_, epochs_seen_);
}

std::vector<CoreRecord> MemorySink::cores() const {
  return ring_unroll(cores_, capacity_, cores_seen_);
}

}  // namespace odrl::telemetry
