// Text formatting shared by the serializing sinks: shortest round-trip
// double formatting and JSON string escaping.
#pragma once

#include <string>
#include <string_view>

namespace odrl::telemetry {

/// Shortest decimal representation that round-trips the exact double
/// (std::to_chars). Non-finite values format as "nan"/"inf"/"-inf" -- the
/// JSONL sink substitutes null for those, since JSON has no spelling for
/// them.
std::string fmt_double(double value);

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters; everything else passes through).
std::string json_escape(std::string_view s);

}  // namespace odrl::telemetry
