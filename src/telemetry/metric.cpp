#include "telemetry/metric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace odrl::telemetry {

Histogram::Histogram(std::vector<double> upper_edges)
    : upper_edges_(std::move(upper_edges)) {
  if (upper_edges_.empty()) {
    throw std::invalid_argument("Histogram: no bin edges");
  }
  for (std::size_t i = 0; i < upper_edges_.size(); ++i) {
    if (!std::isfinite(upper_edges_[i])) {
      throw std::invalid_argument("Histogram: non-finite bin edge");
    }
    if (i > 0 && upper_edges_[i] <= upper_edges_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bin edges not strictly increasing");
    }
  }
  counts_.assign(upper_edges_.size() + 1, 0);
}

std::vector<double> Histogram::exponential_edges(double lo, double hi,
                                                 std::size_t n) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument(
        "Histogram::exponential_edges: need 0 < lo < hi");
  }
  if (n < 2) {
    throw std::invalid_argument("Histogram::exponential_edges: n < 2");
  }
  std::vector<double> edges(n);
  const double ratio = std::log(hi / lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    edges[i] = lo * std::exp(ratio * static_cast<double>(i));
  }
  edges.back() = hi;  // exact endpoint, no rounding drift
  return edges;
}

void Histogram::observe(double value) {
  // First bin whose upper edge is strictly above the value; edges are the
  // *exclusive* upper bounds, so an observation on an edge moves up a bin.
  const auto it =
      std::upper_bound(upper_edges_.begin(), upper_edges_.end(), value);
  ++counts_[static_cast<std::size_t>(it - upper_edges_.begin())];
  ++count_;
  sum_ += value;
}

HistogramSample Histogram::sample(std::string name) const {
  HistogramSample s;
  s.name = std::move(name);
  s.upper_edges = upper_edges_;
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  return s;
}

}  // namespace odrl::telemetry
