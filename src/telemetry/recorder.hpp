// The recording facade the sim/core layers talk to. A Recorder owns the
// run's named instruments (counters/gauges/histograms), applies the
// sampling policy, and fans records out to the attached sinks.
//
// Cost model: a Recorder with no sinks is inert -- every record_* call is
// one empty()-check and a return, so instrumented code paths guard with
// `if (rec && rec->active())` and pay nothing when telemetry is off (the
// <3% no-op bound on the decide() hot path is enforced by construction:
// the controllers' instrumentation sits outside their parallel loops and
// behind a null check).
//
// Threading/determinism contract: all record_* and instrument calls of
// ONE run must come from one thread (the closed-loop driver's), in epoch
// order -- the parallel regions of the simulator and controllers never
// call into the Recorder; they hand their results to the serial section
// that does. Sinks therefore observe a deterministic record sequence for
// any thread count, and recording never changes RunResults (it only reads
// them). That single-writer shape used to be an implicit convention; the
// internals are now guarded by an annotated mutex (rank kRecorder) so a
// Recorder shared across threads -- e.g. fleet-level counters aggregated
// over per-chip runs -- is merely *interleaved*, never corrupted, and the
// guard is machine-checked by -Wthread-safety in CI.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metric.hpp"
#include "telemetry/record.hpp"
#include "telemetry/sink.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::telemetry {

struct RecorderConfig {
  /// Keep every k-th epoch (and its per-core records); controller events
  /// (realloc, budget_change) always pass -- they are sparse and losing
  /// them would orphan the mu/epsilon story the traces exist to tell.
  std::size_t sample_every = 1;
  /// Also emit per-core records (n_cores rows per sampled epoch).
  bool per_core = false;

  void validate() const;
};

class Recorder {
 public:
  Recorder() = default;
  explicit Recorder(RecorderConfig config);

  /// Sinks are shared: callers typically keep their own handle (e.g. a
  /// MemorySink to inspect after the run).
  void add_sink(std::shared_ptr<Sink> sink);

  /// True once a sink is attached; the universal hot-path guard. Lock-free
  /// (one relaxed atomic load), so inactive instrumented paths still pay
  /// nothing.
  bool active() const { return n_sinks_.load(std::memory_order_acquire) != 0; }
  const RecorderConfig& config() const { return config_; }

  /// True when per-core records are wanted for this epoch -- callers check
  /// before assembling n_cores records.
  bool wants_cores(std::uint64_t epoch) const {
    return active() && config_.per_core && sampled(epoch);
  }
  bool sampled(std::uint64_t epoch) const {
    return epoch % config_.sample_every == 0;
  }

  void begin_run(const RunInfo& info);
  /// Emits the metrics snapshot, then end_run, to every sink.
  void end_run() ODRL_EXCLUDES(mutex_);

  void record_epoch(const EpochRecord& rec);
  void record_core(const CoreRecord& rec);
  void record_realloc(const ReallocRecord& rec);
  void record_budget_change(const BudgetChangeRecord& rec);
  void record_controller_swap(const ControllerSwapRecord& rec);

  /// Named instruments, created on first use. Names are sorted in the
  /// snapshot, so emission order never depends on creation order. The
  /// lookup locks (the maps may rebalance); the returned reference is
  /// stable (std::map) and updated by the run's single recording thread
  /// per the contract above.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; on reuse the edges must match the existing histogram
  /// (throws std::invalid_argument otherwise).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_edges);

  MetricsSnapshot snapshot() const ODRL_EXCLUDES(mutex_);

 private:
  MetricsSnapshot snapshot_locked() const ODRL_REQUIRES(mutex_);

  RecorderConfig config_;
  mutable util::Mutex mutex_{util::LockRank::kRecorder, "recorder"};
  /// Mirror of sinks_.size() so active() stays lock-free.
  std::atomic<std::size_t> n_sinks_{0};
  std::vector<std::shared_ptr<Sink>> sinks_ ODRL_GUARDED_BY(mutex_);
  std::map<std::string, Counter> counters_ ODRL_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ ODRL_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ ODRL_GUARDED_BY(mutex_);
};

}  // namespace odrl::telemetry
