// The telemetry event schema: typed records describing one closed-loop run.
//
// Every record is a plain value struct -- no behaviour, no pointers -- so a
// sink can copy, buffer, serialize or drop it freely. The schema is shared
// with the sim layer: sim::RunResult's per-epoch trace *is* a vector of
// EpochRecord (sim::EpochTrace aliases it), which keeps the in-memory trace
// and every exported trace format describing the same quantities.
//
// Determinism contract (see DESIGN.md "Telemetry"): records are emitted from
// the run loop's thread only, in epoch order, and carry no wall-clock
// timestamps other than the decide() latency they explicitly measure.
// Recording never perturbs the run -- RunResults are bit-identical with
// telemetry on or off, at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace odrl::telemetry {

/// Identifies a run to the sinks (emitted once, before the first epoch).
struct RunInfo {
  std::string controller;     ///< Controller::name() of the policy under test
  std::size_t n_cores = 0;
  std::size_t epochs = 0;     ///< measured epochs the run will execute
  double epoch_s = 0.0;       ///< control epoch length in seconds
  /// Session identity for fleet runs (ChipSpec::tag under run_multichip);
  /// empty for standalone runs, and sinks omit it when empty so untagged
  /// output stays byte-identical to the pre-tag format.
  std::string tag;
};

/// Chip-level per-epoch record: the quantities every experiment plots.
/// Power fields distinguish the measured (sensor, possibly noisy) and true
/// values -- controllers only ever saw the former, evaluation uses the
/// latter.
struct EpochRecord {
  std::uint64_t epoch = 0;
  double budget_w = 0.0;            ///< TDP budget in force this epoch
  double chip_power_w = 0.0;        ///< measured (sensor) total chip power
  double true_chip_power_w = 0.0;   ///< noise-free total chip power
  double total_ips = 0.0;           ///< chip instructions per second
  double max_temp_c = 0.0;          ///< hottest tile this epoch
  std::uint32_t thermal_violations = 0;
  double decide_s = 0.0;            ///< wall time of this epoch's decide()
};

/// Per-core per-epoch record (optional: RecorderConfig::per_core).
struct CoreRecord {
  std::uint64_t epoch = 0;
  std::uint32_t core = 0;
  std::uint32_t level = 0;          ///< V/F level the core ran at
  double ips = 0.0;                 ///< measured instructions per second
  double power_w = 0.0;             ///< measured core power
  double temp_c = 0.0;              ///< junction temperature
  double mem_stall_frac = 0.0;      ///< stall-cycle fraction
};

/// OD-RL coarse-grain event: one global budget reallocation, with the
/// controller-internal signals the paper's convergence story is told in.
struct ReallocRecord {
  std::uint64_t epoch = 0;
  std::uint64_t index = 0;          ///< 0-based reallocation counter
  double mu = 0.0;                  ///< overcommit multiplier after the move
  double mean_reward = 0.0;         ///< mean agent reward, last epoch
  double epsilon = 0.0;             ///< exploration rate (core 0's schedule)
  double chip_budget_w = 0.0;       ///< real (not virtual) chip budget
  /// Per-core budget snapshot after the damped move. Reallocations are rare
  /// (every realloc_period epochs), so carrying the full vector is cheap.
  std::vector<double> core_budgets;
};

/// A power-cap event reached a controller (runner schedule or external).
struct BudgetChangeRecord {
  std::uint64_t epoch = 0;
  double budget_w = 0.0;            ///< new chip budget
};

/// The runner hot-swapped the live controller (RunConfig::swaps). Stamped
/// with the system's epoch counter, like every event record.
struct ControllerSwapRecord {
  std::uint64_t epoch = 0;
  std::string from;                 ///< name of the controller replaced
  std::string to;                   ///< name of the controller now active
};

// ---------------------------------------------------------------- metrics

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

/// Fixed-bin histogram snapshot. counts.size() == upper_edges.size() + 1:
/// bin i < edges.size() covers [edges[i-1], edges[i]) (first bin reaches
/// down to -inf), the final bin is the overflow [edges.back(), +inf).
struct HistogramSample {
  std::string name;
  std::vector<double> upper_edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;          ///< total observations
  double sum = 0.0;                 ///< sum of observed values
};

/// Everything the Recorder's named metrics held at end_run, name-sorted so
/// sinks see a deterministic order.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

}  // namespace odrl::telemetry
