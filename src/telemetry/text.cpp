#include "telemetry/text.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace odrl::telemetry {

std::string fmt_double(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::array<char, 32> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  return std::string(buf.data(), res.ptr);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace odrl::telemetry
