// CSV sink: one flat table for all record kinds, discriminated by the
// leading `record` column. Cells that do not apply to a row's kind are left
// empty -- pandas/R load the file directly and split by `record`.
//
// Row kinds and the columns they fill (all other cells empty):
//   run_begin      -- name=controller (also echoed as a `# run ...` comment
//                     line carrying cores/epochs/epoch_s)
//   epoch          -- epoch, budget_w..decide_s
//   core           -- epoch, core, level, ips, power_w, temp_c,
//                     mem_stall_frac
//   realloc        -- epoch, value=index, budget_w=chip budget, mu,
//                     mean_reward, epsilon (per-core budget snapshots are
//                     JSONL-only; CSV stays rectangular)
//   budget_change  -- epoch, budget_w
//   controller_swap-- epoch, name=new controller, value=old controller
//   counter/gauge  -- name, value
//   histogram_bin  -- name, edge (upper edge, "inf" = overflow), value=count
//   histogram_sum  -- name, value=total observations, edge=sum of values
//   run_end        -- (marker row)
// When RunInfo::tag is non-empty (per-chip sessions under run_multichip)
// the `# run ...` comment gains a `tag=` token and the run_begin row
// carries the tag in its `value` cell; untagged runs are byte-identical to
// the pre-tag format, so existing goldens and parsers are unaffected.
#pragma once

#include <ostream>

#include "telemetry/sink.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::telemetry {

class CsvSink final : public Sink {
 public:
  /// Borrows the stream (must outlive the sink); writes the header row
  /// immediately so even an empty run produces a parseable file.
  explicit CsvSink(std::ostream& out);

  void begin_run(const RunInfo& info) override;
  void epoch(const EpochRecord& rec) override;
  void core(const CoreRecord& rec) override;
  void realloc(const ReallocRecord& rec) override;
  void budget_change(const BudgetChangeRecord& rec) override;
  void controller_swap(const ControllerSwapRecord& rec) override;
  void metrics(const MetricsSnapshot& snap) override;
  void end_run() override;

 private:
  // Guarded so interleaved writers corrupt nothing; one Recorder still
  // delivers records serially, the lock covers shared-stream setups.
  mutable util::Mutex mutex_{util::LockRank::kSink, "csv-sink"};
  std::ostream* out_ ODRL_PT_GUARDED_BY(mutex_);
};

}  // namespace odrl::telemetry
