// JSONL sink: one JSON object per line, discriminated by the `type` field.
// The full-fidelity export format -- every schema field appears, including
// the per-core budget snapshots CSV omits. Load with e.g.
//   pandas.read_json("run.jsonl", lines=True)
//
// Line types: run_begin, epoch, core, realloc, budget_change,
// controller_swap, counter,
// gauge, histogram, run_end (see DESIGN.md "Telemetry" for the field
// lists). Numbers use shortest round-trip formatting; non-finite values
// serialize as null (JSON has no NaN/inf).
// When RunInfo::tag is non-empty the run_begin line carries a `tag` field
// (per-chip session identity under run_multichip); untagged runs emit the
// pre-tag byte layout, keeping golden digests valid.
#pragma once

#include <ostream>

#include "telemetry/sink.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::telemetry {

class JsonlSink final : public Sink {
 public:
  /// Borrows the stream; it must outlive the sink.
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  void begin_run(const RunInfo& info) override;
  void epoch(const EpochRecord& rec) override;
  void core(const CoreRecord& rec) override;
  void realloc(const ReallocRecord& rec) override;
  void budget_change(const BudgetChangeRecord& rec) override;
  void controller_swap(const ControllerSwapRecord& rec) override;
  void metrics(const MetricsSnapshot& snap) override;
  void end_run() override;

 private:
  // Guarded so interleaved writers corrupt nothing; one Recorder still
  // delivers records serially, the lock covers shared-stream setups.
  mutable util::Mutex mutex_{util::LockRank::kSink, "jsonl-sink"};
  std::ostream* out_ ODRL_PT_GUARDED_BY(mutex_);
};

}  // namespace odrl::telemetry
