#include "telemetry/jsonl_sink.hpp"

#include <cmath>
#include <string>

#include "telemetry/text.hpp"

namespace odrl::telemetry {

namespace {

/// Tiny single-line JSON object builder; no nesting beyond flat arrays.
class Line {
 public:
  explicit Line(const char* type) : out_("{\"type\":\"") {
    out_ += type;
    out_ += '"';
  }

  Line& field(const char* key, std::uint64_t v) {
    sep(key);
    out_ += std::to_string(v);
    return *this;
  }
  Line& field(const char* key, double v) {
    sep(key);
    out_ += std::isfinite(v) ? fmt_double(v) : "null";
    return *this;
  }
  Line& field(const char* key, const std::string& v) {
    sep(key);
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
  }
  Line& field(const char* key, const std::vector<double>& v) {
    sep(key);
    out_ += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out_ += ',';
      out_ += std::isfinite(v[i]) ? fmt_double(v[i]) : "null";
    }
    out_ += ']';
    return *this;
  }
  Line& field(const char* key, const std::vector<std::uint64_t>& v) {
    sep(key);
    out_ += '[';
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out_ += ',';
      out_ += std::to_string(v[i]);
    }
    out_ += ']';
    return *this;
  }

  void write(std::ostream& out) {
    out_ += "}\n";
    out << out_;
  }

 private:
  void sep(const char* key) {
    out_ += ",\"";
    out_ += key;
    out_ += "\":";
  }

  std::string out_;
};

}  // namespace

void JsonlSink::begin_run(const RunInfo& info) {
  util::MutexLock lock(mutex_);
  Line line("run_begin");
  line.field("controller", info.controller)
      .field("cores", std::uint64_t{info.n_cores})
      .field("epochs", std::uint64_t{info.epochs})
      .field("epoch_s", info.epoch_s);
  // Session tag only when set: untagged runs keep the pre-tag byte layout.
  if (!info.tag.empty()) line.field("tag", info.tag);
  line.write(*out_);
}

void JsonlSink::epoch(const EpochRecord& rec) {
  util::MutexLock lock(mutex_);
  Line("epoch")
      .field("epoch", rec.epoch)
      .field("budget_w", rec.budget_w)
      .field("chip_power_w", rec.chip_power_w)
      .field("true_chip_power_w", rec.true_chip_power_w)
      .field("total_ips", rec.total_ips)
      .field("max_temp_c", rec.max_temp_c)
      .field("thermal_violations", std::uint64_t{rec.thermal_violations})
      .field("decide_s", rec.decide_s)
      .write(*out_);
}

void JsonlSink::core(const CoreRecord& rec) {
  util::MutexLock lock(mutex_);
  Line("core")
      .field("epoch", rec.epoch)
      .field("core", std::uint64_t{rec.core})
      .field("level", std::uint64_t{rec.level})
      .field("ips", rec.ips)
      .field("power_w", rec.power_w)
      .field("temp_c", rec.temp_c)
      .field("mem_stall_frac", rec.mem_stall_frac)
      .write(*out_);
}

void JsonlSink::realloc(const ReallocRecord& rec) {
  util::MutexLock lock(mutex_);
  Line("realloc")
      .field("epoch", rec.epoch)
      .field("index", rec.index)
      .field("mu", rec.mu)
      .field("mean_reward", rec.mean_reward)
      .field("epsilon", rec.epsilon)
      .field("chip_budget_w", rec.chip_budget_w)
      .field("core_budgets", rec.core_budgets)
      .write(*out_);
}

void JsonlSink::budget_change(const BudgetChangeRecord& rec) {
  util::MutexLock lock(mutex_);
  Line("budget_change")
      .field("epoch", rec.epoch)
      .field("budget_w", rec.budget_w)
      .write(*out_);
}

void JsonlSink::controller_swap(const ControllerSwapRecord& rec) {
  util::MutexLock lock(mutex_);
  Line("controller_swap")
      .field("epoch", rec.epoch)
      .field("from", rec.from)
      .field("to", rec.to)
      .write(*out_);
}

void JsonlSink::metrics(const MetricsSnapshot& snap) {
  util::MutexLock lock(mutex_);
  for (const auto& c : snap.counters) {
    Line("counter").field("name", c.name).field("value", c.value).write(*out_);
  }
  for (const auto& g : snap.gauges) {
    Line("gauge").field("name", g.name).field("value", g.value).write(*out_);
  }
  for (const auto& h : snap.histograms) {
    Line("histogram")
        .field("name", h.name)
        .field("upper_edges", h.upper_edges)
        .field("counts", h.counts)
        .field("count", h.count)
        .field("sum", h.sum)
        .write(*out_);
  }
}

void JsonlSink::end_run() {
  util::MutexLock lock(mutex_);
  Line("run_end").write(*out_);
  out_->flush();
}

}  // namespace odrl::telemetry
