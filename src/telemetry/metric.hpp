// Scalar instruments owned by a telemetry::Recorder: monotonic counters,
// last-value gauges and fixed-bin histograms. All are plain single-threaded
// value types -- the Recorder contract (one emitting thread) makes atomics
// unnecessary, which keeps the hot-path cost of an increment at one add.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/record.hpp"

namespace odrl::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bin histogram over explicit, strictly increasing upper bin edges.
/// A value v lands in the first bin whose upper edge exceeds it:
/// bin 0 = (-inf, e0), bin i = [e(i-1), e(i)), overflow = [e(last), +inf).
/// An observation exactly on an edge therefore belongs to the bin *above*
/// it -- pinned by tests, relied on by the decide()-latency bucketing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  /// Log-spaced edges: n geometrically spaced values from `lo` to `hi`
  /// inclusive -- the natural layout for latencies spanning decades.
  static std::vector<double> exponential_edges(double lo, double hi,
                                               std::size_t n);

  void observe(double value);

  const std::vector<double>& upper_edges() const { return upper_edges_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Snapshot with the given name attached.
  HistogramSample sample(std::string name) const;

 private:
  std::vector<double> upper_edges_;
  std::vector<std::uint64_t> counts_;  ///< upper_edges_.size() + 1 slots
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace odrl::telemetry
