// In-memory sink: buffers records for tests and programmatic analysis.
// With a nonzero capacity it degrades to a ring that keeps only the *last*
// `capacity` epoch/core records -- the bounded-memory option for long runs
// where only the recent window matters (events and metrics, which are rare
// and small, are always kept in full).
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/sink.hpp"

namespace odrl::telemetry {

class MemorySink final : public Sink {
 public:
  /// capacity = 0: unbounded buffers. capacity = n: ring of the last n
  /// epoch records (and, independently, the last n core records).
  explicit MemorySink(std::size_t capacity = 0) : capacity_(capacity) {}

  void begin_run(const RunInfo& info) override;
  void epoch(const EpochRecord& rec) override;
  void core(const CoreRecord& rec) override;
  void realloc(const ReallocRecord& rec) override;
  void budget_change(const BudgetChangeRecord& rec) override;
  void controller_swap(const ControllerSwapRecord& rec) override;
  void metrics(const MetricsSnapshot& snap) override;
  void end_run() override;

  /// Buffered epoch records, oldest first (ring already unrolled).
  std::vector<EpochRecord> epochs() const;
  std::vector<CoreRecord> cores() const;
  const std::vector<ReallocRecord>& reallocs() const { return reallocs_; }
  const std::vector<BudgetChangeRecord>& budget_changes() const {
    return budget_changes_;
  }
  const std::vector<ControllerSwapRecord>& controller_swaps() const {
    return controller_swaps_;
  }
  const std::vector<RunInfo>& runs() const { return runs_; }
  const MetricsSnapshot& last_metrics() const { return metrics_; }

  std::size_t capacity() const { return capacity_; }
  /// Total records *offered*, including those the ring has since dropped.
  std::size_t epochs_seen() const { return epochs_seen_; }
  std::size_t cores_seen() const { return cores_seen_; }
  std::size_t runs_ended() const { return runs_ended_; }

 private:
  std::size_t capacity_;
  std::vector<EpochRecord> epochs_;   ///< ring storage when capacity_ > 0
  std::vector<CoreRecord> cores_;
  std::size_t epochs_seen_ = 0;
  std::size_t cores_seen_ = 0;
  std::vector<ReallocRecord> reallocs_;
  std::vector<BudgetChangeRecord> budget_changes_;
  std::vector<ControllerSwapRecord> controller_swaps_;
  std::vector<RunInfo> runs_;
  MetricsSnapshot metrics_;
  std::size_t runs_ended_ = 0;
};

}  // namespace odrl::telemetry
