// In-memory sink: buffers records for tests and programmatic analysis.
// With a nonzero capacity it degrades to a ring that keeps only the *last*
// `capacity` epoch/core records -- the bounded-memory option for long runs
// where only the recent window matters (events and metrics, which are rare
// and small, are always kept in full).
//
// Internally guarded (rank kSink): the recording side is serial per the
// Recorder contract, but accessors may be polled from another thread (a
// fleet monitor watching a chip mid-run), so every buffer sits behind an
// annotated mutex and the accessors return *copies* taken under the lock
// -- never references into storage a concurrent record could reallocate.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/sink.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace odrl::telemetry {

class MemorySink final : public Sink {
 public:
  /// capacity = 0: unbounded buffers. capacity = n: ring of the last n
  /// epoch records (and, independently, the last n core records).
  explicit MemorySink(std::size_t capacity = 0) : capacity_(capacity) {}

  void begin_run(const RunInfo& info) override;
  void epoch(const EpochRecord& rec) override;
  void core(const CoreRecord& rec) override;
  void realloc(const ReallocRecord& rec) override;
  void budget_change(const BudgetChangeRecord& rec) override;
  void controller_swap(const ControllerSwapRecord& rec) override;
  void metrics(const MetricsSnapshot& snap) override;
  void end_run() override;

  /// Buffered epoch records, oldest first (ring already unrolled).
  std::vector<EpochRecord> epochs() const;
  std::vector<CoreRecord> cores() const;
  std::vector<ReallocRecord> reallocs() const;
  std::vector<BudgetChangeRecord> budget_changes() const;
  std::vector<ControllerSwapRecord> controller_swaps() const;
  std::vector<RunInfo> runs() const;
  MetricsSnapshot last_metrics() const;

  std::size_t capacity() const { return capacity_; }
  /// Total records *offered*, including those the ring has since dropped.
  std::size_t epochs_seen() const;
  std::size_t cores_seen() const;
  std::size_t runs_ended() const;

 private:
  const std::size_t capacity_;  ///< immutable after construction
  mutable util::Mutex mutex_{util::LockRank::kSink, "memory-sink"};
  std::vector<EpochRecord> epochs_ ODRL_GUARDED_BY(mutex_);
  std::vector<CoreRecord> cores_ ODRL_GUARDED_BY(mutex_);
  std::size_t epochs_seen_ ODRL_GUARDED_BY(mutex_) = 0;
  std::size_t cores_seen_ ODRL_GUARDED_BY(mutex_) = 0;
  std::vector<ReallocRecord> reallocs_ ODRL_GUARDED_BY(mutex_);
  std::vector<BudgetChangeRecord> budget_changes_ ODRL_GUARDED_BY(mutex_);
  std::vector<ControllerSwapRecord> controller_swaps_ ODRL_GUARDED_BY(mutex_);
  std::vector<RunInfo> runs_ ODRL_GUARDED_BY(mutex_);
  MetricsSnapshot metrics_ ODRL_GUARDED_BY(mutex_);
  std::size_t runs_ended_ ODRL_GUARDED_BY(mutex_) = 0;
};

}  // namespace odrl::telemetry
