#include "telemetry/recorder.hpp"

#include <stdexcept>
#include <utility>

namespace odrl::telemetry {

void RecorderConfig::validate() const {
  if (sample_every == 0) {
    throw std::invalid_argument("RecorderConfig: sample_every == 0");
  }
}

Recorder::Recorder(RecorderConfig config) : config_(config) {
  config_.validate();
}

void Recorder::add_sink(std::shared_ptr<Sink> sink) {
  if (!sink) throw std::invalid_argument("Recorder::add_sink: null sink");
  util::MutexLock lock(mutex_);
  sinks_.push_back(std::move(sink));
  n_sinks_.store(sinks_.size(), std::memory_order_release);
}

void Recorder::begin_run(const RunInfo& info) {
  util::MutexLock lock(mutex_);
  for (const auto& sink : sinks_) sink->begin_run(info);
}

void Recorder::end_run() {
  if (!active()) return;
  // One lock for the whole epilogue (snapshot_locked, not the public
  // snapshot(): re-locking here would self-deadlock, which is exactly what
  // the ODRL_EXCLUDES annotations catch statically).
  util::MutexLock lock(mutex_);
  const MetricsSnapshot snap = snapshot_locked();
  for (const auto& sink : sinks_) {
    sink->metrics(snap);
    sink->end_run();
  }
}

void Recorder::record_epoch(const EpochRecord& rec) {
  if (!active() || !sampled(rec.epoch)) return;
  util::MutexLock lock(mutex_);
  for (const auto& sink : sinks_) sink->epoch(rec);
}

void Recorder::record_core(const CoreRecord& rec) {
  if (!wants_cores(rec.epoch)) return;
  util::MutexLock lock(mutex_);
  for (const auto& sink : sinks_) sink->core(rec);
}

void Recorder::record_realloc(const ReallocRecord& rec) {
  if (!active()) return;
  util::MutexLock lock(mutex_);
  for (const auto& sink : sinks_) sink->realloc(rec);
}

void Recorder::record_budget_change(const BudgetChangeRecord& rec) {
  if (!active()) return;
  util::MutexLock lock(mutex_);
  for (const auto& sink : sinks_) sink->budget_change(rec);
}

void Recorder::record_controller_swap(const ControllerSwapRecord& rec) {
  if (!active()) return;
  util::MutexLock lock(mutex_);
  for (const auto& sink : sinks_) sink->controller_swap(rec);
}

Counter& Recorder::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  return counters_[name];
}

Gauge& Recorder::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  return gauges_[name];
}

Histogram& Recorder::histogram(const std::string& name,
                               std::vector<double> upper_edges) {
  util::MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.upper_edges() != upper_edges) {
      throw std::invalid_argument("Recorder::histogram: edge mismatch for '" +
                                  name + "'");
    }
    return it->second;
  }
  return histograms_.emplace(name, Histogram(std::move(upper_edges)))
      .first->second;
}

MetricsSnapshot Recorder::snapshot() const {
  util::MutexLock lock(mutex_);
  return snapshot_locked();
}

MetricsSnapshot Recorder::snapshot_locked() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(h.sample(name));
  }
  return snap;
}

}  // namespace odrl::telemetry
