#include "telemetry/recorder.hpp"

#include <stdexcept>
#include <utility>

namespace odrl::telemetry {

void RecorderConfig::validate() const {
  if (sample_every == 0) {
    throw std::invalid_argument("RecorderConfig: sample_every == 0");
  }
}

Recorder::Recorder(RecorderConfig config) : config_(config) {
  config_.validate();
}

void Recorder::add_sink(std::shared_ptr<Sink> sink) {
  if (!sink) throw std::invalid_argument("Recorder::add_sink: null sink");
  sinks_.push_back(std::move(sink));
}

void Recorder::begin_run(const RunInfo& info) {
  for (const auto& sink : sinks_) sink->begin_run(info);
}

void Recorder::end_run() {
  if (!active()) return;
  const MetricsSnapshot snap = snapshot();
  for (const auto& sink : sinks_) {
    sink->metrics(snap);
    sink->end_run();
  }
}

void Recorder::record_epoch(const EpochRecord& rec) {
  if (!active() || !sampled(rec.epoch)) return;
  for (const auto& sink : sinks_) sink->epoch(rec);
}

void Recorder::record_core(const CoreRecord& rec) {
  if (!wants_cores(rec.epoch)) return;
  for (const auto& sink : sinks_) sink->core(rec);
}

void Recorder::record_realloc(const ReallocRecord& rec) {
  if (!active()) return;
  for (const auto& sink : sinks_) sink->realloc(rec);
}

void Recorder::record_budget_change(const BudgetChangeRecord& rec) {
  if (!active()) return;
  for (const auto& sink : sinks_) sink->budget_change(rec);
}

void Recorder::record_controller_swap(const ControllerSwapRecord& rec) {
  if (!active()) return;
  for (const auto& sink : sinks_) sink->controller_swap(rec);
}

Counter& Recorder::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Recorder::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Recorder::histogram(const std::string& name,
                               std::vector<double> upper_edges) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.upper_edges() != upper_edges) {
      throw std::invalid_argument("Recorder::histogram: edge mismatch for '" +
                                  name + "'");
    }
    return it->second;
  }
  return histograms_.emplace(name, Histogram(std::move(upper_edges)))
      .first->second;
}

MetricsSnapshot Recorder::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(h.sample(name));
  }
  return snap;
}

}  // namespace odrl::telemetry
