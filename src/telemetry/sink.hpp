// The pluggable sink interface: where telemetry records go.
//
// A sink is a passive consumer -- the Recorder pushes records into every
// attached sink, on one thread, in deterministic (epoch) order. Default
// implementations ignore everything, so a sink only overrides the record
// kinds it cares about. Provided sinks:
//
//   * NullSink    -- discards everything (a Recorder with no sinks is
//                    cheaper still: its record_* calls return immediately);
//   * MemorySink  -- in-memory buffers, optionally a bounded ring
//                    (memory_sink.hpp; tests and programmatic analysis);
//   * CsvSink     -- one flat CSV stream, `record` column discriminates
//                    row kinds (csv_sink.hpp);
//   * JsonlSink   -- one JSON object per line, `type` field discriminates;
//                    full schema fidelity (jsonl_sink.hpp).
#pragma once

#include "telemetry/record.hpp"

namespace odrl::telemetry {

class Sink {
 public:
  virtual ~Sink() = default;

  virtual void begin_run(const RunInfo& /*info*/) {}
  virtual void epoch(const EpochRecord& /*rec*/) {}
  virtual void core(const CoreRecord& /*rec*/) {}
  virtual void realloc(const ReallocRecord& /*rec*/) {}
  virtual void budget_change(const BudgetChangeRecord& /*rec*/) {}
  virtual void controller_swap(const ControllerSwapRecord& /*rec*/) {}
  /// Counter/gauge/histogram totals, delivered just before end_run.
  virtual void metrics(const MetricsSnapshot& /*snap*/) {}
  virtual void end_run() {}
};

/// Discards everything. Useful to measure sink-dispatch overhead and as an
/// explicit "telemetry plumbing on, output off" configuration.
class NullSink final : public Sink {};

}  // namespace odrl::telemetry
