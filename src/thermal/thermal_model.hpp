// Lumped RC thermal network (HotSpot-class, one node per tile).
//
// Each tile has a vertical resistance to the heat sink (held at ambient), a
// lateral resistance to each 4-neighbour, and a heat capacity:
//
//   C dT_i/dt = P_i - (T_i - T_amb)/R_v - sum_j (T_i - T_j)/R_lat
//
// Integrated with forward Euler, sub-stepped automatically so the scheme is
// stable for any control-epoch length. TDP is the chip-level proxy for
// staying inside this model's safe envelope; the simulator additionally
// reports thermal-violation epochs so experiments can check that budget
// compliance actually keeps silicon cool.
//
// Hot-path layout: the neighbour lists are flattened at construction into
// a CSR layout (nbr_offset_/nbr_flat_, real degrees) plus a padded
// slot-major table (kMaxDegree slots per tile, missing neighbours padded
// with the tile's own index). The padded table is what the vectorized
// Euler substep gathers from: a self-padded slot contributes exactly
// (T_i - T_i)/R_lat = +0.0 to the flow, and subtracting +0.0 is a bitwise
// no-op, so the padded kernel is bit-identical to iterating the real
// neighbour lists (DESIGN.md "Vectorized kernels"). The Jacobi
// steady-state solve uses the real-degree CSR (padding is *not* neutral
// there -- each neighbour also adds conductance to the denominator).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/chip_config.hpp"
#include "arch/mesh.hpp"

namespace odrl::thermal {

/// Outcome of the Jacobi steady-state solve. `converged` is false when the
/// iteration cap was exhausted before the update fell under the tolerance
/// -- callers that care (tests, calibration sweeps) must check it; the
/// plain steady_state() wrapper asserts it under ODRL_CHECKED.
struct SteadyStateResult {
  std::vector<double> temps_c;
  bool converged = false;
  std::size_t iterations = 0;
};

class ThermalModel {
 public:
  /// 4-neighbour mesh topology: the padded neighbour table has this many
  /// slots per tile.
  static constexpr std::size_t kMaxDegree = 4;
  /// Hard ceiling on Euler substeps per step() call. With the default RC
  /// constants this admits dt_s of ~5000 s -- far beyond any control epoch
  /// -- while a hostile dt from a corrupt trace/config fails fast instead
  /// of silently spinning millions of substeps.
  static constexpr std::size_t kMaxSubsteps = 1u << 20;

  ThermalModel(const arch::Mesh& mesh, arch::ThermalParams params);

  /// Advances the network by dt_s seconds with per-tile powers `power_w`
  /// (size must equal mesh.size(); tiles beyond the core count get 0).
  /// Throws std::invalid_argument when dt_s would need more than
  /// kMaxSubsteps stable substeps.
  void step(std::span<const double> power_w, double dt_s);

  /// Steady-state temperatures for constant powers (solves the linear
  /// system by damped Jacobi iteration; exact for this diagonally-dominant
  /// network). Does not modify the transient state.
  SteadyStateResult steady_state_result(std::span<const double> power_w) const;

  /// Convenience wrapper returning only the temperatures. Non-convergence
  /// is a contract violation under ODRL_CHECKED and silent otherwise --
  /// callers that must know use steady_state_result().
  std::vector<double> steady_state(std::span<const double> power_w) const;

  const std::vector<double>& temperatures() const { return temps_; }
  double temperature(std::size_t tile) const;
  double max_temperature() const;
  /// Number of tiles currently above the junction limit.
  std::size_t violation_count() const;

  /// Largest Euler substep that keeps the explicit scheme stable (hoisted
  /// to the constructor; exposed for tests and step-budget math).
  double dt_stable_s() const noexcept { return dt_stable_; }

  void reset(double temp_c);
  /// Bulk restore of the transient field (snapshot/resume). `temps_c` must
  /// hold exactly size() finite values; throws std::invalid_argument
  /// otherwise.
  void set_temperatures(std::span<const double> temps_c);
  const arch::ThermalParams& params() const { return params_; }
  std::size_t size() const { return temps_.size(); }

 private:
  /// One Euler substep of `dt_s` (scalar and vectorized variants; the
  /// public step() dispatches on util::simd_active()).
  void euler_step_scalar(std::span<const double> power_w, double dt_s);
  void euler_step_vec(std::span<const double> power_w, double dt_s);
  /// Scalar per-tile flow integration shared by the scalar variant and the
  /// vectorized variant's remainder tail.
  void euler_tile(std::span<const double> power_w, double dt_s,
                  std::size_t i);

  arch::Mesh mesh_;
  arch::ThermalParams params_;
  std::vector<double> temps_;
  std::vector<double> scratch_;

  // CSR neighbour topology (real degrees) for the Jacobi solve.
  std::vector<std::size_t> nbr_offset_;  ///< size() + 1 offsets
  std::vector<std::size_t> nbr_flat_;    ///< concatenated neighbour ids
  /// Padded slot-major table for the Euler kernel: slot s of tile i is
  /// nbr_padded_[s * size() + i]; missing neighbours hold i itself.
  std::vector<std::size_t> nbr_padded_;
  /// Per (slot, lane group) contiguity flags: 1 when the group's padded
  /// indices are consecutive (idx[k] == idx[0] + k), so the Euler kernel
  /// can replace the per-lane gather with one element-aligned vector load
  /// of the same values -- a pure load-path change, bit-identical data.
  /// Interior mesh tiles qualify for every slot; only boundary groups
  /// (self-padded or wrapping a row edge) fall back to the gather.
  std::vector<std::uint8_t> nbr_contig_;

  // Stability constants, hoisted from step() (they depend only on the
  // immutable RC parameters).
  double g_max_ = 0.0;
  double dt_stable_ = 0.0;
};

}  // namespace odrl::thermal
