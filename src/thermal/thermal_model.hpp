// Lumped RC thermal network (HotSpot-class, one node per tile).
//
// Each tile has a vertical resistance to the heat sink (held at ambient), a
// lateral resistance to each 4-neighbour, and a heat capacity:
//
//   C dT_i/dt = P_i - (T_i - T_amb)/R_v - sum_j (T_i - T_j)/R_lat
//
// Integrated with forward Euler, sub-stepped automatically so the scheme is
// stable for any control-epoch length. TDP is the chip-level proxy for
// staying inside this model's safe envelope; the simulator additionally
// reports thermal-violation epochs so experiments can check that budget
// compliance actually keeps silicon cool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "arch/chip_config.hpp"
#include "arch/mesh.hpp"

namespace odrl::thermal {

class ThermalModel {
 public:
  ThermalModel(const arch::Mesh& mesh, arch::ThermalParams params);

  /// Advances the network by dt_s seconds with per-tile powers `power_w`
  /// (size must equal mesh.size(); tiles beyond the core count get 0).
  void step(std::span<const double> power_w, double dt_s);

  /// Steady-state temperatures for constant powers (solves the linear
  /// system by damped Jacobi iteration; exact for this diagonally-dominant
  /// network). Does not modify the transient state.
  std::vector<double> steady_state(std::span<const double> power_w) const;

  const std::vector<double>& temperatures() const { return temps_; }
  double temperature(std::size_t tile) const;
  double max_temperature() const;
  /// Number of tiles currently above the junction limit.
  std::size_t violation_count() const;

  void reset(double temp_c);
  const arch::ThermalParams& params() const { return params_; }
  std::size_t size() const { return temps_.size(); }

 private:
  /// One Euler substep of `dt_s`.
  void euler_step(std::span<const double> power_w, double dt_s);

  arch::Mesh mesh_;
  arch::ThermalParams params_;
  std::vector<double> temps_;
  std::vector<double> scratch_;
  std::vector<std::vector<std::size_t>> neighbors_;
};

}  // namespace odrl::thermal
