#include "thermal/thermal_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/check.hpp"
#include "util/simd.hpp"

namespace odrl::thermal {

ThermalModel::ThermalModel(const arch::Mesh& mesh, arch::ThermalParams params)
    : mesh_(mesh), params_(params) {
  params_.validate();
  const std::size_t n = mesh_.size();
  temps_.assign(n, params_.ambient_c);
  scratch_.assign(n, 0.0);
  // Flatten the topology once: real-degree CSR for the Jacobi solve, plus
  // the self-padded slot-major table the Euler kernel gathers from. Real
  // neighbours occupy the leading slots in mesh order; a padded slot holds
  // the tile's own index, whose flow term is exactly +0.0 (see header).
  nbr_offset_.assign(n + 1, 0);
  nbr_flat_.clear();
  nbr_padded_.assign(kMaxDegree * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<std::size_t> nbrs = mesh_.neighbors(i);
    nbr_offset_[i + 1] = nbr_offset_[i] + nbrs.size();
    nbr_flat_.insert(nbr_flat_.end(), nbrs.begin(), nbrs.end());
    for (std::size_t s = 0; s < kMaxDegree; ++s) {
      nbr_padded_[s * n + i] = s < nbrs.size() ? nbrs[s] : i;
    }
  }
  // Contiguity flags for the vector load fast path: one byte per
  // (slot, lane group) saying whether that group's padded indices are
  // consecutive, in which case the gather collapses to a single
  // element-aligned vector load of the very same temperatures.
  const std::size_t groups = n / util::kSimdLanes;
  nbr_contig_.assign(kMaxDegree * groups, 0);
  for (std::size_t s = 0; s < kMaxDegree; ++s) {
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t* idx = &nbr_padded_[s * n + g * util::kSimdLanes];
      bool contig = true;
      for (std::size_t k = 1; k < util::kSimdLanes; ++k) {
        contig = contig && idx[k] == idx[0] + k;
      }
      nbr_contig_[s * groups + g] = contig ? 1 : 0;
    }
  }
  // Stability: Euler needs dt < C / G_total where G_total is the largest
  // total conductance of a node (vertical + up to 4 lateral links). Both
  // constants depend only on the immutable RC parameters, so they are
  // computed once here rather than on every step() call.
  g_max_ = 1.0 / params_.r_vertical_c_per_w +
           static_cast<double>(kMaxDegree) / params_.r_lateral_c_per_w;
  dt_stable_ = 0.25 * params_.c_tile_j_per_c / g_max_;
}

void ThermalModel::euler_tile(std::span<const double> power_w, double dt_s,
                              std::size_t i) {
  const std::size_t n = temps_.size();
  double flow = power_w[i];
  flow -= (temps_[i] - params_.ambient_c) / params_.r_vertical_c_per_w;
  for (std::size_t s = 0; s < kMaxDegree; ++s) {
    const std::size_t j = nbr_padded_[s * n + i];
    flow -= (temps_[i] - temps_[j]) / params_.r_lateral_c_per_w;
  }
  scratch_[i] = temps_[i] + dt_s * flow / params_.c_tile_j_per_c;
}

void ThermalModel::euler_step_scalar(std::span<const double> power_w,
                                     double dt_s) {
  for (std::size_t i = 0; i < temps_.size(); ++i) {
    euler_tile(power_w, dt_s, i);
  }
  temps_.swap(scratch_);
}

void ThermalModel::euler_step_vec(std::span<const double> power_w,
                                  double dt_s) {
  using util::vdouble;
  using util::kSimdLanes;
  const std::size_t n = temps_.size();
  const vdouble amb(params_.ambient_c);
  const vdouble rv(params_.r_vertical_c_per_w);
  const vdouble rl(params_.r_lateral_c_per_w);
  const vdouble cap(params_.c_tile_j_per_c);
  const vdouble dt(dt_s);
  const std::size_t groups = n / kSimdLanes;
  std::size_t i = 0;
  for (std::size_t g = 0; g < groups; ++g, i += kSimdLanes) {
    const vdouble t = util::vload(&temps_[i]);
    vdouble flow = util::vload(&power_w[i]);
    flow = flow - (t - amb) / rv;
    for (std::size_t s = 0; s < kMaxDegree; ++s) {
      const std::size_t* idx = &nbr_padded_[s * n + i];
      // Contiguous groups (interior tiles) take one vector load; the
      // gather below reads the identical elements, so both paths feed
      // the arithmetic the same bits.
      const vdouble tn = nbr_contig_[s * groups + g]
                             ? util::vload(&temps_[idx[0]])
                             : vdouble([&](auto k) { return temps_[idx[k]]; });
      flow = flow - (t - tn) / rl;
    }
    util::vstore(&scratch_[i], t + dt * flow / cap);
  }
  for (; i < n; ++i) euler_tile(power_w, dt_s, i);
  temps_.swap(scratch_);
}

void ThermalModel::step(std::span<const double> power_w, double dt_s) {
  if (power_w.size() != temps_.size()) {
    throw std::invalid_argument("ThermalModel::step: power vector size");
  }
  if (dt_s <= 0.0) {
    throw std::invalid_argument("ThermalModel::step: dt_s <= 0");
  }
  const double need = std::ceil(dt_s / dt_stable_);
  if (!(need <= static_cast<double>(kMaxSubsteps))) {
    throw std::invalid_argument(
        "ThermalModel::step: dt_s = " + std::to_string(dt_s) +
        " s needs " + std::to_string(need) + " stable substeps (dt_stable = " +
        std::to_string(dt_stable_) + " s, cap " +
        std::to_string(kMaxSubsteps) + ")");
  }
  const auto substeps =
      std::max<std::size_t>(1, static_cast<std::size_t>(need));
  const double dt_sub = dt_s / static_cast<double>(substeps);
  if (util::simd_active()) {
    for (std::size_t s = 0; s < substeps; ++s) euler_step_vec(power_w, dt_sub);
  } else {
    for (std::size_t s = 0; s < substeps; ++s) {
      euler_step_scalar(power_w, dt_sub);
    }
  }
}

SteadyStateResult ThermalModel::steady_state_result(
    std::span<const double> power_w) const {
  if (power_w.size() != temps_.size()) {
    throw std::invalid_argument("ThermalModel::steady_state: size");
  }
  // Jacobi on: T_i = (P_i + T_amb/R_v + sum_j T_j/R_lat) / G_i. Uses the
  // real-degree CSR: each neighbour adds conductance to the denominator,
  // so the self-padded table would bias corner/edge tiles here.
  SteadyStateResult result;
  result.temps_c.assign(temps_.size(), params_.ambient_c);
  std::vector<double> next(temps_.size(), 0.0);
  std::vector<double>& t = result.temps_c;
  const double gv = 1.0 / params_.r_vertical_c_per_w;
  const double gl = 1.0 / params_.r_lateral_c_per_w;
  constexpr std::size_t kMaxIters = 10000;
  constexpr double kTol = 1e-9;
  for (std::size_t iter = 0; iter < kMaxIters; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      double num = power_w[i] + params_.ambient_c * gv;
      double den = gv;
      for (std::size_t o = nbr_offset_[i]; o < nbr_offset_[i + 1]; ++o) {
        num += t[nbr_flat_[o]] * gl;
        den += gl;
      }
      next[i] = num / den;
      max_delta = std::max(max_delta, std::abs(next[i] - t[i]));
    }
    t.swap(next);
    result.iterations = iter + 1;
    if (max_delta < kTol) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<double> ThermalModel::steady_state(
    std::span<const double> power_w) const {
  SteadyStateResult result = steady_state_result(power_w);
  ODRL_CHECK(result.converged,
             "ThermalModel::steady_state: Jacobi did not converge");
  return std::move(result.temps_c);
}

double ThermalModel::temperature(std::size_t tile) const {
  if (tile >= temps_.size()) {
    throw std::out_of_range("ThermalModel::temperature: tile out of range");
  }
  return temps_[tile];
}

double ThermalModel::max_temperature() const {
  return *std::max_element(temps_.begin(), temps_.end());
}

std::size_t ThermalModel::violation_count() const {
  return static_cast<std::size_t>(
      std::count_if(temps_.begin(), temps_.end(), [&](double t) {
        return t > params_.max_junction_c;
      }));
}

void ThermalModel::reset(double temp_c) {
  std::fill(temps_.begin(), temps_.end(), temp_c);
}

void ThermalModel::set_temperatures(std::span<const double> temps_c) {
  if (temps_c.size() != temps_.size()) {
    throw std::invalid_argument(
        "ThermalModel::set_temperatures: size mismatch");
  }
  for (double t : temps_c) {
    if (!std::isfinite(t)) {
      throw std::invalid_argument(
          "ThermalModel::set_temperatures: non-finite temperature");
    }
  }
  std::copy(temps_c.begin(), temps_c.end(), temps_.begin());
}

}  // namespace odrl::thermal
