#include "thermal/thermal_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odrl::thermal {

ThermalModel::ThermalModel(const arch::Mesh& mesh, arch::ThermalParams params)
    : mesh_(mesh), params_(params) {
  params_.validate();
  temps_.assign(mesh_.size(), params_.ambient_c);
  scratch_.assign(mesh_.size(), 0.0);
  neighbors_.reserve(mesh_.size());
  for (std::size_t i = 0; i < mesh_.size(); ++i) {
    neighbors_.push_back(mesh_.neighbors(i));
  }
}

void ThermalModel::euler_step(std::span<const double> power_w, double dt_s) {
  for (std::size_t i = 0; i < temps_.size(); ++i) {
    double flow = power_w[i];
    flow -= (temps_[i] - params_.ambient_c) / params_.r_vertical_c_per_w;
    for (std::size_t j : neighbors_[i]) {
      flow -= (temps_[i] - temps_[j]) / params_.r_lateral_c_per_w;
    }
    scratch_[i] = temps_[i] + dt_s * flow / params_.c_tile_j_per_c;
  }
  temps_.swap(scratch_);
}

void ThermalModel::step(std::span<const double> power_w, double dt_s) {
  if (power_w.size() != temps_.size()) {
    throw std::invalid_argument("ThermalModel::step: power vector size");
  }
  if (dt_s <= 0.0) {
    throw std::invalid_argument("ThermalModel::step: dt_s <= 0");
  }
  // Stability: Euler needs dt < C / G_total where G_total is the largest
  // total conductance of a node (vertical + up to 4 lateral links).
  const double g_max = 1.0 / params_.r_vertical_c_per_w +
                       4.0 / params_.r_lateral_c_per_w;
  const double dt_stable = 0.25 * params_.c_tile_j_per_c / g_max;
  const auto substeps =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(dt_s / dt_stable)));
  const double dt_sub = dt_s / static_cast<double>(substeps);
  for (std::size_t s = 0; s < substeps; ++s) euler_step(power_w, dt_sub);
}

std::vector<double> ThermalModel::steady_state(
    std::span<const double> power_w) const {
  if (power_w.size() != temps_.size()) {
    throw std::invalid_argument("ThermalModel::steady_state: size");
  }
  // Jacobi on: T_i = (P_i + T_amb/R_v + sum_j T_j/R_lat) / G_i.
  std::vector<double> t(temps_.size(), params_.ambient_c);
  std::vector<double> next(temps_.size(), 0.0);
  const double gv = 1.0 / params_.r_vertical_c_per_w;
  const double gl = 1.0 / params_.r_lateral_c_per_w;
  for (int iter = 0; iter < 10000; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      double num = power_w[i] + params_.ambient_c * gv;
      double den = gv;
      for (std::size_t j : neighbors_[i]) {
        num += t[j] * gl;
        den += gl;
      }
      next[i] = num / den;
      max_delta = std::max(max_delta, std::abs(next[i] - t[i]));
    }
    t.swap(next);
    if (max_delta < 1e-9) break;
  }
  return t;
}

double ThermalModel::temperature(std::size_t tile) const {
  if (tile >= temps_.size()) {
    throw std::out_of_range("ThermalModel::temperature: tile out of range");
  }
  return temps_[tile];
}

double ThermalModel::max_temperature() const {
  return *std::max_element(temps_.begin(), temps_.end());
}

std::size_t ThermalModel::violation_count() const {
  return static_cast<std::size_t>(
      std::count_if(temps_.begin(), temps_.end(), [&](double t) {
        return t > params_.max_junction_c;
      }));
}

void ThermalModel::reset(double temp_c) {
  std::fill(temps_.begin(), temps_.end(), temp_c);
}

}  // namespace odrl::thermal
