// Epoch-level analytical performance model (Sniper-class CPI stack).
//
// A core running a phase at frequency f retires instructions at
//
//   IPS(f) = f / CPI_eff(f)
//   CPI_eff(f) = max(base_cpi, 1/issue_width)
//              + (mpki/1000) * mem_latency_ns * f * (1 - overlap)
//
// The second term converts the *wall-clock-fixed* DRAM latency into cycles,
// so it grows linearly with f: memory-bound phases see IPS saturate while
// power keeps rising with V^2 f. That saturation is the entire optimization
// landscape a power-limited DVFS controller navigates, and is what the
// per-core RL agents must discover on-line.
#pragma once

#include "arch/chip_config.hpp"
#include "workload/phase.hpp"

namespace odrl::perf {

/// What a core accomplished in one epoch.
struct EpochPerf {
  double instructions = 0.0;    ///< instructions retired this epoch
  double ips = 0.0;             ///< instructions per second
  double cpi = 0.0;             ///< effective cycles per instruction
  double mem_stall_frac = 0.0;  ///< fraction of cycles stalled on memory
};

class PerfModel {
 public:
  explicit PerfModel(arch::CoreParams params);

  /// Effective CPI of a phase at the given core frequency.
  /// `mem_latency_scale` (>= 1) inflates the exposed DRAM latency -- the
  /// shared-memory contention hook (see src/mem/dram_model.hpp); 1 = an
  /// uncontended memory system.
  double effective_cpi(const workload::PhaseSample& phase, double freq_ghz,
                       double mem_latency_scale = 1.0) const;

  /// Instructions per second at the given frequency.
  double ips(const workload::PhaseSample& phase, double freq_ghz,
             double mem_latency_scale = 1.0) const;

  /// Full epoch outcome for an epoch of `epoch_s` seconds.
  EpochPerf epoch(const workload::PhaseSample& phase, double freq_ghz,
                  double epoch_s, double mem_latency_scale = 1.0) const;

  /// Normalized frequency sensitivity in [0, 1]: dIPS/df * (f/IPS).
  /// 1 for perfectly compute-bound phases, -> 0 as memory dominates. The
  /// global budget reallocator ranks cores by (an on-line estimate of) this.
  double frequency_sensitivity(const workload::PhaseSample& phase,
                               double freq_ghz) const;

  /// Memory-stall fraction of cycles in [0, 1) at the given frequency --
  /// the observable the RL agents discretize as "memory intensity".
  double mem_stall_fraction(const workload::PhaseSample& phase,
                            double freq_ghz) const;

  const arch::CoreParams& params() const { return params_; }

 private:
  /// Memory cycles per instruction at frequency f.
  double mem_cpi(const workload::PhaseSample& phase, double freq_ghz,
                 double mem_latency_scale) const;
  /// Core-bound CPI floor.
  double core_cpi(const workload::PhaseSample& phase) const;

  arch::CoreParams params_;
};

}  // namespace odrl::perf
