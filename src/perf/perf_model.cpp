#include "perf/perf_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace odrl::perf {

PerfModel::PerfModel(arch::CoreParams params) : params_(params) {
  params_.validate();
}

double PerfModel::core_cpi(const workload::PhaseSample& phase) const {
  return std::max(phase.base_cpi, 1.0 / params_.issue_width);
}

double PerfModel::mem_cpi(const workload::PhaseSample& phase, double freq_ghz,
                          double mem_latency_scale) const {
  // mpki/1000 misses per instruction, each costing latency_ns * f_ghz cycles,
  // of which (1 - overlap) is exposed. Contention scales the latency.
  return phase.mpki / 1000.0 * params_.mem_latency_ns * mem_latency_scale *
         freq_ghz * (1.0 - params_.mem_overlap);
}

double PerfModel::effective_cpi(const workload::PhaseSample& phase,
                                double freq_ghz,
                                double mem_latency_scale) const {
  if (freq_ghz <= 0.0) {
    throw std::invalid_argument("PerfModel: freq_ghz must be > 0");
  }
  if (mem_latency_scale < 1.0) {
    throw std::invalid_argument("PerfModel: mem_latency_scale must be >= 1");
  }
  return core_cpi(phase) + mem_cpi(phase, freq_ghz, mem_latency_scale);
}

double PerfModel::ips(const workload::PhaseSample& phase, double freq_ghz,
                      double mem_latency_scale) const {
  return freq_ghz * 1e9 / effective_cpi(phase, freq_ghz, mem_latency_scale);
}

EpochPerf PerfModel::epoch(const workload::PhaseSample& phase, double freq_ghz,
                           double epoch_s, double mem_latency_scale) const {
  if (epoch_s <= 0.0) {
    throw std::invalid_argument("PerfModel::epoch: epoch_s must be > 0");
  }
  EpochPerf out;
  out.cpi = effective_cpi(phase, freq_ghz, mem_latency_scale);
  out.ips = freq_ghz * 1e9 / out.cpi;
  out.instructions = out.ips * epoch_s;
  out.mem_stall_frac = mem_cpi(phase, freq_ghz, mem_latency_scale) / out.cpi;
  return out;
}

double PerfModel::frequency_sensitivity(const workload::PhaseSample& phase,
                                        double freq_ghz) const {
  // IPS(f) = f / (c + m f) with c = core CPI, m f = memory CPI.
  // dIPS/df * f/IPS = c / (c + m f) = 1 - mem_stall_frac.
  return 1.0 - mem_stall_fraction(phase, freq_ghz);
}

double PerfModel::mem_stall_fraction(const workload::PhaseSample& phase,
                                     double freq_ghz) const {
  const double mem = mem_cpi(phase, freq_ghz, 1.0);
  return mem / (core_cpi(phase) + mem);
}

}  // namespace odrl::perf
