// Example: writing your own DVFS controller against the library's
// interface, registering it with the controller registry, and benchmarking
// it against OD-RL on the same trace.
//
// The controller implemented here ("HeadroomStepper") is a deliberately
// simple hand-written heuristic -- three virtual functions are all a policy
// needs:
//
//   * per epoch, compute each core's share of the remaining budget;
//   * step a core up when its measured power is below 70% of its share,
//     down when above 95%;
//   * shares are plain fair splits (no learning, no model).
//
// It is better than a static setting and far simpler than OD-RL -- and the
// printed comparison shows exactly what the learning buys over it.
//
//   ./custom_controller [--cores=16] [--epochs=4000]
#include <cstdio>
#include <iostream>
#include <memory>

#include "arch/chip_config.hpp"
#include "metrics/metrics.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "util/cli.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

/// The whole custom-controller surface: name / initial_levels /
/// decide_into. The decision is written into the runner-owned `out` span,
/// and the observation is read straight from the SoA columns -- no per-epoch
/// allocation anywhere in the policy.
class HeadroomStepper final : public sim::Controller {
 public:
  explicit HeadroomStepper(const arch::ChipConfig& chip)
      : n_levels_(chip.vf_table().size()) {}

  std::string name() const override { return "HeadroomStepper"; }

  std::vector<std::size_t> initial_levels(std::size_t n_cores) override {
    return std::vector<std::size_t>(n_cores, n_levels_ / 2);
  }

  void decide_into(const sim::EpochResult& obs,
                   std::span<std::size_t> out) override {
    const double share =
        obs.budget_w / static_cast<double>(obs.cores.size());
    const std::span<const std::size_t> cur = obs.cores.level();
    const std::span<const double> power = obs.cores.power_w();
    for (std::size_t i = 0; i < out.size(); ++i) {
      std::size_t level = cur[i];
      if (power[i] < 0.70 * share && level + 1 < n_levels_) {
        ++level;
      } else if (power[i] > 0.95 * share && level > 0) {
        --level;
      }
      out[i] = level;
    }
  }

 private:
  std::size_t n_levels_;
};

// Self-registration: one file-scope registrar makes the controller
// constructible by name everywhere in this binary -- exactly how the
// built-ins register themselves (see e.g. baselines/pid_controller.cpp).
const sim::ControllerRegistrar headroom_registrar{
    "HeadroomStepper",
    [](const arch::ChipConfig& chip, const sim::ControllerOverrides& ov) {
      (void)ov;
      return std::make_unique<HeadroomStepper>(chip);
    }};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto cores = static_cast<std::size_t>(args.get_int("cores", 16));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 4000));

  const arch::ChipConfig chip = arch::ChipConfig::make(cores, 0.6);
  workload::GeneratedWorkload gen =
      workload::GeneratedWorkload::mixed_suite(cores, 33);
  const workload::RecordedTrace trace = gen.record(2 * epochs);

  auto run = [&](sim::Controller& ctl) {
    sim::ManyCoreSystem system(
        chip, std::make_unique<workload::ReplayWorkload>(trace));
    sim::RunConfig rc;
    rc.warmup_epochs = epochs;  // steady-state comparison
    rc.epochs = epochs;
    return sim::run_closed_loop(system, ctl, rc);
  };

  std::printf("registered controllers:");
  for (const std::string& name : sim::registered_controllers()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  auto custom = sim::make_controller("HeadroomStepper", chip);
  auto odrl_ctl = sim::make_controller("OD-RL", chip);

  const sim::RunResult runs[] = {run(*odrl_ctl), run(*custom)};
  std::cout << metrics::comparison_table(runs).render(
      "your controller vs. OD-RL (same trace, steady state)");

  std::printf(
      "\nwhat the learning buys: the stepper divides the budget evenly, so\n"
      "memory-bound cores hoard watts they cannot use while compute-bound\n"
      "cores starve; OD-RL's reallocation migrates those watts (and its\n"
      "agents hold the overshoot margin the stepper's thresholds hard-code).\n");
  return 0;
}
