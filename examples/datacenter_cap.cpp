// Example: datacenter power capping.
//
// A rack-level power manager (RAPL-style) lowers and later restores the
// chip's power budget while a mixed tenant workload runs. The example shows
// the property the paper's on-line formulation buys: the controller adapts
// to a budget it has never seen before, without re-training or models --
// per-core allocations rescale immediately and the agents re-settle within
// a few hundred epochs.
//
//   ./datacenter_cap [--cores=32] [--epochs=9000] [--verbose]
#include <cstdio>
#include <memory>

#include "arch/chip_config.hpp"
#include "sim/controller_registry.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

using namespace odrl;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto cores = static_cast<std::size_t>(args.get_int("cores", 32));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 9000));
  if (args.get_bool("verbose", false)) {
    util::Logger::set_level(util::LogLevel::kInfo);
  }

  const arch::ChipConfig chip = arch::ChipConfig::make(cores, 0.7);
  const double full_w = chip.tdp_w();
  const double capped_w = 0.5 * full_w;

  std::printf("datacenter cap scenario: %zu cores\n", cores);
  std::printf("  phase 1 (epoch 0-%zu):     budget %.0f W (70%% of peak)\n",
              epochs / 3, full_w);
  std::printf("  phase 2 (epoch %zu-%zu): budget %.0f W (rack cap event)\n",
              epochs / 3, 2 * epochs / 3, capped_w);
  std::printf("  phase 3 (epoch %zu-%zu): budget %.0f W (cap lifted)\n\n",
              2 * epochs / 3, epochs, full_w);

  sim::ManyCoreSystem system(
      chip,
      std::make_unique<workload::GeneratedWorkload>(
          workload::GeneratedWorkload::mixed_suite(cores, 2024)));
  auto controller = sim::make_controller("OD-RL", chip);

  sim::RunConfig rc;
  rc.epochs = epochs;
  rc.budget_events = {{epochs / 3, capped_w}, {2 * epochs / 3, full_w}};
  const sim::RunResult run = sim::run_closed_loop(system, *controller, rc);

  // Per-phase digest from the traces.
  auto phase_stats = [&](std::size_t from, std::size_t to) {
    util::RunningStats power;
    util::RunningStats ips;
    double otb = 0.0;
    for (std::size_t e = from; e < to; ++e) {
      const sim::EpochTrace& t = run.trace[e];
      power.add(t.true_chip_power_w);
      ips.add(t.total_ips);
      otb += std::max(0.0, t.true_chip_power_w - t.budget_w) * run.epoch_s;
    }
    return std::tuple{power.mean(), ips.mean() / 1e9, otb};
  };

  std::printf("%-28s %10s %8s %10s\n", "phase", "power[W]", "BIPS",
              "OTB[J]");
  const char* names[] = {"1: full budget (learning)", "2: capped to 50%",
                         "3: cap lifted"};
  const std::size_t edges[] = {0, epochs / 3, 2 * epochs / 3, epochs};
  for (int p = 0; p < 3; ++p) {
    // Skip the first 500 epochs of each phase (adaptation transient) in the
    // steady digest, but report the transient OTB separately below.
    const auto [pw, bips, otb] = phase_stats(edges[p] + 500, edges[p + 1]);
    std::printf("%-28s %10.1f %8.2f %10.3f\n", names[p], pw, bips, otb);
  }

  // Adaptation transient after the cap drop: how long until chip power is
  // back under the new budget?
  std::size_t settle = 0;
  for (std::size_t e = epochs / 3; e < 2 * epochs / 3; ++e) {
    if (run.trace[e].true_chip_power_w <= capped_w) {
      settle = e - epochs / 3;
      break;
    }
  }
  std::printf("\nafter the cap drop, chip power was back under the new "
              "budget within %zu epochs (%.0f ms)\n",
              settle, static_cast<double>(settle) * run.epoch_s * 1e3);
  std::printf("whole-run OTB energy: %.3f J over %.1f s (%.4f%% of total "
              "energy)\n",
              run.otb_energy_j, run.elapsed_s(),
              100.0 * run.otb_energy_j / run.total_energy_j);
  return 0;
}
