// Example: budget migration between heterogeneous tenants.
//
// Half the chip runs a frequency-hungry compute kernel, the other half a
// DRAM-bound streaming workload. The interesting system behaviour is the
// coarse-grain level of OD-RL: watts migrate from cores that cannot convert
// them into instructions to cores that can. The example prints the two
// groups' budgets, power and V/F levels as they diverge, then flips the
// workloads between the groups mid-run and shows the budgets following.
//
//   ./heterogeneous_workloads [--cores=16] [--epochs=8000]
#include <cstdio>
#include <memory>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "sim/controller_registry.hpp"
#include "sim/system.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

/// A workload that swaps the benchmark assignment of the two core groups
/// at a given epoch (tenant migration).
class SwappingWorkload final : public workload::Workload {
 public:
  SwappingWorkload(std::size_t cores, std::size_t swap_epoch,
                   std::uint64_t seed)
      : swap_epoch_(swap_epoch),
        first_(cores, {workload::benchmark_by_name("compute.dense"),
                       workload::benchmark_by_name("memory.stream")},
               seed),
        second_(cores, {workload::benchmark_by_name("memory.stream"),
                        workload::benchmark_by_name("compute.dense")},
                seed + 1) {}

  std::size_t n_cores() const override { return first_.n_cores(); }

  std::span<const workload::PhaseSample> step() override {
    ++epoch_;
    // Both generators advance so the swap does not reset phase state. Each
    // generator owns its sample buffer, so returning either span is safe
    // until the corresponding generator steps again.
    const auto a = first_.step();
    const auto b = second_.step();
    return epoch_ <= swap_epoch_ ? a : b;
  }

  std::string core_label(std::size_t core) const override {
    return epoch_ <= swap_epoch_ ? first_.core_label(core)
                                 : second_.core_label(core);
  }

 private:
  std::size_t swap_epoch_;
  std::size_t epoch_ = 0;
  workload::GeneratedWorkload first_;
  workload::GeneratedWorkload second_;
};

struct GroupDigest {
  double budget_w = 0.0;
  double power_w = 0.0;
  double mean_level = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto cores = static_cast<std::size_t>(args.get_int("cores", 16));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 8000));
  const std::size_t swap = epochs / 2;

  const arch::ChipConfig chip = arch::ChipConfig::make(cores, 0.6);
  std::printf("heterogeneous tenants on %zu cores, TDP %.0f W\n", cores,
              chip.tdp_w());
  std::printf("  even cores: compute.dense, odd cores: memory.stream\n");
  std::printf("  at epoch %zu the two tenants swap places\n\n", swap);

  sim::ManyCoreSystem system(
      chip, std::make_unique<SwappingWorkload>(cores, swap, 7));
  auto controller_ptr = sim::make_controller("OD-RL", chip);
  auto& controller = dynamic_cast<core::OdrlController&>(*controller_ptr);

  auto digest = [&](const sim::EpochResult& obs,
                    std::size_t parity) {
    GroupDigest g;
    std::size_t n = 0;
    for (std::size_t i = parity; i < cores; i += 2) {
      g.budget_w += controller.core_budgets()[i];
      g.power_w += obs.cores[i].power_w;
      g.mean_level += static_cast<double>(obs.cores[i].level);
      ++n;
    }
    g.mean_level /= static_cast<double>(n);
    return g;
  };

  std::printf("%8s | %-34s | %-34s\n", "", "even cores (group A)",
              "odd cores (group B)");
  std::printf("%8s | %10s %10s %10s | %10s %10s %10s\n", "epoch", "budget",
              "power", "level", "budget", "power", "level");

  auto levels = controller.initial_levels(cores);
  std::vector<std::size_t> next(cores, 0);
  sim::EpochResult obs;
  for (std::size_t e = 0; e < epochs; ++e) {
    system.step_into(levels, obs);
    controller.decide_into(obs, next);
    levels.swap(next);
    if ((e + 1) % 1000 == 0) {
      const GroupDigest a = digest(obs, 0);
      const GroupDigest b = digest(obs, 1);
      std::printf("%8zu | %9.1fW %9.1fW %10.1f | %9.1fW %9.1fW %10.1f%s\n",
                  e + 1, a.budget_w, a.power_w, a.mean_level, b.budget_w,
                  b.power_w, b.mean_level,
                  e + 1 == swap ? "   <-- tenants swap" : "");
    }
  }

  std::printf("\nexpected shape: before the swap group A (compute) holds "
              "most of the budget at high V/F;\nafter the swap the "
              "allocation migrates to group B within a few reallocation "
              "periods.\n");
  return 0;
}
