// Quickstart: smallest end-to-end use of the library.
//
// Builds a 16-core chip capped at 60% of its peak power, runs the built-in
// mixed workload suite under the OD-RL controller and under the static
// worst-case baseline on the *same recorded trace*, and prints the standard
// comparison table. Controllers are built by name through the registry --
// pass --controller to swap the one under test.
//
//   ./quickstart [--cores=16] [--epochs=2000] [--budget=0.6] [--seed=1]
//                [--threads=1] [--controller=OD-RL]
//                [--chips=1] [--workers=1]
//                [--serve[=port]] [--serve-idle-polls=n]
//                [--faults=storm.txt | --fault-storm-seed=7] [--watchdog]
//                [--trace-out=run.jsonl] [--trace-format=jsonl|csv]
//                [--trace-cores] [--trace-sample=k]
//                [--save-snapshot=run.snap --snapshot-epoch=n]
//                [--load-snapshot=run.snap]
//                [--swap='epoch:controller[:k=v,...][;epoch:...]']
//
// --threads shards the per-core epoch and TD loops across a worker pool
// (0 = hardware concurrency). Results are bit-identical for every value.
//
// --chips=N > 1 switches to multi-chip fleet mode: N independent chips
// (per-chip seed substreams forked from --seed, see sim/multichip.hpp)
// run concurrently on one shared work-stealing runtime with --workers
// threads (0 = hardware concurrency). Prints a per-chip summary plus the
// fleet aggregates and runtime counters; every figure is bit-identical
// for every --workers value. Fleet mode composes with --faults and
// --watchdog (the schedule applies to every chip) but not with the
// trace/snapshot/swap flags, which are single-run concepts here.
//
// --serve switches to service mode: instead of simulating locally, the
// process becomes a control-plane power-management server
// (src/service/) on 127.0.0.1:<port> (0 or bare --serve = ephemeral;
// the bound port is printed). External tenant hosts open sessions over
// the length-prefixed wire protocol and stream measured epochs at it --
// see DESIGN.md "Control-plane service & wire protocol" and the
// in-process LoopbackClient for the message-level API. --workers sizes
// the server's task runtime (replies are bit-identical for any value);
// --serve-idle-polls=n exits after n consecutive idle pump iterations
// (0 = serve until killed), which keeps smoke tests hermetic.
//
// --faults replays a fault schedule (text format, see sim/faults.hpp)
// against both runs: sensor dropouts, delayed/dropped actuation, core
// hotplug and chip budget steps, deterministically. --fault-storm-seed
// generates a random storm instead of loading one. --watchdog arms the
// runner's graceful-degradation fallback (automatic whenever faults are
// injected).
//
// --trace-out records the measured region of the first (learning) run
// through the telemetry subsystem: per-epoch chip records (power, budget,
// IPS, max temperature, decide() latency), OD-RL reallocation events
// (per-core budgets, mu, epsilon, mean reward), counters/gauges and the
// decide()-latency histogram. --trace-cores adds per-core rows;
// --trace-sample=k keeps every k-th epoch. Recording never changes
// results.
//
// --save-snapshot captures the learning run's full state (system,
// controller, fault engine, runner bookkeeping) into a versioned binary
// snapshot at the top of measured epoch --snapshot-epoch;
// --load-snapshot resumes a run from such a file on freshly built
// objects -- rerun with identical flags and the resumed tail is
// bit-identical to the uninterrupted run. --swap hot-swaps the live
// controller at the given measured epoch(s), e.g.
// --swap='500:Greedy;1500:PID:kp=0.4' (registry overrides ride after the
// controller name). Malformed or mismatched snapshots are rejected with a
// structured status, never undefined behavior.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "metrics/metrics.hpp"
#include "service/client.hpp"
#include "service/tcp.hpp"
#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "sim/multichip.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/csv_sink.hpp"
#include "telemetry/jsonl_sink.hpp"
#include "telemetry/recorder.hpp"
#include "util/cli.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

/// Snapshot/hot-swap wiring for the main run (the static baseline never
/// snapshots or swaps: it is the reference).
struct SnapshotOptions {
  std::vector<sim::SwapEvent> swaps;
  std::size_t capture_epoch = 0;
  std::string* capture_out = nullptr;     ///< --save-snapshot target
  const std::string* resume = nullptr;    ///< --load-snapshot blob
};

/// Parses one "epoch:controller[:k=v,...]" swap spec.
bool parse_one_swap(const std::string& one, sim::SwapEvent& ev) {
  const std::size_t c1 = one.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  try {
    ev.epoch = static_cast<std::size_t>(std::stoul(one.substr(0, c1)));
  } catch (const std::exception&) {
    return false;
  }
  const std::size_t c2 = one.find(':', c1 + 1);
  ev.controller = one.substr(
      c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1);
  if (ev.controller.empty()) return false;
  if (c2 != std::string::npos) {
    std::size_t p = c2 + 1;
    while (p <= one.size()) {
      const std::size_t q = std::min(one.find(',', p), one.size());
      const std::string kv = one.substr(p, q - p);
      const std::size_t eq = kv.find('=');
      if (eq == 0 || eq == std::string::npos) return false;
      ev.overrides.set(kv.substr(0, eq), kv.substr(eq + 1));
      p = q + 1;
    }
  }
  return true;
}

/// Parses a ';'-separated list of swap specs into `out`.
bool parse_swaps(const std::string& spec, std::vector<sim::SwapEvent>& out) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', begin), spec.size());
    sim::SwapEvent ev;
    if (!parse_one_swap(spec.substr(begin, end - begin), ev)) return false;
    out.push_back(std::move(ev));
    begin = end + 1;
  }
  // The runner requires the schedule sorted by epoch; flag order is free.
  std::stable_sort(out.begin(), out.end(),
                   [](const sim::SwapEvent& a, const sim::SwapEvent& b) {
                     return a.epoch < b.epoch;
                   });
  return true;
}

sim::RunResult run_one(const arch::ChipConfig& chip,
                       const workload::RecordedTrace& trace,
                       sim::Controller& controller, std::size_t epochs,
                       std::size_t threads,
                       telemetry::Recorder* recorder = nullptr,
                       const sim::FaultSchedule* faults = nullptr,
                       bool watchdog = false,
                       const SnapshotOptions* snap = nullptr) {
  auto workload = std::make_unique<workload::ReplayWorkload>(trace);
  sim::ManyCoreSystem system(chip, std::move(workload));
  sim::RunConfig run_cfg;
  // Measure steady state: let the learning controller converge first (the
  // ramp itself is examined in bench_e6_convergence).
  run_cfg.warmup_epochs = epochs;
  run_cfg.epochs = epochs;
  run_cfg.threads = threads;
  run_cfg.recorder = recorder;
  run_cfg.faults = faults;
  run_cfg.watchdog.enabled = watchdog;
  if (snap != nullptr) {
    run_cfg.swaps = snap->swaps;
    run_cfg.snapshot_epoch = snap->capture_epoch;
    run_cfg.snapshot_out = snap->capture_out;
    run_cfg.resume_snapshot = snap->resume;
  }
  return sim::run_closed_loop(system, controller, run_cfg);
}

/// Parses --faults / --fault-storm-seed into `out` (shared by the
/// single-chip and fleet paths). Returns false after printing an error.
bool load_fault_flags(const util::CliArgs& args, std::size_t cores,
                      std::size_t epochs, sim::FaultSchedule& out) {
  const std::string faults_path = args.get("faults", "");
  const auto storm_seed =
      static_cast<std::uint64_t>(args.get_int("fault-storm-seed", 0));
  if (!faults_path.empty() && storm_seed != 0) {
    std::fprintf(stderr,
                 "error: --faults and --fault-storm-seed are exclusive\n");
    return false;
  }
  if (!faults_path.empty()) {
    try {
      out = sim::load_fault_schedule_file(faults_path);
      out.validate(cores);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return false;
    }
  } else if (storm_seed != 0) {
    out = sim::FaultSchedule::random_storm(cores, epochs, storm_seed);
  }
  return true;
}

/// Fleet mode (--chips > 1): N seed-forked copies of the configured chip
/// stepped concurrently on one shared runtime. Returns the process exit
/// code.
int run_fleet(const util::CliArgs& args, std::size_t chips,
              std::size_t cores, double budget_fraction, std::size_t epochs,
              std::uint64_t seed, const std::string& controller_name) {
  for (const char* flag : {"trace-out", "save-snapshot", "load-snapshot",
                           "swap"}) {
    if (!args.get(flag, "").empty()) {
      std::fprintf(stderr, "error: --%s is not available in fleet mode\n",
                   flag);
      return 1;
    }
  }

  sim::FaultSchedule faults;
  if (!load_fault_flags(args, cores, epochs, faults)) return 1;
  const bool inject = !faults.empty();
  const bool watchdog = args.get_bool("watchdog", false) || inject;
  if (inject) {
    std::printf("faults: %zu scheduled events per chip, watchdog armed\n",
                faults.size());
  }

  sim::FleetConfig fc;
  fc.chips = chips;
  fc.cores = cores;
  fc.budget_fraction = budget_fraction;
  fc.controller = controller_name;
  fc.epochs = epochs;
  fc.warmup_epochs = epochs;  // steady state, like the single-chip run
  fc.seed = seed;
  fc.keep_traces = false;
  fc.faults = inject ? &faults : nullptr;
  sim::Fleet fleet(fc);
  if (watchdog) {
    for (sim::ChipSpec& spec : fleet.specs()) {
      spec.config.watchdog.enabled = true;
    }
  }

  sim::MultiChipConfig mc;
  mc.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  const sim::MultiChipResult fr = sim::run_multichip(fleet.specs(), mc);

  std::printf("fleet: %zu chips x %zu cores under %s, %zu workers\n", chips,
              cores, controller_name.c_str(),
              task::Runtime::resolve_workers(mc.workers));
  for (std::size_t i = 0; i < fr.chips.size(); ++i) {
    const sim::RunResult& r = fr.chips[i];
    std::printf(
        "  chip %2zu: %7.3f bips, mean power %6.1f W, "
        "time over budget %5.2f%%\n",
        i, r.bips(), r.mean_power_w,
        100.0 * r.overshoot_time_fraction());
  }
  std::printf(
      "fleet totals: %.3f bips, mean power %.1f W, "
      "energy over budget %.1f J, wall %.3f s\n",
      fr.bips(), fr.mean_power_w, fr.otb_energy_j, fr.wall_s);
  std::printf(
      "runtime: %llu tasks, %llu steals (%llu attempts), %llu overflows\n",
      static_cast<unsigned long long>(fr.runtime_stats.tasks_executed),
      static_cast<unsigned long long>(fr.runtime_stats.steals),
      static_cast<unsigned long long>(fr.runtime_stats.steal_attempts),
      static_cast<unsigned long long>(fr.runtime_stats.overflows));
  return 0;
}

/// Service mode (--serve): the process becomes a control-plane server for
/// external tenant hosts instead of simulating a chip itself. Returns the
/// process exit code.
int run_serve(const util::CliArgs& args) {
  service::ServerConfig sc;
  sc.workers = static_cast<std::size_t>(args.get_int("workers", 1));
  service::Server server(sc);

  // A loopback hello against our own server: the same message a remote
  // tenant opens with, reused here to print the controller registry.
  service::LoopbackClient probe(server, "quickstart");
  const service::HelloReply hello = probe.hello();

  // Bare --serve parses as the boolean "true": treat it as port 0
  // (ephemeral) rather than an integer flag error.
  const std::string port_arg = args.get("serve", "0");
  const auto port = static_cast<std::uint16_t>(
      port_arg == "true" ? 0 : args.get_int("serve", 0));
  const auto idle_limit =
      static_cast<std::size_t>(args.get_int("serve-idle-polls", 0));
  try {
    service::TcpServer tcp(server, port);
    std::printf("service: %s listening on 127.0.0.1:%u (%zu workers)\n",
                server.config().name.c_str(), tcp.port(),
                task::Runtime::resolve_workers(sc.workers));
    std::printf("service: controllers:");
    for (const std::string& name : hello.controllers) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    // Single-threaded pump: the adapter shuttles frames, the server's
    // runtime does the work. Ctrl-C (or the idle limit) ends the process;
    // Server's destructor drains in-flight requests before exiting.
    std::size_t idle = 0;
    while (idle_limit == 0 || idle < idle_limit) {
      idle = tcp.poll_once(200) > 0 ? 0 : idle + 1;
    }
    std::printf("service: idle for %zu polls, shutting down\n", idle);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: service failed: %s\n", e.what());
    return 1;
  }
  const service::ServerStats stats = server.stats();
  std::printf(
      "service: %llu requests (%llu errors), %llu sessions opened, "
      "%llu epochs stepped\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.errors),
      static_cast<unsigned long long>(stats.sessions_opened),
      static_cast<unsigned long long>(stats.epochs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto cores = static_cast<std::size_t>(args.get_int("cores", 16));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 2000));
  const double budget_fraction = args.get_double("budget", 0.6);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::string controller_name = args.get("controller", "OD-RL");

  if (args.has("serve")) return run_serve(args);

  const auto chips = static_cast<std::size_t>(args.get_int("chips", 1));
  if (chips > 1) {
    return run_fleet(args, chips, cores, budget_fraction, epochs, seed,
                     controller_name);
  }

  const arch::ChipConfig chip = arch::ChipConfig::make(cores, budget_fraction);
  std::printf("chip: %zu cores, %zu V/F levels, TDP = %.1f W (%.0f%% of %.1f W peak)\n",
              chip.n_cores(), chip.vf_table().size(), chip.tdp_w(),
              100.0 * budget_fraction, chip.max_chip_power_w());

  // Record one workload trace so both controllers see identical inputs
  // (warmup + measured region).
  workload::GeneratedWorkload generator =
      workload::GeneratedWorkload::mixed_suite(cores, seed);
  const workload::RecordedTrace trace = generator.record(2 * epochs);

  auto main_ctl = sim::make_controller(controller_name, chip);
  auto static_ctl = sim::make_controller("Static", chip);

  // Optional telemetry export of the main controller's run.
  telemetry::RecorderConfig rec_cfg;
  rec_cfg.sample_every =
      static_cast<std::size_t>(args.get_int("trace-sample", 1));
  rec_cfg.per_core = args.get_bool("trace-cores", false);
  telemetry::Recorder recorder(rec_cfg);
  std::ofstream trace_out;
  const std::string trace_path = args.get("trace-out", "");
  if (!trace_path.empty()) {
    trace_out.open(trace_path);
    if (!trace_out) {
      std::fprintf(stderr, "error: cannot open %s\n", trace_path.c_str());
      return 1;
    }
    const std::string format = args.get("trace-format", "jsonl");
    if (format == "jsonl") {
      recorder.add_sink(std::make_shared<telemetry::JsonlSink>(trace_out));
    } else if (format == "csv") {
      recorder.add_sink(std::make_shared<telemetry::CsvSink>(trace_out));
    } else {
      std::fprintf(stderr, "error: --trace-format must be jsonl or csv\n");
      return 1;
    }
  }

  // Optional fault injection: load a schedule or generate a storm; either
  // arms the watchdog (and --watchdog arms it on a healthy run too).
  sim::FaultSchedule faults;
  if (!load_fault_flags(args, cores, epochs, faults)) return 1;
  const bool inject = !faults.empty();
  const bool watchdog = args.get_bool("watchdog", false) || inject;
  if (inject) {
    std::printf("faults: %zu scheduled events%s, watchdog armed\n",
                faults.size(),
                args.get("faults", "").empty() ? " (random storm)" : "");
  }

  // Optional snapshot capture/resume and controller hot-swaps (main run
  // only; see the header comment for the flag grammar).
  SnapshotOptions snap;
  std::string snapshot_blob;
  std::string resume_blob;
  const std::string save_path = args.get("save-snapshot", "");
  const std::string load_path = args.get("load-snapshot", "");
  if (!save_path.empty()) {
    snap.capture_epoch =
        static_cast<std::size_t>(args.get_int("snapshot-epoch", 0));
    snap.capture_out = &snapshot_blob;
  }
  if (!load_path.empty()) {
    std::ifstream in(load_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", load_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    resume_blob = std::move(buf).str();
    snap.resume = &resume_blob;
  }
  const std::string swap_spec = args.get("swap", "");
  if (!swap_spec.empty() && !parse_swaps(swap_spec, snap.swaps)) {
    std::fprintf(stderr,
                 "error: --swap expects epoch:controller[:k=v,...] specs "
                 "separated by ';', got '%s'\n",
                 swap_spec.c_str());
    return 1;
  }

  sim::RunResult main_run;
  try {
    main_run = run_one(chip, trace, *main_ctl, epochs, threads, &recorder,
                       inject ? &faults : nullptr, watchdog, &snap);
  } catch (const snapshot::SnapshotError& e) {
    std::fprintf(stderr, "error: snapshot rejected (%s): %s\n",
                 snapshot::snapshot_status_name(e.status()), e.what());
    return 1;
  }
  if (!save_path.empty()) {
    std::ofstream out(save_path, std::ios::binary);
    out.write(snapshot_blob.data(),
              static_cast<std::streamsize>(snapshot_blob.size()));
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", save_path.c_str());
      return 1;
    }
    std::printf("snapshot: %zu bytes captured at epoch %zu -> %s\n",
                snapshot_blob.size(), snap.capture_epoch, save_path.c_str());
  }
  if (snap.resume != nullptr) {
    std::printf("snapshot: resumed %s at epoch %zu (%zu epochs remain)\n",
                load_path.c_str(), main_run.start_epoch, main_run.epochs);
  }
  // A/B report per hot-swap: budget compliance of the segments on either
  // side (negative deltas mean the incoming controller did better).
  for (const sim::SwapImpact& s : main_run.swap_report) {
    std::printf("swap: epoch %llu, %s -> %s\n",
                static_cast<unsigned long long>(s.epoch), s.from.c_str(),
                s.to.c_str());
    std::printf(
        "  overshoot %.3f W -> %.3f W (%+.3f), violations %.1f%% -> "
        "%.1f%% (%+.1f pp) over %zu/%zu epochs\n",
        s.mean_overshoot_w_before, s.mean_overshoot_w_after,
        s.delta_mean_overshoot_w(), 100.0 * s.violation_frac_before,
        100.0 * s.violation_frac_after, 100.0 * s.delta_violation_frac(),
        s.epochs_before, s.epochs_after);
  }
  const sim::RunResult static_run =
      run_one(chip, trace, *static_ctl, epochs, threads, nullptr,
              inject ? &faults : nullptr, watchdog);

  const sim::RunResult runs[] = {main_run, static_run};
  std::cout << '\n'
            << metrics::comparison_table(runs).render(
                   main_run.controller_name +
                   " vs. static worst-case provisioning");

  std::printf("\n%s throughput gain over static: %+.1f%%\n",
              main_run.controller_name.c_str(),
              100.0 * (main_run.bips() / static_run.bips() - 1.0));
  std::printf("%s time over budget: %.2f%% of the run\n",
              main_run.controller_name.c_str(),
              100.0 * main_run.overshoot_time_fraction());
  if (inject) {
    std::printf(
        "%s under faults: %zu events applied, %zu decisions sanitized, "
        "%zu fallback entries, %zu fallback epochs\n",
        main_run.controller_name.c_str(), main_run.fault_events_applied,
        main_run.watchdog_invalid_decisions,
        main_run.watchdog_fallback_entries,
        main_run.watchdog_fallback_epochs);
  }
  if (!trace_path.empty()) {
    std::printf("telemetry written to %s\n", trace_path.c_str());
  }
  return 0;
}
