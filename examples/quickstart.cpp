// Quickstart: smallest end-to-end use of the library.
//
// Builds a 16-core chip capped at 60% of its peak power, runs the built-in
// mixed workload suite under the OD-RL controller and under the static
// worst-case baseline on the *same recorded trace*, and prints the standard
// comparison table.
//
//   ./quickstart [--cores=16] [--epochs=2000] [--budget=0.6] [--seed=1]
//                [--threads=1]
//
// --threads shards the per-core epoch and TD loops across a worker pool
// (0 = hardware concurrency). Results are bit-identical for every value.
#include <cstdio>
#include <iostream>
#include <memory>

#include "arch/chip_config.hpp"
#include "baselines/static_uniform.hpp"
#include "core/odrl_controller.hpp"
#include "metrics/metrics.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "util/cli.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

sim::RunResult run_one(const arch::ChipConfig& chip,
                       const workload::RecordedTrace& trace,
                       sim::Controller& controller, std::size_t epochs,
                       std::size_t threads) {
  auto workload = std::make_unique<workload::ReplayWorkload>(trace);
  sim::ManyCoreSystem system(chip, std::move(workload));
  sim::RunConfig run_cfg;
  // Measure steady state: let the learning controller converge first (the
  // ramp itself is examined in bench_e6_convergence).
  run_cfg.warmup_epochs = epochs;
  run_cfg.epochs = epochs;
  run_cfg.threads = threads;
  return sim::run_closed_loop(system, controller, run_cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto cores = static_cast<std::size_t>(args.get_int("cores", 16));
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 2000));
  const double budget_fraction = args.get_double("budget", 0.6);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));

  const arch::ChipConfig chip = arch::ChipConfig::make(cores, budget_fraction);
  std::printf("chip: %zu cores, %zu V/F levels, TDP = %.1f W (%.0f%% of %.1f W peak)\n",
              chip.n_cores(), chip.vf_table().size(), chip.tdp_w(),
              100.0 * budget_fraction, chip.max_chip_power_w());

  // Record one workload trace so both controllers see identical inputs
  // (warmup + measured region).
  workload::GeneratedWorkload generator =
      workload::GeneratedWorkload::mixed_suite(cores, seed);
  const workload::RecordedTrace trace = generator.record(2 * epochs);

  core::OdrlController odrl_ctl(chip);
  baselines::StaticUniformController static_ctl(chip);

  const sim::RunResult odrl_run =
      run_one(chip, trace, odrl_ctl, epochs, threads);
  const sim::RunResult static_run =
      run_one(chip, trace, static_ctl, epochs, threads);

  const sim::RunResult runs[] = {odrl_run, static_run};
  std::cout << '\n'
            << metrics::comparison_table(runs).render(
                   "OD-RL vs. static worst-case provisioning");

  std::printf("\nOD-RL throughput gain over static: %+.1f%%\n",
              100.0 * (odrl_run.bips() / static_run.bips() - 1.0));
  std::printf("OD-RL time over budget: %.2f%% of the run\n",
              100.0 * odrl_run.overshoot_time_fraction());
  return 0;
}
