// Example: inspecting what a per-core agent actually learned.
//
// Trains OD-RL on a single core (compute-bound or memory-bound, pick with
// --bench) and dumps the learned greedy policy over the agent's state space
// -- power-headroom bin x memory-intensity bin -- as an ASCII map. The
// expected picture is the paper's story in one diagram: "up" ( ^ ) below
// the budget boundary, "down" ( v ) above it, "hold" ( = ) in the band just
// underneath, with the unvisited corner states left blank.
//
//   ./policy_inspection [--bench=compute.dense] [--epochs=8000] [--budget=0.6]
#include <cstdio>
#include <memory>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "sim/controller_registry.hpp"
#include "sim/system.hpp"
#include "util/cli.hpp"
#include "workload/workload.hpp"

using namespace odrl;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string bench = args.get("bench", "compute.dense");
  const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 8000));
  const double budget = args.get_double("budget", 0.6);

  const arch::ChipConfig chip = arch::ChipConfig::make(1, budget);
  sim::ManyCoreSystem system(
      chip, std::make_unique<workload::GeneratedWorkload>(
                1, workload::benchmark_by_name(bench), 42));
  auto controller_ptr = sim::make_controller("OD-RL", chip);
  auto& controller = dynamic_cast<core::OdrlController&>(*controller_ptr);

  std::printf("training 1 agent on '%s' for %zu epochs (TDP %.2f W)...\n\n",
              bench.c_str(), epochs, chip.tdp_w());

  auto levels = controller.initial_levels(1);
  std::vector<std::size_t> next(1, 0);
  sim::EpochResult obs;
  for (std::size_t e = 0; e < epochs; ++e) {
    system.step_into(levels, obs);
    controller.decide_into(obs, next);
    levels.swap(next);
  }

  const rl::TdAgent& agent = controller.agent(0);
  const auto& table = agent.table();
  const std::size_t h_bins = controller.config().headroom_bins;
  const std::size_t m_bins = controller.config().mem_bins;

  std::printf("learned greedy policy (rows: power/cap ratio bin, columns: "
              "memory-stall bin)\n");
  std::printf("  ^ = raise V/F   = = hold   v = lower   . = state never "
              "visited\n\n");
  std::printf("%18s", "");
  for (std::size_t m = 0; m < m_bins; ++m) {
    std::printf(" mem%zu", m);
  }
  std::printf("\n");

  const char glyphs[3] = {'v', '=', '^'};
  for (std::size_t h = h_bins; h-- > 0;) {
    const double lo = 2.0 * static_cast<double>(h) / h_bins;
    const double hi = 2.0 * static_cast<double>(h + 1) / h_bins;
    std::printf("ratio %.2f-%.2f |", lo, hi);
    for (std::size_t m = 0; m < m_bins; ++m) {
      const std::size_t state = h * m_bins + m;
      if (table.state_visits(state) == 0) {
        std::printf("    .");
      } else {
        std::printf("    %c", glyphs[table.greedy_action(state)]);
      }
    }
    if (std::abs(hi - 1.0) < 1e-9) {
      std::printf("   <-- budget boundary");
    }
    std::printf("\n");
  }

  std::printf("\nQ-values of the most-visited state:\n");
  std::size_t hot = 0;
  for (std::size_t s = 0; s < table.n_states(); ++s) {
    if (table.state_visits(s) > table.state_visits(hot)) hot = s;
  }
  const auto row = table.row(hot);
  std::printf("  state (ratio bin %zu, mem bin %zu), %zu visits:\n", hot / m_bins,
              hot % m_bins, table.state_visits(hot));
  std::printf("    Q(down) = %.4f, Q(hold) = %.4f, Q(up) = %.4f\n", row[0],
              row[1], row[2]);

  std::printf("\nagent stats: %zu TD updates, epsilon now %.3f, table "
              "coverage %zu/%zu\n",
              agent.updates(), agent.epsilon(), table.coverage(),
              table.n_states() * table.n_actions());
  return 0;
}
