// Tests for VFI partitions and the island-granularity controller adapter.
#include <gtest/gtest.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "arch/vfi.hpp"
#include "core/odrl_controller.hpp"
#include "core/vfi_adapter.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace oa = odrl::arch;
namespace oc = odrl::core;
namespace os = odrl::sim;
namespace ow = odrl::workload;
using odrl::test::decide;
using odrl::test::step;

// -------------------------------------------------------- VfiPartition

TEST(VfiPartition, PerCoreIdentity) {
  const auto p = oa::VfiPartition::per_core(4);
  EXPECT_EQ(p.n_cores(), 4u);
  EXPECT_EQ(p.n_islands(), 4u);
  EXPECT_EQ(p.max_island_size(), 1u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(p.island_of(i), i);
}

TEST(VfiPartition, BlocksEvenAndRemainder) {
  const auto even = oa::VfiPartition::blocks(8, 4);
  EXPECT_EQ(even.n_islands(), 2u);
  EXPECT_EQ(even.island_of(3), 0u);
  EXPECT_EQ(even.island_of(4), 1u);

  const auto ragged = oa::VfiPartition::blocks(10, 4);
  EXPECT_EQ(ragged.n_islands(), 3u);
  EXPECT_EQ(ragged.island(2).size(), 2u);
  EXPECT_EQ(ragged.max_island_size(), 4u);
  EXPECT_EQ(ragged.n_cores(), 10u);
}

TEST(VfiPartition, ExplicitValidation) {
  EXPECT_NO_THROW(oa::VfiPartition({{0, 2}, {1, 3}}));
  EXPECT_THROW(oa::VfiPartition({}), std::invalid_argument);
  EXPECT_THROW(oa::VfiPartition({{0}, {}}), std::invalid_argument);
  EXPECT_THROW(oa::VfiPartition({{0}, {0}}), std::invalid_argument);   // dup
  EXPECT_THROW(oa::VfiPartition({{0}, {2}}), std::invalid_argument);   // gap
  EXPECT_THROW(oa::VfiPartition::blocks(0, 2), std::invalid_argument);
  EXPECT_THROW(oa::VfiPartition::blocks(4, 0), std::invalid_argument);
  const auto p = oa::VfiPartition::per_core(2);
  EXPECT_THROW(p.island(2), std::out_of_range);
  EXPECT_THROW(p.island_of(2), std::out_of_range);
}

// --------------------------------------------------------- VfiAdapter

namespace {
std::unique_ptr<oc::VfiAdapter> make_vfi_odrl(const oa::ChipConfig& chip,
                                              std::size_t island_size) {
  auto partition = oa::VfiPartition::blocks(chip.n_cores(), island_size);
  const oa::ChipConfig island_chip =
      oc::VfiAdapter::island_chip_config(chip, partition);
  auto inner = std::make_unique<oc::OdrlController>(island_chip);
  return std::make_unique<oc::VfiAdapter>(std::move(partition),
                                          std::move(inner));
}
}  // namespace

TEST(VfiAdapter, IslandChipConfigShape) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  const auto partition = oa::VfiPartition::blocks(16, 4);
  const auto island_chip = oc::VfiAdapter::island_chip_config(chip, partition);
  EXPECT_EQ(island_chip.n_cores(), 4u);
  EXPECT_DOUBLE_EQ(island_chip.tdp_w(), chip.tdp_w());
  EXPECT_EQ(island_chip.vf_table(), chip.vf_table());
  const auto bad = oa::VfiPartition::per_core(8);
  EXPECT_THROW(oc::VfiAdapter::island_chip_config(chip, bad),
               std::invalid_argument);
}

TEST(VfiAdapter, MembersShareLevels) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  auto adapter = make_vfi_odrl(chip, 4);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(16, 3)));
  auto levels = adapter->initial_levels(16);
  for (int e = 0; e < 200; ++e) {
    const auto obs = step(sys, levels);
    levels = decide(*adapter, obs);
    ASSERT_EQ(levels.size(), 16u);
    for (std::size_t island = 0; island < 4; ++island) {
      for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(levels[island * 4 + c], levels[island * 4])
            << "island " << island << " epoch " << e;
      }
    }
  }
}

TEST(VfiAdapter, NamesAndPlumbing) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  auto adapter = make_vfi_odrl(chip, 2);
  EXPECT_EQ(adapter->name(), "OD-RL-VFI4");
  EXPECT_NO_THROW(adapter->on_budget_change(chip.tdp_w() * 0.5));
  EXPECT_NO_THROW(adapter->reset());
  EXPECT_THROW(adapter->initial_levels(4), std::invalid_argument);
  EXPECT_THROW(oc::VfiAdapter(oa::VfiPartition::per_core(4), nullptr),
               std::invalid_argument);
}

TEST(VfiAdapter, PerCorePartitionMatchesPlainController) {
  // Identity partition must reproduce the plain controller's decisions on
  // the same inputs (same seeds everywhere).
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  ow::GeneratedWorkload gen = ow::GeneratedWorkload::mixed_suite(8, 5);
  const ow::RecordedTrace trace = gen.record(300);

  auto run = [&](os::Controller& ctl) {
    os::ManyCoreSystem sys(chip,
                           std::make_unique<ow::ReplayWorkload>(trace));
    std::vector<std::size_t> history;
    auto levels = ctl.initial_levels(8);
    for (int e = 0; e < 300; ++e) {
      levels = decide(ctl, step(sys, levels));
      history.insert(history.end(), levels.begin(), levels.end());
    }
    return history;
  };

  oc::OdrlController plain(chip);
  auto adapted = make_vfi_odrl(chip, 1);
  EXPECT_EQ(run(plain), run(*adapted));
}

TEST(VfiAdapter, CoarserIslandsLoseThroughput) {
  // The classic VFI granularity result: fewer islands -> less ability to
  // give compute-bound cores their own operating point -> lower BIPS under
  // the same budget. Alternating compute/memory tenants maximize
  // within-island heterogeneity so the effect is visible. (Steady-state
  // comparison on a shared trace.)
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.55);
  const std::vector<ow::BenchmarkProfile> tenants{
      ow::benchmark_by_name("compute.dense"),
      ow::benchmark_by_name("memory.stream")};
  ow::GeneratedWorkload gen(16, tenants, 9);
  const ow::RecordedTrace trace = gen.record(6000);

  auto run = [&](os::Controller& ctl) {
    os::ManyCoreSystem sys(chip,
                           std::make_unique<ow::ReplayWorkload>(trace));
    os::RunConfig rc;
    rc.epochs = 3000;
    rc.warmup_epochs = 3000;
    return os::run_closed_loop(sys, ctl, rc);
  };

  auto fine = make_vfi_odrl(chip, 1);    // per-core
  auto coarse = make_vfi_odrl(chip, 16); // single chip-wide island
  const auto fine_run = run(*fine);
  const auto coarse_run = run(*coarse);
  EXPECT_GT(fine_run.bips(), coarse_run.bips());
}
