// Service soak: >= 256 concurrent sessions driven from a fleet of client
// threads, on servers with 1, 2 and 4 workers. The acceptance property is
// the determinism contract under real contention: every session's decision
// digest must be bit-identical across worker counts, and the server's
// bookkeeping must balance exactly. Runs under the `tsan` label -- the
// client threads, the drain tasks on the work-stealing runtime, and the
// session/table locks are precisely the paths a data race would corrupt.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"

namespace sv = odrl::service;

namespace {

constexpr std::size_t kClientThreads = 8;
constexpr std::size_t kTenantsPerThread = 32;  // 8 x 32 = 256 sessions
constexpr std::size_t kSessions = kClientThreads * kTenantsPerThread;
constexpr std::uint64_t kEpochs = 6;
constexpr std::size_t kCores = 2;

/// Per-session digest map, keyed by the tenant's seed (stable across
/// worker counts; session ids are assignment-order-dependent).
using DigestMap = std::map<std::uint64_t, std::uint64_t>;

DigestMap run_soak(std::size_t workers) {
  sv::ServerConfig config;
  config.workers = workers;
  config.max_sessions = kSessions;
  sv::Server server(config);

  std::vector<DigestMap> per_thread(kClientThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClientThreads);
    for (std::size_t t = 0; t < kClientThreads; ++t) {
      threads.emplace_back([&server, &per_thread, t] {
        // One client (= one connection) per tenant so replies never
        // interleave across sessions; the thread pipelines its whole
        // cohort each epoch to keep many requests in flight.
        std::vector<std::unique_ptr<sv::LoopbackClient>> clients;
        std::vector<std::unique_ptr<sv::Tenant>> tenants;
        for (std::size_t i = 0; i < kTenantsPerThread; ++i) {
          clients.push_back(std::make_unique<sv::LoopbackClient>(server));
          sv::TenantConfig tc;
          tc.controller = (i % 2 == 0) ? "OD-RL" : "PID";
          tc.cores = kCores;
          tc.seed = 1000 + t * kTenantsPerThread + i;
          tc.watchdog = (i % 4 == 0);
          tenants.push_back(std::make_unique<sv::Tenant>(*clients[i], tc));
        }
        for (std::uint64_t e = 0; e < kEpochs; ++e) {
          for (auto& tenant : tenants) tenant->post_step();
          for (auto& tenant : tenants) (void)tenant->complete_step();
        }
        DigestMap digests;
        for (std::size_t i = 0; i < kTenantsPerThread; ++i) {
          digests[1000 + t * kTenantsPerThread + i] =
              tenants[i]->decision_digest();
          const sv::CloseSessionReply closed = tenants[i]->close();
          EXPECT_EQ(closed.epochs, kEpochs);
        }
        per_thread[t] = std::move(digests);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  DigestMap all;
  for (DigestMap& m : per_thread) all.merge(m);
  EXPECT_EQ(all.size(), kSessions);

  const sv::ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, kSessions);
  EXPECT_EQ(stats.sessions_closed, kSessions);
  EXPECT_EQ(stats.epochs, kSessions * kEpochs);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(server.session_count(), 0u);
  return all;
}

TEST(ServiceSoak, SessionsBitIdenticalAcrossWorkerCounts) {
  const DigestMap d1 = run_soak(1);
  const DigestMap d2 = run_soak(2);
  const DigestMap d4 = run_soak(4);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);
}

}  // namespace
