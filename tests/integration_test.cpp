// End-to-end shape tests: the qualitative results the paper reports must
// hold on full closed-loop runs -- who overshoots, who is efficient, who is
// fast. These are the repository's regression net for the reproduction
// itself; the bench binaries print the same quantities as tables.
//
// All controllers are compared on the same recorded workload trace.
#include <gtest/gtest.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "baselines/greedy_controller.hpp"
#include "baselines/maxbips_controller.hpp"
#include "baselines/pid_controller.hpp"
#include "baselines/static_uniform.hpp"
#include "core/odrl_controller.hpp"
#include "metrics/metrics.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

constexpr std::size_t kCores = 16;
constexpr std::size_t kEpochs = 3000;
constexpr std::size_t kWarmup = 3000;

struct Runs {
  sim::RunResult odrl;
  sim::RunResult pid;
  sim::RunResult greedy;
  sim::RunResult maxbips;
  sim::RunResult statics;
};

sim::RunResult run_controller(const arch::ChipConfig& chip,
                              const workload::RecordedTrace& trace,
                              sim::Controller& ctl) {
  sim::SimConfig sc;
  sc.sensor_noise_rel = 0.02;
  sim::ManyCoreSystem system(
      chip, std::make_unique<workload::ReplayWorkload>(trace), sc);
  sim::RunConfig rc;
  rc.epochs = kEpochs;
  rc.warmup_epochs = kWarmup;
  return sim::run_closed_loop(system, ctl, rc);
}

/// Computed once and shared across tests (runs are deterministic).
const Runs& runs() {
  static const Runs cached = [] {
    const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.6);
    workload::GeneratedWorkload gen =
        workload::GeneratedWorkload::mixed_suite(kCores, 1);
    const workload::RecordedTrace trace = gen.record(kEpochs + kWarmup);

    core::OdrlController odrl_ctl(chip);
    baselines::PidController pid_ctl(chip);
    baselines::GreedyController greedy_ctl(chip);
    baselines::MaxBipsController maxbips_ctl(chip);
    baselines::StaticUniformController static_ctl(chip);

    Runs r{run_controller(chip, trace, odrl_ctl),
           run_controller(chip, trace, pid_ctl),
           run_controller(chip, trace, greedy_ctl),
           run_controller(chip, trace, maxbips_ctl),
           run_controller(chip, trace, static_ctl)};
    return r;
  }();
  return cached;
}

}  // namespace

// --- Overshoot shape (E2): OD-RL overshoots far less than every dynamic
// --- baseline; static never overshoots by construction.

TEST(Integration, OdrlBeatsPidOvershootByOver90Percent) {
  EXPECT_GT(metrics::overshoot_reduction_pct(runs().odrl, runs().pid), 90.0);
}

TEST(Integration, OdrlBeatsGreedyOvershootByOver80Percent) {
  EXPECT_GT(metrics::overshoot_reduction_pct(runs().odrl, runs().greedy),
            80.0);
}

TEST(Integration, OdrlBeatsMaxBipsOvershoot) {
  EXPECT_GT(metrics::overshoot_reduction_pct(runs().odrl, runs().maxbips),
            50.0);
}

TEST(Integration, StaticNeverOvershoots) {
  EXPECT_DOUBLE_EQ(runs().statics.otb_energy_j, 0.0);
}

TEST(Integration, OdrlSpendsAlmostNoTimeOverBudget) {
  EXPECT_LT(runs().odrl.overshoot_time_fraction(), 0.05);
  EXPECT_GT(runs().pid.overshoot_time_fraction(), 0.2);
}

// --- Throughput-per-OTB-energy shape (E3).

TEST(Integration, OdrlTpobeSeveralFoldOverGreedy) {
  EXPECT_GT(metrics::tpobe_ratio(runs().odrl, runs().greedy), 5.0);
}

TEST(Integration, OdrlTpobeOrderOfMagnitudeOverPid) {
  EXPECT_GT(metrics::tpobe_ratio(runs().odrl, runs().pid), 30.0);
}

// --- Energy-efficiency shape (E4): OD-RL beats the budget-filling
// --- optimizers on BIPS/W.

TEST(Integration, OdrlMoreEfficientThanMaxBips) {
  EXPECT_GT(metrics::efficiency_gain_pct(runs().odrl, runs().maxbips), 3.0);
}

TEST(Integration, OdrlMoreEfficientThanPid) {
  EXPECT_GT(metrics::efficiency_gain_pct(runs().odrl, runs().pid), 5.0);
}

// --- Throughput shape: OD-RL clearly beats worst-case provisioning and is
// --- within striking distance of the (overshooting) global optimizers.

TEST(Integration, OdrlThroughputBeatsStatic) {
  EXPECT_GT(runs().odrl.bips(), runs().statics.bips() * 1.05);
}

TEST(Integration, OdrlThroughputWithin15PercentOfMaxBips) {
  EXPECT_GT(runs().odrl.bips(), runs().maxbips.bips() * 0.85);
}

// --- Power discipline: mean power respects the budget for OD-RL/static.

TEST(Integration, OdrlMeanPowerUnderBudget) {
  const double tdp = arch::ChipConfig::make(kCores, 0.6).tdp_w();
  EXPECT_LT(runs().odrl.mean_power_w, tdp);
  EXPECT_GT(runs().odrl.mean_power_w, 0.5 * tdp);  // and not sandbagging
}

// --- Decision-latency shape (E5 at a fixed size): MaxBIPS is orders of
// --- magnitude slower than OD-RL already at 16 cores.

TEST(Integration, OdrlDecidesFasterThanGreedy) {
  EXPECT_GT(metrics::decision_speedup(runs().odrl, runs().greedy), 2.0);
}

TEST(Integration, MaxBipsAtLeastFiftyTimesSlowerThanOdrl) {
  EXPECT_GT(metrics::decision_speedup(runs().odrl, runs().maxbips), 50.0);
}

// --- Thermal sanity: respecting the TDP keeps silicon inside the junction
// --- envelope.

TEST(Integration, OdrlCausesNoThermalViolations) {
  EXPECT_EQ(runs().odrl.thermal_violation_epochs, 0u);
}

// --- Full-run determinism: identical seeds give identical results.

TEST(Integration, ClosedLoopRunsAreReproducible) {
  const arch::ChipConfig chip = arch::ChipConfig::make(8, 0.6);
  auto once = [&] {
    workload::GeneratedWorkload gen =
        workload::GeneratedWorkload::mixed_suite(8, 3);
    const workload::RecordedTrace trace = gen.record(500);
    core::OdrlController ctl(chip);
    sim::ManyCoreSystem system(
        chip, std::make_unique<workload::ReplayWorkload>(trace));
    sim::RunConfig rc;
    rc.epochs = 500;
    return sim::run_closed_loop(system, ctl, rc);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_DOUBLE_EQ(a.total_instructions, b.total_instructions);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_DOUBLE_EQ(a.otb_energy_j, b.otb_energy_j);
  EXPECT_EQ(a.chip_power_trace(), b.chip_power_trace());
}

// --- Power-cap event: the whole closed loop adapts to a RAPL-style drop.

TEST(Integration, SystemAdaptsToPowerCapDrop) {
  const arch::ChipConfig chip = arch::ChipConfig::make(kCores, 0.7);
  workload::GeneratedWorkload gen =
      workload::GeneratedWorkload::mixed_suite(kCores, 11);
  core::OdrlController ctl(chip);
  sim::ManyCoreSystem system(
      chip, std::make_unique<workload::GeneratedWorkload>(std::move(gen)));
  sim::RunConfig rc;
  rc.epochs = 6000;
  rc.warmup_epochs = 2000;
  rc.budget_events = {{3000, chip.tdp_w() * 0.6}};
  const auto r = sim::run_closed_loop(system, ctl, rc);

  double before = 0.0;
  double after = 0.0;
  for (std::size_t e = 2000; e < 3000; ++e) {
    before += r.trace[e].true_chip_power_w;
  }
  for (std::size_t e = 5000; e < 6000; ++e) {
    after += r.trace[e].true_chip_power_w;
  }
  before /= 1000.0;
  after /= 1000.0;
  EXPECT_LT(after, before);
  EXPECT_LT(after, chip.tdp_w() * 0.6 * 1.05);
}
