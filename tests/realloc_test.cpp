// Unit and property tests for the coarse-grain budget reallocation
// (the second level of OD-RL).
#include <gtest/gtest.h>

#include <numeric>

#include "core/budget_realloc.hpp"
#include "util/rng.hpp"

namespace oc = odrl::core;
using odrl::util::Rng;

namespace {
oc::CoreDemand demand(double power, double sens, double budget,
                      bool can_raise = true) {
  return {.power_w = power, .sensitivity = sens, .budget_w = budget,
          .can_raise = can_raise};
}

double sum_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}
}  // namespace

TEST(Realloc, ConservesBudgetExactly) {
  const std::vector<oc::CoreDemand> demands{
      demand(2.0, 0.9, 5.0), demand(1.0, 0.2, 5.0), demand(4.0, 0.6, 5.0)};
  const auto budgets = oc::reallocate_budget(demands, 15.0);
  EXPECT_NEAR(sum_of(budgets), 15.0, 15.0 * 1e-9);
}

TEST(Realloc, AllBudgetsPositive) {
  const std::vector<oc::CoreDemand> demands{
      demand(0.0, 0.0, 1.0), demand(50.0, 1.0, 1.0), demand(0.0, 1.0, 1.0)};
  const auto budgets = oc::reallocate_budget(demands, 10.0);
  for (double b : budgets) EXPECT_GT(b, 0.0);
}

TEST(Realloc, SensitiveCoreGetsMoreSurplus) {
  // Equal consumption; the frequency-sensitive core must receive more.
  const std::vector<oc::CoreDemand> demands{demand(2.0, 1.0, 5.0),
                                            demand(2.0, 0.1, 5.0)};
  const auto budgets = oc::reallocate_budget(demands, 20.0);
  EXPECT_GT(budgets[0], budgets[1]);
}

TEST(Realloc, SaturatedCoreDoesNotHoardSurplus) {
  // Both highly sensitive and equal power, but one is already at the top
  // level: the climber should receive (almost all of) the surplus.
  const std::vector<oc::CoreDemand> demands{
      demand(5.0, 1.0, 8.0, /*can_raise=*/false),
      demand(5.0, 1.0, 8.0, /*can_raise=*/true)};
  const auto budgets = oc::reallocate_budget(demands, 30.0);
  EXPECT_GT(budgets[1], budgets[0]);
  EXPECT_GT(budgets[1] - budgets[0], 2.0);
}

TEST(Realloc, UnsaturatedCoreGetsOneLevelHeadroom) {
  // A low-sensitivity but unsaturated core must still receive enough budget
  // over its consumption to afford a ~30% power step (the squeeze-trap
  // regression test).
  const std::vector<oc::CoreDemand> demands{demand(2.0, 0.1, 2.2),
                                            demand(2.0, 0.1, 2.2)};
  const auto budgets = oc::reallocate_budget(demands, 20.0);
  for (double b : budgets) EXPECT_GE(b, 2.0 * 1.3);
}

TEST(Realloc, OversubscriptionScalesDown) {
  const std::vector<oc::CoreDemand> demands{demand(10.0, 0.9, 5.0),
                                            demand(10.0, 0.9, 5.0)};
  const auto budgets = oc::reallocate_budget(demands, 8.0);
  EXPECT_NEAR(sum_of(budgets), 8.0, 1e-8);
  for (double b : budgets) EXPECT_LT(b, 10.0);
}

TEST(Realloc, OversubscriptionCutsLowUtilityHarder) {
  const std::vector<oc::CoreDemand> demands{demand(10.0, 1.0, 5.0),
                                            demand(10.0, 0.0, 5.0)};
  const auto budgets = oc::reallocate_budget(demands, 10.0);
  EXPECT_GT(budgets[0], budgets[1]);
}

TEST(Realloc, FloorProtectsIdleCores) {
  oc::ReallocConfig cfg;
  cfg.floor_fraction = 0.4;
  const std::vector<oc::CoreDemand> demands{
      demand(0.0, 0.0, 1.0), demand(20.0, 1.0, 10.0), demand(20.0, 1.0, 10.0),
      demand(20.0, 1.0, 10.0)};
  const auto budgets = oc::reallocate_budget(demands, 40.0, cfg);
  // Floor share = 0.4 * 40 / 4 = 4 W (within renormalization slack).
  EXPECT_GE(budgets[0], 3.5);
}

TEST(Realloc, SingleCoreGetsEverything) {
  const std::vector<oc::CoreDemand> demands{demand(3.0, 0.5, 5.0)};
  const auto budgets = oc::reallocate_budget(demands, 12.0);
  ASSERT_EQ(budgets.size(), 1u);
  EXPECT_NEAR(budgets[0], 12.0, 1e-9);
}

TEST(Realloc, InputValidation) {
  EXPECT_THROW(oc::reallocate_budget({}, 10.0), std::invalid_argument);
  const std::vector<oc::CoreDemand> one{demand(1.0, 0.5, 1.0)};
  EXPECT_THROW(oc::reallocate_budget(one, 0.0), std::invalid_argument);
}

TEST(ReallocConfig, Validation) {
  oc::ReallocConfig cfg;
  cfg.floor_fraction = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.saturated_headroom = 0.9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.idle_headroom = cfg.saturated_headroom - 0.01;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.growth_headroom = cfg.idle_headroom - 0.01;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}

// Property sweep: for random demand vectors of many sizes, conservation and
// positivity must always hold, sub- or over-subscribed alike.
class ReallocProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReallocProperty, ConservationAndPositivity) {
  const std::size_t n = GetParam();
  Rng rng(n * 1000 + 17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<oc::CoreDemand> demands;
    demands.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      demands.push_back(demand(rng.uniform(0.0, 10.0), rng.uniform(),
                               rng.uniform(0.1, 10.0), rng.chance(0.8)));
    }
    const double budget = rng.uniform(1.0, 20.0 * static_cast<double>(n));
    const auto budgets = oc::reallocate_budget(demands, budget);
    ASSERT_EQ(budgets.size(), n);
    EXPECT_NEAR(sum_of(budgets), budget, budget * 1e-9);
    for (double b : budgets) EXPECT_GT(b, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReallocProperty,
                         ::testing::Values(1, 2, 4, 16, 64, 256, 1024));
