// Tests for RecordedTrace serialization: the binary snapshot artifact and
// the legacy CSV it still reads behind the format sniff.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "snapshot/snapshot.hpp"
#include "workload/trace_io.hpp"
#include "workload/workload.hpp"

namespace ow = odrl::workload;
namespace osn = odrl::snapshot;

namespace {
ow::RecordedTrace sample_trace(std::size_t cores = 4,
                               std::size_t epochs = 20) {
  ow::GeneratedWorkload gen = ow::GeneratedWorkload::mixed_suite(cores, 11);
  return gen.record(epochs);
}
}  // namespace

TEST(TraceIo, RoundTripPreservesEverything) {
  const ow::RecordedTrace original = sample_trace();
  std::stringstream buffer;
  ow::save_trace_csv(original, buffer);
  const ow::RecordedTrace loaded = ow::load_trace_csv(buffer);

  ASSERT_EQ(loaded.n_cores(), original.n_cores());
  ASSERT_EQ(loaded.n_epochs(), original.n_epochs());
  for (std::size_t c = 0; c < original.n_cores(); ++c) {
    EXPECT_EQ(loaded.label(c), original.label(c));
  }
  for (std::size_t e = 0; e < original.n_epochs(); ++e) {
    for (std::size_t c = 0; c < original.n_cores(); ++c) {
      // to_chars round-trips doubles exactly.
      EXPECT_EQ(loaded.epoch(e)[c].base_cpi, original.epoch(e)[c].base_cpi);
      EXPECT_EQ(loaded.epoch(e)[c].mpki, original.epoch(e)[c].mpki);
      EXPECT_EQ(loaded.epoch(e)[c].activity, original.epoch(e)[c].activity);
    }
  }
}

TEST(TraceIo, ReplayOfLoadedTraceMatches) {
  const ow::RecordedTrace original = sample_trace(3, 15);
  std::stringstream buffer;
  ow::save_trace_csv(original, buffer);
  ow::ReplayWorkload a{original};
  ow::ReplayWorkload b{ow::load_trace_csv(buffer)};
  for (int e = 0; e < 15; ++e) {
    const auto sa = a.step();
    const auto sb = b.step();
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(sa[c].mpki, sb[c].mpki);
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  const ow::RecordedTrace original = sample_trace(2, 5);
  const std::string path = testing::TempDir() + "/odrl_trace_test.csv";
  ow::save_trace_file(original, path);
  const ow::RecordedTrace loaded = ow::load_trace_file(path);
  EXPECT_EQ(loaded.n_epochs(), 5u);
  EXPECT_EQ(loaded.n_cores(), 2u);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsForbiddenLabels) {
  ow::RecordedTrace trace(1, {"has,comma"});
  trace.append_epoch({ow::PhaseSample{}});
  std::stringstream buffer;
  EXPECT_THROW(ow::save_trace_csv(trace, buffer), std::invalid_argument);
}

TEST(TraceIo, RejectsMalformedInput) {
  auto expect_reject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(ow::load_trace_csv(in), std::runtime_error) << text;
  };
  expect_reject("");
  expect_reject("not a trace\n");
  expect_reject("# odrl-trace v1\nno-labels-row\n");
  expect_reject("# odrl-trace v1\nlabels,a\nwrong,header\n");
  // Truncated epoch (2 cores declared, one row).
  expect_reject(
      "# odrl-trace v1\nlabels,a,b\nepoch,core,base_cpi,mpki,activity\n"
      "0,0,1.0,2.0,0.5\n");
  // Out-of-order rows.
  expect_reject(
      "# odrl-trace v1\nlabels,a\nepoch,core,base_cpi,mpki,activity\n"
      "1,0,1.0,2.0,0.5\n");
  // Bad number.
  expect_reject(
      "# odrl-trace v1\nlabels,a\nepoch,core,base_cpi,mpki,activity\n"
      "0,0,xyz,2.0,0.5\n");
  // Wrong arity.
  expect_reject(
      "# odrl-trace v1\nlabels,a\nepoch,core,base_cpi,mpki,activity\n"
      "0,0,1.0,2.0\n");
  // No data rows at all.
  expect_reject(
      "# odrl-trace v1\nlabels,a\nepoch,core,base_cpi,mpki,activity\n");
}

TEST(TraceIo, SaveSurfacesStreamFailure) {
  // Regression: save_trace_csv must report a failed stream instead of
  // silently emitting a truncated trace.
  const ow::RecordedTrace trace = sample_trace(1, 1);
  std::stringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_THROW(ow::save_trace_csv(trace, out), std::runtime_error);
}

TEST(TraceIo, SaveFileSurfacesWriteFailure) {
  // /dev/full opens fine and fails on flush -- the full-disk case the
  // explicit flush-and-check in save_trace_file exists for.
  const ow::RecordedTrace trace = sample_trace(1, 1);
  EXPECT_THROW(ow::save_trace_file(trace, "/dev/full"), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(ow::load_trace_file("/nonexistent/odrl.csv"),
               std::runtime_error);
}

TEST(TraceIoBinary, RoundTripPreservesEverything) {
  const ow::RecordedTrace original = sample_trace();
  std::stringstream buffer;
  ow::save_trace(original, buffer);
  const ow::RecordedTrace loaded = ow::load_trace(buffer);

  ASSERT_EQ(loaded.n_cores(), original.n_cores());
  ASSERT_EQ(loaded.n_epochs(), original.n_epochs());
  for (std::size_t c = 0; c < original.n_cores(); ++c) {
    EXPECT_EQ(loaded.label(c), original.label(c));
  }
  for (std::size_t e = 0; e < original.n_epochs(); ++e) {
    for (std::size_t c = 0; c < original.n_cores(); ++c) {
      // f64 fields round-trip bit-exactly through the binary format.
      EXPECT_EQ(loaded.epoch(e)[c].base_cpi, original.epoch(e)[c].base_cpi);
      EXPECT_EQ(loaded.epoch(e)[c].mpki, original.epoch(e)[c].mpki);
      EXPECT_EQ(loaded.epoch(e)[c].activity, original.epoch(e)[c].activity);
    }
  }
}

TEST(TraceIoBinary, SniffStillLoadsLegacyCsv) {
  const ow::RecordedTrace original = sample_trace(3, 7);
  std::stringstream buffer;
  ow::save_trace_csv(original, buffer);
  const ow::RecordedTrace loaded = ow::load_trace(buffer);
  ASSERT_EQ(loaded.n_cores(), 3u);
  ASSERT_EQ(loaded.n_epochs(), 7u);
  EXPECT_EQ(loaded.label(1), original.label(1));
  EXPECT_EQ(loaded.epoch(6)[2].mpki, original.epoch(6)[2].mpki);
}

namespace {
// Builds a single-'TRCE'-section blob from a raw payload writer, then
// asserts load_trace rejects it with the expected status.
template <typename WritePayload>
void expect_binary_reject(WritePayload write_payload,
                          osn::SnapshotStatus want) {
  osn::Writer w;
  w.begin_section(ow::kTraceSectionTag);
  write_payload(w);
  w.end_section();
  std::stringstream in(std::move(w).finish());
  try {
    ow::load_trace(in);
    FAIL() << "malformed trace payload accepted";
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), want);
  }
}
}  // namespace

TEST(TraceIoBinary, RejectsZeroDimensions) {
  expect_binary_reject([](osn::Writer& w) { w.u64(0); },
                       osn::SnapshotStatus::kBadValue);
  expect_binary_reject(
      [](osn::Writer& w) {
        w.u64(1);
        w.str("a");
        w.u64(0);
      },
      osn::SnapshotStatus::kBadValue);
}

TEST(TraceIoBinary, RejectsHostileDimensions) {
  // A huge declared core count must be rejected from the header alone,
  // before any allocation proportional to it.
  expect_binary_reject(
      [](osn::Writer& w) { w.u64(std::uint64_t{1} << 40); },
      osn::SnapshotStatus::kBadValue);
}

TEST(TraceIoBinary, RejectsNonFiniteSamples) {
  expect_binary_reject(
      [](osn::Writer& w) {
        w.u64(1);
        w.str("a");
        w.u64(1);
        w.f64(std::numeric_limits<double>::quiet_NaN());
        w.f64(1.0);
        w.f64(0.5);
      },
      osn::SnapshotStatus::kNonFinite);
}

TEST(TraceIoBinary, RejectsTruncatedPayload) {
  // Declares two epochs but carries one: the section runs dry mid-read.
  expect_binary_reject(
      [](osn::Writer& w) {
        w.u64(1);
        w.str("a");
        w.u64(2);
        w.f64(1.0);
        w.f64(2.0);
        w.f64(0.5);
      },
      osn::SnapshotStatus::kTruncated);
}
