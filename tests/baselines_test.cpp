// Tests for the baseline controllers and the shared model-based predictor.
#include <gtest/gtest.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "baselines/greedy_controller.hpp"
#include "baselines/maxbips_controller.hpp"
#include "baselines/pid_controller.hpp"
#include "baselines/predictor.hpp"
#include "baselines/static_uniform.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace ob = odrl::baselines;
namespace os = odrl::sim;
namespace oa = odrl::arch;
namespace ow = odrl::workload;
using odrl::test::decide;
using odrl::test::step;

namespace {

os::EpochResult observe(std::size_t cores, std::size_t level,
                        std::uint64_t seed = 1) {
  const oa::ChipConfig chip = oa::ChipConfig::make(cores, 0.6);
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   ow::GeneratedWorkload::mixed_suite(
                                       cores, seed)));
  return step(sys, std::vector<std::size_t>(cores, level));
}

}  // namespace

// ----------------------------------------------------------- Predictor

TEST(Predictor, SameLevelPredictionMatchesObservation) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::Predictor pred(chip);
  const auto obs = observe(4, 3);
  for (const auto& core : obs.cores) {
    const auto p = pred.predict(core, core.level);
    EXPECT_NEAR(p.ips, core.ips, core.ips * 1e-9);
    EXPECT_NEAR(p.power_w, core.power_w, core.power_w * 0.02);
  }
}

TEST(Predictor, PredictionsMonotoneInLevel) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::Predictor pred(chip);
  const auto obs = observe(4, 3);
  for (const auto& core : obs.cores) {
    const auto all = pred.predict_all(core);
    ASSERT_EQ(all.size(), chip.vf_table().size());
    for (std::size_t l = 1; l < all.size(); ++l) {
      EXPECT_GT(all[l].ips, all[l - 1].ips);
      EXPECT_GT(all[l].power_w, all[l - 1].power_w);
    }
  }
}

TEST(Predictor, PredictionTracksTrueModelAcrossLevels) {
  // Closed loop check: predict level 6 from a level-3 observation, then run
  // the same workload epoch... impossible to replay exactly, so instead
  // check the prediction against the analytical model's exact value for a
  // noise-free synthetic observation.
  const oa::ChipConfig chip = oa::ChipConfig::make(1, 0.6);
  ob::Predictor pred(chip);
  const auto obs = observe(1, 2, 9);
  const auto& core = obs.cores[0];
  // Exact IPS extrapolation identity for the linear CPI stack.
  const double s = core.mem_stall_frac;
  const double f3 = chip.vf_table()[3].freq_ghz;
  const double f2 = chip.vf_table()[2].freq_ghz;
  const double expected = core.ips * (f3 / f2) / ((1 - s) + s * (f3 / f2));
  EXPECT_NEAR(pred.predict(core, 3).ips, expected, expected * 1e-9);
}

TEST(Predictor, ImpliedActivityInRange) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  ob::Predictor pred(chip);
  const auto obs = observe(8, 5);
  for (const auto& core : obs.cores) {
    const double act = pred.implied_activity(core);
    EXPECT_GE(act, 0.0);
    EXPECT_LE(act, 1.0);
  }
}

// ------------------------------------------------------ StaticUniform

TEST(StaticUniform, NeverExceedsBudgetWorstCase) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  ob::StaticUniformController ctl(chip);
  const std::size_t level = ctl.chosen_level();
  const auto& vf = chip.vf_table()[level];
  const double worst =
      chip.core().total_power_w(vf.voltage_v, vf.freq_ghz, 1.0,
                                chip.thermal().max_junction_c) *
      16.0;
  EXPECT_LE(worst, chip.tdp_w());
  // And the next level up would exceed it (maximality).
  if (level + 1 < chip.vf_table().size()) {
    const auto& up = chip.vf_table()[level + 1];
    const double worst_up =
        chip.core().total_power_w(up.voltage_v, up.freq_ghz, 1.0,
                                  chip.thermal().max_junction_c) *
        16.0;
    EXPECT_GT(worst_up, chip.tdp_w());
  }
}

TEST(StaticUniform, DecideIsConstant) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::StaticUniformController ctl(chip);
  const auto obs = observe(4, 2);
  const auto levels = decide(ctl, obs);
  for (auto l : levels) EXPECT_EQ(l, ctl.chosen_level());
  EXPECT_EQ(ctl.initial_levels(4), levels);
}

TEST(StaticUniform, AdaptsToBudgetChange) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.9);
  ob::StaticUniformController ctl(chip);
  const std::size_t before = ctl.chosen_level();
  ctl.on_budget_change(chip.tdp_w() * 0.3);
  EXPECT_LT(ctl.chosen_level(), before);
}

// ---------------------------------------------------------------- PID

TEST(Pid, RampsUpWhenUnderBudget) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::PidController ctl(chip);
  os::EpochResult obs = observe(4, 0);
  obs.budget_w = 1000.0;  // vast headroom
  const double before = ctl.control_signal();
  decide(ctl, obs);
  EXPECT_GT(ctl.control_signal(), before);
}

TEST(Pid, BacksOffWhenOverBudget) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::PidController ctl(chip);
  os::EpochResult obs = observe(4, 7);
  obs.budget_w = obs.chip_power_w * 0.5;  // deep violation
  obs.chip_power_w = obs.budget_w * 2.0;
  const double before = ctl.control_signal();
  decide(ctl, obs);
  EXPECT_LT(ctl.control_signal(), before);
}

TEST(Pid, OutputAlwaysUniformAndValid) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::PidController ctl(chip);
  auto obs = observe(4, 3);
  for (int i = 0; i < 50; ++i) {
    const auto levels = decide(ctl, obs);
    for (auto l : levels) {
      EXPECT_EQ(l, levels[0]);
      EXPECT_LT(l, chip.vf_table().size());
    }
  }
}

TEST(Pid, ResetRestoresMidpoint) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::PidController ctl(chip);
  auto obs = observe(4, 0);
  obs.budget_w = 1000.0;
  for (int i = 0; i < 20; ++i) decide(ctl, obs);
  ctl.reset();
  EXPECT_NEAR(ctl.control_signal(),
              static_cast<double>(chip.vf_table().size() - 1) / 2.0, 1e-9);
}

// -------------------------------------------------------------- Greedy

TEST(Greedy, PredictedPowerStaysWithinBudget) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  ob::GreedyController ctl(chip);
  ob::Predictor pred(chip);
  const auto obs = observe(8, 3);
  const auto levels = decide(ctl, obs);
  double predicted = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    predicted += pred.predict(obs.cores[i], levels[i]).power_w;
  }
  EXPECT_LE(predicted, obs.budget_w * (1.0 + 1e-9));
}

TEST(Greedy, UsesMostOfTheBudget) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  ob::GreedyController ctl(chip);
  ob::Predictor pred(chip);
  const auto obs = observe(8, 3);
  const auto levels = decide(ctl, obs);
  double predicted = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    predicted += pred.predict(obs.cores[i], levels[i]).power_w;
  }
  // Greedy should pack tightly: > 90% of the budget predicted.
  EXPECT_GT(predicted, obs.budget_w * 0.9);
}

TEST(Greedy, PrefersComputeBoundCores) {
  // Under a tight budget, the compute-bound core should end at a higher
  // level than the memory-bound one.
  const oa::ChipConfig chip = oa::ChipConfig::make(2, 0.45);
  const std::vector<ow::BenchmarkProfile> profiles{
      ow::benchmark_by_name("compute.dense"),
      ow::benchmark_by_name("memory.stream")};
  os::ManyCoreSystem sys(chip, std::make_unique<ow::GeneratedWorkload>(
                                   2, profiles, 3));
  ob::GreedyController ctl(chip);
  auto levels = ctl.initial_levels(2);
  for (int e = 0; e < 50; ++e) {
    const auto obs = step(sys, levels);
    levels = decide(ctl, obs);
  }
  EXPECT_GT(levels[0], levels[1]);
}

TEST(Greedy, FillTargetValidation) {
  const oa::ChipConfig chip = oa::ChipConfig::make(2, 0.6);
  EXPECT_THROW(ob::GreedyController(chip, 0.0), std::invalid_argument);
  EXPECT_THROW(ob::GreedyController(chip, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(ob::GreedyController(chip, 0.9));
}

// ------------------------------------------------------------- MaxBIPS

TEST(MaxBips, DpMatchesExactOnSmallSystems) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.55);
  ob::MaxBipsConfig exact_cfg;
  exact_cfg.solver = ob::MaxBipsSolver::kExact;
  ob::MaxBipsController exact(chip, exact_cfg);
  ob::MaxBipsConfig dp_cfg;
  dp_cfg.power_bins_min = 4096;  // high resolution for a tight comparison
  ob::MaxBipsController dp(chip, dp_cfg);
  ob::Predictor pred(chip);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto obs = observe(4, 3, seed);
    const auto le = decide(exact, obs);
    const auto ld = decide(dp, obs);
    double ips_exact = 0.0;
    double ips_dp = 0.0;
    double power_dp = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      ips_exact += pred.predict(obs.cores[i], le[i]).ips;
      ips_dp += pred.predict(obs.cores[i], ld[i]).ips;
      power_dp += pred.predict(obs.cores[i], ld[i]).power_w;
    }
    // DP is feasible and within 2% of the exhaustive optimum.
    EXPECT_LE(power_dp, obs.budget_w * (1.0 + 1e-9)) << "seed " << seed;
    EXPECT_GE(ips_dp, 0.98 * ips_exact) << "seed " << seed;
  }
}

TEST(MaxBips, ExactRefusesLargeSystems) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  ob::MaxBipsConfig cfg;
  cfg.solver = ob::MaxBipsSolver::kExact;
  cfg.exact_core_limit = 8;
  ob::MaxBipsController ctl(chip, cfg);
  const auto obs = observe(16, 3);
  EXPECT_THROW(decide(ctl, obs), std::invalid_argument);
}

TEST(MaxBips, DpPredictedPowerWithinBudget) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  ob::MaxBipsController ctl(chip);
  ob::Predictor pred(chip);
  const auto obs = observe(16, 4);
  const auto levels = decide(ctl, obs);
  double predicted = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    predicted += pred.predict(obs.cores[i], levels[i]).power_w;
  }
  EXPECT_LE(predicted, obs.budget_w * (1.0 + 1e-9));
  EXPECT_GT(predicted, obs.budget_w * 0.85);  // near-optimal packing
}

TEST(MaxBips, TinyBudgetFallsBackToFloor) {
  const oa::ChipConfig chip = oa::ChipConfig::make(4, 0.6);
  ob::MaxBipsController ctl(chip);
  auto obs = observe(4, 0);
  obs.budget_w = 0.1;  // nothing fits
  const auto levels = decide(ctl, obs);
  for (auto l : levels) EXPECT_EQ(l, 0u);
}

TEST(MaxBips, BeatsGreedyOrTies) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.5);
  ob::MaxBipsController maxbips(chip);
  ob::GreedyController greedy(chip);
  ob::Predictor pred(chip);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto obs = observe(8, 3, seed);
    const auto lm = decide(maxbips, obs);
    const auto lg = decide(greedy, obs);
    double ips_m = 0.0;
    double ips_g = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      ips_m += pred.predict(obs.cores[i], lm[i]).ips;
      ips_g += pred.predict(obs.cores[i], lg[i]).ips;
    }
    // Allow DP discretization slack of 1%.
    EXPECT_GE(ips_m, ips_g * 0.99) << "seed " << seed;
  }
}

TEST(MaxBipsConfig, Validation) {
  ob::MaxBipsConfig cfg;
  cfg.power_bins_min = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.bins_per_core = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.exact_core_limit = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
}
