// Tests for the process-variation substrate and its end-to-end effect:
// model-based prediction degrades on varied silicon while model-free
// control is unaffected (the mechanism behind experiment E8).
#include <gtest/gtest.h>

#include <memory>

#include "arch/chip_config.hpp"
#include "arch/variation.hpp"
#include "baselines/predictor.hpp"
#include "sim/system.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

namespace oa = odrl::arch;
using odrl::test::step;
namespace os = odrl::sim;
namespace ob = odrl::baselines;
namespace ow = odrl::workload;

TEST(Variation, NoneIsIdentity) {
  const auto map = oa::VariationMap::none(8);
  EXPECT_EQ(map.n_cores(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(map.leakage_mult(i), 1.0);
    EXPECT_DOUBLE_EQ(map.c_eff_mult(i), 1.0);
  }
  const oa::CoreParams nominal;
  const oa::CoreParams applied = map.apply(nominal, 3);
  EXPECT_DOUBLE_EQ(applied.leak_scale_w, nominal.leak_scale_w);
  EXPECT_DOUBLE_EQ(applied.c_eff_nf, nominal.c_eff_nf);
}

TEST(Variation, SampleIsDeterministicPerSeed) {
  const oa::Mesh mesh(4, 4);
  oa::VariationConfig cfg;
  cfg.seed = 42;
  const auto a = oa::VariationMap::sample(mesh, 16, cfg);
  const auto b = oa::VariationMap::sample(mesh, 16, cfg);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.leakage_mult(i), b.leakage_mult(i));
  }
  cfg.seed = 43;
  const auto c = oa::VariationMap::sample(mesh, 16, cfg);
  bool differs = false;
  for (std::size_t i = 0; i < 16; ++i) {
    if (a.leakage_mult(i) != c.leakage_mult(i)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Variation, LeakageMultiplierHasUnitMean) {
  // Lognormal with E = 1: average over many chip instances approaches 1.
  const oa::Mesh mesh(8, 8);
  oa::VariationConfig cfg;
  cfg.leakage_sigma = 0.2;
  odrl::util::RunningStats stats;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    cfg.seed = seed;
    const auto map = oa::VariationMap::sample(mesh, 64, cfg);
    stats.add(map.mean_leakage_mult());
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.02);
}

TEST(Variation, ZeroSigmaIsUniform) {
  const oa::Mesh mesh(4, 4);
  oa::VariationConfig cfg;
  cfg.leakage_sigma = 0.0;
  cfg.c_eff_sigma = 0.0;
  const auto map = oa::VariationMap::sample(mesh, 16, cfg);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(map.leakage_mult(i), 1.0);
    EXPECT_DOUBLE_EQ(map.c_eff_mult(i), 1.0);
  }
}

TEST(Variation, SpatialCorrelationDecaysWithDistance) {
  // Average |z_i - z_j| over instances: adjacent tiles must be more alike
  // than far-apart tiles.
  const oa::Mesh mesh(8, 8);
  oa::VariationConfig cfg;
  cfg.leakage_sigma = 0.3;
  cfg.correlation_length = 2.0;
  odrl::util::RunningStats near_diff;
  odrl::util::RunningStats far_diff;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    cfg.seed = seed;
    const auto map = oa::VariationMap::sample(mesh, 64, cfg);
    near_diff.add(std::abs(map.leakage_mult(0) - map.leakage_mult(1)));
    far_diff.add(std::abs(map.leakage_mult(0) - map.leakage_mult(63)));
  }
  EXPECT_LT(near_diff.mean(), far_diff.mean());
}

TEST(Variation, ApplyPerturbsOnlyPowerConstants) {
  const oa::Mesh mesh(2, 2);
  oa::VariationConfig cfg;
  cfg.seed = 7;
  const auto map = oa::VariationMap::sample(mesh, 4, cfg);
  const oa::CoreParams nominal;
  for (std::size_t i = 0; i < 4; ++i) {
    const oa::CoreParams p = map.apply(nominal, i);
    EXPECT_DOUBLE_EQ(p.leak_scale_w,
                     nominal.leak_scale_w * map.leakage_mult(i));
    EXPECT_DOUBLE_EQ(p.c_eff_nf, nominal.c_eff_nf * map.c_eff_mult(i));
    EXPECT_DOUBLE_EQ(p.mem_latency_ns, nominal.mem_latency_ns);
    EXPECT_DOUBLE_EQ(p.issue_width, nominal.issue_width);
  }
}

TEST(Variation, Validation) {
  const oa::Mesh mesh(2, 2);
  oa::VariationConfig cfg;
  cfg.leakage_sigma = 1.5;
  EXPECT_THROW(oa::VariationMap::sample(mesh, 4, cfg), std::invalid_argument);
  cfg = {};
  cfg.correlation_length = 0.0;
  EXPECT_THROW(oa::VariationMap::sample(mesh, 4, cfg), std::invalid_argument);
  cfg = {};
  EXPECT_THROW(oa::VariationMap::sample(mesh, 5, cfg), std::invalid_argument);
  EXPECT_THROW(oa::VariationMap::sample(mesh, 0, cfg), std::invalid_argument);
  EXPECT_THROW(oa::VariationMap::none(0), std::invalid_argument);
  const auto map = oa::VariationMap::none(2);
  EXPECT_THROW(map.leakage_mult(2), std::out_of_range);
  EXPECT_THROW(map.c_eff_mult(2), std::out_of_range);
}

// ---- end-to-end: variation changes true power; the nominal-model
// ---- predictor becomes biased exactly on the varied cores.

TEST(Variation, VariedChipDrawsDifferentPower) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  oa::VariationConfig vcfg;
  vcfg.leakage_sigma = 0.3;
  vcfg.seed = 5;
  const auto map = oa::VariationMap::sample(chip.mesh(), 16, vcfg);

  auto make_system = [&](std::optional<oa::VariationMap> variation) {
    return os::ManyCoreSystem(
        chip,
        std::make_unique<ow::GeneratedWorkload>(
            ow::GeneratedWorkload::mixed_suite(16, 1)),
        os::SimConfig{}, std::move(variation));
  };
  auto nominal_sys = make_system(std::nullopt);
  auto varied_sys = make_system(map);
  const std::vector<std::size_t> levels(16, 5);
  const auto obs_n = step(nominal_sys, levels);
  const auto obs_v = step(varied_sys, levels);
  EXPECT_NE(obs_n.true_chip_power_w, obs_v.true_chip_power_w);
  // Per-core power differs in proportion to the leakage multiplier sign.
  bool some_higher = false;
  bool some_lower = false;
  for (std::size_t i = 0; i < 16; ++i) {
    if (obs_v.cores[i].power_w > obs_n.cores[i].power_w) some_higher = true;
    if (obs_v.cores[i].power_w < obs_n.cores[i].power_w) some_lower = true;
  }
  EXPECT_TRUE(some_higher);
  EXPECT_TRUE(some_lower);
}

TEST(Variation, NominalPredictorIsBiasedOnVariedChip) {
  const oa::ChipConfig chip = oa::ChipConfig::make(16, 0.6);
  oa::VariationConfig vcfg;
  vcfg.leakage_sigma = 0.3;
  vcfg.seed = 9;
  const auto map = oa::VariationMap::sample(chip.mesh(), 16, vcfg);
  os::ManyCoreSystem sys(chip,
                         std::make_unique<ow::GeneratedWorkload>(
                             ow::GeneratedWorkload::mixed_suite(16, 1)),
                         os::SimConfig{}, map);
  ob::Predictor predictor(chip);  // nominal constants, as baselines use

  const std::vector<std::size_t> levels(16, 4);
  const auto obs = step(sys, levels);
  // Predict each core one level up, then actually run one level up and
  // compare: on the leakiest core the prediction must be noticeably off.
  const std::vector<std::size_t> up(16, 5);
  const auto obs_up = step(sys, up);
  double worst_rel_error = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    const double predicted = predictor.predict(obs.cores[i], 5).power_w;
    const double actual = obs_up.cores[i].power_w;
    worst_rel_error = std::max(worst_rel_error,
                               std::abs(predicted - actual) / actual);
  }
  EXPECT_GT(worst_rel_error, 0.03);
}

TEST(Variation, SystemRejectsMismatchedMap) {
  const oa::ChipConfig chip = oa::ChipConfig::make(8, 0.6);
  EXPECT_THROW(os::ManyCoreSystem(
                   chip,
                   std::make_unique<ow::GeneratedWorkload>(
                       ow::GeneratedWorkload::mixed_suite(8, 1)),
                   os::SimConfig{}, oa::VariationMap::none(4)),
               std::invalid_argument);
}
