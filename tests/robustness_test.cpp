// Robustness and failure-injection tests: controllers must produce valid
// decisions under degenerate sensor inputs, extreme configurations and
// hostile workloads -- a controller that crashes or emits an out-of-range
// level on a sensor glitch would hang real silicon.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "arch/chip_config.hpp"
#include "baselines/greedy_controller.hpp"
#include "baselines/maxbips_controller.hpp"
#include "baselines/pid_controller.hpp"
#include "baselines/static_uniform.hpp"
#include "core/odrl_controller.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

using namespace odrl;

namespace {

constexpr std::size_t kCores = 8;

arch::ChipConfig chip() { return arch::ChipConfig::make(kCores, 0.6); }

/// A degenerate observation: all sensors zeroed (power meter glitch).
sim::EpochResult zeroed_observation(const arch::ChipConfig& c) {
  sim::EpochResult obs;
  obs.epoch = 5;
  obs.epoch_s = 1e-3;
  obs.budget_w = c.tdp_w();
  obs.cores.resize(kCores);
  std::ranges::fill(obs.cores.level(), std::size_t{3});
  return obs;
}

/// An absurd observation: sensors report huge values.
sim::EpochResult saturated_observation(const arch::ChipConfig& c) {
  sim::EpochResult obs;
  obs.epoch = 7;
  obs.epoch_s = 1e-3;
  obs.budget_w = c.tdp_w();
  obs.chip_power_w = 1e6;
  obs.true_chip_power_w = 1e6;
  obs.cores.resize(kCores);
  std::ranges::fill(obs.cores.level(), std::size_t{7});
  std::ranges::fill(obs.cores.ips(), 1e15);
  std::ranges::fill(obs.cores.power_w(), 1e5);
  std::ranges::fill(obs.cores.mem_stall_frac(), 1.0);
  std::ranges::fill(obs.cores.temp_c(), 150.0);
  return obs;
}

void expect_valid_levels(const std::vector<std::size_t>& levels,
                         const arch::ChipConfig& c) {
  ASSERT_EQ(levels.size(), c.n_cores());
  for (auto l : levels) EXPECT_LT(l, c.vf_table().size());
}

std::vector<std::unique_ptr<sim::Controller>> all_controllers(
    const arch::ChipConfig& c) {
  std::vector<std::unique_ptr<sim::Controller>> out;
  out.push_back(std::make_unique<core::OdrlController>(c));
  out.push_back(std::make_unique<baselines::PidController>(c));
  out.push_back(std::make_unique<baselines::GreedyController>(c));
  out.push_back(std::make_unique<baselines::MaxBipsController>(c));
  out.push_back(std::make_unique<baselines::StaticUniformController>(c));
  return out;
}

}  // namespace

TEST(Robustness, AllControllersSurviveZeroedSensors) {
  const arch::ChipConfig c = chip();
  for (auto& ctl : all_controllers(c)) {
    ctl->initial_levels(kCores);
    for (int i = 0; i < 10; ++i) {
      const auto levels = ctl->decide(zeroed_observation(c));
      expect_valid_levels(levels, c);
    }
  }
}

TEST(Robustness, AllControllersSurviveSaturatedSensors) {
  const arch::ChipConfig c = chip();
  for (auto& ctl : all_controllers(c)) {
    ctl->initial_levels(kCores);
    for (int i = 0; i < 10; ++i) {
      const auto levels = ctl->decide(saturated_observation(c));
      expect_valid_levels(levels, c);
    }
  }
}

TEST(Robustness, AllControllersSurviveAlternatingGlitches) {
  const arch::ChipConfig c = chip();
  for (auto& ctl : all_controllers(c)) {
    ctl->initial_levels(kCores);
    for (int i = 0; i < 20; ++i) {
      const auto obs =
          i % 2 == 0 ? zeroed_observation(c) : saturated_observation(c);
      expect_valid_levels(ctl->decide(obs), c);
    }
  }
}

TEST(Robustness, OdrlSurvivesHeavySensorNoise) {
  const arch::ChipConfig c = chip();
  sim::SimConfig sc;
  sc.sensor_noise_rel = 0.5;  // the permitted maximum
  sim::ManyCoreSystem sys(c, std::make_unique<workload::GeneratedWorkload>(
                                 workload::GeneratedWorkload::mixed_suite(
                                     kCores, 2)),
                          sc);
  core::OdrlController ctl(c);
  auto levels = ctl.initial_levels(kCores);
  for (int e = 0; e < 1000; ++e) {
    levels = ctl.decide(sys.step(levels));
    expect_valid_levels(levels, c);
  }
}

TEST(Robustness, TinyBudgetKeepsEveryoneAtFloor) {
  // Budget far below even idle power: OD-RL must converge to the bottom
  // level (it cannot do better) without misbehaving.
  const arch::ChipConfig c = chip().with_tdp(0.5);
  sim::ManyCoreSystem sys(c, std::make_unique<workload::GeneratedWorkload>(
                                 workload::GeneratedWorkload::mixed_suite(
                                     kCores, 3)));
  core::OdrlController ctl(c);
  auto levels = ctl.initial_levels(kCores);
  std::size_t sum_levels = 0;
  for (int e = 0; e < 2000; ++e) {
    levels = ctl.decide(sys.step(levels));
    if (e >= 1500) {
      for (auto l : levels) sum_levels += l;
    }
  }
  // Last 500 epochs x 8 cores: average level must be near the floor.
  EXPECT_LT(static_cast<double>(sum_levels) / (500.0 * kCores), 1.0);
}

TEST(Robustness, HugeBudgetSaturatesAtTopLevels) {
  const arch::ChipConfig c = chip().with_tdp(1e5);
  sim::ManyCoreSystem sys(c, std::make_unique<workload::GeneratedWorkload>(
                                 kCores,
                                 workload::benchmark_by_name("compute.dense"),
                                 3));
  core::OdrlController ctl(c);
  auto levels = ctl.initial_levels(kCores);
  std::size_t top_count = 0;
  for (int e = 0; e < 3000; ++e) {
    levels = ctl.decide(sys.step(levels));
    if (e >= 2500) {
      for (auto l : levels) {
        if (l == c.vf_table().max_level()) ++top_count;
      }
    }
  }
  // With unlimited budget, compute-bound cores should be at the top level
  // the vast majority of the time (epsilon exploration accounts for the
  // rest).
  EXPECT_GT(static_cast<double>(top_count) / (500.0 * kCores), 0.7);
}

// Parameterized configuration fuzz: OD-RL must behave across the whole
// grid of state resolutions and action modes.
class OdrlConfigGrid
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, core::ActionMode>> {};

TEST_P(OdrlConfigGrid, ProducesValidDeterministicDecisions) {
  const auto [h_bins, m_bins, mode] = GetParam();
  const arch::ChipConfig c = chip();
  core::OdrlConfig cfg;
  cfg.headroom_bins = h_bins;
  cfg.mem_bins = m_bins;
  cfg.action_mode = mode;

  auto run = [&] {
    workload::GeneratedWorkload gen =
        workload::GeneratedWorkload::mixed_suite(kCores, 4);
    const workload::RecordedTrace trace = gen.record(200);
    sim::ManyCoreSystem sys(
        c, std::make_unique<workload::ReplayWorkload>(trace));
    core::OdrlController ctl(c, cfg);
    auto levels = ctl.initial_levels(kCores);
    std::vector<std::size_t> history;
    for (int e = 0; e < 200; ++e) {
      levels = ctl.decide(sys.step(levels));
      for (auto l : levels) {
        EXPECT_LT(l, c.vf_table().size());
        history.push_back(l);
      }
    }
    return history;
  };
  EXPECT_EQ(run(), run());  // determinism across identical runs
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OdrlConfigGrid,
    ::testing::Combine(::testing::Values(2u, 6u, 10u, 16u),
                       ::testing::Values(1u, 3u, 5u),
                       ::testing::Values(core::ActionMode::kRelative,
                                         core::ActionMode::kAbsolute)));

// Every benchmark profile must sustain long runs with valid samples.
class ProfileLongRun : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileLongRun, SamplesStayValid) {
  const auto& profile = workload::benchmark_by_name(GetParam());
  odrl::util::Rng rng(5);
  auto machine = profile.instantiate(rng);
  for (int e = 0; e < 20000; ++e) {
    const auto s = machine.step(rng);
    ASSERT_GT(s.base_cpi, 0.0);
    ASSERT_GE(s.mpki, 0.0);
    ASSERT_GT(s.activity, 0.0);
    ASSERT_LE(s.activity, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileLongRun,
    ::testing::ValuesIn(odrl::workload::benchmark_names()));
