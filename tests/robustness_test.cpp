// Robustness and failure-injection tests: controllers must produce valid
// decisions while the fault engine feeds them degenerate sensor data,
// drops their actuations, or hot-unplugs cores under them -- a controller
// that crashes or emits an out-of-range level on a sensor glitch would
// hang real silicon. The glitches here go through sim/faults.hpp, so the
// corrupt observations are exactly what a faulted closed loop produces
// (not hand-built approximations of one).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "arch/chip_config.hpp"
#include "core/odrl_controller.hpp"
#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

#include "loop_helpers.hpp"

using namespace odrl;
using odrl::test::decide;
using odrl::test::step;

namespace {

constexpr std::size_t kCores = 8;

arch::ChipConfig chip() { return arch::ChipConfig::make(kCores, 0.6); }

sim::ManyCoreSystem make_system(const arch::ChipConfig& c) {
  sim::SimConfig sc;
  sc.seed = 17;
  return sim::ManyCoreSystem(
      c,
      std::make_unique<workload::GeneratedWorkload>(
          workload::GeneratedWorkload::mixed_suite(kCores, 9)),
      sc);
}

void expect_valid_levels(const std::vector<std::size_t>& levels,
                         const arch::ChipConfig& c) {
  ASSERT_EQ(levels.size(), c.n_cores());
  for (auto l : levels) EXPECT_LT(l, c.vf_table().size());
}

/// Drives every registered controller through a closed loop with
/// `schedule` injected, asserting a valid decision every epoch.
void run_all_controllers_under(const sim::FaultSchedule& schedule,
                               int epochs = 60) {
  const arch::ChipConfig c = chip();
  for (const std::string& name : sim::registered_controllers()) {
    SCOPED_TRACE("controller: " + name);
    sim::ManyCoreSystem sys = make_system(c);
    sim::FaultEngine engine(schedule, kCores);
    sys.set_fault_engine(&engine);
    auto ctl = sim::make_controller(name, c);
    auto levels = ctl->initial_levels(kCores);
    for (int e = 0; e < epochs; ++e) {
      levels = decide(*ctl, step(sys, levels));
      expect_valid_levels(levels, c);
    }
    sys.set_fault_engine(nullptr);
  }
}

}  // namespace

TEST(Robustness, AllControllersSurviveStuckZeroSensors) {
  // Every core's power/IPS sensors read zero for the whole run (a chip-wide
  // power-meter glitch): controllers see 0 W against a full budget.
  sim::FaultSchedule s;
  for (std::size_t i = 0; i < kCores; ++i) s.sensor_stuck_zero(0, i, 60);
  run_all_controllers_under(s);
}

TEST(Robustness, AllControllersSurviveSaturatedSensors) {
  // Sensors pegged at 10x the physical reading: controllers see an absurd
  // chip power far above any budget.
  sim::FaultSchedule s;
  for (std::size_t i = 0; i < kCores; ++i) {
    s.sensor_saturate(0, i, 60, 10.0);
  }
  run_all_controllers_under(s);
}

TEST(Robustness, AllControllersSurviveAlternatingGlitches) {
  // Zeroed and saturated windows interleave on every core, with frozen
  // readings in between -- the nastiest transition pattern: each boundary
  // flips the apparent chip power between ~0 and ~10x.
  sim::FaultSchedule s;
  for (std::size_t i = 0; i < kCores; ++i) {
    for (std::size_t start = 0; start < 60; start += 15) {
      s.sensor_stuck_zero(start, i, 5);
      s.sensor_saturate(start + 5, i, 5, 10.0);
      s.sensor_stuck_last(start + 10, i, 5);
    }
  }
  run_all_controllers_under(s);
}

TEST(Robustness, AllControllersSurviveHotplug) {
  // Staggered hot-unplug/replug across half the chip, including an epoch
  // where three cores are out at once. Decisions must stay in range for
  // every core -- including the offline ones.
  sim::FaultSchedule s;
  s.core_offline(5, 0, 20)
      .core_offline(10, 3, 20)
      .core_offline(15, 6, 20)
      .core_offline(45, 1, 10);
  run_all_controllers_under(s, 70);
}

TEST(Robustness, AllControllersSurviveActuationFaults) {
  // Regulator lag on half the cores, lost requests on the other half: the
  // applied levels diverge from the decisions, so every controller's
  // observation contradicts what it just commanded.
  sim::FaultSchedule s;
  for (std::size_t i = 0; i < kCores; ++i) {
    if (i % 2 == 0) {
      s.actuation_delay(5, i, 40, 3);
    } else {
      s.actuation_drop(5, i, 40);
    }
  }
  run_all_controllers_under(s);
}

TEST(Robustness, AllControllersSurviveARandomStorm) {
  // Everything at once, densely: sensors, actuation, hotplug and budget
  // steps from the deterministic storm generator.
  sim::StormConfig storm;
  storm.sensor_rate = 0.02;
  storm.actuation_rate = 0.01;
  storm.offline_rate = 0.005;
  storm.budget_rate = 0.01;
  run_all_controllers_under(
      sim::FaultSchedule::random_storm(kCores, 80, 1234, storm), 80);
}

TEST(Robustness, HotplugRecoveryRestoresThroughput) {
  // After a core rejoins, it must actually run again: positive
  // instructions and power once the offline window expires.
  const arch::ChipConfig c = chip();
  sim::ManyCoreSystem sys = make_system(c);
  sim::FaultSchedule s;
  s.core_offline(5, 2, 10);
  sim::FaultEngine engine(s, kCores);
  sys.set_fault_engine(&engine);
  core::OdrlController ctl(c);
  auto levels = ctl.initial_levels(kCores);
  for (int e = 0; e < 30; ++e) {
    const sim::EpochResult obs = step(sys, levels);
    if (e >= 5 && e < 15) {
      EXPECT_EQ(obs.cores.online()[2], 0) << e;
      EXPECT_EQ(obs.cores.instructions()[2], 0.0) << e;
    } else {
      EXPECT_EQ(obs.cores.online()[2], 1) << e;
      EXPECT_GT(obs.cores.instructions()[2], 0.0) << e;
      EXPECT_GT(obs.cores.true_power_w()[2], 0.0) << e;
    }
    levels = decide(ctl, obs);
    expect_valid_levels(levels, c);
  }
  sys.set_fault_engine(nullptr);
}

TEST(Robustness, OdrlSurvivesHeavySensorNoise) {
  const arch::ChipConfig c = chip();
  sim::SimConfig sc;
  sc.sensor_noise_rel = 0.5;  // the permitted maximum
  sim::ManyCoreSystem sys(c, std::make_unique<workload::GeneratedWorkload>(
                                 workload::GeneratedWorkload::mixed_suite(
                                     kCores, 2)),
                          sc);
  core::OdrlController ctl(c);
  auto levels = ctl.initial_levels(kCores);
  for (int e = 0; e < 1000; ++e) {
    levels = decide(ctl, step(sys, levels));
    expect_valid_levels(levels, c);
  }
}

TEST(Robustness, TinyBudgetKeepsEveryoneAtFloor) {
  // Budget far below even idle power: OD-RL must converge to the bottom
  // level (it cannot do better) without misbehaving.
  const arch::ChipConfig c = chip().with_tdp(0.5);
  sim::ManyCoreSystem sys(c, std::make_unique<workload::GeneratedWorkload>(
                                 workload::GeneratedWorkload::mixed_suite(
                                     kCores, 3)));
  core::OdrlController ctl(c);
  auto levels = ctl.initial_levels(kCores);
  std::size_t sum_levels = 0;
  for (int e = 0; e < 2000; ++e) {
    levels = decide(ctl, step(sys, levels));
    if (e >= 1500) {
      for (auto l : levels) sum_levels += l;
    }
  }
  // Last 500 epochs x 8 cores: average level must be near the floor.
  EXPECT_LT(static_cast<double>(sum_levels) / (500.0 * kCores), 1.0);
}

TEST(Robustness, HugeBudgetSaturatesAtTopLevels) {
  const arch::ChipConfig c = chip().with_tdp(1e5);
  sim::ManyCoreSystem sys(c, std::make_unique<workload::GeneratedWorkload>(
                                 kCores,
                                 workload::benchmark_by_name("compute.dense"),
                                 3));
  core::OdrlController ctl(c);
  auto levels = ctl.initial_levels(kCores);
  std::size_t top_count = 0;
  for (int e = 0; e < 3000; ++e) {
    levels = decide(ctl, step(sys, levels));
    if (e >= 2500) {
      for (auto l : levels) {
        if (l == c.vf_table().max_level()) ++top_count;
      }
    }
  }
  // With unlimited budget, compute-bound cores should be at the top level
  // the vast majority of the time (epsilon exploration accounts for the
  // rest).
  EXPECT_GT(static_cast<double>(top_count) / (500.0 * kCores), 0.7);
}

// Parameterized configuration fuzz: OD-RL must behave across the whole
// grid of state resolutions and action modes.
class OdrlConfigGrid
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, core::ActionMode>> {};

TEST_P(OdrlConfigGrid, ProducesValidDeterministicDecisions) {
  const auto [h_bins, m_bins, mode] = GetParam();
  const arch::ChipConfig c = chip();
  core::OdrlConfig cfg;
  cfg.headroom_bins = h_bins;
  cfg.mem_bins = m_bins;
  cfg.action_mode = mode;

  auto run = [&] {
    workload::GeneratedWorkload gen =
        workload::GeneratedWorkload::mixed_suite(kCores, 4);
    const workload::RecordedTrace trace = gen.record(200);
    sim::ManyCoreSystem sys(
        c, std::make_unique<workload::ReplayWorkload>(trace));
    core::OdrlController ctl(c, cfg);
    auto levels = ctl.initial_levels(kCores);
    std::vector<std::size_t> history;
    for (int e = 0; e < 200; ++e) {
      levels = decide(ctl, step(sys, levels));
      for (auto l : levels) {
        EXPECT_LT(l, c.vf_table().size());
        history.push_back(l);
      }
    }
    return history;
  };
  EXPECT_EQ(run(), run());  // determinism across identical runs
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OdrlConfigGrid,
    ::testing::Combine(::testing::Values(2u, 6u, 10u, 16u),
                       ::testing::Values(1u, 3u, 5u),
                       ::testing::Values(core::ActionMode::kRelative,
                                         core::ActionMode::kAbsolute)));

// Every benchmark profile must sustain long runs with valid samples.
class ProfileLongRun : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileLongRun, SamplesStayValid) {
  const auto& profile = workload::benchmark_by_name(GetParam());
  odrl::util::Rng rng(5);
  auto machine = profile.instantiate(rng);
  for (int e = 0; e < 20000; ++e) {
    const auto s = machine.step(rng);
    ASSERT_GT(s.base_cpi, 0.0);
    ASSERT_GE(s.mpki, 0.0);
    ASSERT_GT(s.activity, 0.0);
    ASSERT_LE(s.activity, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileLongRun,
    ::testing::ValuesIn(odrl::workload::benchmark_names()));
