// Golden-trace regression suite: every registered controller runs a seeded
// closed loop (8 and 16 cores, fault-free and under a fault storm with the
// watchdog armed) and the run's trace is reduced to a 64-bit digest that
// must match the committed table in golden_digests.inc.
//
// The digest folds float-rounded trace values: runs are bit-identical by
// the determinism contract, and the float rounding absorbs last-ulp
// double differences between compilers/libms so the goldens hold across
// the CI matrix.
//
// When a golden legitimately moves (model change, controller tuning),
// regenerate the table:
//
//   python3 tools/regen_goldens.py
//
// which rebuilds this test, reruns it with ODRL_GOLDEN_PRINT=1, and
// rewrites tests/golden_digests.inc from its output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "arch/chip_config.hpp"
#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workload/workload.hpp"

namespace oa = odrl::arch;
namespace os = odrl::sim;
namespace ow = odrl::workload;

namespace {

struct GoldenCase {
  const char* controller;
  std::size_t cores;
  bool faults;
  bool resume;  ///< digest of the snapshot-resumed tail, not the full run
  std::uint64_t digest;
};

#include "golden_digests.inc"

constexpr const char* kControllers[] = {"OD-RL", "PID", "Greedy", "MaxBIPS",
                                        "Static"};
constexpr std::size_t kSizes[] = {8, 16};

// -- FNV-1a over float-rounded values --

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fold_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fold(std::uint64_t& h, double value) {
  // Round through binary32: a last-ulp double wobble (different libm,
  // different contraction) lands in the same float except at measure-zero
  // rounding boundaries.
  const float f = static_cast<float>(value);
  fold_bytes(h, &f, sizeof(f));
}

void fold(std::uint64_t& h, std::uint64_t value) {
  fold_bytes(h, &value, sizeof(value));
}

std::uint64_t run_digest(const std::string& controller, std::size_t cores,
                         bool faults, bool resume) {
  const oa::ChipConfig chip = oa::ChipConfig::make(cores, 0.6);
  os::SimConfig sc;
  sc.sensor_noise_rel = 0.02;
  sc.seed = 23;
  auto make_system = [&] {
    return os::ManyCoreSystem(
        chip,
        std::make_unique<ow::GeneratedWorkload>(
            ow::GeneratedWorkload::mixed_suite(cores, 13)),
        sc);
  };
  auto make_config = [&] {
    os::RunConfig cfg;
    cfg.warmup_epochs = 20;
    cfg.epochs = 150;
    cfg.budget_events = {{0, chip.tdp_w() * 0.9}, {75, chip.tdp_w() * 0.6}};
    return cfg;
  };
  os::FaultSchedule storm;
  if (faults) {
    os::StormConfig knobs;
    knobs.sensor_rate = 0.01;  // denser than default: short run, real storm
    knobs.actuation_rate = 0.005;
    knobs.offline_rate = 0.002;
    knobs.budget_rate = 0.01;
    storm = os::FaultSchedule::random_storm(cores, 150, 99, knobs);
  }
  auto arm = [&](os::RunConfig& cfg) {
    if (faults) {
      cfg.faults = &storm;
      cfg.watchdog.enabled = true;
    }
  };

  os::RunResult r;
  if (!resume) {
    os::ManyCoreSystem system = make_system();
    auto ctl = os::make_controller(controller, chip);
    os::RunConfig cfg = make_config();
    arm(cfg);
    r = os::run_closed_loop(system, *ctl, cfg);
  } else {
    // Capture at the midpoint of a full run, then resume on fresh objects
    // and digest the resumed tail. The committed digest pins the resume
    // path itself: a serialization or restore regression moves it even if
    // the full-run digests hold.
    std::string blob;
    {
      os::ManyCoreSystem system = make_system();
      auto ctl = os::make_controller(controller, chip);
      os::RunConfig cfg = make_config();
      arm(cfg);
      cfg.snapshot_epoch = 70;
      cfg.snapshot_out = &blob;
      (void)os::run_closed_loop(system, *ctl, cfg);
    }
    os::ManyCoreSystem system = make_system();
    auto ctl = os::make_controller(controller, chip);
    os::RunConfig cfg = make_config();
    arm(cfg);
    cfg.resume_snapshot = &blob;
    r = os::run_closed_loop(system, *ctl, cfg);
  }

  std::uint64_t h = kFnvOffset;
  for (const os::EpochTrace& t : r.trace) {
    fold(h, t.budget_w);
    fold(h, t.chip_power_w);
    fold(h, t.true_chip_power_w);
    fold(h, t.total_ips);
    fold(h, t.max_temp_c);
    fold(h, static_cast<std::uint64_t>(t.thermal_violations));
  }
  fold(h, r.total_instructions);
  fold(h, r.total_energy_j);
  fold(h, r.otb_energy_j);
  fold(h, r.mean_power_w);
  fold(h, static_cast<std::uint64_t>(r.fault_events_applied));
  fold(h, static_cast<std::uint64_t>(r.watchdog_invalid_decisions));
  fold(h, static_cast<std::uint64_t>(r.watchdog_fallback_entries));
  fold(h, static_cast<std::uint64_t>(r.watchdog_fallback_epochs));
  return h;
}

bool print_mode() {
  const char* v = std::getenv("ODRL_GOLDEN_PRINT");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

const GoldenCase* find_case(const std::string& controller, std::size_t cores,
                            bool faults, bool resume) {
  for (const GoldenCase& c : kGoldenCases) {
    if (controller == c.controller && cores == c.cores &&
        faults == c.faults && resume == c.resume) {
      return &c;
    }
  }
  return nullptr;
}

class GoldenTrace
    : public ::testing::TestWithParam<
          std::tuple<const char*, std::size_t, bool, bool>> {};

}  // namespace

TEST_P(GoldenTrace, DigestMatchesCommittedTable) {
  const auto [controller, cores, faults, resume] = GetParam();
  const std::uint64_t digest = run_digest(controller, cores, faults, resume);
  if (print_mode()) {
    // Machine-readable line for tools/regen_goldens.py.
    std::printf("GOLDEN %s %zu %d %d 0x%016llx\n", controller, cores,
                faults ? 1 : 0, resume ? 1 : 0,
                static_cast<unsigned long long>(digest));
    GTEST_SKIP() << "ODRL_GOLDEN_PRINT set: emitting digests, not checking";
  }
  const GoldenCase* want = find_case(controller, cores, faults, resume);
  ASSERT_NE(want, nullptr)
      << "no committed golden for controller=" << controller
      << " cores=" << cores << " faults=" << faults << " resume=" << resume
      << " -- regenerate the table with: python3 tools/regen_goldens.py";
  EXPECT_EQ(digest, want->digest)
      << "golden trace drifted for controller=" << controller
      << " cores=" << cores << " faults=" << faults << " resume=" << resume
      << ": got 0x" << std::hex << digest << ", committed 0x" << want->digest
      << std::dec
      << ". If this change is intentional, regenerate the table with: "
         "python3 tools/regen_goldens.py";
}

INSTANTIATE_TEST_SUITE_P(
    AllControllers, GoldenTrace,
    ::testing::Combine(::testing::ValuesIn(kControllers),
                       ::testing::ValuesIn(kSizes), ::testing::Bool(),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += "_" + std::to_string(std::get<1>(info.param));
      name += std::get<2>(info.param) ? "_storm" : "_clean";
      name += std::get<3>(info.param) ? "_resume" : "_full";
      return name;
    });

TEST(GoldenTable, CoversExactlyTheParameterGrid) {
  if (print_mode()) GTEST_SKIP() << "regenerating, table may be stale";
  // A stale table (extra or missing rows) fails loudly here rather than
  // silently skipping coverage.
  std::size_t grid = 0;
  for (const char* controller : kControllers) {
    for (std::size_t cores : kSizes) {
      for (bool faults : {false, true}) {
        for (bool resume : {false, true}) {
          EXPECT_NE(find_case(controller, cores, faults, resume), nullptr)
              << controller << "/" << cores << "/" << faults << "/"
              << resume;
          ++grid;
        }
      }
    }
  }
  EXPECT_EQ(std::size(kGoldenCases), grid)
      << "golden_digests.inc rows do not match the test grid -- regenerate "
         "with: python3 tools/regen_goldens.py";
}
