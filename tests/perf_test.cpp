// Unit and property tests for the epoch-level performance model. The
// properties here are load-bearing for the whole evaluation: the CPI stack
// must make memory-bound phases frequency-insensitive and compute-bound
// phases frequency-proportional, or no controller comparison means anything.
#include <gtest/gtest.h>

#include "perf/perf_model.hpp"

namespace op = odrl::perf;
namespace ow = odrl::workload;
namespace oa = odrl::arch;

namespace {
ow::PhaseSample compute_phase() { return {.base_cpi = 0.5, .mpki = 0.0,
                                          .activity = 0.9}; }
ow::PhaseSample memory_phase() { return {.base_cpi = 0.8, .mpki = 30.0,
                                         .activity = 0.5}; }
}  // namespace

TEST(PerfModel, PureComputeIpsIsLinearInFrequency) {
  const op::PerfModel m(oa::CoreParams{});
  const auto phase = compute_phase();
  const double ips1 = m.ips(phase, 1.0);
  const double ips2 = m.ips(phase, 2.0);
  const double ips3 = m.ips(phase, 3.0);
  EXPECT_NEAR(ips2 / ips1, 2.0, 1e-9);
  EXPECT_NEAR(ips3 / ips1, 3.0, 1e-9);
}

TEST(PerfModel, PureComputeCpiEqualsBaseCpi) {
  const op::PerfModel m(oa::CoreParams{});
  EXPECT_DOUBLE_EQ(m.effective_cpi(compute_phase(), 2.0), 0.5);
}

TEST(PerfModel, IssueWidthFloorsCpi) {
  oa::CoreParams params;
  params.issue_width = 2.0;
  const op::PerfModel m(params);
  ow::PhaseSample phase{.base_cpi = 0.1, .mpki = 0.0, .activity = 0.9};
  EXPECT_DOUBLE_EQ(m.effective_cpi(phase, 1.0), 0.5);  // 1/issue_width
}

TEST(PerfModel, MemoryBoundIpsSaturates) {
  const op::PerfModel m(oa::CoreParams{});
  const auto phase = memory_phase();
  const double ips1 = m.ips(phase, 1.0);
  const double ips3 = m.ips(phase, 3.0);
  // Tripling frequency must buy far less than 3x.
  EXPECT_LT(ips3 / ips1, 1.5);
  EXPECT_GT(ips3 / ips1, 1.0);  // but still monotone
}

TEST(PerfModel, MemStallFractionOrdering) {
  const op::PerfModel m(oa::CoreParams{});
  EXPECT_LT(m.mem_stall_fraction(compute_phase(), 2.0), 0.01);
  EXPECT_GT(m.mem_stall_fraction(memory_phase(), 2.0), 0.5);
}

TEST(PerfModel, StallFractionGrowsWithFrequency) {
  const op::PerfModel m(oa::CoreParams{});
  const auto phase = memory_phase();
  EXPECT_LT(m.mem_stall_fraction(phase, 1.0),
            m.mem_stall_fraction(phase, 3.0));
}

TEST(PerfModel, SensitivityIsComplementOfStall) {
  const op::PerfModel m(oa::CoreParams{});
  for (double f : {1.0, 1.5, 2.0, 3.0}) {
    const auto phase = memory_phase();
    EXPECT_NEAR(m.frequency_sensitivity(phase, f),
                1.0 - m.mem_stall_fraction(phase, f), 1e-12);
  }
}

TEST(PerfModel, SensitivityMatchesNumericalDerivative) {
  // s = dIPS/df * f/IPS: check against a finite difference.
  const op::PerfModel m(oa::CoreParams{});
  const auto phase = memory_phase();
  const double f = 2.0;
  const double h = 1e-6;
  const double ips = m.ips(phase, f);
  const double dips = (m.ips(phase, f + h) - m.ips(phase, f - h)) / (2 * h);
  EXPECT_NEAR(m.frequency_sensitivity(phase, f), dips * f / ips, 1e-6);
}

TEST(PerfModel, EpochInstructionsScaleWithDuration) {
  const op::PerfModel m(oa::CoreParams{});
  const auto phase = compute_phase();
  const auto e1 = m.epoch(phase, 2.0, 1e-3);
  const auto e2 = m.epoch(phase, 2.0, 2e-3);
  EXPECT_NEAR(e2.instructions, 2.0 * e1.instructions, 1e-6);
  EXPECT_DOUBLE_EQ(e1.ips, e2.ips);
}

TEST(PerfModel, EpochFieldsConsistent) {
  const op::PerfModel m(oa::CoreParams{});
  const auto phase = memory_phase();
  const auto e = m.epoch(phase, 2.5, 1e-3);
  EXPECT_NEAR(e.ips, 2.5e9 / e.cpi, 1e-3);
  EXPECT_NEAR(e.instructions, e.ips * 1e-3, 1e-6);
  EXPECT_NEAR(e.mem_stall_frac, m.mem_stall_fraction(phase, 2.5), 1e-12);
}

TEST(PerfModel, MemOverlapReducesStallCost) {
  oa::CoreParams overlap_params;
  overlap_params.mem_overlap = 0.6;
  oa::CoreParams no_overlap_params;
  no_overlap_params.mem_overlap = 0.0;
  const op::PerfModel with_overlap(overlap_params);
  const op::PerfModel without(no_overlap_params);
  const auto phase = memory_phase();
  EXPECT_GT(with_overlap.ips(phase, 2.0), without.ips(phase, 2.0));
}

TEST(PerfModel, InvalidArgumentsThrow) {
  const op::PerfModel m(oa::CoreParams{});
  EXPECT_THROW(m.effective_cpi(compute_phase(), 0.0), std::invalid_argument);
  EXPECT_THROW(m.epoch(compute_phase(), 2.0, 0.0), std::invalid_argument);
}

// Property sweep: across the whole (mpki, frequency) grid, IPS must be
// strictly increasing in f and strictly decreasing in mpki, and stall must
// stay in [0, 1).
class PerfGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PerfGrid, MonotoneAndBounded) {
  const auto [mpki, f] = GetParam();
  const op::PerfModel m(oa::CoreParams{});
  ow::PhaseSample phase{.base_cpi = 0.8, .mpki = mpki, .activity = 0.7};

  const double ips = m.ips(phase, f);
  EXPECT_GT(ips, 0.0);

  // Monotone in frequency.
  EXPECT_GT(m.ips(phase, f + 0.1), ips);

  // Monotone (decreasing) in memory intensity.
  ow::PhaseSample heavier = phase;
  heavier.mpki = mpki + 1.0;
  EXPECT_LT(m.ips(heavier, f), ips);

  const double stall = m.mem_stall_fraction(phase, f);
  EXPECT_GE(stall, 0.0);
  EXPECT_LT(stall, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfGrid,
    ::testing::Combine(::testing::Values(0.0, 0.5, 2.0, 8.0, 30.0),
                       ::testing::Values(1.0, 1.571, 2.143, 3.0)));
