#!/usr/bin/env python3
"""Self-test for tools/lint_odrl.py: rules must fire on the dirty fixture
tree, stay quiet on the clean one, and the real repository must lint
clean. Registered as the `lint_selftest` ctest case so a rule that rots
(stops firing, or starts over-triggering) fails the suite, not a code
review.

Usage: python3 tests/lint_selftest.py [--repo-root DIR]
Exit status: 0 on success, 1 on any self-test failure.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

# Every rule the dirty fixture deliberately violates, and the naked-marker
# diagnostic. A new lint rule (or a new pattern under an existing rule --
# the std::async/pthread_create spawners live under raw-thread) lands with
# a fixture violation + an entry here, or the self-test will not protect
# it. Entries are matched as substrings of the lint output, so finding
# *messages* work as well as rule names.
EXPECTED_DIRTY_RULES = (
    "raw-mutex",
    "unguarded-capability",
    "nondeterminism",
    "raw-thread",
    "std::async",
    "pthread_create",
    "std-function-hot-path",
    "suppression without a reason",
)


def run_lint(lint: Path, root: Path) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, str(lint), "--root", str(root)],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root",
                        default=str(Path(__file__).resolve().parent.parent),
                        help="repository root (default: this script's ../)")
    args = parser.parse_args()
    repo = Path(args.repo_root).resolve()
    lint = repo / "tools" / "lint_odrl.py"
    fixtures = repo / "tests" / "lint_fixtures"
    failures: list[str] = []

    rc, out = run_lint(lint, fixtures / "clean")
    if rc != 0:
        failures.append(
            f"clean fixture tree: expected exit 0, got {rc}:\n{out}")

    rc, out = run_lint(lint, fixtures / "dirty")
    if rc != 1:
        failures.append(
            f"dirty fixture tree: expected exit 1, got {rc}:\n{out}")
    for rule in EXPECTED_DIRTY_RULES:
        if rule not in out:
            failures.append(
                f"dirty fixture tree: expected a '{rule}' finding; output:\n"
                f"{out}")

    rc, out = run_lint(lint, repo)
    if rc != 0:
        failures.append(
            f"real repository: expected exit 0 (lint-clean), got {rc}:\n"
            f"{out}")

    for failure in failures:
        print(f"lint_selftest: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("lint_selftest: ok (clean passes, dirty fires "
              f"{len(EXPECTED_DIRTY_RULES)} expected rules, repo clean)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
