// Tests for the evaluation-metric layer.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"

namespace om = odrl::metrics;
namespace os = odrl::sim;

namespace {
os::RunResult make_run(double instructions, double otb_j, double mean_w,
                       double decision_us_total, std::size_t epochs = 1000) {
  os::RunResult r;
  r.controller_name = "X";
  r.epochs = epochs;
  r.epoch_s = 1e-3;
  r.total_instructions = instructions;
  r.otb_energy_j = otb_j;
  r.mean_power_w = mean_w;
  r.total_energy_j = mean_w * r.elapsed_s();
  r.decisions = epochs;
  r.decision_time_s = decision_us_total * 1e-6;
  return r;
}
}  // namespace

TEST(Metrics, TpobeBasic) {
  const auto r = make_run(1e9, 2.0, 50.0, 100.0);
  EXPECT_DOUBLE_EQ(om::tpobe(r), 5e8);
}

TEST(Metrics, TpobeFloorsZeroOvershoot) {
  const auto r = make_run(1e9, 0.0, 50.0, 100.0);
  EXPECT_DOUBLE_EQ(om::tpobe(r), 1e9 / 1e-3);
  EXPECT_DOUBLE_EQ(om::tpobe(r, 1.0), 1e9);
  EXPECT_THROW(om::tpobe(r, 0.0), std::invalid_argument);
}

TEST(Metrics, OvershootReduction) {
  const auto ours = make_run(1e9, 0.1, 50.0, 100.0);
  const auto base = make_run(1e9, 10.0, 50.0, 100.0);
  EXPECT_NEAR(om::overshoot_reduction_pct(ours, base), 99.0, 1e-9);
  // Symmetric direction: more overshoot -> negative reduction.
  EXPECT_LT(om::overshoot_reduction_pct(base, ours), 0.0);
  // Both clean: 0%.
  const auto clean = make_run(1e9, 0.0, 50.0, 100.0);
  EXPECT_DOUBLE_EQ(om::overshoot_reduction_pct(clean, clean), 0.0);
}

TEST(Metrics, TpobeRatio) {
  const auto ours = make_run(1e9, 0.5, 50.0, 100.0);
  const auto base = make_run(1e9, 5.0, 50.0, 100.0);
  EXPECT_NEAR(om::tpobe_ratio(ours, base), 10.0, 1e-9);
}

TEST(Metrics, EfficiencyGain) {
  const auto ours = make_run(2e9, 0.0, 50.0, 100.0);   // 2 BIPS @ 50 W
  const auto base = make_run(1.6e9, 0.0, 50.0, 100.0);  // 1.6 BIPS @ 50 W
  EXPECT_NEAR(om::efficiency_gain_pct(ours, base), 25.0, 1e-9);
}

TEST(Metrics, DecisionSpeedup) {
  const auto fast = make_run(1e9, 0.0, 50.0, 100.0);
  const auto slow = make_run(1e9, 0.0, 50.0, 10000.0);
  EXPECT_NEAR(om::decision_speedup(fast, slow), 100.0, 1e-9);
}

TEST(Metrics, SummaryFields) {
  auto r = make_run(3e9, 1.5, 60.0, 500.0);
  r.time_over_s = 0.25;
  r.peak_overshoot_w = 7.0;
  const auto s = om::summarize(r);
  EXPECT_EQ(s.controller, "X");
  EXPECT_NEAR(s.bips, 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean_power_w, 60.0);
  EXPECT_DOUBLE_EQ(s.otb_energy_j, 1.5);
  EXPECT_NEAR(s.overshoot_time_pct, 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.peak_overshoot_w, 7.0);
  EXPECT_NEAR(s.bips_per_watt, 0.05, 1e-12);
  EXPECT_NEAR(s.decision_us, 0.5, 1e-12);
}

TEST(Metrics, ComparisonTableRendersAllRuns) {
  const os::RunResult runs[] = {make_run(1e9, 0.0, 50.0, 100.0),
                                make_run(2e9, 1.0, 60.0, 200.0)};
  const auto table = om::comparison_table(runs);
  EXPECT_EQ(table.row_count(), 2u);
  const std::string out = table.render("t");
  EXPECT_NE(out.find("BIPS/W"), std::string::npos);
}
