// Unit tests for src/workload: phases, Markov phase machines, the built-in
// benchmark suite, and workload generation / record / replay.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/benchmarks.hpp"
#include "workload/phase.hpp"
#include "workload/phase_machine.hpp"
#include "workload/workload.hpp"

namespace ow = odrl::workload;
using odrl::util::Rng;

// -------------------------------------------------------------- Phase

TEST(Phase, ValidateAcceptsDefaults) {
  const ow::Phase p;
  EXPECT_NO_THROW(p.validate());
}

TEST(Phase, ValidateRejectsBadFields) {
  ow::Phase p;
  p.base_cpi = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.mpki = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.activity = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.activity = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.mean_dwell_epochs = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Phase, ExactSampleCopiesFields) {
  ow::Phase p{.base_cpi = 1.2, .mpki = 8.0, .activity = 0.6,
              .mean_dwell_epochs = 10.0};
  const ow::PhaseSample s = ow::exact_sample(p);
  EXPECT_DOUBLE_EQ(s.base_cpi, 1.2);
  EXPECT_DOUBLE_EQ(s.mpki, 8.0);
  EXPECT_DOUBLE_EQ(s.activity, 0.6);
}

// --------------------------------------------------- TransitionMatrix

TEST(TransitionMatrix, UniformRowsSumToOne) {
  const auto t = ow::TransitionMatrix::uniform(4);
  EXPECT_EQ(t.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j) sum += t.probability(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(TransitionMatrix, CyclicAdvances) {
  const auto t = ow::TransitionMatrix::cyclic(3);
  Rng rng(1);
  EXPECT_EQ(t.sample_next(0, rng), 1u);
  EXPECT_EQ(t.sample_next(1, rng), 2u);
  EXPECT_EQ(t.sample_next(2, rng), 0u);
}

TEST(TransitionMatrix, RejectsMalformedRows) {
  EXPECT_THROW(ow::TransitionMatrix({{0.5, 0.4}}), std::invalid_argument);
  EXPECT_THROW(ow::TransitionMatrix({{1.0}, {0.5, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(ow::TransitionMatrix({{-0.5, 1.5}, {0.5, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(ow::TransitionMatrix({}), std::invalid_argument);
  EXPECT_THROW(ow::TransitionMatrix::uniform(0), std::invalid_argument);
}

TEST(TransitionMatrix, SampleFrequenciesMatchProbabilities) {
  const ow::TransitionMatrix t({{0.2, 0.8}, {1.0, 0.0}});
  Rng rng(9);
  int to_one = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (t.sample_next(0, rng) == 1) ++to_one;
  }
  EXPECT_NEAR(static_cast<double>(to_one) / trials, 0.8, 0.01);
}

// -------------------------------------------------------- PhaseMachine

namespace {
ow::PhaseMachine two_phase_machine(double dwell = 20.0) {
  std::vector<ow::Phase> phases{
      ow::Phase{.base_cpi = 0.5, .mpki = 1.0, .activity = 0.9,
                .mean_dwell_epochs = dwell},
      ow::Phase{.base_cpi = 1.5, .mpki = 20.0, .activity = 0.5,
                .mean_dwell_epochs = dwell}};
  return ow::PhaseMachine(phases, ow::TransitionMatrix::cyclic(2), 0, {});
}
}  // namespace

TEST(PhaseMachine, DeterministicGivenSeed) {
  auto a = two_phase_machine();
  auto b = two_phase_machine();
  Rng ra(5);
  Rng rb(5);
  for (int i = 0; i < 500; ++i) {
    const auto sa = a.step(ra);
    const auto sb = b.step(rb);
    EXPECT_DOUBLE_EQ(sa.base_cpi, sb.base_cpi);
    EXPECT_DOUBLE_EQ(sa.mpki, sb.mpki);
    EXPECT_EQ(a.current_phase(), b.current_phase());
  }
}

TEST(PhaseMachine, MeanDwellApproximatelyGeometric) {
  auto m = two_phase_machine(25.0);
  Rng rng(11);
  std::size_t transitions = 0;
  const std::size_t epochs = 50000;
  std::size_t prev = m.current_phase();
  for (std::size_t i = 0; i < epochs; ++i) {
    m.step(rng);
    if (m.current_phase() != prev) ++transitions;
    prev = m.current_phase();
  }
  // Leave-probability 1/25 per epoch => ~epochs/25 transitions. The cyclic
  // matrix always changes phase on a leave event.
  const double expected = static_cast<double>(epochs) / 25.0;
  EXPECT_NEAR(static_cast<double>(transitions), expected, expected * 0.15);
}

TEST(PhaseMachine, JitterStaysWithinGuardRails) {
  std::vector<ow::Phase> phases{ow::Phase{.base_cpi = 1.0, .mpki = 5.0,
                                          .activity = 0.5,
                                          .mean_dwell_epochs = 10.0}};
  ow::PhaseMachine m(phases, ow::TransitionMatrix::uniform(1), 0,
                     ow::JitterConfig{0.2, 0.2, 0.2});
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto s = m.step(rng);
    EXPECT_GT(s.base_cpi, 0.0);
    EXPECT_GE(s.mpki, 0.0);
    EXPECT_GE(s.activity, 0.05);
    EXPECT_LE(s.activity, 1.0);
  }
}

TEST(PhaseMachine, NoJitterReproducesPhaseExactly) {
  std::vector<ow::Phase> phases{ow::Phase{.base_cpi = 1.0, .mpki = 5.0,
                                          .activity = 0.5,
                                          .mean_dwell_epochs = 1e9}};
  ow::PhaseMachine m(phases, ow::TransitionMatrix::uniform(1), 0,
                     ow::JitterConfig{0.0, 0.0, 0.0});
  Rng rng(3);
  const auto s = m.step(rng);
  EXPECT_DOUBLE_EQ(s.base_cpi, 1.0);
  EXPECT_DOUBLE_EQ(s.mpki, 5.0);
  EXPECT_DOUBLE_EQ(s.activity, 0.5);
}

TEST(PhaseMachine, ConstructionValidation) {
  std::vector<ow::Phase> phases{ow::Phase{}};
  EXPECT_THROW(
      ow::PhaseMachine({}, ow::TransitionMatrix::uniform(1), 0, {}),
      std::invalid_argument);
  EXPECT_THROW(
      ow::PhaseMachine(phases, ow::TransitionMatrix::uniform(2), 0, {}),
      std::invalid_argument);
  EXPECT_THROW(
      ow::PhaseMachine(phases, ow::TransitionMatrix::uniform(1), 5, {}),
      std::invalid_argument);
}

// ----------------------------------------------------------- Benchmarks

TEST(Benchmarks, SuiteHasThirteenDistinctProfiles) {
  const auto& suite = ow::benchmark_suite();
  EXPECT_EQ(suite.size(), 13u);
  std::set<std::string> names;
  for (const auto& p : suite) names.insert(p.name);
  EXPECT_EQ(names.size(), suite.size());
}

TEST(Benchmarks, AllProfilesAreWellFormed) {
  for (const auto& p : ow::benchmark_suite()) {
    EXPECT_FALSE(p.phases.empty()) << p.name;
    EXPECT_EQ(p.transitions.size(), p.phases.size()) << p.name;
    for (const auto& phase : p.phases) EXPECT_NO_THROW(phase.validate());
    EXPECT_FALSE(p.description.empty()) << p.name;
  }
}

TEST(Benchmarks, SuiteSpansComputeAndMemoryBehaviour) {
  // At least one strongly compute-bound and one strongly memory-bound
  // profile must exist -- the heterogeneity the budget reallocation needs.
  bool has_compute = false;
  bool has_memory = false;
  for (const auto& p : ow::benchmark_suite()) {
    for (const auto& phase : p.phases) {
      if (phase.mpki < 1.0) has_compute = true;
      if (phase.mpki > 20.0) has_memory = true;
    }
  }
  EXPECT_TRUE(has_compute);
  EXPECT_TRUE(has_memory);
}

TEST(Benchmarks, LookupByName) {
  EXPECT_EQ(ow::benchmark_by_name("compute.dense").name, "compute.dense");
  EXPECT_THROW(ow::benchmark_by_name("nope"), std::invalid_argument);
  EXPECT_EQ(ow::benchmark_names().size(), ow::benchmark_suite().size());
}

TEST(Benchmarks, InstantiateRandomizesStartPhase) {
  const auto& pipeline = ow::benchmark_by_name("phased.pipeline");
  Rng rng(17);
  std::set<std::size_t> starts;
  for (int i = 0; i < 50; ++i) {
    starts.insert(pipeline.instantiate(rng).current_phase());
  }
  EXPECT_GT(starts.size(), 1u);
}

// ------------------------------------------------------------ Workload

TEST(GeneratedWorkload, StepShapesAndLabels) {
  ow::GeneratedWorkload w(6, ow::benchmark_suite(), 42);
  EXPECT_EQ(w.n_cores(), 6u);
  EXPECT_EQ(w.core_label(0), ow::benchmark_suite()[0].name);
  EXPECT_EQ(w.core_label(5), ow::benchmark_suite()[5].name);
  const auto samples = w.step();
  EXPECT_EQ(samples.size(), 6u);
  EXPECT_THROW(w.core_label(6), std::out_of_range);
}

TEST(GeneratedWorkload, DeterministicPerSeed) {
  ow::GeneratedWorkload a = ow::GeneratedWorkload::mixed_suite(8, 7);
  ow::GeneratedWorkload b = ow::GeneratedWorkload::mixed_suite(8, 7);
  for (int e = 0; e < 200; ++e) {
    const auto sa = a.step();
    const auto sb = b.step();
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(sa[i].mpki, sb[i].mpki);
    }
  }
}

TEST(GeneratedWorkload, DifferentSeedsDiffer) {
  ow::GeneratedWorkload a = ow::GeneratedWorkload::mixed_suite(8, 1);
  ow::GeneratedWorkload b = ow::GeneratedWorkload::mixed_suite(8, 2);
  bool any_diff = false;
  for (int e = 0; e < 50 && !any_diff; ++e) {
    const auto sa = a.step();
    const auto sb = b.step();
    for (std::size_t i = 0; i < 8; ++i) {
      if (sa[i].mpki != sb[i].mpki) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratedWorkload, CoresRunningSameProfileAreDecorrelated) {
  // 4 cores, single profile: phase-shifted starts + independent streams.
  ow::GeneratedWorkload w(4, ow::benchmark_by_name("phased.pipeline"), 3);
  odrl::util::RunningStats diff;
  for (int e = 0; e < 300; ++e) {
    const auto s = w.step();
    diff.add(std::abs(s[0].mpki - s[1].mpki));
  }
  EXPECT_GT(diff.mean(), 0.1);
}

TEST(GeneratedWorkload, RejectsBadConstruction) {
  EXPECT_THROW(ow::GeneratedWorkload(0, ow::benchmark_suite(), 1),
               std::invalid_argument);
  EXPECT_THROW(ow::GeneratedWorkload(4, std::vector<ow::BenchmarkProfile>{}, 1),
               std::invalid_argument);
}

// ------------------------------------------------------ Record / Replay

TEST(RecordedTrace, AppendAndAccess) {
  ow::RecordedTrace trace(2, {"a", "b"});
  trace.append_epoch({ow::PhaseSample{}, ow::PhaseSample{}});
  EXPECT_EQ(trace.n_epochs(), 1u);
  EXPECT_EQ(trace.label(1), "b");
  EXPECT_THROW(trace.epoch(1), std::out_of_range);
  EXPECT_THROW(trace.append_epoch({ow::PhaseSample{}}), std::invalid_argument);
  EXPECT_THROW(ow::RecordedTrace(2, {"only-one"}), std::invalid_argument);
}

TEST(ReplayWorkload, ReplaysRecordingExactly) {
  ow::GeneratedWorkload gen = ow::GeneratedWorkload::mixed_suite(4, 99);
  const ow::RecordedTrace trace = gen.record(100);
  ow::ReplayWorkload replay(trace);
  for (std::size_t e = 0; e < 100; ++e) {
    const auto s = replay.step();
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(s[i].mpki, trace.epoch(e)[i].mpki);
    }
  }
}

TEST(ReplayWorkload, WrapsAround) {
  ow::GeneratedWorkload gen = ow::GeneratedWorkload::mixed_suite(2, 5);
  ow::ReplayWorkload replay(gen.record(10));
  for (int i = 0; i < 10; ++i) replay.step();
  EXPECT_EQ(replay.cursor(), 0u);
  const auto again = replay.step();
  EXPECT_EQ(replay.cursor(), 1u);
  (void)again;
}

TEST(ReplayWorkload, TwoReplaysOfSameTraceAgree) {
  // The apples-to-apples property the controller comparison depends on.
  ow::GeneratedWorkload gen = ow::GeneratedWorkload::mixed_suite(4, 5);
  const ow::RecordedTrace trace = gen.record(50);
  ow::ReplayWorkload r1(trace);
  ow::ReplayWorkload r2(trace);
  for (int e = 0; e < 120; ++e) {  // crosses the wrap boundary
    const auto s1 = r1.step();
    const auto s2 = r2.step();
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(s1[i].base_cpi, s2[i].base_cpi);
    }
  }
}

TEST(ReplayWorkload, RejectsEmptyTrace) {
  EXPECT_THROW(ow::ReplayWorkload(ow::RecordedTrace(1, {"x"})),
               std::invalid_argument);
}
