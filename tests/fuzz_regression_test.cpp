// Corpus-replay regression gate: every committed fuzz seed (and any crash
// reproducer later added to the corpus) runs through the shared fuzz
// harnesses in every normal build. The libFuzzer targets under tests/fuzz/
// explore; this test remembers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/harness.hpp"

namespace fs = std::filesystem;

namespace {

fs::path corpus_root() { return fs::path(ODRL_FUZZ_CORPUS_DIR); }

std::vector<fs::path> corpus_files(const char* target) {
  std::vector<fs::path> out;
  const fs::path dir = corpus_root() / target;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

using Harness = void (*)(const std::uint8_t*, std::size_t);

void replay(const char* target, Harness harness) {
  const auto files = corpus_files(target);
  ASSERT_FALSE(files.empty()) << "empty corpus dir for " << target
                              << " under " << corpus_root();
  for (const fs::path& path : files) {
    SCOPED_TRACE("corpus file: " + path.string());
    const auto bytes = read_bytes(path);
    // The harness contract: documented rejections are swallowed inside;
    // anything escaping (logic_error from a broken round-trip, bad_alloc
    // from an obeyed hostile header, a crash) fails the test.
    ASSERT_NO_THROW(harness(bytes.data(), bytes.size()));
  }
}

}  // namespace

TEST(FuzzRegression, FaultScheduleCorpus) {
  replay("fault_schedule", &odrl::fuzz::fuzz_fault_schedule);
}

TEST(FuzzRegression, TraceIoCorpus) {
  replay("trace_io", &odrl::fuzz::fuzz_trace);
}

TEST(FuzzRegression, QtableIoCorpus) {
  replay("qtable_io", &odrl::fuzz::fuzz_qtable);
}

TEST(FuzzRegression, SnapshotCorpus) {
  replay("snapshot", &odrl::fuzz::fuzz_snapshot);
}

TEST(FuzzRegression, MultichipCorpus) {
  replay("multichip", &odrl::fuzz::fuzz_multichip);
}

namespace {

// The multichip seeds are deterministic functions of the harness fleet
// (fuzz/harness.hpp multichip_fuzz_fleet) and the snapshot wire format,
// so they can be rebuilt from scratch and compared byte for byte.
std::string capture_fleet_frame(std::size_t epoch) {
  odrl::sim::Fleet fleet(odrl::fuzz::multichip_fuzz_fleet());
  std::string blob;
  odrl::sim::MultiChipConfig mc;
  mc.workers = 2;
  mc.snapshot_epoch = epoch;
  mc.snapshot_out = &blob;
  (void)odrl::sim::run_multichip(fleet.specs(), mc);
  return blob;
}

std::vector<std::pair<std::string, std::string>> expected_multichip_seeds() {
  namespace snap = odrl::snapshot;
  namespace sim = odrl::sim;
  const std::string valid = capture_fleet_frame(16);

  // Chip blobs of the valid frame, for building the derived seeds.
  std::vector<std::string> chip_blobs;
  {
    snap::Reader r(valid);
    r.open_section(sim::kSnapshotMultiChipTag);
    r.u64();
    r.u64();
    r.expect_section_end();
    for (std::size_t i = 0; i < 2; ++i) {
      r.open_section(sim::chip_section_tag(i));
      chip_blobs.push_back(r.str());
      r.expect_section_end();
    }
  }

  // Header epoch disagrees with the chips' captured epochs: parseable,
  // resumable, but outside the differential byte-compare.
  std::string epoch_mismatch;
  {
    snap::Writer w;
    w.begin_section(sim::kSnapshotMultiChipTag);
    w.u64(2);
    w.u64(12);
    w.end_section();
    for (std::size_t i = 0; i < 2; ++i) {
      w.begin_section(sim::chip_section_tag(i));
      w.str(chip_blobs[i]);
      w.end_section();
    }
    epoch_mismatch = std::move(w).finish();
  }

  // Three chips against a two-chip fleet: kDimensionMismatch rejection.
  std::string chip_count_mismatch;
  {
    snap::Writer w;
    w.begin_section(sim::kSnapshotMultiChipTag);
    w.u64(3);
    w.u64(16);
    w.end_section();
    for (std::size_t i = 0; i < 3; ++i) {
      w.begin_section(sim::chip_section_tag(i));
      w.str(chip_blobs[i % 2]);
      w.end_section();
    }
    chip_count_mismatch = std::move(w).finish();
  }

  // Header promises two chips but no CHnn sections follow.
  std::string headless;
  {
    snap::Writer w;
    w.begin_section(sim::kSnapshotMultiChipTag);
    w.u64(2);
    w.u64(16);
    w.end_section();
    headless = std::move(w).finish();
  }

  return {
      {"valid_midrun", valid},
      {"epoch_mismatch_header", epoch_mismatch},
      {"chip_count_mismatch", chip_count_mismatch},
      {"missing_chip_sections", headless},
      {"truncated", valid.substr(0, valid.size() / 2)},
      {"garbage", "not a snapshot frame at all\n"},
  };
}

}  // namespace

// Guards the seeds against silently going stale: if the snapshot wire
// format or the harness fleet changes, the committed blobs would parse as
// mere rejections and the differential path would stop being exercised.
// This test rebuilds every seed from the current code and compares bytes.
// To regenerate after an intentional format change, run this binary with
// ODRL_WRITE_FUZZ_SEEDS=1 (it rewrites tests/fuzz/corpus/multichip/ in
// the source tree) and commit the result.
TEST(FuzzRegression, MultichipSeedsMatchCurrentFormat) {
  const fs::path dir = corpus_root() / "multichip";
  const auto seeds = expected_multichip_seeds();
  if (std::getenv("ODRL_WRITE_FUZZ_SEEDS") != nullptr) {
    fs::create_directories(dir);
    for (const auto& [name, bytes] : seeds) {
      std::ofstream out(dir / name, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      ASSERT_TRUE(out.good()) << "failed writing " << (dir / name);
    }
  }
  for (const auto& [name, bytes] : seeds) {
    SCOPED_TRACE("seed: " + name);
    const auto on_disk = read_bytes(dir / name);
    ASSERT_EQ(std::string(on_disk.begin(), on_disk.end()), bytes)
        << "stale multichip fuzz seed -- regenerate with "
           "ODRL_WRITE_FUZZ_SEEDS=1 ./fuzz_regression_test and commit";
  }
}
