// Corpus-replay regression gate: every committed fuzz seed (and any crash
// reproducer later added to the corpus) runs through the shared fuzz
// harnesses in every normal build. The libFuzzer targets under tests/fuzz/
// explore; this test remembers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/harness.hpp"

namespace fs = std::filesystem;

namespace {

fs::path corpus_root() { return fs::path(ODRL_FUZZ_CORPUS_DIR); }

std::vector<fs::path> corpus_files(const char* target) {
  std::vector<fs::path> out;
  const fs::path dir = corpus_root() / target;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

using Harness = void (*)(const std::uint8_t*, std::size_t);

void replay(const char* target, Harness harness) {
  const auto files = corpus_files(target);
  ASSERT_FALSE(files.empty()) << "empty corpus dir for " << target
                              << " under " << corpus_root();
  for (const fs::path& path : files) {
    SCOPED_TRACE("corpus file: " + path.string());
    const auto bytes = read_bytes(path);
    // The harness contract: documented rejections are swallowed inside;
    // anything escaping (logic_error from a broken round-trip, bad_alloc
    // from an obeyed hostile header, a crash) fails the test.
    ASSERT_NO_THROW(harness(bytes.data(), bytes.size()));
  }
}

}  // namespace

TEST(FuzzRegression, FaultScheduleCorpus) {
  replay("fault_schedule", &odrl::fuzz::fuzz_fault_schedule);
}

TEST(FuzzRegression, TraceIoCorpus) {
  replay("trace_io", &odrl::fuzz::fuzz_trace);
}

TEST(FuzzRegression, QtableIoCorpus) {
  replay("qtable_io", &odrl::fuzz::fuzz_qtable);
}

TEST(FuzzRegression, SnapshotCorpus) {
  replay("snapshot", &odrl::fuzz::fuzz_snapshot);
}
