// Corpus-replay regression gate: every committed fuzz seed (and any crash
// reproducer later added to the corpus) runs through the shared fuzz
// harnesses in every normal build. The libFuzzer targets under tests/fuzz/
// explore; this test remembers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "arch/chip_config.hpp"
#include "fuzz/harness.hpp"
#include "service/client.hpp"
#include "workload/workload.hpp"

namespace fs = std::filesystem;

namespace {

fs::path corpus_root() { return fs::path(ODRL_FUZZ_CORPUS_DIR); }

std::vector<fs::path> corpus_files(const char* target) {
  std::vector<fs::path> out;
  const fs::path dir = corpus_root() / target;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

using Harness = void (*)(const std::uint8_t*, std::size_t);

void replay(const char* target, Harness harness) {
  const auto files = corpus_files(target);
  ASSERT_FALSE(files.empty()) << "empty corpus dir for " << target
                              << " under " << corpus_root();
  for (const fs::path& path : files) {
    SCOPED_TRACE("corpus file: " + path.string());
    const auto bytes = read_bytes(path);
    // The harness contract: documented rejections are swallowed inside;
    // anything escaping (logic_error from a broken round-trip, bad_alloc
    // from an obeyed hostile header, a crash) fails the test.
    ASSERT_NO_THROW(harness(bytes.data(), bytes.size()));
  }
}

}  // namespace

TEST(FuzzRegression, FaultScheduleCorpus) {
  replay("fault_schedule", &odrl::fuzz::fuzz_fault_schedule);
}

TEST(FuzzRegression, TraceIoCorpus) {
  replay("trace_io", &odrl::fuzz::fuzz_trace);
}

TEST(FuzzRegression, QtableIoCorpus) {
  replay("qtable_io", &odrl::fuzz::fuzz_qtable);
}

TEST(FuzzRegression, SnapshotCorpus) {
  replay("snapshot", &odrl::fuzz::fuzz_snapshot);
}

TEST(FuzzRegression, MultichipCorpus) {
  replay("multichip", &odrl::fuzz::fuzz_multichip);
}

TEST(FuzzRegression, ServiceCorpus) {
  replay("service", &odrl::fuzz::fuzz_service);
}

namespace {

// The multichip seeds are deterministic functions of the harness fleet
// (fuzz/harness.hpp multichip_fuzz_fleet) and the snapshot wire format,
// so they can be rebuilt from scratch and compared byte for byte.
std::string capture_fleet_frame(std::size_t epoch) {
  odrl::sim::Fleet fleet(odrl::fuzz::multichip_fuzz_fleet());
  std::string blob;
  odrl::sim::MultiChipConfig mc;
  mc.workers = 2;
  mc.snapshot_epoch = epoch;
  mc.snapshot_out = &blob;
  (void)odrl::sim::run_multichip(fleet.specs(), mc);
  return blob;
}

std::vector<std::pair<std::string, std::string>> expected_multichip_seeds() {
  namespace snap = odrl::snapshot;
  namespace sim = odrl::sim;
  const std::string valid = capture_fleet_frame(16);

  // Chip blobs of the valid frame, for building the derived seeds.
  std::vector<std::string> chip_blobs;
  {
    snap::Reader r(valid);
    r.open_section(sim::kSnapshotMultiChipTag);
    r.u64();
    r.u64();
    r.expect_section_end();
    for (std::size_t i = 0; i < 2; ++i) {
      r.open_section(sim::chip_section_tag(i));
      chip_blobs.push_back(r.str());
      r.expect_section_end();
    }
  }

  // Header epoch disagrees with the chips' captured epochs: parseable,
  // resumable, but outside the differential byte-compare.
  std::string epoch_mismatch;
  {
    snap::Writer w;
    w.begin_section(sim::kSnapshotMultiChipTag);
    w.u64(2);
    w.u64(12);
    w.end_section();
    for (std::size_t i = 0; i < 2; ++i) {
      w.begin_section(sim::chip_section_tag(i));
      w.str(chip_blobs[i]);
      w.end_section();
    }
    epoch_mismatch = std::move(w).finish();
  }

  // Three chips against a two-chip fleet: kDimensionMismatch rejection.
  std::string chip_count_mismatch;
  {
    snap::Writer w;
    w.begin_section(sim::kSnapshotMultiChipTag);
    w.u64(3);
    w.u64(16);
    w.end_section();
    for (std::size_t i = 0; i < 3; ++i) {
      w.begin_section(sim::chip_section_tag(i));
      w.str(chip_blobs[i % 2]);
      w.end_section();
    }
    chip_count_mismatch = std::move(w).finish();
  }

  // Header promises two chips but no CHnn sections follow.
  std::string headless;
  {
    snap::Writer w;
    w.begin_section(sim::kSnapshotMultiChipTag);
    w.u64(2);
    w.u64(16);
    w.end_section();
    headless = std::move(w).finish();
  }

  return {
      {"valid_midrun", valid},
      {"epoch_mismatch_header", epoch_mismatch},
      {"chip_count_mismatch", chip_count_mismatch},
      {"missing_chip_sections", headless},
      {"truncated", valid.substr(0, valid.size() / 2)},
      {"garbage", "not a snapshot frame at all\n"},
  };
}

}  // namespace

namespace {

/// Rebuilds one generated corpus directory (ODRL_WRITE_FUZZ_SEEDS=1) and
/// verifies every seed byte for byte against the committed files.
void check_generated_seeds(
    const char* target,
    const std::vector<std::pair<std::string, std::string>>& seeds) {
  const fs::path dir = corpus_root() / target;
  if (std::getenv("ODRL_WRITE_FUZZ_SEEDS") != nullptr) {
    fs::create_directories(dir);
    for (const auto& [name, bytes] : seeds) {
      std::ofstream out(dir / name, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      ASSERT_TRUE(out.good()) << "failed writing " << (dir / name);
    }
  }
  for (const auto& [name, bytes] : seeds) {
    SCOPED_TRACE(std::string("seed: ") + target + "/" + name);
    const auto on_disk = read_bytes(dir / name);
    ASSERT_EQ(std::string(on_disk.begin(), on_disk.end()), bytes)
        << "stale " << target << " fuzz seed -- regenerate with "
        << "ODRL_WRITE_FUZZ_SEEDS=1 ./fuzz_regression_test and commit";
  }
}

}  // namespace

// Guards the seeds against silently going stale: if the snapshot wire
// format or the harness fleet changes, the committed blobs would parse as
// mere rejections and the differential path would stop being exercised.
// This test rebuilds every seed from the current code and compares bytes.
// To regenerate after an intentional format change, run this binary with
// ODRL_WRITE_FUZZ_SEEDS=1 (it rewrites tests/fuzz/corpus/multichip/ in
// the source tree) and commit the result.
TEST(FuzzRegression, MultichipSeedsMatchCurrentFormat) {
  check_generated_seeds("multichip", expected_multichip_seeds());
}

namespace {

// The service seeds are deterministic functions of the wire format, the
// simulator, and the controllers: a session is actually opened and
// stepped so the corpus carries a *mid-run* session snapshot -- both as
// an OpenSession seed_blob (warm-start path) and as a bare payload (the
// snapshot-frame-that-is-not-a-message rejection path).
std::vector<std::pair<std::string, std::string>> expected_service_seeds() {
  namespace sv = odrl::service;

  sv::ServerConfig config;
  config.workers = 1;
  sv::Server server(config);
  sv::LoopbackClient client(server, "seed-builder");

  sv::TenantConfig tc;
  tc.controller = "OD-RL";
  tc.cores = 4;
  tc.seed = 17;
  tc.watchdog = true;
  sv::Tenant tenant(client, tc);
  for (int i = 0; i < 6; ++i) (void)tenant.step();
  const sv::SnapshotReply snap = client.snapshot(tenant.session_id());

  sv::HelloRequest hello;
  hello.head.type = sv::MsgType::kHello;
  hello.head.seq = 1;
  hello.client = "fuzz-seed";
  const std::string hello_payload = sv::encode_message(hello);

  sv::OpenSessionRequest open;
  open.head.type = sv::MsgType::kOpenSession;
  open.head.seq = 2;
  open.controller = "OD-RL";
  open.cores = 4;
  open.seed = 17;
  open.tag = "fuzz-tenant";
  open.watchdog = true;
  open.overrides = {{"alpha", "0.1"}};
  open.seed_blob = snap.blob;  // the mid-run warm-start door
  const std::string open_payload = sv::encode_message(open);

  // A real measured epoch so the OBSV columns carry live values, not
  // zeros the decoder's validators never look at twice.
  sv::StepEpochRequest step;
  step.head.type = sv::MsgType::kStepEpoch;
  step.head.seq = 3;
  step.head.session_id = tenant.session_id();
  step.epoch = 6;
  {
    odrl::sim::SimConfig sim;
    sim.seed = 17;
    odrl::sim::ManyCoreSystem system(
        odrl::arch::ChipConfig::make(4, 0.6),
        std::make_unique<odrl::workload::GeneratedWorkload>(
            odrl::workload::GeneratedWorkload::mixed_suite(4, 17)),
        sim);
    system.step_into(tenant.levels(), step.obs);
  }
  const std::string step_payload = sv::encode_message(step);

  sv::ErrorReply err;
  err.head.type = sv::MsgType::kErrorReply;
  err.head.seq = 4;
  err.status = sv::ServiceStatus::kUnknownSession;
  err.message = "seed";
  const std::string error_payload = sv::encode_message(err);

  return {
      {"hello", hello_payload},
      {"open_with_snapshot_blob", open_payload},
      {"step_measured_obs", step_payload},
      {"error_reply", error_payload},
      {"session_snapshot_bare", snap.blob},
      {"framed_stream",
       sv::encode_frame(hello_payload) + sv::encode_frame(open_payload)},
      {"truncated", open_payload.substr(0, open_payload.size() / 2)},
      {"garbage", "not a service frame at all\n"},
  };
}

}  // namespace

// Same staleness guard for the service wire corpus: the seeds embed a
// mid-run session snapshot, so a format or simulator change regenerates
// them via ODRL_WRITE_FUZZ_SEEDS=1 rather than silently degrading the
// corpus into rejection-only inputs.
TEST(FuzzRegression, ServiceSeedsMatchCurrentFormat) {
  check_generated_seeds("service", expected_service_seeds());
}
