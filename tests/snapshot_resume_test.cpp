// The snapshot API's headline guarantee: a run captured at its midpoint
// and resumed on freshly constructed objects continues *bit-identically*
// to the run that never stopped -- at every thread count, with and without
// a fault storm -- plus the live hot-swap semantics built on the same
// machinery (swap scheduling, registry construction, snapshot seeding,
// swap records in RunResult and telemetry).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "arch/chip_config.hpp"
#include "sim/controller_registry.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/memory_sink.hpp"
#include "telemetry/recorder.hpp"
#include "workload/workload.hpp"

namespace oa = odrl::arch;
namespace os = odrl::sim;
namespace osn = odrl::snapshot;
namespace ot = odrl::telemetry;
namespace ow = odrl::workload;

namespace {

constexpr std::size_t kCores = 8;
constexpr std::size_t kEpochs = 120;
constexpr std::size_t kMidpoint = 60;

oa::ChipConfig chip() { return oa::ChipConfig::make(kCores, 0.6); }

os::ManyCoreSystem make_system(const oa::ChipConfig& c) {
  os::SimConfig sc;
  sc.sensor_noise_rel = 0.02;
  sc.seed = 23;
  return os::ManyCoreSystem(
      c,
      std::make_unique<ow::GeneratedWorkload>(
          ow::GeneratedWorkload::mixed_suite(kCores, 13)),
      sc);
}

os::RunConfig base_config(const oa::ChipConfig& c) {
  os::RunConfig cfg;
  cfg.warmup_epochs = 10;
  cfg.epochs = kEpochs;
  cfg.budget_events = {{0, c.tdp_w() * 0.9}, {80, c.tdp_w() * 0.6}};
  return cfg;
}

os::FaultSchedule storm_schedule() {
  os::StormConfig knobs;
  knobs.sensor_rate = 0.01;
  knobs.actuation_rate = 0.005;
  knobs.offline_rate = 0.002;
  knobs.budget_rate = 0.01;
  return os::FaultSchedule::random_storm(kCores, kEpochs, 99, knobs);
}

// Bit-exact equality of two epoch records (doubles compared as bits via
// ==; the determinism contract promises identical bits, not just close).
void expect_records_equal(const os::EpochTrace& a, const os::EpochTrace& b,
                          std::size_t i) {
  EXPECT_EQ(a.epoch, b.epoch) << "record " << i;
  EXPECT_EQ(a.budget_w, b.budget_w) << "record " << i;
  EXPECT_EQ(a.chip_power_w, b.chip_power_w) << "record " << i;
  EXPECT_EQ(a.true_chip_power_w, b.true_chip_power_w) << "record " << i;
  EXPECT_EQ(a.total_ips, b.total_ips) << "record " << i;
  EXPECT_EQ(a.max_temp_c, b.max_temp_c) << "record " << i;
  EXPECT_EQ(a.thermal_violations, b.thermal_violations) << "record " << i;
}

class ResumeBitIdentity
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

}  // namespace

TEST_P(ResumeBitIdentity, TailMatchesUninterruptedRun) {
  const auto [threads, faults] = GetParam();
  const oa::ChipConfig c = chip();
  const os::FaultSchedule storm = faults ? storm_schedule()
                                         : os::FaultSchedule{};

  // Uninterrupted reference run, capturing a snapshot at the midpoint.
  std::string blob;
  os::RunConfig cfg = base_config(c);
  cfg.threads = threads;
  if (faults) {
    cfg.faults = &storm;
    cfg.watchdog.enabled = true;
  }
  cfg.snapshot_epoch = kMidpoint;
  cfg.snapshot_out = &blob;
  os::ManyCoreSystem ref_sys = make_system(c);
  auto ref_ctl = os::make_controller("OD-RL", c);
  const os::RunResult ref = os::run_closed_loop(ref_sys, *ref_ctl, cfg);
  ASSERT_FALSE(blob.empty());
  ASSERT_EQ(ref.trace.size(), kEpochs);

  // Resume on freshly constructed objects.
  os::RunConfig rcfg = base_config(c);
  rcfg.threads = threads;
  if (faults) {
    rcfg.faults = &storm;
    rcfg.watchdog.enabled = true;
  }
  rcfg.resume_snapshot = &blob;
  os::ManyCoreSystem res_sys = make_system(c);
  auto res_ctl = os::make_controller("OD-RL", c);
  const os::RunResult res = os::run_closed_loop(res_sys, *res_ctl, rcfg);

  EXPECT_EQ(res.start_epoch, kMidpoint);
  ASSERT_EQ(res.trace.size(), kEpochs - kMidpoint);
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    expect_records_equal(res.trace[i], ref.trace[kMidpoint + i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndFaults, ResumeBitIdentity,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                       ::testing::Bool()),
    [](const auto& info) {
      return "threads" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_storm" : "_clean");
    });

TEST(SnapshotResume, CaptureIsObservationallyInert) {
  // A run that captures a snapshot must produce the same bits as one that
  // does not -- capture reads state, it never perturbs it.
  const oa::ChipConfig c = chip();
  os::RunConfig plain = base_config(c);
  os::ManyCoreSystem sys_a = make_system(c);
  auto ctl_a = os::make_controller("OD-RL", c);
  const os::RunResult a = os::run_closed_loop(sys_a, *ctl_a, plain);

  std::string blob;
  os::RunConfig capturing = base_config(c);
  capturing.snapshot_epoch = kMidpoint;
  capturing.snapshot_out = &blob;
  os::ManyCoreSystem sys_b = make_system(c);
  auto ctl_b = os::make_controller("OD-RL", c);
  const os::RunResult b = os::run_closed_loop(sys_b, *ctl_b, capturing);

  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    expect_records_equal(a.trace[i], b.trace[i], i);
  }
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
}

// -- Hot-swap -------------------------------------------------------------

TEST(HotSwap, OdrlGreedyOdrlIsDeterministicAndRecorded) {
  const oa::ChipConfig c = chip();
  auto run_once = [&](std::vector<os::SwapTrace>* swaps_out,
                      std::shared_ptr<ot::MemorySink> sink) {
    os::RunConfig cfg = base_config(c);
    cfg.swaps.push_back({40, "Greedy", {}, nullptr});
    cfg.swaps.push_back({80, "OD-RL", {}, nullptr});
    ot::Recorder rec;
    if (sink) {
      rec.add_sink(sink);
      cfg.recorder = &rec;
    }
    os::ManyCoreSystem sys = make_system(c);
    auto ctl = os::make_controller("OD-RL", c);
    os::RunResult r = os::run_closed_loop(sys, *ctl, cfg);
    if (swaps_out) *swaps_out = r.swaps;
    return r;
  };

  std::vector<os::SwapTrace> swaps;
  auto sink = std::make_shared<ot::MemorySink>();
  const os::RunResult a = run_once(&swaps, sink);
  const os::RunResult b = run_once(nullptr, nullptr);

  // Deterministic: two identical swap runs (telemetry on vs off) agree
  // bit-for-bit.
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    expect_records_equal(a.trace[i], b.trace[i], i);
  }

  // Both swaps recorded, in order, with the handoff names.
  ASSERT_EQ(swaps.size(), 2u);
  EXPECT_EQ(swaps[0].from, "OD-RL");
  EXPECT_EQ(swaps[0].to, "Greedy");
  EXPECT_EQ(swaps[1].from, "Greedy");
  EXPECT_EQ(swaps[1].to, "OD-RL");
  EXPECT_LT(swaps[0].epoch, swaps[1].epoch);

  // The telemetry stream carries the same records.
  ASSERT_EQ(sink->controller_swaps().size(), 2u);
  EXPECT_EQ(sink->controller_swaps()[0].to, "Greedy");
  EXPECT_EQ(sink->controller_swaps()[1].to, "OD-RL");

  // The swap actually changed behavior: a swap-free OD-RL run differs
  // somewhere in the swapped region (Greedy decides differently).
  os::RunConfig plain = base_config(c);
  os::ManyCoreSystem sys = make_system(c);
  auto ctl = os::make_controller("OD-RL", c);
  const os::RunResult no_swap = os::run_closed_loop(sys, *ctl, plain);
  bool diverged = false;
  for (std::size_t i = 40; i < a.trace.size() && !diverged; ++i) {
    diverged = a.trace[i].true_chip_power_w !=
               no_swap.trace[i].true_chip_power_w;
  }
  EXPECT_TRUE(diverged) << "hot-swap to Greedy had no observable effect";
}

TEST(HotSwap, SwapAcceptsControllerOverrides) {
  const oa::ChipConfig c = chip();
  os::RunConfig cfg = base_config(c);
  os::ControllerOverrides ov;
  ov.set("kp", "0.5");
  cfg.swaps.push_back({50, "PID", ov, nullptr});
  os::ManyCoreSystem sys = make_system(c);
  auto ctl = os::make_controller("Greedy", c);
  const os::RunResult r = os::run_closed_loop(sys, *ctl, cfg);
  ASSERT_EQ(r.swaps.size(), 1u);
  EXPECT_EQ(r.swaps[0].to, "PID");

  // The same overrides object is reusable across runs (consumption
  // tracking must not leak between make() calls).
  os::ManyCoreSystem sys2 = make_system(c);
  auto ctl2 = os::make_controller("Greedy", c);
  const os::RunResult r2 = os::run_closed_loop(sys2, *ctl2, cfg);
  EXPECT_EQ(r2.swaps.size(), 1u);
}

TEST(HotSwap, SwapReportMatchesTraceRecomputation) {
  // The A/B report's segment aggregates must equal what the trace says:
  // swap i splits the measured region at its epoch, overshoot is judged
  // as max(0, true power - observed budget), and the accumulation order
  // is the epoch order, so the doubles match bit for bit.
  const oa::ChipConfig c = chip();
  os::RunConfig cfg = base_config(c);
  cfg.swaps.push_back({40, "Greedy", {}, nullptr});
  cfg.swaps.push_back({80, "OD-RL", {}, nullptr});
  os::ManyCoreSystem sys = make_system(c);
  auto ctl = os::make_controller("OD-RL", c);
  const os::RunResult r = os::run_closed_loop(sys, *ctl, cfg);

  ASSERT_EQ(r.swaps.size(), 2u);
  ASSERT_EQ(r.swap_report.size(), 2u);
  ASSERT_EQ(r.trace.size(), kEpochs);

  // Segment boundaries in measured-epoch space: [0,40), [40,80), [80,120).
  const std::size_t bounds[] = {0, 40, 80, kEpochs};
  double mean_overshoot[3];
  double violation_frac[3];
  for (std::size_t s = 0; s < 3; ++s) {
    double sum = 0.0;
    std::size_t violations = 0;
    for (std::size_t e = bounds[s]; e < bounds[s + 1]; ++e) {
      const auto& rec = r.trace[e];
      if (rec.true_chip_power_w > rec.budget_w) {
        sum += rec.true_chip_power_w - rec.budget_w;
        ++violations;
      }
    }
    const auto n = static_cast<double>(bounds[s + 1] - bounds[s]);
    mean_overshoot[s] = sum / n;
    violation_frac[s] = static_cast<double>(violations) / n;
  }

  for (std::size_t i = 0; i < 2; ++i) {
    const os::SwapImpact& impact = r.swap_report[i];
    EXPECT_EQ(impact.epoch, r.swaps[i].epoch);
    EXPECT_EQ(impact.from, r.swaps[i].from);
    EXPECT_EQ(impact.to, r.swaps[i].to);
    EXPECT_EQ(impact.epochs_before, bounds[i + 1] - bounds[i]);
    EXPECT_EQ(impact.epochs_after, bounds[i + 2] - bounds[i + 1]);
    EXPECT_DOUBLE_EQ(impact.mean_overshoot_w_before, mean_overshoot[i]);
    EXPECT_DOUBLE_EQ(impact.mean_overshoot_w_after, mean_overshoot[i + 1]);
    EXPECT_DOUBLE_EQ(impact.violation_frac_before, violation_frac[i]);
    EXPECT_DOUBLE_EQ(impact.violation_frac_after, violation_frac[i + 1]);
    EXPECT_DOUBLE_EQ(
        impact.delta_mean_overshoot_w(),
        impact.mean_overshoot_w_after - impact.mean_overshoot_w_before);
    EXPECT_DOUBLE_EQ(
        impact.delta_violation_frac(),
        impact.violation_frac_after - impact.violation_frac_before);
  }

  // The report survives keep_traces = false: it is built from in-run
  // accumulators, not from the trace.
  os::RunConfig no_trace = cfg;
  no_trace.keep_traces = false;
  os::ManyCoreSystem sys2 = make_system(c);
  auto ctl2 = os::make_controller("OD-RL", c);
  const os::RunResult r2 = os::run_closed_loop(sys2, *ctl2, no_trace);
  ASSERT_EQ(r2.swap_report.size(), 2u);
  EXPECT_TRUE(r2.trace.empty());
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(r2.swap_report[i].mean_overshoot_w_after,
                     r.swap_report[i].mean_overshoot_w_after);
    EXPECT_DOUBLE_EQ(r2.swap_report[i].violation_frac_after,
                     r.swap_report[i].violation_frac_after);
  }
}

TEST(HotSwap, ResumeAcrossSwapBoundaryRebuildsTheActiveController) {
  // Capture *after* the swap fired: the resumed run must rebuild the
  // swapped-in controller (Greedy), not the original (OD-RL), and still
  // continue bit-identically.
  const oa::ChipConfig c = chip();
  std::string blob;
  os::RunConfig cfg = base_config(c);
  cfg.swaps.push_back({40, "Greedy", {}, nullptr});
  cfg.snapshot_epoch = kMidpoint;  // 60 > 40: swap already fired
  cfg.snapshot_out = &blob;
  os::ManyCoreSystem ref_sys = make_system(c);
  auto ref_ctl = os::make_controller("OD-RL", c);
  const os::RunResult ref = os::run_closed_loop(ref_sys, *ref_ctl, cfg);

  os::RunConfig rcfg = base_config(c);
  rcfg.swaps.push_back({40, "Greedy", {}, nullptr});
  rcfg.resume_snapshot = &blob;
  os::ManyCoreSystem res_sys = make_system(c);
  auto res_ctl = os::make_controller("OD-RL", c);
  const os::RunResult res = os::run_closed_loop(res_sys, *res_ctl, rcfg);

  EXPECT_EQ(res.controller_name, "Greedy");
  EXPECT_TRUE(res.swaps.empty()) << "swap must not fire a second time";
  ASSERT_EQ(res.trace.size(), kEpochs - kMidpoint);
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    expect_records_equal(res.trace[i], ref.trace[kMidpoint + i], i);
  }
}

TEST(HotSwap, SeededSwapWarmStartsFromSnapshot) {
  const oa::ChipConfig c = chip();

  // Train an OD-RL controller and capture its state mid-run.
  std::string blob;
  os::RunConfig train = base_config(c);
  train.snapshot_epoch = kMidpoint;
  train.snapshot_out = &blob;
  os::ManyCoreSystem train_sys = make_system(c);
  auto train_ctl = os::make_controller("OD-RL", c);
  (void)os::run_closed_loop(train_sys, *train_ctl, train);

  // Swap Greedy -> OD-RL, warm-starting the incoming OD-RL from the blob.
  auto run_swap = [&](const std::string* seed) {
    os::RunConfig cfg = base_config(c);
    cfg.swaps.push_back({kMidpoint, "OD-RL", {}, seed});
    os::ManyCoreSystem sys = make_system(c);
    auto ctl = os::make_controller("Greedy", c);
    return os::run_closed_loop(sys, *ctl, cfg);
  };
  const os::RunResult seeded = run_swap(&blob);
  const os::RunResult cold = run_swap(nullptr);
  ASSERT_EQ(seeded.swaps.size(), 1u);

  // The warm start is real: the seeded tail diverges from the cold one.
  bool diverged = false;
  for (std::size_t i = kMidpoint; i < seeded.trace.size() && !diverged;
       ++i) {
    diverged = seeded.trace[i].true_chip_power_w !=
               cold.trace[i].true_chip_power_w;
  }
  EXPECT_TRUE(diverged) << "snapshot seeding had no observable effect";
}

TEST(HotSwap, SeedNameMismatchThrowsBadValue) {
  const oa::ChipConfig c = chip();
  std::string blob;
  os::RunConfig train = base_config(c);
  train.snapshot_epoch = 5;
  train.snapshot_out = &blob;
  os::ManyCoreSystem train_sys = make_system(c);
  auto train_ctl = os::make_controller("OD-RL", c);
  (void)os::run_closed_loop(train_sys, *train_ctl, train);

  os::RunConfig cfg = base_config(c);
  cfg.swaps.push_back({10, "PID", {}, &blob});  // blob holds OD-RL state
  os::ManyCoreSystem sys = make_system(c);
  auto ctl = os::make_controller("Greedy", c);
  try {
    (void)os::run_closed_loop(sys, *ctl, cfg);
    FAIL() << "seeded a PID from an OD-RL snapshot";
  } catch (const osn::SnapshotError& e) {
    EXPECT_EQ(e.status(), osn::SnapshotStatus::kBadValue);
  }
}

// -- Resume error paths ---------------------------------------------------

namespace {
std::string capture_blob(bool with_faults, const os::FaultSchedule* storm) {
  const oa::ChipConfig c = chip();
  std::string blob;
  os::RunConfig cfg = base_config(c);
  if (with_faults) {
    cfg.faults = storm;
    cfg.watchdog.enabled = true;
  }
  cfg.snapshot_epoch = kMidpoint;
  cfg.snapshot_out = &blob;
  os::ManyCoreSystem sys = make_system(c);
  auto ctl = os::make_controller("OD-RL", c);
  (void)os::run_closed_loop(sys, *ctl, cfg);
  return blob;
}

osn::SnapshotStatus resume_status(const std::string& blob,
                                  const std::string& controller,
                                  std::size_t cores, std::size_t epochs,
                                  const os::FaultSchedule* faults = nullptr) {
  const oa::ChipConfig c = oa::ChipConfig::make(cores, 0.6);
  os::SimConfig sc;
  sc.sensor_noise_rel = 0.02;
  sc.seed = 23;
  os::ManyCoreSystem sys(
      c,
      std::make_unique<ow::GeneratedWorkload>(
          ow::GeneratedWorkload::mixed_suite(cores, 13)),
      sc);
  auto ctl = os::make_controller(controller, c);
  os::RunConfig cfg;
  cfg.epochs = epochs;
  // Same budget-event arity as the captured run, so the snapshot's event
  // cursor stays within this schedule and the intended check fires.
  cfg.budget_events = {{0, c.tdp_w() * 0.9}, {80, c.tdp_w() * 0.6}};
  cfg.resume_snapshot = &blob;
  cfg.faults = faults;
  try {
    (void)os::run_closed_loop(sys, *ctl, cfg);
    return osn::SnapshotStatus::kOk;
  } catch (const osn::SnapshotError& e) {
    return e.status();
  }
}
}  // namespace

TEST(ResumeErrors, StructuredRejection) {
  const std::string blob = capture_blob(false, nullptr);

  // Wrong core count: kDimensionMismatch (SYST/RUNR disagree with chip).
  EXPECT_EQ(resume_status(blob, "OD-RL", 16, kEpochs),
            osn::SnapshotStatus::kDimensionMismatch);

  // Captured epoch beyond the (shorter) run: kBadValue.
  EXPECT_EQ(resume_status(blob, "OD-RL", kCores, kMidpoint),
            osn::SnapshotStatus::kBadValue);

  // Controller mismatch: the CTRL section names OD-RL.
  EXPECT_EQ(resume_status(blob, "Greedy", kCores, kEpochs),
            osn::SnapshotStatus::kBadValue);

  // Fault section and schedule must agree.
  const os::FaultSchedule storm = storm_schedule();
  EXPECT_EQ(resume_status(blob, "OD-RL", kCores, kEpochs, &storm),
            osn::SnapshotStatus::kBadValue);

  // Frame corruption surfaces with its own statuses.
  std::string flipped = blob;
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x01);
  const osn::SnapshotStatus st =
      resume_status(flipped, "OD-RL", kCores, kEpochs);
  EXPECT_TRUE(st == osn::SnapshotStatus::kChecksumMismatch ||
              st == osn::SnapshotStatus::kTruncated);

  EXPECT_EQ(resume_status("garbage", "OD-RL", kCores, kEpochs),
            osn::SnapshotStatus::kBadMagic);

  EXPECT_EQ(resume_status(blob.substr(0, blob.size() - 4), "OD-RL", kCores,
                          kEpochs),
            osn::SnapshotStatus::kTruncated);
}

TEST(ResumeErrors, FaultyRunResumesOnlyWithItsSchedule) {
  const os::FaultSchedule storm = storm_schedule();
  const std::string blob = capture_blob(true, &storm);
  // Dropping the schedule on resume must be rejected, not silently run
  // fault-free from latched fault state.
  EXPECT_EQ(resume_status(blob, "OD-RL", kCores, kEpochs, nullptr),
            osn::SnapshotStatus::kBadValue);
}
